#!/usr/bin/env python
"""Docstring-presence lint for the public kernel and engine APIs.

The architecture contract (docs/ARCHITECTURE.md) promises that every
public symbol of ``repro.graphcore`` (the batched kernels every hot path
runs on), ``repro.dynamic`` (the streaming engine API), ``repro.sketch``
(the fingerprint estimators and their documented contract,
docs/ESTIMATORS.md), ``repro.decomposition`` (the ACD pipeline those
estimators drive), and ``repro.network`` (the ledger plus the
simulated-time heterogeneous fabric model, docs/NETWORK.md) documents its
arguments, shapes, and invariants.  This
lint enforces the *presence* half of that promise statically: every public
module, class, function, and method in those packages must carry a
docstring.

Run from the repo root (CI's docs job does):

    python tools/lint_docstrings.py            # lint the default packages
    python tools/lint_docstrings.py src/repro  # or any explicit targets

Exit code 0 iff no public symbol is missing a docstring.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_TARGETS = (
    "src/repro/graphcore",
    "src/repro/dynamic",
    "src/repro/sketch",
    "src/repro/decomposition",
    "src/repro/observe",
    "src/repro/serve",
    "src/repro/experiments",
    "src/repro/parallel",
    "src/repro/network",
    "src/repro/fuzz",
    "src/repro/workloads",
)

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def is_public(name: str) -> bool:
    """Lintable name: not underscore-private (dunders like ``__init__`` are
    documented by their class; they are exempt too)."""
    return not name.startswith("_")


def iter_undocumented(tree: ast.Module) -> list[tuple[int, str, str]]:
    """Yield ``(lineno, kind, qualified_name)`` for every public symbol of
    the parsed module that lacks a docstring.  Nested defs inside function
    bodies are implementation details and are skipped."""
    missing: list[tuple[int, str, str]] = []
    if ast.get_docstring(tree) is None:
        missing.append((1, "module", "<module>"))

    def visit(nodes, prefix: str) -> None:
        for node in nodes:
            if isinstance(node, FunctionNode) and is_public(node.name):
                qual = f"{prefix}{node.name}"
                if ast.get_docstring(node) is None:
                    missing.append((node.lineno, "def", qual))
                # do not descend: nested defs are private by construction
            elif isinstance(node, ast.ClassDef) and is_public(node.name):
                qual = f"{prefix}{node.name}"
                if ast.get_docstring(node) is None:
                    missing.append((node.lineno, "class", qual))
                visit(node.body, qual + ".")

    visit(tree.body, "")
    return missing


def lint_file(path: Path) -> list[str]:
    """Lint one Python file; returns human-readable violation lines."""
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        f"{path}:{lineno}: undocumented public {kind} {name}"
        for lineno, kind, name in iter_undocumented(tree)
    ]


def main(argv: list[str]) -> int:
    """Lint every ``.py`` file under the target directories (or files)."""
    targets = argv or list(DEFAULT_TARGETS)
    failures: list[str] = []
    checked = 0
    for target in targets:
        root = Path(target)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        if not files or not all(f.is_file() for f in files):
            print(f"lint_docstrings: no Python files under {target}", file=sys.stderr)
            return 2
        for path in files:
            failures.extend(lint_file(path))
            checked += 1
    for line in failures:
        print(line)
    print(
        f"lint_docstrings: {checked} files checked, {len(failures)} "
        f"undocumented public symbols"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
