#!/usr/bin/env python
"""Thin shim over :mod:`repro.observe.cells` (kept for the CI invocation).

The implementation moved into the observability subsystem; this script
only makes ``python tools/print_cell_times.py ARTIFACT.jsonl [...]`` keep
working without a ``PYTHONPATH`` in the caller's environment.  Prefer
``repro cells`` interactively.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observe.cells import cell_label, main, print_timings  # noqa: E402,F401

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
