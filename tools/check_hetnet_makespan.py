#!/usr/bin/env python
"""CI gate for a hetnet sweep artifact (docs/NETWORK.md).

Checks the two halves of the heterogeneous-network contract on the cells
of a ``hetnet``/``hetnet_smoke`` artifact:

1. **Invisibility** -- within each group of cells that differ only in the
   ``net_skew`` / ``net_fill`` knobs, the coloring digest, ``rounds_h``,
   and ``total_message_bits`` must be identical: the fabric model may
   never perturb the algorithm.
2. **Sensitivity** -- at the highest fill of each group, the
   highest-skew cell must report a strictly larger ``makespan_ms`` than
   the skew-1 cell: a 100x-slower link on a charged path must show up on
   the simulated clock.

Exit 0 when every group passes, 1 otherwise (with one line per
violation).  Usage: ``python tools/check_hetnet_makespan.py ARTIFACT``.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workloads.specs import NET_PARAM_NAMES  # noqa: E402


def load_cells(path: str) -> list[dict]:
    """The ``kind == "cell"`` records of a JSONL sweep artifact."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "cell":
                records.append(record)
    return records


def group_key(record: dict) -> str:
    """Cell identity with the net knobs stripped: the axis the fabric
    sweep varies, so every group member ran the identical algorithm."""
    cell = record["cell"]
    kwargs = {
        k: v for k, v in cell.get("workload_kwargs", {}).items()
        if k not in NET_PARAM_NAMES
    }
    return json.dumps(
        {
            "workload": cell["workload"],
            "kwargs": kwargs,
            "params": cell["params"],
            "regime": cell["regime"],
            "algorithm": cell.get("algorithm", "paper"),
            "seed": cell["seed"],
            "instance_seed": cell["instance_seed"],
        },
        sort_keys=True,
    )


def check(records: list[dict]) -> list[str]:
    """Every contract violation in ``records``, as printable lines."""
    errors: list[str] = []
    groups: dict[str, list[dict]] = defaultdict(list)
    for record in records:
        if record.get("status") != "ok":
            errors.append(
                f"cell not ok ({record.get('status')}): "
                f"{record['cell'].get('workload')} "
                f"{record['cell'].get('workload_kwargs')}"
            )
            continue
        groups[group_key(record)].append(record)
    if not groups:
        errors.append("artifact holds no ok cells")
        return errors

    for key, members in sorted(groups.items()):
        label = json.loads(key)
        name = f"{label['workload']} algo={label['algorithm']}"
        # 1. invisibility: pinned quantities identical across the grid
        for metric in ("coloring_digest", "rounds_h", "total_message_bits"):
            values = {m["metrics"].get(metric) for m in members}
            if len(values) != 1:
                errors.append(
                    f"{name}: {metric} varies across net knobs: {values}"
                )
        # 2. sensitivity: max skew beats skew 1 at the highest fill
        by_knobs = {
            (
                float(m["cell"]["workload_kwargs"].get("net_skew", 1.0)),
                float(m["cell"]["workload_kwargs"].get("net_fill", 0.0)),
            ): m
            for m in members
        }
        fills = {fill for _, fill in by_knobs}
        skews = {skew for skew, _ in by_knobs}
        top_fill, top_skew = max(fills), max(skews)
        if top_skew <= 1.0 or len(skews) < 2:
            errors.append(f"{name}: no skewed cell to compare against skew 1")
            continue
        base = by_knobs.get((1.0, top_fill))
        skewed = by_knobs.get((top_skew, top_fill))
        if base is None or skewed is None:
            errors.append(
                f"{name}: grid misses skew {{1,{top_skew:g}}} at "
                f"fill {top_fill:g}"
            )
            continue
        base_ms = base["metrics"].get("makespan_ms")
        skew_ms = skewed["metrics"].get("makespan_ms")
        if base_ms is None or skew_ms is None:
            errors.append(f"{name}: makespan_ms missing from hetnet cells")
        elif not skew_ms > base_ms:
            errors.append(
                f"{name}: skew {top_skew:g} makespan {skew_ms} is not "
                f"strictly above skew-1 makespan {base_ms} at "
                f"fill {top_fill:g}"
            )
    return errors


def main(argv: list[str]) -> int:
    """CLI entry: check one artifact, print violations, gate via exit code."""
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    records = load_cells(argv[0])
    errors = check(records)
    for line in errors:
        print(f"HETNET VIOLATION: {line}")
    if not errors:
        groups = {group_key(r) for r in records}
        print(
            f"hetnet contract holds: {len(records)} cells in "
            f"{len(groups)} groups (invisibility + makespan sensitivity)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
