"""Global algorithm parameters (Equation (1) of the paper) with presets.

The paper fixes, in Equation (1):

    eps   = 1/2000
    delta = gamma_{4.5} / 300
    Delta_low = Theta(log^21 n)
    ell   = Theta(log^1.1 n)

and, around them,

    r_K   = 250 * max(e~_K, ell)          (Equation (2), reserved colors)
    ell_s = Theta(ell^3),  b = 256 * ell_s^6   (Equation (11), donor blocks)

These literal constants make the high-degree regime (Delta >= Delta_low)
unreachable on any machine that exists: ``log^21 n`` exceeds ``10^27`` at
``n = 10^6``.  Reproductions of asymptotic results therefore run with
*scaled* constants preserving every relationship the proofs rely on:

* ``r_K`` stays a constant multiple of ``max(e~_K, ell)`` and is capped by a
  constant fraction of ``Delta`` (the paper's ``r_K <= 300 eps Delta``);
* put-aside sets have size ``r`` and cabals are almost-cliques with
  ``e~_K < ell``;
* donor blocks are polynomially larger than ``ell`` so the union bounds of
  Section 7 still have room to work at laptop scale.

Both presets are available; experiments record which one they used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


def log_star(n: float) -> int:
    """Iterated logarithm (base 2): number of times ``log2`` must be applied
    to ``n`` before the result drops to at most 1.

    ``log_star`` is the round-complexity yardstick of Theorem 1.2.
    """
    if n <= 1:
        return 0
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def log2ceil(n: int) -> int:
    """Number of bits needed to write ``n`` distinct values (at least 1)."""
    if n <= 1:
        return 1
    return int(math.ceil(math.log2(n)))


@dataclass(frozen=True)
class AlgorithmParameters:
    """All tunable constants of the coloring algorithm in one place.

    Attributes mirror the paper's notation:

    * ``eps`` -- the almost-clique decomposition parameter (Definition 4.2).
    * ``delta`` -- relative error tolerated by degree approximations.
    * ``slack_activation`` -- ``p_g`` of Algorithm 18 (SlackGeneration).
    * ``reserved_multiplier`` -- the ``250`` of Equation (2).
    * ``reserved_cap_mult`` -- the ``300`` of ``r_K <= 300 eps Delta``.
    * ``ell_coeff``/``ell_exp`` -- ``ell = ell_coeff * log^ell_exp n``.
    * ``delta_low_coeff``/``delta_low_exp`` -- ``Delta_low`` threshold.
    * ``ell_s_coeff``/``ell_s_exp`` -- ``ell_s = ell_s_coeff * ell^ell_s_exp``
      (Equation (11); the paper uses ``Theta(ell^3)``).
    * ``block_coeff``/``block_exp`` -- donor block size
      ``b = block_coeff * ell_s^block_exp`` (paper: ``256 * ell_s^6``).
    * ``fingerprint_trials_coeff`` -- trials per sketch, ``t = coeff * log n``.
    * ``bandwidth_coeff`` -- link bandwidth is ``bandwidth_coeff * ceil(log2 n)``
      bits per round.
    * ``mct_slack_coeff`` -- minimum slack (in units of ``log n`` for the
      paper, scaled down here) required by MultiColorTrial's Lemma D.1.
    * ``max_stage_retries`` -- fallback discipline (DESIGN.md 3.3).
    """

    name: str
    eps: float
    delta: float
    slack_activation: float
    reserved_multiplier: float
    reserved_cap_mult: float
    ell_coeff: float
    ell_exp: float
    delta_low_coeff: float
    delta_low_exp: float
    ell_s_coeff: float
    ell_s_exp: float
    block_coeff: float
    block_exp: float
    fingerprint_trials_coeff: float
    bandwidth_coeff: int
    mct_slack_coeff: float
    max_stage_retries: int = 3
    tau_mult: float = 4.0  # tau = tau_mult * eps (Section 6)
    xi_floor: float = 0.0  # clamp requested sketch accuracy (scaled preset)
    trials_cap: int = 1 << 20  # hard cap on sketch width
    # Buddy-edge detection margin for the ACD (Lemma 5.8's xi).  The paper
    # uses Theta(eps); at laptop scale the detection margin must exceed the
    # sketch noise, so the scaled preset widens it -- valid because planted
    # almost-cliques are far tighter than (1 - 2 xi)Delta-friendly.
    acd_detection_xi: float = 0.01
    # Section 7 donor machinery.  donor_activation is the paper's
    # p = 50 ell_s^3 / b (vanishing under the paper's hierarchy; a constant
    # at laptop scale -- the *correctness* filter is Step 3 of Algorithm 9
    # either way).  donor_quota is the S_i size threshold playing the role
    # of the paper's ell_s in Lemma 7.3 Property 4.  donor_max_blocks caps
    # the number of color blocks so per-block donor populations stay
    # meaningful when Delta is only hundreds (the paper's b = 256 ell_s^6 is
    # a poly log that its Delta >= log^21 n regime dwarfs).
    donor_activation: float = 0.5
    donor_quota_coeff: float = 0.25
    donor_max_blocks: int | None = None

    # ---- derived quantities ------------------------------------------------

    def ell(self, n: int) -> int:
        """Cabal threshold ``ell`` (Equation (1))."""
        base = max(2.0, math.log2(max(n, 2)))
        return max(1, int(math.ceil(self.ell_coeff * base**self.ell_exp)))

    def delta_low(self, n: int) -> int:
        """High-degree threshold ``Delta_low`` (Equation (1))."""
        base = max(2.0, math.log2(max(n, 2)))
        return max(2, int(math.ceil(self.delta_low_coeff * base**self.delta_low_exp)))

    def reserved_colors(self, e_tilde_k: float, n: int, delta: int) -> int:
        """``r_K = reserved_multiplier * max(e~_K, ell)`` capped at
        ``reserved_cap_mult * eps * Delta`` (Equation (2) and the remark
        following it).
        """
        raw = self.reserved_multiplier * max(e_tilde_k, float(self.ell(n)))
        cap = self.reserved_cap_mult * self.eps * delta
        return max(1, int(min(raw, cap)))

    def ell_s(self, n: int) -> int:
        """Safe-donor set size ``ell_s = Theta(ell^3)`` (Equation (11))."""
        return max(1, int(math.ceil(self.ell_s_coeff * self.ell(n) ** self.ell_s_exp)))

    def block_size(self, n: int) -> int:
        """Donor block size ``b`` (Equation (11))."""
        return max(2, int(math.ceil(self.block_coeff * self.ell_s(n) ** self.block_exp)))

    def fingerprint_trials(self, n: int, xi: float = 1.0) -> int:
        """Number of parallel geometric trials ``t = Theta(xi^-2 log n)``
        used by the fingerprinting estimator (Lemma 5.7).

        The count is capped at ``trials_cap`` -- the scaled regime's
        equivalent of not letting the ``xi^-2`` constant dwarf the instance.
        Requested ``xi`` below ``xi_floor`` is clamped first: at laptop scale
        the separation margins of the workloads exceed the paper's
        ``xi * Delta``, so coarser sketches keep the same discrimination
        power (DESIGN.md 3.2).
        """
        xi_eff = max(xi, self.xi_floor)
        base = max(2.0, math.log2(max(n, 2)))
        raw = int(math.ceil(self.fingerprint_trials_coeff * base / (xi_eff * xi_eff)))
        return min(self.trials_cap, max(8, raw))

    def bandwidth_bits(self, n: int) -> int:
        """Per-link per-round bandwidth: ``O(log n)`` bits."""
        return self.bandwidth_coeff * log2ceil(max(n, 2))

    def tau(self) -> float:
        """``tau = 4 eps``: the anti-degree quantile of Section 6."""
        return self.tau_mult * self.eps

    def donor_quota(self, n: int) -> int:
        """Minimum safe-donor set size (Lemma 7.3 Property 4's ``ell_s``,
        scaled)."""
        return max(3, int(math.ceil(self.donor_quota_coeff * self.ell(n))))

    def donation_samples(self, n: int) -> int:
        """``k = Theta(log n / loglog n)`` donation attempts (Section 7,
        Step 4)."""
        base = max(4.0, math.log2(max(n, 4)))
        return max(6, int(math.ceil(base / max(1.0, math.log2(base)))))

    def donor_block_size(self, n: int, delta: int) -> int:
        """Donor block width ``b`` (Equation (11)), clamped so at most
        ``donor_max_blocks`` blocks partition ``[Delta+1]`` when set."""
        b = self.block_size(n)
        if self.donor_max_blocks is not None:
            b = max(b, int(math.ceil((delta + 1) / self.donor_max_blocks)))
        return min(b, delta + 1)

    def with_overrides(self, **kwargs) -> "AlgorithmParameters":
        """Return a copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)


def paper() -> AlgorithmParameters:
    """The literal constants of Equation (1).

    Only useful for checking formulas: ``Delta_low`` is astronomically large,
    so the high-degree pipeline never triggers with this preset.
    """
    gamma_45 = 0.01  # existential constant of Proposition 4.5; proofs only
    return AlgorithmParameters(
        name="paper",
        eps=1.0 / 2000.0,
        delta=gamma_45 / 300.0,
        slack_activation=1.0 / 200.0,
        reserved_multiplier=250.0,
        reserved_cap_mult=300.0,
        ell_coeff=1.0,
        ell_exp=1.1,
        delta_low_coeff=1.0,
        delta_low_exp=21.0,
        ell_s_coeff=1.0,
        ell_s_exp=3.0,
        block_coeff=256.0,
        block_exp=6.0,
        fingerprint_trials_coeff=4.0,
        bandwidth_coeff=4,
        mct_slack_coeff=1.0,
        acd_detection_xi=1.0 / 2000.0 / 3.0,
        donor_activation=0.01,
        donor_quota_coeff=2.0,
        donor_max_blocks=None,
    )


def scaled() -> AlgorithmParameters:
    """Laptop-scale constants preserving the proofs' relationships.

    ``eps = 1/10`` keeps almost-cliques meaningfully dense while leaving the
    buddy-predicate margins (``Theta(eps Delta)``) wide enough for planted
    instances of a few hundred vertices to decompose correctly;
    ``Delta_low = 4 log^2 n`` makes the high-degree regime reachable at
    ``n >= ~500`` with moderate degrees; ``ell = 2 log n`` keeps cabals
    plentiful in dense instances.  Donor-block constants are shrunk in
    lockstep (``ell_s = ell``, ``b = 4 ell_s``) so Section 7's machinery is
    exercised rather than vacuously satisfied.
    """
    return AlgorithmParameters(
        name="scaled",
        eps=1.0 / 10.0,
        delta=1.0 / 30.0,
        slack_activation=1.0 / 4.0,
        reserved_multiplier=2.0,
        reserved_cap_mult=3.0,
        ell_coeff=0.75,
        ell_exp=1.0,
        delta_low_coeff=0.5,
        delta_low_exp=2.0,
        ell_s_coeff=4.0,
        ell_s_exp=1.0,
        block_coeff=4.0,
        block_exp=1.0,
        fingerprint_trials_coeff=2.0,
        bandwidth_coeff=8,
        mct_slack_coeff=0.25,
        xi_floor=0.0625,
        trials_cap=4096,
        acd_detection_xi=0.25,
        donor_activation=0.5,
        donor_quota_coeff=0.25,
        donor_max_blocks=2,
    )


DEFAULT = scaled()
