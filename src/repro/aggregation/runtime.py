"""Execution runtime for cluster-level algorithms.

Algorithms in this repository are written against the communication model of
Section 3.2: each round on ``H`` is a broadcast in every support tree, local
computation on inter-cluster links, and a convergecast.  The
:class:`ClusterRuntime` binds a (cluster or virtual) graph to a
:class:`~repro.network.ledger.BandwidthLedger` and exposes the primitives the
paper uses, charging their exact cost.  Congestion (virtual graphs,
Appendix A) multiplies the G-round cost.

The runtime computes *results* centrally (this is a simulation) but only
through operations each cluster could have performed with the information
flowing through the charged messages; tests in
``tests/test_machine_equivalence.py`` validate the accounting against a
faithful per-machine execution for the core primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.ledger import BandwidthLedger
from repro.observe.tracer import NULL_TRACER
from repro.parallel.backend import SERIAL_BACKEND
from repro.params import AlgorithmParameters, log2ceil


@dataclass
class ClusterRuntime:
    """Binds graph + ledger + parameters + randomness for one execution.

    Parameters
    ----------
    graph:
        A :class:`~repro.cluster.cluster_graph.ClusterGraph` or
        :class:`~repro.cluster.virtual_graph.VirtualGraph`.
    params:
        Algorithm constants (presets in :mod:`repro.params`).
    rng:
        The single source of randomness for the execution.
    ledger:
        Optional pre-built ledger (a fresh one is created otherwise).
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer`; defaults to the
        no-op :data:`~repro.observe.tracer.NULL_TRACER`.  The runtime binds
        its ledger to the tracer so spans attribute this execution's
        charges.  Tracing is bitwise-invisible: it reads snapshots only.
    backend:
        Optional :class:`~repro.parallel.backend.ExecutionBackend` that
        evaluates the batched kernels; defaults to the shared serial
        backend.  The runtime binds it after the tracer so sharded
        backends trace their exchanges and size their boundary charges
        from this execution (backends are value-identical by contract, so
        the choice never changes simulated metrics).
    netmodel:
        Optional :class:`~repro.network.hetnet.HetNetModel` attached to
        the ledger before any charge: the execution then additionally
        reports a simulated-clock makespan.  Read-only toward the
        algorithm -- attaching one is bitwise-invisible to colorings,
        counters, and the RNG stream (docs/NETWORK.md).
    """

    graph: object
    params: AlgorithmParameters
    rng: np.random.Generator
    ledger: BandwidthLedger | None = None
    tracer: object = None
    backend: object = None
    netmodel: object = None

    def __post_init__(self) -> None:
        n = self.graph.n_machines
        congestion = getattr(self.graph, "congestion", 1)
        if self.ledger is None:
            self.ledger = BandwidthLedger(
                bandwidth_bits=self.params.bandwidth_bits(n),
                dilation=max(1, self.graph.dilation) * max(1, congestion),
            )
        if self.netmodel is not None:
            self.ledger.attach_netmodel(self.netmodel)
        if self.tracer is None:
            self.tracer = NULL_TRACER
        else:
            self.tracer.bind_ledger(self.ledger)
        if self.backend is None:
            self.backend = SERIAL_BACKEND
        self.backend.bind(self)

    # ---- convenience sizes ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of machines -- the ``n`` of all w.h.p. bounds."""
        return self.graph.n_machines

    @property
    def id_bits(self) -> int:
        """Bits of one identifier: ``O(log n)``."""
        return log2ceil(max(self.n, 2))

    @property
    def color_bits(self) -> int:
        """Bits of one color in ``[Delta + 1]``."""
        return log2ceil(self.graph.max_degree + 2)

    # ---- primitive charges ---------------------------------------------------

    def h_rounds(self, op: str, count: int = 1, bits: int | None = None) -> None:
        """Charge ``count`` full H-rounds with messages of width ``bits``
        (default: one identifier).
        """
        width = self.id_bits if bits is None else bits
        for _ in range(count):
            self.ledger.charge(op, width, rounds_h=1, pipelined=True)

    def broadcast(self, op: str, bits: int | None = None) -> None:
        """One leader-to-cluster broadcast in every support tree."""
        width = self.id_bits if bits is None else bits
        self.ledger.charge(op, width, rounds_h=1, pipelined=True)

    def aggregate(self, op: str, bits: int | None = None) -> None:
        """One cluster-to-leader convergecast in every support tree."""
        width = self.id_bits if bits is None else bits
        self.ledger.charge(op, width, rounds_h=1, pipelined=True)

    def wide_message(self, op: str, bits: int, depth: int | None = None) -> None:
        """A deliberately long message, pipelined in cap-sized pieces
        (the accounting of e.g. Lemma 5.7's fingerprint aggregation).
        """
        self.ledger.charge(op, bits, rounds_h=1, depth=depth, pipelined=True)

    def local(self, op: str) -> None:
        """Zero-round local computation marker."""
        self.ledger.charge_local(op)
