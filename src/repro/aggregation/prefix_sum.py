"""Prefix sums on ordered trees (Lemma 3.3) and their standard uses.

Given edge-disjoint ordered trees of depth ``<= d`` and integer values
``x_u`` on a subset ``S`` of each tree's vertices, every ``u in S`` can learn
``sum_{w in S, w < u} x_w`` in ``O(d)`` rounds, where ``<`` is the total
order induced by the ordered tree.  The canonical applications -- used all
over the coloring algorithm -- are:

* dense local identifiers ``1..|S|`` for an arbitrary subset ``S``
  (set ``x_u = 1``; Lemma 3.3's closing remark);
* counting ``|S|`` exactly (the root's total);
* selecting "the first r elements for which P holds" (Algorithm 10, Step 4).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.aggregation.bfs import HTree
from repro.aggregation.runtime import ClusterRuntime


def prefix_sums(
    runtime: ClusterRuntime,
    trees: Sequence[HTree],
    values: Mapping[int, int],
    *,
    op: str = "prefix_sum",
) -> dict[int, int]:
    """Exclusive prefix sums over each tree's induced order (Lemma 3.3).

    ``values`` maps a subset of tree vertices to integers; vertices absent
    from ``values`` contribute 0 and receive no output.  Trees must be
    vertex-disjoint (edge-disjoint in G follows; we enforce the stronger
    condition our BFS forest guarantees anyway).

    Cost: ``O(max depth)`` H-rounds, one ``O(log n)``-bit partial sum per
    message.
    """
    seen: set[int] = set()
    out: dict[int, int] = {}
    max_height = 1
    for tree in trees:
        overlap = seen & set(tree.parent)
        if overlap:
            raise ValueError(f"trees share vertices {sorted(overlap)[:3]}")
        seen |= set(tree.parent)
        running = 0
        for v in tree.order():
            if v in values:
                out[v] = running
                running += values[v]
        max_height = max(max_height, tree.height)
    runtime.h_rounds(op, count=max(1, max_height), bits=2 * runtime.id_bits)
    return out


def local_identifiers(
    runtime: ClusterRuntime,
    trees: Sequence[HTree],
    members: Mapping[int, bool] | None = None,
    *,
    op: str = "local_ids",
) -> dict[int, int]:
    """Assign identifiers ``1..|S|`` to the members of each tree.

    ``members`` selects the subset ``S`` (default: all tree vertices).  The
    identifiers are dense *per tree* and follow the induced order, exactly
    the device Algorithm 7 (Step 3) and Section 7 use to replace
    ``Theta(log n)``-bit global ids with ``O(log |K|)``-bit local ones.
    """
    indicator: dict[int, int] = {}
    for tree in trees:
        for v in tree.parent:
            if members is None or members.get(v, False):
                indicator[v] = 1
    sums = prefix_sums(runtime, trees, indicator, op=op)
    return {v: s + 1 for v, s in sums.items()}


def tree_totals(
    runtime: ClusterRuntime,
    trees: Sequence[HTree],
    values: Mapping[int, int],
    *,
    op: str = "tree_total",
) -> dict[int, int]:
    """Exact per-tree totals ``sum_{u in tree} x_u`` known to every vertex of
    the tree (convergecast + broadcast, ``O(depth)`` rounds).

    Returns a map from tree root to total.
    """
    totals: dict[int, int] = {}
    max_height = 1
    for tree in trees:
        totals[tree.root] = sum(values.get(v, 0) for v in tree.parent)
        max_height = max(max_height, tree.height)
    runtime.h_rounds(op, count=max(1, max_height), bits=2 * runtime.id_bits)
    return totals
