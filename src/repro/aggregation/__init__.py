"""Aggregation primitives of Section 3.3 with cost accounting."""

from repro.aggregation.runtime import ClusterRuntime
from repro.aggregation.bfs import HTree, bfs_forest
from repro.aggregation.prefix_sum import local_identifiers, prefix_sums, tree_totals
from repro.aggregation.groups import RandomGroups, random_groups
from repro.aggregation.dedup import (
    dedup_elected_links,
    exact_degree,
    find_free_color_binary_search,
)

__all__ = [
    "ClusterRuntime",
    "HTree",
    "bfs_forest",
    "local_identifiers",
    "prefix_sums",
    "tree_totals",
    "RandomGroups",
    "random_groups",
    "dedup_elected_links",
    "exact_degree",
    "find_free_color_binary_search",
]
