"""Breadth-first search on cluster graphs (Lemma 3.2).

A ``t``-hop BFS can be simulated in parallel on vertex-disjoint subgraphs of
``H`` in ``O(t)`` rounds on ``G`` (hiding the dilation ``d``).  The resulting
H-tree induces a G-tree of height at most ``d * t`` on which aggregation
visits every cluster exactly once -- the device that avoids double counting
through redundant links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.aggregation.runtime import ClusterRuntime


@dataclass(frozen=True)
class HTree:
    """A rooted ordered tree over a subset of H-vertices.

    Attributes
    ----------
    root:
        Source vertex of the BFS.
    parent:
        ``parent[v]`` for every reached vertex; ``None`` at the root.
    depth_of:
        BFS depth per vertex.
    height:
        Maximum depth (the ``t`` of Lemma 3.2).
    """

    root: int
    parent: dict[int, int | None]
    depth_of: dict[int, int]
    height: int

    @property
    def vertices(self) -> list[int]:
        """All reached vertices."""
        return list(self.parent.keys())

    def children(self) -> dict[int, list[int]]:
        """Sorted child lists -- the arbitrary-but-fixed ordering that makes
        this an *ordered tree* (Lemma 3.3 prerequisite).
        """
        kids: dict[int, list[int]] = {v: [] for v in self.parent}
        for v, p in self.parent.items():
            if p is not None:
                kids[p].append(v)
        for lst in kids.values():
            lst.sort()
        return kids

    def order(self) -> list[int]:
        """The total order induced by the ordered tree (preorder; ancestors
        first, siblings by sorted order) -- the ``≺`` of Lemma 3.3.
        """
        kids = self.children()
        out: list[int] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            out.append(v)
            for c in reversed(kids[v]):
                stack.append(c)
        return out


def bfs_forest(
    runtime: ClusterRuntime,
    components: Sequence[tuple[int, Iterable[int]]],
    *,
    max_hops: int | None = None,
    op: str = "bfs",
) -> list[HTree]:
    """Parallel BFS in vertex-disjoint subgraphs of ``H`` (Lemma 3.2).

    Parameters
    ----------
    components:
        Pairs ``(source, vertex_set)``.  The vertex sets must be pairwise
        disjoint -- parallel BFS in overlapping subgraphs would congest
        support trees, which the model forbids; we enforce it.
    max_hops:
        Optional hop bound ``t``; default: run to exhaustion of each set.

    Returns
    -------
    list[HTree]
        One tree per component (vertices unreachable within the set or hop
        bound are absent).

    Cost: ``O(t)`` H-rounds where ``t`` is the deepest BFS, with
    ``O(log n)``-bit messages (source id + timestamp).
    """
    seen_overall: set[int] = set()
    for _src, vs in components:
        vs = set(vs)
        if seen_overall & vs:
            raise ValueError("BFS components must be vertex-disjoint (Lemma 3.2)")
        seen_overall |= vs

    graph = runtime.graph
    trees: list[HTree] = []
    deepest = 0
    for source, vertex_set in components:
        member = set(vertex_set)
        if source not in member:
            raise ValueError(f"source {source} not in its component")
        parent: dict[int, int | None] = {source: None}
        depth_of = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_hops is None or depth < max_hops):
            nxt = []
            for u in frontier:
                for v in graph.neighbors(u):
                    if v in member and v not in parent:
                        parent[v] = u
                        depth_of[v] = depth + 1
                        nxt.append(v)
            frontier = nxt
            if frontier:
                depth += 1
        deepest = max(deepest, depth)
        trees.append(HTree(root=source, parent=parent, depth_of=depth_of, height=depth))
    # one timestamped flood per hop, all components in parallel
    runtime.h_rounds(op, count=max(1, deepest), bits=2 * runtime.id_bits + 8)
    return trees
