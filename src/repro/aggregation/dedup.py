"""Link deduplication primitives (Section 1.1).

Two clusters may be joined by many links (Figure 1), so "count incident
links" grossly overestimates a node's degree, and a cluster cannot learn
its palette at all (Figure 2's set-intersection bound).  But both tasks are
easy *with the dedication of the node's neighbors*:

* each neighbor ``u`` of ``v`` internally elects ONE of its links to
  ``V(v)`` (an aggregation inside ``V(u)``) and mutes the rest -- after
  which one aggregation over ``v``'s support tree counts each neighbor
  exactly once: **exact degree in O(1) rounds**;
* with deduplicated links, ``v`` can binary-search for a free color: in
  each step the neighbors report (dedup-summed) how many of them use colors
  below the probe -- **a free color in O(log Δ) rounds**.

The catch -- and the reason the paper's pipeline does not lean on these --
is that the neighbors' dedication serializes: only vertex-disjoint
neighborhoods can run this in parallel.  The primitives are still the right
tool in a few places (and for users of the library), so they live here,
with their costs charged honestly.
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import PartialColoring, UNCOLORED
from repro.params import log2ceil


def dedup_elected_links(graph, v: int) -> dict[int, tuple[int, int]]:
    """For each H-neighbor ``u`` of ``v``: the single elected link
    ``(machine_u, machine_v)`` representing the edge ``{u, v}`` (the
    smallest link, a deterministic intra-cluster election)."""
    elected: dict[int, tuple[int, int]] = {}
    for u in graph.neighbors(v):
        key = (u, v) if u < v else (v, u)
        links = graph.links[key]
        chosen = min(links)
        # orient the link as (machine in V(u), machine in V(v))
        mu, mv = chosen if u < v else (chosen[1], chosen[0])
        elected[u] = (mu, mv) if graph.assignment[mu] == u else (mv, mu)
    return elected


def exact_degree(runtime: ClusterRuntime, v: int, *, op: str = "dedup_degree") -> int:
    """The true H-degree of ``v``, via neighbor dedication (Section 1.1).

    Cost: one aggregation in every neighboring cluster (electing links, all
    neighbors in parallel -- they are dedicating to the single node ``v``)
    plus one aggregation over ``T(v)``: O(1) rounds.
    """
    graph = runtime.graph
    elected = dedup_elected_links(graph, v)
    runtime.h_rounds(op, count=2, bits=runtime.id_bits)
    return len(elected)


def find_free_color_binary_search(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    v: int,
    *,
    op: str = "dedup_free_color",
) -> int | None:
    """A color of ``L_φ(v)``, found by binary search with dedicated
    neighbors (Section 1.1); ``None`` if the palette is empty.

    Invariant: the interval ``[lo, hi)`` always contains at least one free
    color iff ``#used distinct colors in [lo, hi) < hi - lo``; each probe
    costs one dedup-aggregation round.  Total: ``O(log Δ)`` rounds.
    """
    graph = runtime.graph
    num_colors = coloring.num_colors
    used = {
        int(c)
        for c in coloring.colors[graph.neighbor_array(v)]
        if c != UNCOLORED
    }

    def distinct_used_in(lo: int, hi: int) -> int:
        # one aggregation: each (deduplicated) neighbor contributes its
        # color if it falls in the probe window; the tree merges bit-counts
        runtime.h_rounds(op + "_probe", count=1, bits=runtime.color_bits + 8)
        return sum(1 for c in used if lo <= c < hi)

    lo, hi = 0, num_colors
    if distinct_used_in(lo, hi) >= hi - lo:
        return None
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if distinct_used_in(lo, mid) < mid - lo:
            hi = mid
        else:
            lo, hi = mid, hi
    return lo


def binary_search_round_budget(num_colors: int) -> int:
    """The O(log Δ) probe budget of the search (for tests/benchmarks)."""
    return log2ceil(max(num_colors, 2)) + 1
