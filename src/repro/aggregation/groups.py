"""Random groups inside almost-cliques (Lemma 4.4).

Splitting an almost-clique ``K`` into ``x`` uniform groups gives, w.h.p.,
groups of size ``Theta(|K|/x)`` such that every vertex of ``K`` is adjacent
to more than half of every group; in particular each group has diameter 2 in
``H[K]``.  Groups are the paper's workhorse for intra-clique communication:
group ``i`` relays messages for the ``i``-th anti-edge (Algorithm 6), tests
color uniqueness (Algorithm 9), estimates donor counts (Algorithm 10), etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.aggregation.runtime import ClusterRuntime


@dataclass(frozen=True)
class RandomGroups:
    """The result of one random split of a clique ``K``.

    Attributes
    ----------
    groups:
        ``groups[i]`` lists the vertices that picked group ``i``.
    group_of:
        Inverse map, vertex -> group index.
    well_connected:
        Whether the Lemma 4.4 guarantee (every vertex adjacent to more than
        half of every group) was verified to hold for this draw.
    """

    groups: list[list[int]]
    group_of: dict[int, int]
    well_connected: bool

    @property
    def num_groups(self) -> int:
        """Number of groups ``x``."""
        return len(self.groups)


def random_groups(
    runtime: ClusterRuntime,
    clique: Sequence[int],
    num_groups: int,
    *,
    verify: bool = True,
    op: str = "random_groups",
) -> RandomGroups:
    """Split ``clique`` into ``num_groups`` uniform groups (Lemma 4.4).

    Each vertex independently picks a uniform group index and announces it to
    its neighbors -- one H-round with an ``O(log x)``-bit message.  When
    ``verify`` is set we also check the adjacency guarantee, which the
    algorithms rely on for correctness; callers treat a failed draw like any
    other failed w.h.p. event (retry -- see DESIGN.md 3.3).
    """
    if num_groups < 1:
        raise ValueError("need at least one group")
    members = list(clique)
    picks = runtime.rng.integers(0, num_groups, size=len(members))
    groups: list[list[int]] = [[] for _ in range(num_groups)]
    group_of: dict[int, int] = {}
    for vertex, pick in zip(members, picks):
        groups[int(pick)].append(vertex)
        group_of[vertex] = int(pick)
    runtime.h_rounds(op, count=1, bits=max(1, int(np.ceil(np.log2(num_groups + 1)))))

    well_connected = True
    if verify:
        graph = runtime.graph
        for group in groups:
            if not group:
                well_connected = False
                break
            gset = set(group)
            for v in members:
                inside = len(gset & graph.neighbor_set(v)) + (1 if v in gset else 0)
                if inside * 2 <= len(group):
                    well_connected = False
                    break
            if not well_connected:
                break
    return RandomGroups(groups=groups, group_of=group_of, well_connected=well_connected)
