"""Parallel sweep execution.

Expands a :class:`~repro.experiments.spec.ScenarioSpec` into cells and runs
them either serially in-process (``jobs <= 1``: no pool overhead, exact
tracebacks -- what the benchmark wrappers use) or scattered across the
shared process pool of :mod:`repro.parallel.pool`.  Each cell is
independent and deterministic given its seeds, so parallel execution
cannot change any measured number.  Orthogonally, ``backend="sharded"``
runs each cell's *kernels* through the sharded execution backend
(docs/PARALLEL.md) -- also metric-invariant by the backend contract.

Failure discipline: a cell that raises is captured as a ``status="error"``
record with its traceback; a cell that exceeds its wall-clock budget is
interrupted via the pool's re-firing ``SIGALRM`` watchdog (POSIX) and
recorded as ``status="timeout"``.  The sweep itself always completes and
always writes an artifact -- partial data beats no data when a 200-cell
sweep hits one pathological instance.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import signal
import time
import traceback
import warnings
from typing import Any, Callable

import numpy as np

# Algorithm imports happen here, at module level, NOT inside the timed cell:
# a SIGALRM raised during a first-time import would leave a half-initialized
# module poisoning sys.modules for every later cell in the worker process.
from repro import color_cluster_graph
from repro.baselines import (
    local_gather_coloring,
    luby_coloring,
    palette_sparsification_coloring,
)
import repro.coloring.polylog  # noqa: F401  (lazily imported by the pipeline)
from repro.dynamic import run_stream
from repro.experiments import artifacts
from repro.experiments.spec import (
    Cell,
    ScenarioSpec,
    SERVICE_ALGORITHMS,
    STREAM_ALGORITHMS,
)
from repro.serve import run_service
from repro.observe.tracer import Tracer
from repro.parallel.backend import BACKEND_ENV_VAR, ExecutionBackend
from repro.parallel.pool import (
    WatchdogTimeout,
    alarm_available,
    arm_alarm,
    disarm_alarm,
    scatter,
)
from repro.params import paper, scaled
from repro.workloads import GENERATORS

ProgressFn = Callable[[str], None]

#: Backwards-compatible alias: the runner's timeout exception is now the
#: shared watchdog's (:mod:`repro.parallel.pool`).
CellTimeout = WatchdogTimeout


def error_summary(error: str | None) -> str:
    """Last non-empty traceback line, for one-line failure summaries."""
    lines = (error or "").strip().splitlines()
    return lines[-1] if lines else "?"


def _build_workload(cell: Cell):
    maker = GENERATORS[cell.workload]
    rng = np.random.default_rng(cell.instance_seed)
    return maker(rng, **dict(cell.workload_kwargs))


def coloring_digest(colors: Any) -> str:
    """Short stable fingerprint of a color assignment.

    SHA-256 over the contiguous int64 byte stream, truncated to 16 hex
    chars.  Used by the fuzzer's replay check and the pathology suite to
    pin *which* coloring a cell produced, not just its aggregate metrics;
    compare only gates tolerance-listed metrics, so adding this string to
    every record cannot perturb any existing gate.
    """
    arr = np.ascontiguousarray(np.asarray(colors, dtype=np.int64))
    return hashlib.sha256(arr.tobytes()).hexdigest()[:16]


def _params(cell: Cell):
    if cell.params == "paper":
        return paper()
    if cell.params == "scaled":
        return scaled()
    raise ValueError(f"unknown params preset {cell.params!r}")


#: Algorithms that accept a tracer (the paper pipeline, the stream engine,
#: and the service driver); baselines stay untraced -- they have no ledger
#: stages to span.
TRACEABLE_ALGORITHMS = (
    {"paper"} | set(STREAM_ALGORITHMS) | set(SERVICE_ALGORITHMS)
)


def _boundary_metrics(summary: dict[str, Any] | None) -> dict[str, Any]:
    """Flatten a backend exchange summary into artifact metric keys.

    Empty for serial executions (no cross-shard traffic exists); the keys
    are additive, so serial and sharded artifacts still align cell-for-cell
    under ``repro compare`` (which only gates the shared metrics).
    """
    if not summary:
        return {}
    return {
        "backend": "sharded",
        "backend_mode": summary.get("mode"),
        "backend_shards": summary.get("shards"),
        "boundary_bits": summary.get("total_message_bits", 0),
        "boundary_exchanges": summary.get("exchanges", 0),
    }


def _execute(
    cell: Cell,
    tracer: Tracer | None = None,
    backend: str | ExecutionBackend | None = None,
    shards: int | None = None,
) -> dict[str, Any]:
    """Run one cell's algorithm and extract its metric dict.

    ``tracer`` (optional, traceable algorithms only) records the stage
    spans; passing one is bitwise-invisible to every metric.  ``backend`` /
    ``shards`` select the execution backend for backend-aware algorithms
    (the paper pipeline and the stream engine); by the backend contract
    every gated metric is backend-invariant, and sharded runs additionally
    record their real boundary traffic (``boundary_bits`` et al.).
    """
    if backend is None:
        # honor $REPRO_BACKEND here (not in the pipeline) so library callers
        # of color_cluster_graph stay env-independent while sweeps can be
        # flipped wholesale without new plumbing
        backend = os.environ.get(BACKEND_ENV_VAR) or None
    workload = _build_workload(cell)
    graph = workload.graph
    params = _params(cell)
    metrics: dict[str, Any] = {
        "machines": graph.n_machines,
        "vertices": graph.n_vertices,
        "delta": graph.max_degree,
        "dilation": graph.dilation,
        "bandwidth_cap_bits": params.bandwidth_bits(graph.n_machines),
        "num_colors": graph.max_degree + 1,
    }
    if cell.algorithm in SERVICE_ALGORITHMS:
        _service, service_metrics = run_service(
            workload,
            params=params,
            seed=cell.seed,
            tracer=tracer,
            backend=backend,
            shards=shards,
        )
        metrics.update(service_metrics)
        if _service.engine is not None:
            engine = _service.engine
            metrics["coloring_digest"] = coloring_digest(
                engine.colors[engine.delta.alive_mask]
            )
    elif cell.algorithm in STREAM_ALGORITHMS:
        _engine, _result, stream_metrics = run_stream(
            workload,
            params=params,
            seed=cell.seed,
            mode="repair" if cell.algorithm == "dynamic" else "scratch",
            tracer=tracer,
            backend=backend,
            shards=shards,
        )
        metrics.update(stream_metrics)
        metrics["coloring_digest"] = coloring_digest(
            _engine.colors[_engine.delta.alive_mask]
        )
    elif cell.algorithm == "paper":
        netmodel = getattr(workload, "netmodel", None)
        result = color_cluster_graph(
            graph,
            params=params,
            seed=cell.seed,
            regime=cell.regime,
            tracer=tracer,
            backend=backend,
            shards=shards,
            netmodel=netmodel,
        )
        metrics.update(
            regime_effective=result.stats.regime,
            rounds_h=result.rounds_h,
            rounds_g=result.rounds_g,
            total_message_bits=result.ledger_summary["total_message_bits"],
            max_message_bits=result.ledger_summary["max_message_bits"],
            colors_used=len(set(result.colors.tolist())),
            proper=bool(result.proper),
            fallbacks=int(sum(result.stats.fallbacks.values())),
            retries=int(sum(result.stats.retries.values())),
            coloring_digest=coloring_digest(result.colors),
            **_boundary_metrics(result.backend_summary),
        )
        if "makespan_ms" in result.ledger_summary:
            # heterogeneous fabric attached: simulated-clock ride-alongs
            metrics["makespan_ms"] = result.ledger_summary["makespan_ms"]
            metrics["critical_link"] = netmodel.critical_element()[0]
    else:
        comparators = {
            "luby": luby_coloring,
            "palette_sparsification": palette_sparsification_coloring,
            "local_gather": local_gather_coloring,
        }
        try:
            fn = comparators[cell.algorithm]
        except KeyError:
            raise ValueError(f"unknown algorithm {cell.algorithm!r}") from None
        result = fn(graph, params=params, seed=cell.seed)
        metrics.update(
            regime_effective="baseline",
            rounds_h=int(result.rounds_h),
            rounds_g=int(result.rounds_g),
            total_message_bits=int(result.total_message_bits),
            max_message_bits=None,
            colors_used=len(set(np.asarray(result.colors).tolist())),
            proper=bool(result.proper),
            fallbacks=int(result.fallback_vertices),
            retries=0,
            coloring_digest=coloring_digest(result.colors),
        )
    return metrics


def run_cell(
    cell_dict: dict[str, Any],
    timeout_s: float | None = None,
    trace: bool = False,
    backend: str | None = None,
    shards: int | None = None,
) -> dict[str, Any]:
    """Execute one cell (module-level so worker processes can pickle it).

    Returns an artifact-ready record; never raises.  ``trace=True`` adds a
    ``"trace"`` section (the serialized span tree) to records of traceable
    algorithms; tracing is bitwise-invisible to the metrics.  ``backend`` /
    ``shards`` are spec strings (not instances -- cells must stay
    picklable) forwarded to :func:`_execute`.
    """
    try:
        return _run_cell_timed(cell_dict, timeout_s, trace, backend, shards)
    except CellTimeout:
        # a late interval re-fire escaped _run_cell_timed's own except
        # blocks before they could disarm; the timer is off by now (the
        # inner finally ran while the exception propagated)
        disarm_alarm()
        cell = Cell.from_dict(cell_dict)
        return {
            "kind": "cell",
            "key": cell.key(),
            "cell": cell.to_dict(),
            "status": "timeout",
            "metrics": {},
            "wall_time_s": None,
            "error": f"cell exceeded {timeout_s:g}s budget",
        }


def _run_cell_timed(
    cell_dict: dict[str, Any],
    timeout_s: float | None,
    trace: bool = False,
    backend: str | None = None,
    shards: int | None = None,
) -> dict[str, Any]:
    cell = Cell.from_dict(cell_dict)
    tracer = Tracer() if trace and cell.algorithm in TRACEABLE_ALGORITHMS else None
    record: dict[str, Any] = {
        "kind": "cell",
        "key": cell.key(),
        "cell": cell.to_dict(),
        "status": "ok",
        "metrics": {},
        "wall_time_s": None,
        "error": None,
    }
    want_timeout = timeout_s is not None and timeout_s > 0
    use_alarm = want_timeout and alarm_available()
    if want_timeout and not use_alarm:
        warnings.warn(
            "cell timeout requested but SIGALRM is unavailable here "
            "(non-main thread or platform without it); running the cell "
            "without a watchdog and flagging budget overruns as "
            "'timeout-unsupported'",
            RuntimeWarning,
            stacklevel=2,
        )
    previous = None
    start = time.perf_counter()
    try:
        if use_alarm:
            previous = arm_alarm(timeout_s)
        metrics = _execute(cell, tracer, backend, shards)
        if use_alarm:
            disarm_alarm()
        record["metrics"] = metrics
        if tracer is not None:
            record["trace"] = tracer.to_dict()
    except CellTimeout:
        disarm_alarm()
        record["status"] = "timeout"
        record["error"] = f"cell exceeded {timeout_s:g}s budget"
    except Exception:
        if use_alarm:
            disarm_alarm()
        record["status"] = "error"
        record["error"] = traceback.format_exc(limit=20)
    finally:
        if use_alarm:
            disarm_alarm()
            if previous is not None:  # handler install itself may have failed
                signal.signal(signal.SIGALRM, previous)
        record["wall_time_s"] = round(time.perf_counter() - start, 4)
    if (
        want_timeout
        and not use_alarm
        and record["status"] == "ok"
        and record["wall_time_s"] > timeout_s
    ):
        # no watchdog could interrupt the cell; flag the overrun post-hoc so
        # sweeps gated on timeouts do not silently absorb unbounded cells
        record["status"] = "timeout-unsupported"
        record["error"] = (
            f"cell exceeded {timeout_s:g}s budget ({record['wall_time_s']:.1f}s) "
            "but SIGALRM was unavailable to interrupt it"
        )
    return record


def _progress_line(record: dict[str, Any], done: int, total: int) -> str:
    cell = Cell.from_dict(record["cell"])
    status = record["status"]
    if status == "ok":
        m = record["metrics"]
        tail = (
            f"rounds_h={m['rounds_h']} bits={m['total_message_bits']} "
            f"proper={m['proper']}"
        )
    else:
        tail = status.upper()
    wall = record["wall_time_s"]
    timing = f"  ({wall:.2f}s)" if wall is not None else ""
    return f"[{done}/{total}] {cell.label()}  {tail}{timing}"


def run_suite(
    spec: ScenarioSpec,
    *,
    jobs: int = 1,
    timeout_s: float | None = None,
    progress: ProgressFn | None = None,
    trace: bool = False,
    backend: str | None = None,
    shards: int | None = None,
) -> list[dict[str, Any]]:
    """Run every cell of ``spec``; returns records in grid order.

    ``jobs <= 1`` runs serially in-process.  ``timeout_s=None`` uses the
    spec's ``cell_timeout_s``; pass ``0`` to disable timeouts entirely.
    ``trace=True`` attaches span trees to traceable cells (see
    :func:`run_cell`).  ``backend`` / ``shards`` select the per-cell
    execution backend (spec strings, see
    :func:`repro.parallel.backend.make_backend`); backends are *not* part
    of a cell's key, so serial and sharded sweeps of the same suite align
    cell-for-cell under ``repro compare``.
    """
    cells = spec.cells()
    if timeout_s is None:
        timeout_s = spec.cell_timeout_s
    total = len(cells)
    emit = progress or (lambda _line: None)
    results: list[dict[str, Any] | None] = [None] * total

    if jobs <= 1 or total <= 1:
        for i, cell in enumerate(cells):
            record = run_cell(cell.to_dict(), timeout_s, trace, backend, shards)
            results[i] = record
            emit(_progress_line(record, sum(r is not None for r in results), total))
        return [r for r in results if r is not None]

    payloads = [
        (cell.to_dict(), timeout_s, trace, backend, shards) for cell in cells
    ]
    for index, record, error in scatter(run_cell, payloads, jobs=jobs):
        if error is not None:  # worker died (OOM, hard crash)
            record = {
                "kind": "cell",
                "key": cells[index].key(),
                "cell": cells[index].to_dict(),
                "status": "error",
                "metrics": {},
                "wall_time_s": None,
                "error": error,
            }
        results[index] = record
        emit(_progress_line(record, sum(r is not None for r in results), total))
    return [r for r in results if r is not None]


def run_sweep(
    spec: ScenarioSpec,
    *,
    jobs: int = 1,
    timeout_s: float | None = None,
    out_path: str | pathlib.Path | None = None,
    progress: ProgressFn | None = None,
    trace: bool = False,
    backend: str | None = None,
    shards: int | None = None,
) -> tuple[pathlib.Path, list[dict[str, Any]]]:
    """Run a suite and persist the artifact; returns (path, records)."""
    records = run_suite(
        spec,
        jobs=jobs,
        timeout_s=timeout_s,
        progress=progress,
        trace=trace,
        backend=backend,
        shards=shards,
    )
    header = artifacts.make_header(
        spec.name,
        spec.spec_hash(),
        extra={
            "description": spec.description,
            "jobs": jobs,
            "n_cells": len(records),
            "backend": backend or "serial",
            "shards": shards,
        },
    )
    path = pathlib.Path(out_path) if out_path else artifacts.default_artifact_path(spec.name)
    artifacts.write_artifact(path, header, records)
    return path, records
