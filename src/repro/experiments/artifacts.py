"""Schema-versioned JSONL experiment artifacts.

An artifact file is one header line followed by one line per cell result:

.. code-block:: text

    {"kind": "header", "schema_version": 1, "suite": ..., "spec_hash": ...,
     "git_rev": ..., "created_utc": ...}
    {"kind": "cell", "key": ..., "cell": {...}, "status": "ok",
     "metrics": {...}, "wall_time_s": ...}

The header pins the schema version and the provenance (spec hash + git
revision) so :mod:`repro.experiments.compare` can refuse to gate on
incomparable files.  Legacy :class:`~repro.metrics.records.ExperimentRecord`
output is bridged through :func:`append_legacy_record` so the historical
``bench_e*`` scripts produce machine-readable records during the migration.
"""

from __future__ import annotations

import csv
import datetime
import json
import pathlib
import statistics
import subprocess
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

SCHEMA_VERSION = 1
SCHEMA_NAME = "repro.experiments"

#: Default directory for sweep artifacts (shared with the legacy benchmarks).
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: Metrics carried by every successful pipeline cell.  Baseline algorithms
#: fill the subset their comparator reports (see runner._CELL_METRICS note).
METRIC_FIELDS = (
    "machines",
    "vertices",
    "delta",
    "dilation",
    "regime_effective",
    "rounds_h",
    "rounds_g",
    "total_message_bits",
    "max_message_bits",
    "bandwidth_cap_bits",
    "colors_used",
    "num_colors",
    "proper",
    "fallbacks",
    "retries",
    "coloring_digest",
    # stream-cell extras (blank for one-shot cells); see
    # repro.dynamic.harness.run_stream
    "batches",
    "stream_updates",
    "repaired_vertices",
    "recolor_fraction_mean",
    "recolor_fraction_max",
    "escalations",
    "delta_rebuilds",
    "bootstrap_wall_time_s",
    "stream_wall_time_s",
    "vertices_final",
    "delta_final",
    # latency/throughput extras every stream and service cell carries; see
    # repro.dynamic.harness.latency_fields
    "violation_batches",
    "repair_ms_p50",
    "repair_ms_p95",
    "repair_ms_p99",
    "updates_per_sec",
    # service-cell extras (blank for plain stream cells); see
    # repro.serve.driver.ColoringService.collect
    "arrival_profile",
    "arrival_rate",
    "queue_ms_p50",
    "queue_ms_p95",
    "queue_ms_p99",
    "latency_ms_p50",
    "latency_ms_p95",
    "latency_ms_p99",
    "trace_duration_s",
    "slo_pass",
    "slo_failed",
)


def git_rev(repo_root: pathlib.Path | None = None) -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    root = repo_root or pathlib.Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() or "unknown"


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")


@dataclass
class Artifact:
    """A parsed artifact: the header plus its cell-result records."""

    header: dict[str, Any]
    records: list[dict[str, Any]] = field(default_factory=list)

    @property
    def suite(self) -> str:
        """Suite name recorded in the header (``"?"`` if absent)."""
        return self.header.get("suite", "?")

    @property
    def spec_hash(self) -> str:
        """Scenario spec hash recorded in the header (``"?"`` if absent)."""
        return self.header.get("spec_hash", "?")

    def by_key(self) -> dict[str, dict[str, Any]]:
        """Cell records indexed by their alignment key (last write wins)."""
        return {r["key"]: r for r in self.records}

    def ok_records(self) -> list[dict[str, Any]]:
        """Only the cell records that completed with ``status == "ok"``."""
        return [r for r in self.records if r.get("status") == "ok"]


def make_header(
    suite: str, spec_hash: str, extra: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The provenance line every artifact starts with."""
    header = {
        "kind": "header",
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "spec_hash": spec_hash,
        "git_rev": git_rev(),
        "created_utc": _utcnow(),
    }
    if extra:
        header.update(extra)
    return header


def write_artifact(
    path: str | pathlib.Path,
    header: dict[str, Any],
    records: Iterable[dict[str, Any]],
) -> pathlib.Path:
    """Write a complete artifact file (header first, then cell lines)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as sink:
        sink.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_artifact(path: str | pathlib.Path) -> Artifact:
    """Parse an artifact file, validating the schema version."""
    path = pathlib.Path(path)
    header: dict[str, Any] | None = None
    records: list[dict[str, Any]] = []
    with open(path) as source:
        for lineno, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            kind = obj.get("kind")
            if kind == "header":
                if obj.get("schema") != SCHEMA_NAME:
                    raise ValueError(
                        f"{path}: schema {obj.get('schema')!r} is not {SCHEMA_NAME!r}"
                    )
                if obj.get("schema_version") != SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: schema_version {obj.get('schema_version')} "
                        f"unsupported (reader understands {SCHEMA_VERSION})"
                    )
                header = obj
            elif kind == "cell":
                records.append(obj)
            # unknown kinds (e.g. legacy_record) are skipped, not fatal:
            # forward compatibility within a schema version.
    if header is None:
        raise ValueError(f"{path}: no header line (not a sweep artifact?)")
    return Artifact(header=header, records=records)


def default_artifact_path(suite: str) -> pathlib.Path:
    """``benchmarks/results/sweep-<suite>-<timestamp>.jsonl``."""
    stamp = datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return RESULTS_DIR / f"sweep-{suite}-{stamp}.jsonl"


# ---- export ----------------------------------------------------------------


def to_csv(artifact: Artifact, path: str | pathlib.Path) -> pathlib.Path:
    """Flatten cell records to CSV (one row per cell, ok or not)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    cell_fields = (
        "workload",
        "params",
        "regime",
        "algorithm",
        "seed",
        "instance_seed",
    )
    fieldnames = (
        ["suite", *cell_fields, "workload_kwargs", "status", "wall_time_s"]
        + list(METRIC_FIELDS)
        + ["error"]
    )
    with open(path, "w", newline="") as sink:
        writer = csv.DictWriter(sink, fieldnames=fieldnames, extrasaction="ignore")
        writer.writeheader()
        for record in artifact.records:
            cell = record.get("cell", {})
            row: dict[str, Any] = {
                "suite": cell.get("suite", artifact.suite),
                "workload_kwargs": json.dumps(
                    cell.get("workload_kwargs", {}), sort_keys=True
                ),
                "status": record.get("status"),
                "wall_time_s": record.get("wall_time_s"),
                "error": record.get("error", ""),
            }
            for f in cell_fields:
                row[f] = cell.get(f)
            row.update(record.get("metrics", {}))
            writer.writerow(row)
    return path


# ---- aggregation -----------------------------------------------------------

#: Metrics summarized by :func:`summarize`.  The stream/service extras
#: appear blank for one-shot cells (their records never carry those
#: metrics).
SUMMARY_METRICS = (
    "rounds_h",
    "rounds_g",
    "total_message_bits",
    "wall_time_s",
    "stream_wall_time_s",
    "recolor_fraction_mean",
    "repair_ms_p99",
    "updates_per_sec",
)

#: ``workload_kwargs`` is part of the default grouping: size-sweep suites
#: (e.g. e1's n_vertices grid) differ only in kwargs, and averaging across
#: different problem sizes would erase the very trend the suite measures.
DEFAULT_GROUP_BY = ("workload", "workload_kwargs", "params", "regime", "algorithm")


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return float(ordered[rank])


def summarize(
    artifact: Artifact, group_by: Sequence[str] = DEFAULT_GROUP_BY
) -> list[dict[str, Any]]:
    """Aggregate ok-cells into mean/p50/p95 rows per cell group.

    Returns table-ready dict rows (see :func:`repro.metrics.format_table`);
    failed cells are counted per group but excluded from the statistics.
    """
    groups: dict[tuple, dict[str, Any]] = {}
    for record in artifact.records:
        cell = record.get("cell", {})
        key = tuple(_group_value(cell, g) for g in group_by)
        bucket = groups.setdefault(key, {"ok": [], "failed": 0})
        if record.get("status") == "ok":
            bucket["ok"].append(record)
        else:
            bucket["failed"] += 1
    # every row carries the full column set (blank when a group has no ok
    # cells): format_table takes its headers from the first row, so a
    # heterogeneous first row would silently drop columns for all groups
    stat_columns = ["proper_rate"] + [
        f"{metric}_{stat}" for metric in SUMMARY_METRICS
        for stat in ("mean", "p50", "p95")
    ]
    rows: list[dict[str, Any]] = []
    for key in sorted(groups):
        bucket = groups[key]
        row: dict[str, Any] = dict(zip(group_by, key))
        ok = bucket["ok"]
        row["n"] = len(ok)
        row["failed"] = bucket["failed"]
        row.update({column: "" for column in stat_columns})
        if ok:
            row["proper_rate"] = sum(
                1 for r in ok if r["metrics"].get("proper")
            ) / len(ok)
        for metric in SUMMARY_METRICS:
            values = [
                float(r["metrics"][metric] if metric != "wall_time_s" else r[metric])
                for r in ok
                if (metric == "wall_time_s" and r.get(metric) is not None)
                or (metric != "wall_time_s" and r["metrics"].get(metric) is not None)
            ]
            if not values:
                continue
            row[f"{metric}_mean"] = statistics.fmean(values)
            row[f"{metric}_p50"] = _percentile(values, 50)
            row[f"{metric}_p95"] = _percentile(values, 95)
        rows.append(row)
    return rows


def _group_value(cell: dict[str, Any], field_name: str) -> str:
    if field_name == "workload_kwargs":
        kwargs = cell.get("workload_kwargs", {})
        return ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    return str(cell.get(field_name, "?"))


# ---- legacy bridge ---------------------------------------------------------

LEGACY_JSONL = "records.jsonl"


def append_legacy_record(
    record: "Any", results_dir: str | pathlib.Path | None = None
) -> pathlib.Path:
    """Append one ``ExperimentRecord`` as a JSON line next to ``records.txt``.

    This is the transition path for the historical ``bench_e*`` scripts:
    their free-form tables become machine-readable without changing their
    interface.  The line carries the same schema version stamp as sweep
    artifacts so downstream tooling can parse both.
    """
    directory = pathlib.Path(results_dir) if results_dir else RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / LEGACY_JSONL
    line = {
        "kind": "legacy_record",
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "git_rev": git_rev(),
        "created_utc": _utcnow(),
        "experiment": record.experiment,
        "claim": record.claim,
        "params_preset": record.params_preset,
        "rows": record.rows,
        "notes": record.notes,
    }
    with open(path, "a") as sink:
        sink.write(json.dumps(line, sort_keys=True, default=str) + "\n")
    return path
