"""Experiment orchestration: declarative sweeps, parallel runners,
schema-versioned JSONL artifacts, and regression gating.

The paper's claims are sweep-shaped (rounds and bandwidth vs. Delta,
dilation, regime, seed); this package turns each claim into a named
:class:`~repro.experiments.spec.ScenarioSpec`, executes the grid in
parallel, and persists machine-readable artifacts that
``repro compare`` gates future commits against.
"""

from repro.experiments.artifacts import (
    Artifact,
    append_legacy_record,
    read_artifact,
    summarize,
    to_csv,
    write_artifact,
)
from repro.experiments.compare import (
    ComparisonReport,
    compare_artifacts,
    parse_tolerance_overrides,
    render_report,
)
from repro.experiments.runner import run_cell, run_suite, run_sweep
from repro.experiments.spec import ALGORITHMS, SUITES, Cell, ScenarioSpec, WorkloadSpec

__all__ = [
    "ALGORITHMS",
    "Artifact",
    "Cell",
    "ComparisonReport",
    "SUITES",
    "ScenarioSpec",
    "WorkloadSpec",
    "append_legacy_record",
    "compare_artifacts",
    "parse_tolerance_overrides",
    "read_artifact",
    "render_report",
    "run_cell",
    "run_suite",
    "run_sweep",
    "summarize",
    "to_csv",
    "write_artifact",
]
