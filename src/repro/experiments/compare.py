"""Regression gating between two sweep artifacts (perun-style).

Cells are aligned by their stable key (workload + kwargs + preset + regime +
algorithm + seeds).  For each gated metric the candidate may exceed the
baseline by at most a relative tolerance; anything worse is a regression
and the comparison exits nonzero.  ``proper`` is gated absolutely: a cell
that was proper at baseline must stay proper.

Cells are deterministic given their seeds, so a same-commit comparison
reports exactly zero deltas; across commits the tolerances absorb intended
constant-factor drift while catching complexity-class slips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.experiments.artifacts import Artifact

#: Relative headroom allowed per metric (candidate <= baseline * (1 + tol)).
#: Wall time is reported but never gated -- it measures the machine, not the
#: algorithm.
DEFAULT_TOLERANCES: dict[str, float] = {
    "rounds_h": 0.05,
    "rounds_g": 0.05,
    "total_message_bits": 0.05,
    "colors_used": 0.0,
    # deterministic service/stream correctness: a batch that ends improper
    # is a hard regression regardless of machine speed
    "violation_batches": 0.0,
    # simulated-clock makespan (hetnet cells only; the metric is absent --
    # and therefore skipped -- on homogeneous cells).  Deterministic: it is
    # a pure function of the charge sequence and the sampled fabric.
    "makespan_ms": 0.05,
}


@dataclass
class Delta:
    """One (cell, metric) comparison."""

    key: str
    label: str
    metric: str
    baseline: float
    candidate: float
    tolerance: float

    @property
    def relative(self) -> float:
        """Fractional change of candidate over baseline (inf from zero)."""
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return self.candidate / self.baseline - 1.0

    @property
    def is_regression(self) -> bool:
        """Whether the relative change exceeds this metric's tolerance."""
        if self.baseline == 0:
            return self.candidate > 0 and self.tolerance < float("inf")
        return self.relative > self.tolerance


@dataclass
class ComparisonReport:
    """Everything ``repro compare`` prints and gates on."""

    baseline_rev: str
    candidate_rev: str
    tolerances: dict[str, float]
    deltas: list[Delta] = field(default_factory=list)
    improperly_colored: list[str] = field(default_factory=list)
    newly_failed: list[str] = field(default_factory=list)
    missing_cells: list[str] = field(default_factory=list)
    extra_cells: list[str] = field(default_factory=list)
    compared_cells: int = 0
    #: (label, baseline_s, candidate_s) per aligned cell -- reported, never
    #: gated (wall time measures the machine, not the algorithm)
    wall_times: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        """Deltas that exceed their metric's tolerance."""
        return [d for d in self.deltas if d.is_regression]

    @property
    def improvements(self) -> list[Delta]:
        """Deltas where the candidate improved on the baseline."""
        return [d for d in self.deltas if d.relative < 0]

    @property
    def exit_code(self) -> int:
        """1 if any gate (regression/properness/new failure) tripped, else 0."""
        gate_failures = (
            self.regressions or self.improperly_colored or self.newly_failed
        )
        return 1 if gate_failures else 0

    def summary_rows(self) -> list[dict[str, Any]]:
        """Per-metric aggregate rows for table rendering."""
        rows = []
        for metric, tol in self.tolerances.items():
            ds = [d for d in self.deltas if d.metric == metric]
            if not ds:
                continue
            worst = max(ds, key=lambda d: d.relative)
            rows.append(
                {
                    "metric": metric,
                    "cells": len(ds),
                    "regressions": sum(1 for d in ds if d.is_regression),
                    "worst_delta": f"{worst.relative:+.1%}",
                    "tolerance": f"{tol:.0%}",
                }
            )
        return rows


#: Metrics a tolerance may gate on: the numeric per-cell metrics.  Anything
#: else (properness, regimes, wall time) is either gated absolutely or
#: deliberately ungated, and a typo'd name must not silently disable a gate.
GATEABLE_METRICS = frozenset(
    {
        "rounds_h",
        "rounds_g",
        "total_message_bits",
        "max_message_bits",
        "colors_used",
        "num_colors",
        "fallbacks",
        "retries",
        # stream cells (repro.dynamic): repair efficiency is a gateable
        # quantity -- a regression here means the engine started recoloring
        # more of the graph per batch
        "repaired_vertices",
        "recolor_fraction_mean",
        "recolor_fraction_max",
        "escalations",
        # service cells (repro.serve): properness-over-the-trace is
        # deterministic and therefore gateable; latency percentiles and
        # updates/sec are wall-derived and deliberately NOT listed here --
        # they are SLO material, not compare gates
        "violation_batches",
        "slo_failed",
        # hetnet cells (repro.network.hetnet): simulated time, deterministic
        # given the seeds like every other simulated quantity
        "makespan_ms",
    }
)


def parse_tolerance_overrides(pairs: list[str]) -> dict[str, float]:
    """Parse ``metric=fraction`` CLI overrides onto the defaults."""
    tolerances = dict(DEFAULT_TOLERANCES)
    for pair in pairs:
        metric, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"expected metric=fraction, got {pair!r}")
        metric = metric.strip()
        if metric not in GATEABLE_METRICS:
            raise ValueError(
                f"unknown gateable metric {metric!r}; choose from "
                f"{', '.join(sorted(GATEABLE_METRICS))}"
            )
        tolerances[metric] = float(value)
    return tolerances


def compare_artifacts(
    baseline: Artifact,
    candidate: Artifact,
    tolerances: dict[str, float] | None = None,
) -> ComparisonReport:
    """Align the two artifacts cell-by-cell and gate each metric."""
    tolerances = dict(tolerances) if tolerances is not None else dict(DEFAULT_TOLERANCES)
    report = ComparisonReport(
        baseline_rev=baseline.header.get("git_rev", "?"),
        candidate_rev=candidate.header.get("git_rev", "?"),
        tolerances=tolerances,
    )
    base_by_key = baseline.by_key()
    cand_by_key = candidate.by_key()
    report.extra_cells = sorted(set(cand_by_key) - set(base_by_key))

    for key in sorted(base_by_key):
        base = base_by_key[key]
        label = _label(base)
        cand = cand_by_key.get(key)
        if cand is None:
            report.missing_cells.append(label)
            continue
        base_ok = base.get("status") == "ok"
        cand_ok = cand.get("status") == "ok"
        if base_ok and not cand_ok:
            report.newly_failed.append(f"{label}: {cand.get('status')}")
            continue
        if not base_ok:
            # the baseline has nothing trustworthy to gate against
            continue
        report.compared_cells += 1
        bw, cw = base.get("wall_time_s"), cand.get("wall_time_s")
        if bw is not None and cw is not None:
            report.wall_times.append((label, float(bw), float(cw)))
        bm, cm = base.get("metrics", {}), cand.get("metrics", {})
        if bm.get("proper") and not cm.get("proper"):
            report.improperly_colored.append(label)
        for metric, tol in tolerances.items():
            bv, cv = bm.get(metric), cm.get(metric)
            if bv is None or cv is None:
                continue
            report.deltas.append(
                Delta(
                    key=key,
                    label=label,
                    metric=metric,
                    baseline=float(bv),
                    candidate=float(cv),
                    tolerance=tol,
                )
            )
    return report


def _label(record: dict[str, Any]) -> str:
    from repro.experiments.spec import Cell

    return Cell.from_dict(record["cell"]).label()


def render_report(report: ComparisonReport) -> str:
    """Human-readable comparison text (the ``repro compare`` output)."""
    from repro.metrics import format_table

    lines = [
        f"baseline rev {report.baseline_rev} vs candidate rev "
        f"{report.candidate_rev}: {report.compared_cells} cells aligned"
    ]
    rows = report.summary_rows()
    if rows:
        lines.append(format_table(rows))
    for delta in report.regressions:
        lines.append(
            f"REGRESSION {delta.label}: {delta.metric} "
            f"{delta.baseline:g} -> {delta.candidate:g} ({delta.relative:+.1%}, "
            f"tolerance {delta.tolerance:.0%})"
        )
    for label in report.improperly_colored:
        lines.append(f"REGRESSION {label}: coloring no longer proper")
    for entry in report.newly_failed:
        lines.append(f"REGRESSION {entry} (was ok at baseline)")
    for label in report.missing_cells:
        lines.append(f"missing in candidate: {label}")
    if report.extra_cells:
        lines.append(f"{len(report.extra_cells)} cells only in candidate (ignored)")
    if report.wall_times:
        total_base = sum(b for _, b, _ in report.wall_times)
        total_cand = sum(c for _, _, c in report.wall_times)
        overall = total_base / total_cand if total_cand > 0 else float("inf")
        lines.append(
            f"wall-time (reported, not gated): {total_base:.1f}s -> "
            f"{total_cand:.1f}s overall ({overall:.2f}x)"
        )
        for label, b, c in sorted(
            report.wall_times, key=lambda w: w[1] / max(w[2], 1e-9), reverse=True
        )[:5]:
            speed = b / c if c > 0 else float("inf")
            lines.append(f"  {speed:5.2f}x  {b:8.2f}s -> {c:8.2f}s  {label}")
    improvements = report.improvements
    if improvements:
        best = min(improvements, key=lambda d: d.relative)
        lines.append(
            f"{len(improvements)} metric improvements; best: {best.label} "
            f"{best.metric} {best.relative:+.1%}"
        )
    verdict = "FAIL" if report.exit_code else "OK"
    lines.append(
        f"{verdict}: {len(report.regressions)} metric regressions, "
        f"{len(report.improperly_colored)} properness losses, "
        f"{len(report.newly_failed)} newly failing cells"
    )
    return "\n".join(lines)
