"""Declarative scenario specifications for experiment sweeps.

A :class:`ScenarioSpec` names a grid of cells -- workload x params-preset x
regime x algorithm x seed -- and expands it deterministically.  The paper's
claims are sweep-shaped (rounds and bandwidth vs. Delta, dilation, regime,
and seed), so every experiment in ``benchmarks/`` corresponds to a named
built-in suite here, plus cross-regime and dilation-stress suites that no
single ``bench_e*`` script covered.

Cells carry everything a worker process needs to reproduce one run, and a
stable string key so artifact files from different commits can be aligned
cell-by-cell (see :mod:`repro.experiments.compare`).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Algorithms a cell may dispatch to.  ``paper`` is the full pipeline of
#: Algorithm 3; ``luby``/``palette_sparsification``/``local_gather`` are the
#: Experiment E13 comparators; ``dynamic`` and ``recolor_scratch`` consume a
#: stream workload's update batches through the streaming engine
#: (incremental repair vs. full recolor every batch); ``service`` replays
#: the stream open-loop through the always-on service driver
#: (:mod:`repro.serve`), adding queueing/latency percentiles and an SLO
#: verdict to the deterministic stream metrics.
ALGORITHMS = (
    "paper",
    "luby",
    "palette_sparsification",
    "local_gather",
    "dynamic",
    "recolor_scratch",
    "service",
)

#: The one-shot comparators of Experiment E13 (static workloads only).
ONE_SHOT_ALGORITHMS = ("paper", "luby", "palette_sparsification", "local_gather")

#: The streaming-engine pair every stream suite sweeps.
STREAM_ALGORITHMS = ("dynamic", "recolor_scratch")

#: Algorithms dispatched through the open-loop service driver.
SERVICE_ALGORITHMS = ("service",)


def _canonical(obj: Any) -> str:
    """Deterministic JSON rendering used for hashes and cell keys."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload generator invocation: registry name plus kwargs.

    ``instance_seed`` pins this workload to one specific instance draw,
    overriding the spec-level ``instance_seeds`` axis -- needed when a
    historical experiment measured a particular instance (e.g. E15's
    cabal graph was always drawn with seed 82).
    """

    name: str
    kwargs: tuple[tuple[str, Any], ...] = ()
    instance_seed: int | None = None

    @staticmethod
    def of(name: str, *, instance_seed: int | None = None, **kwargs: Any) -> "WorkloadSpec":
        """Build a spec from keyword arguments (stored sorted, hashable)."""
        return WorkloadSpec(name, tuple(sorted(kwargs.items())), instance_seed)

    def kwargs_dict(self) -> dict[str, Any]:
        """The generator kwargs as a plain dict."""
        return dict(self.kwargs)


@dataclass(frozen=True)
class Cell:
    """One executable point of a sweep grid."""

    suite: str
    workload: str
    workload_kwargs: tuple[tuple[str, Any], ...]
    params: str  # "scaled" | "paper"
    regime: str  # "auto" | "high_degree" | "polylog" | "low_degree"
    algorithm: str  # one of ALGORITHMS
    seed: int
    instance_seed: int

    def key(self) -> str:
        """Stable identity used to align cells across artifact files.

        Deliberately excludes the suite name: the same cell reached through
        two different suites is the same measurement.
        """
        return _canonical(
            {
                "workload": self.workload,
                "kwargs": dict(self.workload_kwargs),
                "params": self.params,
                "regime": self.regime,
                "algorithm": self.algorithm,
                "seed": self.seed,
                "instance_seed": self.instance_seed,
            }
        )

    def label(self) -> str:
        """Short human-readable cell name for progress lines."""
        kw = ",".join(f"{k}={v}" for k, v in self.workload_kwargs)
        base = f"{self.workload}({kw})" if kw else self.workload
        algo = "" if self.algorithm == "paper" else f" algo={self.algorithm}"
        return (
            f"{base} params={self.params} regime={self.regime}{algo} "
            f"seed={self.seed}/{self.instance_seed}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the artifact's ``cell`` field; picklable)."""
        return {
            "suite": self.suite,
            "workload": self.workload,
            "workload_kwargs": dict(self.workload_kwargs),
            "params": self.params,
            "regime": self.regime,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "instance_seed": self.instance_seed,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Cell":
        """Inverse of :meth:`to_dict` (tolerates missing optional fields)."""
        return Cell(
            suite=data["suite"],
            workload=data["workload"],
            workload_kwargs=tuple(sorted(data.get("workload_kwargs", {}).items())),
            params=data["params"],
            regime=data["regime"],
            algorithm=data.get("algorithm", "paper"),
            seed=int(data["seed"]),
            instance_seed=int(data["instance_seed"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named grid of cells: the cross product of every axis below."""

    name: str
    description: str = ""
    workloads: tuple[WorkloadSpec, ...] = ()
    presets: tuple[str, ...] = ("scaled",)
    regimes: tuple[str, ...] = ("auto",)
    algorithms: tuple[str, ...] = ("paper",)
    seeds: tuple[int, ...] = (0,)
    instance_seeds: tuple[int, ...] = (0,)
    #: Suggested per-cell wall-clock budget (the runner's default timeout).
    cell_timeout_s: float = 120.0
    #: Explicit cell list escape hatch for suites that are not grids --
    #: the ``pathology`` suite's cells come from individually promoted
    #: fuzzer finds, each with its own seeds and kwargs, so no cross
    #: product describes them.  When non-empty, the grid axes above are
    #: ignored and :meth:`cells` returns exactly these.
    fixed_cells: tuple[Cell, ...] = ()

    def cells(self) -> list[Cell]:
        """Expand the grid, in deterministic order."""
        if self.fixed_cells:
            return list(self.fixed_cells)
        return list(self._iter_cells())

    def _iter_cells(self) -> Iterator[Cell]:
        for w in self.workloads:
            instance_seeds = (
                (w.instance_seed,) if w.instance_seed is not None
                else self.instance_seeds
            )
            for preset in self.presets:
                for regime in self.regimes:
                    for algorithm in self.algorithms:
                        for instance_seed in instance_seeds:
                            for seed in self.seeds:
                                yield Cell(
                                    suite=self.name,
                                    workload=w.name,
                                    workload_kwargs=w.kwargs,
                                    params=preset,
                                    regime=regime,
                                    algorithm=algorithm,
                                    seed=seed,
                                    instance_seed=instance_seed,
                                )

    def spec_hash(self) -> str:
        """Short content hash of the grid: two artifacts are comparable
        cell-for-cell when their spec hashes match."""
        payload = _canonical([c.key() for c in self.cells()])
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def to_dict(self) -> dict[str, Any]:
        """Summary form for headers/logs (name, size, spec hash)."""
        return {
            "name": self.name,
            "description": self.description,
            "n_cells": len(self.cells()),
            "spec_hash": self.spec_hash(),
        }


def _sizes(name: str, sizes: tuple[int, ...], **common: Any) -> tuple[WorkloadSpec, ...]:
    return tuple(WorkloadSpec.of(name, n_vertices=s, **common) for s in sizes)


# ---------------------------------------------------------------------------
# Built-in suites.
#
# One suite per benchmarks/bench_e*.py experiment (same workload families and
# grids, so the orchestrated sweep measures the scenario each experiment
# stresses), plus cross-cutting suites the scripts never had: ``smoke``
# (CI-fast), ``cross_regime`` and ``dilation_stress``, and ``full``.
# ---------------------------------------------------------------------------

SUITES: dict[str, ScenarioSpec] = {}


def _register(spec: ScenarioSpec) -> ScenarioSpec:
    if spec.name in SUITES:
        raise ValueError(f"duplicate suite {spec.name!r}")
    SUITES[spec.name] = spec
    return spec


_register(
    ScenarioSpec(
        name="smoke",
        description="CI-fast end-to-end sweep: one small instance per family",
        workloads=(
            WorkloadSpec.of("figure1"),
            WorkloadSpec.of("congest", n=80),
            WorkloadSpec.of(
                "low_degree", n_vertices=150, target_degree=6, cluster_size=2
            ),
            WorkloadSpec.of("cabal", n_cabals=2, clique_size=24),
        ),
        seeds=(0, 1),
        cell_timeout_s=60.0,
    )
)

_register(
    ScenarioSpec(
        name="e1_rounds_high_degree",
        description="Theorem 1.2: H-rounds stay log*-flat while n and Delta grow",
        workloads=_sizes(
            "high_degree", (150, 300, 600, 1200), degree_fraction=0.5, cluster_size=2
        ),
        seeds=(9,),
        instance_seeds=(5,),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="e2_rounds_low_degree",
        description="Theorem 1.1: shattering path, rounds ~ polyloglog n",
        workloads=_sizes(
            "low_degree",
            (250, 500, 1000, 2000, 4000),
            target_degree=8,
            cluster_size=2,
            topology="star",
        ),
        seeds=(4,),
        instance_seeds=(6,),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="e3_fingerprint_stress",
        description="Lemma 5.2/5.7 machinery under the high-degree pipeline",
        workloads=(
            WorkloadSpec.of("congest", n=300),
            WorkloadSpec.of("planted_acd"),
        ),
        regimes=("high_degree",),
        seeds=(0, 1, 2),
        instance_seeds=(17,),
    )
)

_register(
    ScenarioSpec(
        name="e4_encoding_scaling",
        description="Lemma 5.6 encoding cost as n grows (congest identity clusters)",
        workloads=tuple(WorkloadSpec.of("congest", n=n) for n in (150, 300, 600)),
        regimes=("high_degree",),
        seeds=(0, 1),
        instance_seeds=(23,),
    )
)

_register(
    ScenarioSpec(
        name="e5_unique_maximum",
        description="Synchronized color trial stress: dense cabals",
        workloads=(WorkloadSpec.of("cabal", n_cabals=3, clique_size=60),),
        seeds=(0, 1, 2),
        instance_seeds=(29,),
    )
)

_register(
    ScenarioSpec(
        name="e6_acd_quality",
        description="Algorithm 4 on planted ACDs across instance draws",
        workloads=(WorkloadSpec.of("planted_acd"),),
        seeds=(0,),
        instance_seeds=(31, 32, 33),
    )
)

_register(
    ScenarioSpec(
        name="e7_cabal_matching",
        description="Prop 4.15 colorful matching: cabals with growing anti-degree",
        workloads=tuple(
            WorkloadSpec.of(
                "cabal", n_cabals=2, clique_size=160, anti_degree=a, cluster_size=1
            )
            for a in (1, 2, 4)
        ),
        seeds=(41,),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="e8_put_aside",
        description="Section 4 put-aside machinery on cabal-heavy instances",
        workloads=tuple(
            WorkloadSpec.of("cabal", n_cabals=2, clique_size=s) for s in (60, 120)
        ),
        seeds=(0, 1),
        instance_seeds=(31,),
    )
)

_register(
    ScenarioSpec(
        name="e9_slack_generation",
        description="Algorithm 18 slack: planted ACDs across clique sizes",
        workloads=tuple(
            WorkloadSpec.of("planted_acd", clique_size=s) for s in (30, 50, 80)
        ),
        seeds=(0,),
        instance_seeds=(41,),
    )
)

_register(
    ScenarioSpec(
        name="e10_sct",
        description="Support-tree communication: bridge pathology and Voronoi clusters",
        workloads=(
            WorkloadSpec.of("bridge"),
            WorkloadSpec.of("voronoi", n=400, n_clusters=100),
        ),
        seeds=(0, 1),
    )
)

_register(
    ScenarioSpec(
        name="e11_bandwidth_compliance",
        description="Model compliance across every workload family",
        workloads=(
            WorkloadSpec.of("planted_acd"),
            WorkloadSpec.of("cabal"),
            WorkloadSpec.of("congest"),
            WorkloadSpec.of("contraction", n=300),
            WorkloadSpec.of("bridge"),
            WorkloadSpec.of("low_degree", n_vertices=300),
        ),
        seeds=(6,),
        instance_seeds=(53,),
    )
)

_register(
    ScenarioSpec(
        name="e12_dilation",
        description="Thm 1.1/1.2 d-dependency: same conflict graph, longer support paths",
        workloads=tuple(
            WorkloadSpec.of(
                "high_degree",
                n_vertices=150,
                degree_fraction=0.4,
                cluster_size=cs,
                topology=topo,
            )
            for cs, topo in ((2, "star"), (4, "path"), (8, "path"), (16, "path"))
        ),
        seeds=(12,),
        instance_seeds=(3,),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="e13_baselines",
        description="Positioning vs. [FGH+24]/[Joh99]: all comparators on a Delta sweep",
        workloads=_sizes(
            "high_degree", (200, 500, 1000, 1600), degree_fraction=0.55, cluster_size=1
        ),
        algorithms=ONE_SHOT_ALGORITHMS,
        seeds=(3,),
        instance_seeds=(61,),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="e14_distance2",
        description="Distance-2 flavored stress: contraction clusters",
        workloads=tuple(
            WorkloadSpec.of("contraction", n=n, fraction=0.5) for n in (300, 600)
        ),
        seeds=(0, 1),
        instance_seeds=(71,),
    )
)

_register(
    ScenarioSpec(
        name="e15_cross_regime",
        description="All three pipelines forced on the same instances",
        workloads=(
            # the historical bench drew these two specific instances
            WorkloadSpec.of("planted_acd", instance_seed=81),
            WorkloadSpec.of("cabal", instance_seed=82),
        ),
        regimes=("low_degree", "polylog", "high_degree"),
        seeds=(7,),
    )
)

_register(
    ScenarioSpec(
        name="cross_regime",
        description="Regime dispatch audit: every family under every forced regime",
        workloads=(
            WorkloadSpec.of("planted_acd"),
            WorkloadSpec.of("cabal"),
            WorkloadSpec.of("congest", n=200),
            WorkloadSpec.of("low_degree", n_vertices=300),
            WorkloadSpec.of("bridge"),
        ),
        regimes=("auto", "low_degree", "polylog", "high_degree"),
        seeds=(0, 1),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="dilation_stress",
        description="Dilation sweep beyond E12: path/bridge clusters, both density regimes",
        workloads=tuple(
            WorkloadSpec.of(
                "high_degree",
                n_vertices=120,
                degree_fraction=0.4,
                cluster_size=cs,
                topology="path",
            )
            for cs in (2, 6, 12, 24)
        )
        + tuple(
            WorkloadSpec.of(
                "low_degree",
                n_vertices=240,
                target_degree=8,
                cluster_size=cs,
                topology="path",
            )
            for cs in (3, 9, 18)
        ),
        seeds=(0, 1),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="scale",
        description=(
            "Vectorized-core scaling: n up to 50k vertices across high-degree, "
            "low-degree, and Voronoi regimes (wall-time is the headline metric)"
        ),
        workloads=(
            WorkloadSpec.of(
                "low_degree",
                n_vertices=50_000,
                target_degree=8,
                cluster_size=1,
                topology="star",
            ),
            WorkloadSpec.of(
                "low_degree",
                n_vertices=20_000,
                target_degree=12,
                cluster_size=2,
                topology="star",
            ),
            WorkloadSpec.of("voronoi", n=50_000, avg_degree=10.0, n_clusters=12_500),
            WorkloadSpec.of("congest", n=20_000, avg_degree=24.0),
            WorkloadSpec.of(
                "high_degree", n_vertices=8_000, avg_degree=400.0, cluster_size=1
            ),
        ),
        seeds=(0,),
        instance_seeds=(0,),
        cell_timeout_s=1800.0,
    )
)

_register(
    ScenarioSpec(
        name="scale_smoke",
        description="CI-fast miniature of the scale suite (same families, small n)",
        workloads=(
            WorkloadSpec.of(
                "low_degree",
                n_vertices=2_000,
                target_degree=8,
                cluster_size=1,
                topology="star",
            ),
            WorkloadSpec.of("voronoi", n=2_000, avg_degree=10.0, n_clusters=500),
            WorkloadSpec.of(
                "high_degree", n_vertices=600, avg_degree=150.0, cluster_size=1
            ),
        ),
        seeds=(0,),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="stream",
        description=(
            "Streaming update engine vs. recolor-from-scratch: 20k-vertex "
            "sliding-window turnover, hotspot skew, and cluster merge/split "
            "traces (headline metrics: recolor fraction and wall time)"
        ),
        workloads=(
            WorkloadSpec.of(
                "sliding_window",
                n_vertices=20_000,
                avg_degree=8.0,
                cluster_size=1,
                batches=10,
                churn_fraction=0.02,
            ),
            WorkloadSpec.of(
                "hotspot_churn",
                n_vertices=5_000,
                avg_degree=10.0,
                cluster_size=1,
                batches=10,
            ),
            WorkloadSpec.of(
                "cluster_churn",
                n_vertices=2_000,
                avg_degree=8.0,
                cluster_size=4,
                batches=8,
            ),
        ),
        algorithms=STREAM_ALGORITHMS,
        seeds=(0,),
        instance_seeds=(0,),
        cell_timeout_s=1800.0,
    )
)

_register(
    ScenarioSpec(
        name="stream_smoke",
        description="CI-fast miniature of the stream suite (same churn families)",
        workloads=(
            WorkloadSpec.of(
                "sliding_window", n_vertices=500, avg_degree=8.0, batches=6
            ),
            WorkloadSpec.of(
                "hotspot_churn", n_vertices=300, avg_degree=10.0, batches=5
            ),
            WorkloadSpec.of(
                "cluster_churn",
                n_vertices=150,
                avg_degree=8.0,
                cluster_size=4,
                batches=4,
            ),
        ),
        algorithms=STREAM_ALGORITHMS,
        seeds=(0,),
        cell_timeout_s=300.0,
    )
)

_register(
    ScenarioSpec(
        name="service",
        description=(
            "Always-on coloring service under open-loop traffic: 20k-vertex "
            "200-batch diurnal turnover, spiky hotspot skew, constant-rate "
            "merge/split churn (headline metrics: repair-latency percentiles, "
            "sustained updates/sec, SLO verdict)"
        ),
        workloads=(
            WorkloadSpec.of(
                "sliding_window",
                n_vertices=20_000,
                avg_degree=8.0,
                cluster_size=1,
                batches=200,
                churn_fraction=0.002,
                arrival_profile="diurnal",
                arrival_rate=2000.0,
            ),
            WorkloadSpec.of(
                "hotspot_churn",
                n_vertices=5_000,
                avg_degree=10.0,
                cluster_size=1,
                batches=60,
                arrival_profile="spiky",
                arrival_rate=1000.0,
            ),
            WorkloadSpec.of(
                "cluster_churn",
                n_vertices=2_000,
                avg_degree=8.0,
                cluster_size=4,
                batches=40,
                arrival_profile="constant",
                arrival_rate=500.0,
            ),
        ),
        algorithms=SERVICE_ALGORITHMS,
        seeds=(0,),
        instance_seeds=(0,),
        cell_timeout_s=1800.0,
    )
)

_register(
    ScenarioSpec(
        name="service_smoke",
        description="CI-fast miniature of the service suite (same traffic shapes)",
        workloads=(
            WorkloadSpec.of(
                "sliding_window",
                n_vertices=500,
                avg_degree=8.0,
                batches=12,
                arrival_profile="diurnal",
                arrival_rate=1000.0,
            ),
            WorkloadSpec.of(
                "hotspot_churn",
                n_vertices=300,
                avg_degree=10.0,
                batches=8,
                arrival_profile="spiky",
                arrival_rate=500.0,
            ),
            WorkloadSpec.of(
                "cluster_churn",
                n_vertices=150,
                avg_degree=8.0,
                cluster_size=4,
                batches=6,
                arrival_profile="constant",
                arrival_rate=300.0,
            ),
        ),
        algorithms=SERVICE_ALGORITHMS,
        seeds=(0,),
        cell_timeout_s=300.0,
    )
)

# ---------------------------------------------------------------------------
# The hetnet suites: simulated-time makespan on heterogeneous fabrics.
#
# Each workload is swept across the bandwidth-skew x slow-fill grid of
# docs/NETWORK.md via the generator-level ``net_*`` knobs.  The knobs are
# bitwise-invisible to the algorithm (same colorings, rounds, and bits in
# every grid column; only ``makespan_ms`` moves), which is exactly what
# ``tools/check_hetnet_makespan.py`` gates in CI.  These are fixed-cell
# suites because they mix one-shot and stream algorithms per workload --
# no single grid cross-product describes them.
# ---------------------------------------------------------------------------

#: The hetnet sweep grid: slow/standard bandwidth ratio x slow-machine fill.
HETNET_SKEWS = (1.0, 10.0, 100.0)
HETNET_FILLS = (0.01, 0.1)


def _hetnet_cells(
    suite: str,
    members: tuple[tuple[str, dict[str, Any], str], ...],
) -> tuple[Cell, ...]:
    """Expand ``(workload, kwargs, algorithm)`` triples across the
    skew x fill grid as pinned single-seed cells."""
    cells: list[Cell] = []
    for workload, kwargs, algorithm in members:
        for skew in HETNET_SKEWS:
            for fill in HETNET_FILLS:
                full = {**kwargs, "net_skew": skew, "net_fill": fill}
                cells.append(
                    Cell(
                        suite=suite,
                        workload=workload,
                        workload_kwargs=tuple(sorted(full.items())),
                        params="scaled",
                        regime="auto",
                        algorithm=algorithm,
                        seed=0,
                        instance_seed=0,
                    )
                )
    return tuple(cells)


_register(
    ScenarioSpec(
        name="hetnet_smoke",
        description=(
            "CI-fast heterogeneous-fabric sweep: bandwidth skew "
            "{1,10,100} x slow fill {1%,10%} on one static and one "
            "stream workload (headline metric: makespan_ms)"
        ),
        fixed_cells=_hetnet_cells(
            "hetnet_smoke",
            (
                ("congest", {"n": 80}, "paper"),
                (
                    "sliding_window",
                    {"n_vertices": 200, "avg_degree": 6.0, "batches": 4},
                    "dynamic",
                ),
            ),
        ),
        cell_timeout_s=120.0,
    )
)

_register(
    ScenarioSpec(
        name="hetnet",
        description=(
            "Heterogeneous-fabric makespan sweep: bandwidth skew "
            "{1,10,100} x slow fill {1%,10%} across static and stream "
            "workloads (docs/NETWORK.md)"
        ),
        fixed_cells=_hetnet_cells(
            "hetnet",
            (
                ("congest", {"n": 300}, "paper"),
                ("low_degree", {"n_vertices": 500, "target_degree": 8}, "paper"),
                (
                    "sliding_window",
                    {"n_vertices": 1000, "avg_degree": 8.0, "batches": 8},
                    "dynamic",
                ),
                (
                    "hotspot_churn",
                    {"n_vertices": 800, "avg_degree": 10.0, "batches": 6},
                    "dynamic",
                ),
            ),
        ),
        cell_timeout_s=600.0,
    )
)


# ---------------------------------------------------------------------------
# The pathology suite: pinned fuzzer finds (benchmarks/pathologies/).
#
# Each JSON file under PATHOLOGY_DIR is one promoted corpus entry from
# ``repro fuzz promote`` (schema "repro.fuzz", see docs/FUZZING.md) whose
# ``cell`` field is a ready-to-run cell dict.  Loading here -- rather than
# in repro.fuzz -- keeps the dependency one-way (fuzz imports experiments)
# while making every promoted blow-up a first-class suite runnable through
# sweep/compare/history like any grid suite.
# ---------------------------------------------------------------------------

#: Where promoted pathology entries live, next to benchmarks/history/.
PATHOLOGY_DIR = (
    pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "pathologies"
)


def pathology_suite(
    directory: str | pathlib.Path | None = None,
) -> ScenarioSpec | None:
    """Build the ``pathology`` suite from promoted fuzzer finds.

    Reads every ``*.json`` entry under ``directory`` (default:
    :data:`PATHOLOGY_DIR`) in filename order and pins its recorded cell,
    re-labelled into the ``pathology`` suite.  Returns ``None`` when the
    directory holds no entries (fresh checkouts without promoted finds),
    so callers can skip registration instead of exposing an empty suite.
    """
    directory = pathlib.Path(directory) if directory else PATHOLOGY_DIR
    if not directory.is_dir():
        return None
    cells: list[Cell] = []
    for path in sorted(directory.glob("*.json")):
        entry = json.loads(path.read_text())
        cells.append(Cell.from_dict({**entry["cell"], "suite": "pathology"}))
    if not cells:
        return None
    return ScenarioSpec(
        name="pathology",
        description=(
            "Pinned fuzzer-discovered pathological instances "
            "(promoted via `repro fuzz promote`; see docs/FUZZING.md)"
        ),
        fixed_cells=tuple(cells),
        cell_timeout_s=300.0,
    )


_pathology_spec = pathology_suite()
if _pathology_spec is not None:
    _register(_pathology_spec)


_register(
    ScenarioSpec(
        name="full",
        description="Every workload family, auto regime, three seeds",
        workloads=(
            WorkloadSpec.of("planted_acd"),
            WorkloadSpec.of("cabal"),
            WorkloadSpec.of("congest"),
            WorkloadSpec.of("contraction"),
            WorkloadSpec.of("voronoi"),
            WorkloadSpec.of("bridge"),
            WorkloadSpec.of("high_degree"),
            WorkloadSpec.of("low_degree"),
            WorkloadSpec.of("figure1"),
        ),
        seeds=(0, 1, 2),
        instance_seeds=(0,),
        cell_timeout_s=600.0,
    )
)
