"""repro: a reproduction of "Decentralized Distributed Graph Coloring:
Cluster Graphs" (Flin, Halldorsson, Nolin; PODC 2025, arXiv:2405.07725).

Public API highlights
---------------------

* :func:`repro.color_cluster_graph` -- the end-to-end (Delta+1)-coloring
  pipeline of Theorems 1.1/1.2.
* :mod:`repro.cluster` -- cluster graphs (Definition 3.1), builders, virtual
  graphs (Appendix A).
* :mod:`repro.sketch` -- fingerprinting (Section 5).
* :mod:`repro.baselines` -- greedy, Luby-style, and palette-sparsification
  comparators.
* :mod:`repro.verify` -- proper-coloring and model-compliance checkers.
"""

from repro.params import AlgorithmParameters, DEFAULT, log_star, paper, scaled

__version__ = "1.0.0"

__all__ = [
    "AlgorithmParameters",
    "DEFAULT",
    "log_star",
    "paper",
    "scaled",
    "color_cluster_graph",
    "__version__",
]


def color_cluster_graph(*args, **kwargs):
    """Convenience entry point; see :func:`repro.coloring.pipeline.color_cluster_graph`."""
    from repro.coloring.pipeline import color_cluster_graph as _impl

    return _impl(*args, **kwargs)
