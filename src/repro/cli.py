"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``color``
    Generate a workload, run the pipeline, print the stage table.
``baselines``
    Same workload through every comparator, one table.
``sketch``
    Fingerprint-estimator demo (Lemma 5.2): estimate a hidden count.
``workloads``
    List the available instance generators.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import color_cluster_graph
from repro.metrics import format_table
from repro.params import paper, scaled
from repro.workloads import (
    bridge_pathology,
    cabal_instance,
    congest_instance,
    contraction_instance,
    figure1_example,
    high_degree_instance,
    low_degree_instance,
    planted_acd_instance,
    voronoi_instance,
)

GENERATORS = {
    "planted_acd": planted_acd_instance,
    "cabal": cabal_instance,
    "congest": congest_instance,
    "contraction": contraction_instance,
    "voronoi": voronoi_instance,
    "bridge": bridge_pathology,
    "high_degree": high_degree_instance,
    "low_degree": low_degree_instance,
    "figure1": lambda _rng: figure1_example(),
}


def _build_workload(args) -> object:
    maker = GENERATORS[args.workload]
    return maker(np.random.default_rng(args.instance_seed))


def _cmd_color(args) -> int:
    w = _build_workload(args)
    params = paper() if args.params == "paper" else scaled()
    result = color_cluster_graph(
        w.graph, params=params, seed=args.seed, regime=args.regime
    )
    print(f"workload: {w.name}  ({w.notes})")
    print(
        f"machines={w.graph.n_machines} vertices={w.graph.n_vertices} "
        f"Delta={w.graph.max_degree} dilation={w.graph.dilation}"
    )
    print(
        f"regime={result.stats.regime} proper={result.proper} "
        f"rounds_h={result.rounds_h} rounds_g={result.rounds_g} "
        f"colors={len(set(result.colors.tolist()))}/{result.num_colors}"
    )
    rows = [
        {"stage": stage, "rounds_h": rounds}
        for stage, rounds in sorted(result.stats.stage_rounds.items())
    ]
    print(format_table(rows))
    if result.stats.fallbacks:
        print(f"fallbacks: {dict(result.stats.fallbacks)}")
    if result.stats.retries:
        print(f"retries:   {dict(result.stats.retries)}")
    for note in result.stats.notes:
        print(f"note: {note}")
    return 0 if result.proper else 1


def _cmd_baselines(args) -> int:
    from repro.baselines import (
        greedy_color_count,
        local_gather_coloring,
        luby_coloring,
        palette_sparsification_coloring,
    )

    w = _build_workload(args)
    ours = color_cluster_graph(w.graph, seed=args.seed)
    rows = [
        {
            "algorithm": "this paper",
            "rounds_h": ours.rounds_h,
            "bits": ours.ledger_summary["total_message_bits"],
            "proper": ours.proper,
        }
    ]
    for name, fn in (
        ("luby (cluster)", luby_coloring),
        ("palette sparsification", palette_sparsification_coloring),
        ("local gather", local_gather_coloring),
    ):
        r = fn(w.graph, seed=args.seed)
        rows.append(
            {
                "algorithm": name,
                "rounds_h": r.rounds_h,
                "bits": r.total_message_bits,
                "proper": r.proper,
            }
        )
    print(f"workload: {w.name}  Delta={w.graph.max_degree}")
    print(format_table(rows))
    print(f"greedy would use {greedy_color_count(w.graph)} colors "
          f"(budget {w.graph.max_degree + 1})")
    return 0


def _cmd_sketch(args) -> int:
    from repro.sketch import direct_count_fingerprint, failure_probability_bound

    rng = np.random.default_rng(args.seed)
    fp = direct_count_fingerprint(rng, args.d, args.t)
    estimate = fp.estimate()
    print(f"hidden count d = {args.d}, trials t = {args.t}")
    print(f"estimate d_hat = {estimate:.1f}  (error {estimate / args.d - 1:+.1%})")
    print(f"encoded size: {fp.encoded_bits()} bits "
          f"({fp.encoded_bits() / args.t:.2f} bits/trial; Lemma 5.6)")
    print(f"Lemma 5.2 bound at xi=0.5: "
          f"fail w.p. <= {failure_probability_bound(0.5, args.t):.3g}")
    return 0


def _cmd_workloads(_args) -> int:
    rows = []
    for name, maker in GENERATORS.items():
        w = maker(np.random.default_rng(0))
        rows.append(
            {
                "name": name,
                "machines": w.graph.n_machines,
                "vertices": w.graph.n_vertices,
                "Delta": w.graph.max_degree,
                "notes": w.notes[:60],
            }
        )
    print(format_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="(Delta+1)-coloring of cluster graphs (PODC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p):
        p.add_argument(
            "--workload", choices=sorted(GENERATORS), default="planted_acd"
        )
        p.add_argument("--instance-seed", type=int, default=0)
        p.add_argument("--seed", type=int, default=0)

    p_color = sub.add_parser("color", help="run the coloring pipeline")
    add_workload_args(p_color)
    p_color.add_argument(
        "--regime", choices=["auto", "high_degree", "polylog", "low_degree"],
        default="auto",
    )
    p_color.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    p_color.set_defaults(func=_cmd_color)

    p_base = sub.add_parser("baselines", help="compare against the baselines")
    add_workload_args(p_base)
    p_base.set_defaults(func=_cmd_baselines)

    p_sketch = sub.add_parser("sketch", help="fingerprint estimator demo")
    p_sketch.add_argument("--d", type=int, default=1000)
    p_sketch.add_argument("--t", type=int, default=800)
    p_sketch.add_argument("--seed", type=int, default=0)
    p_sketch.set_defaults(func=_cmd_sketch)

    p_list = sub.add_parser("workloads", help="list instance generators")
    p_list.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
