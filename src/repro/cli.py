"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``color``
    Generate a workload, run the pipeline, print the stage table.
``baselines``
    Same workload through every comparator, one table.
``sketch``
    Fingerprint-estimator demo (Lemma 5.2): estimate a hidden count.
``workloads``
    List the available instance generators (``--json`` for machines).
``stream``
    Drive a churn workload through the streaming update engine
    (optionally racing the recolor-from-scratch baseline).
``sweep``
    Run a named scenario suite in parallel, write a JSONL artifact.
``report``
    Summarize a sweep artifact (mean/p50/p95 per cell group, CSV export).
``compare``
    Gate one sweep artifact against a baseline; exit 1 on regression.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import color_cluster_graph
from repro.metrics import format_table
from repro.params import paper, scaled
from repro.workloads import GENERATORS, STREAMS


def _build_workload(args) -> object:
    maker = GENERATORS[args.workload]
    return maker(np.random.default_rng(args.instance_seed))


def _cmd_color(args) -> int:
    w = _build_workload(args)
    params = paper() if args.params == "paper" else scaled()
    result = color_cluster_graph(
        w.graph, params=params, seed=args.seed, regime=args.regime
    )
    print(f"workload: {w.name}  ({w.notes})")
    print(
        f"machines={w.graph.n_machines} vertices={w.graph.n_vertices} "
        f"Delta={w.graph.max_degree} dilation={w.graph.dilation}"
    )
    print(
        f"regime={result.stats.regime} proper={result.proper} "
        f"rounds_h={result.rounds_h} rounds_g={result.rounds_g} "
        f"colors={len(set(result.colors.tolist()))}/{result.num_colors}"
    )
    rows = [
        {"stage": stage, "rounds_h": rounds}
        for stage, rounds in sorted(result.stats.stage_rounds.items())
    ]
    print(format_table(rows))
    if result.stats.fallbacks:
        print(f"fallbacks: {dict(result.stats.fallbacks)}")
    if result.stats.retries:
        print(f"retries:   {dict(result.stats.retries)}")
    for note in result.stats.notes:
        print(f"note: {note}")
    return 0 if result.proper else 1


def _cmd_baselines(args) -> int:
    from repro.baselines import (
        greedy_color_count,
        local_gather_coloring,
        luby_coloring,
        palette_sparsification_coloring,
    )

    w = _build_workload(args)
    ours = color_cluster_graph(w.graph, seed=args.seed)
    rows = [
        {
            "algorithm": "this paper",
            "rounds_h": ours.rounds_h,
            "bits": ours.ledger_summary["total_message_bits"],
            "proper": ours.proper,
        }
    ]
    for name, fn in (
        ("luby (cluster)", luby_coloring),
        ("palette sparsification", palette_sparsification_coloring),
        ("local gather", local_gather_coloring),
    ):
        r = fn(w.graph, seed=args.seed)
        rows.append(
            {
                "algorithm": name,
                "rounds_h": r.rounds_h,
                "bits": r.total_message_bits,
                "proper": r.proper,
            }
        )
    print(f"workload: {w.name}  Delta={w.graph.max_degree}")
    print(format_table(rows))
    print(f"greedy would use {greedy_color_count(w.graph)} colors "
          f"(budget {w.graph.max_degree + 1})")
    return 0


def _cmd_sketch(args) -> int:
    from repro.sketch import direct_count_fingerprint, failure_probability_bound

    rng = np.random.default_rng(args.seed)
    fp = direct_count_fingerprint(rng, args.d, args.t)
    estimate = fp.estimate()
    print(f"hidden count d = {args.d}, trials t = {args.t}")
    print(f"estimate d_hat = {estimate:.1f}  (error {estimate / args.d - 1:+.1%})")
    print(f"encoded size: {fp.encoded_bits()} bits "
          f"({fp.encoded_bits() / args.t:.2f} bits/trial; Lemma 5.6)")
    print(f"Lemma 5.2 bound at xi=0.5: "
          f"fail w.p. <= {failure_probability_bound(0.5, args.t):.3g}")
    return 0


def _cmd_workloads(args) -> int:
    rows = []
    for name, maker in GENERATORS.items():
        w = maker(np.random.default_rng(0))
        rows.append(
            {
                "name": name,
                "machines": w.graph.n_machines,
                "vertices": w.graph.n_vertices,
                "Delta": w.graph.max_degree,
                "dilation": w.graph.dilation,
                "notes": w.notes if args.json else w.notes[:60],
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(format_table(rows))
    return 0


def _cmd_stream(args) -> int:
    from repro.dynamic import run_stream

    maker = GENERATORS[args.workload]
    params = paper() if args.params == "paper" else scaled()
    modes = ("repair", "scratch") if args.mode == "both" else (args.mode,)
    summaries = {}
    for mode in modes:
        # regenerate per mode: both sides must see the identical stream
        w = maker(np.random.default_rng(args.instance_seed))
        _engine, result, metrics = run_stream(
            w, params=params, seed=args.seed, mode=mode
        )
        summaries[mode] = metrics
        print(f"workload: {w.name}  ({w.notes})")
        print(
            f"mode={mode} machines={metrics['machines']} "
            f"vertices={metrics['vertices']} Delta={metrics['delta']} "
            f"batches={metrics['batches']} updates={metrics['stream_updates']}"
        )
        if not args.quiet:
            rows = [
                {
                    "batch": r.batch_index,
                    "events": ",".join(f"{k}={v}" for k, v in r.events.items()),
                    "dirty": r.dirty,
                    "repaired": r.repaired,
                    "recolor%": f"{100 * r.recolor_fraction:.2f}",
                    "rounds_h": r.rounds_h,
                    "bits": r.message_bits,
                    "wall_s": f"{r.wall_time_s:.4f}",
                }
                for r in result.reports
            ]
            print(format_table(rows))
        print(
            f"proper={metrics['proper']} "
            f"recolor_fraction mean={metrics['recolor_fraction_mean']:.4f} "
            f"max={metrics['recolor_fraction_max']:.4f} "
            f"escalations={metrics['escalations']} "
            f"rebuilds={metrics['delta_rebuilds']} "
            f"rounds_h={metrics['rounds_h']} bits={metrics['total_message_bits']} "
            f"stream_wall={metrics['stream_wall_time_s']:.3f}s"
        )
    if len(summaries) == 2:
        repair, scratch = summaries["repair"], summaries["scratch"]
        advantage = scratch["stream_wall_time_s"] / max(
            repair["stream_wall_time_s"], 1e-9
        )
        print(
            f"wall-time advantage (scratch/repair): {advantage:.1f}x  "
            f"(repair {repair['stream_wall_time_s']:.3f}s vs "
            f"scratch {scratch['stream_wall_time_s']:.3f}s)"
        )
    return 0 if all(m["proper"] for m in summaries.values()) else 1


# ---- experiment orchestration (repro.experiments) ---------------------------


def _cmd_sweep(args) -> int:
    from repro.experiments import SUITES, read_artifact, run_sweep, summarize

    spec = SUITES[args.suite]
    cells = spec.cells()
    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))
    if not args.quiet:
        print(
            f"suite {spec.name!r}: {len(cells)} cells, jobs={args.jobs} "
            f"({spec.description})",
            file=sys.stderr,
        )
    path, records = run_sweep(
        spec,
        jobs=args.jobs,
        timeout_s=args.timeout,
        out_path=args.out,
        progress=progress,
    )
    print(format_table(summarize(read_artifact(path))))
    failed = [r for r in records if r["status"] != "ok"]
    print(f"artifact: {path}  ({len(records)} cells, {len(failed)} failed)")
    from repro.experiments.runner import error_summary

    for record in failed:
        print(f"  {record['status']}: {record['cell']['workload']} -- "
              f"{error_summary(record['error'])}")
    return 1 if failed else 0


def _read_artifact_or_exit(path: str):
    from repro.experiments import read_artifact

    try:
        return read_artifact(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: cannot read artifact {path}: {exc}") from exc


def _cmd_report(args) -> int:
    from repro.experiments import summarize, to_csv

    artifact = _read_artifact_or_exit(args.artifact)
    header = artifact.header
    print(
        f"suite={artifact.suite} spec_hash={artifact.spec_hash} "
        f"git_rev={header.get('git_rev')} created={header.get('created_utc')} "
        f"cells={len(artifact.records)}"
    )
    if args.group_by:
        valid = {"suite", "workload", "workload_kwargs", "params", "regime",
                 "algorithm", "seed", "instance_seed"}
        group_by = tuple(f.strip() for f in args.group_by.split(",") if f.strip())
        unknown = [f for f in group_by if f not in valid]
        if unknown:
            raise SystemExit(
                f"repro: unknown group-by field(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(valid))}"
            )
        rows = summarize(artifact, group_by)
    else:
        rows = summarize(artifact)
    print(format_table(rows))
    if args.csv:
        path = to_csv(artifact, args.csv)
        print(f"csv: {path}")
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments import (
        compare_artifacts,
        parse_tolerance_overrides,
        render_report,
    )

    baseline = _read_artifact_or_exit(args.baseline)
    candidate = _read_artifact_or_exit(args.candidate)
    if baseline.spec_hash != candidate.spec_hash:
        print(
            f"warning: spec hashes differ ({baseline.spec_hash} vs "
            f"{candidate.spec_hash}); only overlapping cells are gated",
            file=sys.stderr,
        )
    try:
        tolerances = parse_tolerance_overrides(args.tolerance)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from exc
    report = compare_artifacts(baseline, candidate, tolerances)
    print(render_report(report))
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="(Delta+1)-coloring of cluster graphs (PODC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p):
        p.add_argument(
            "--workload", choices=sorted(GENERATORS), default="planted_acd"
        )
        p.add_argument("--instance-seed", type=int, default=0)
        p.add_argument("--seed", type=int, default=0)

    p_color = sub.add_parser("color", help="run the coloring pipeline")
    add_workload_args(p_color)
    p_color.add_argument(
        "--regime", choices=["auto", "high_degree", "polylog", "low_degree"],
        default="auto",
    )
    p_color.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    p_color.set_defaults(func=_cmd_color)

    p_base = sub.add_parser("baselines", help="compare against the baselines")
    add_workload_args(p_base)
    p_base.set_defaults(func=_cmd_baselines)

    p_sketch = sub.add_parser("sketch", help="fingerprint estimator demo")
    p_sketch.add_argument("--d", type=int, default=1000)
    p_sketch.add_argument("--t", type=int, default=800)
    p_sketch.add_argument("--seed", type=int, default=0)
    p_sketch.set_defaults(func=_cmd_sketch)

    p_stream = sub.add_parser(
        "stream", help="drive a churn workload through the streaming engine"
    )
    p_stream.add_argument(
        "--workload", choices=sorted(STREAMS), default="sliding_window"
    )
    p_stream.add_argument("--instance-seed", type=int, default=0)
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument(
        "--mode", choices=["repair", "scratch", "both"], default="repair",
        help="incremental repair, recolor-from-scratch, or race both",
    )
    p_stream.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    p_stream.add_argument(
        "--quiet", action="store_true", help="summary only, no per-batch table"
    )
    p_stream.set_defaults(func=_cmd_stream)

    p_list = sub.add_parser("workloads", help="list instance generators")
    p_list.add_argument(
        "--json", action="store_true", help="machine-readable JSON instead of a table"
    )
    p_list.set_defaults(func=_cmd_workloads)

    from repro.experiments.spec import SUITES

    p_sweep = sub.add_parser(
        "sweep", help="run a scenario suite, write a JSONL artifact"
    )
    p_sweep.add_argument("--suite", choices=sorted(SUITES), default="smoke")
    p_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (<=1 runs serially in-process)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds (0 disables; "
        "default: the suite's own budget)",
    )
    p_sweep.add_argument(
        "--out", default=None,
        help="artifact path (default: benchmarks/results/sweep-<suite>-<ts>.jsonl)",
    )
    p_sweep.add_argument("--quiet", action="store_true", help="no progress stream")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_report = sub.add_parser("report", help="summarize a sweep artifact")
    p_report.add_argument("artifact")
    p_report.add_argument("--csv", default=None, help="also export raw cells as CSV")
    p_report.add_argument(
        "--group-by", default=None,
        help="comma-separated cell fields to group on "
        "(default: workload,workload_kwargs,params,regime,algorithm)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_compare = sub.add_parser(
        "compare", help="gate a candidate artifact against a baseline"
    )
    p_compare.add_argument("baseline")
    p_compare.add_argument("candidate")
    p_compare.add_argument(
        "--tolerance", action="append", default=[], metavar="METRIC=FRACTION",
        help="override a relative tolerance (repeatable), e.g. rounds_h=0.1",
    )
    p_compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
