"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``color``
    Generate a workload, run the pipeline, print the stage table.
``baselines``
    Same workload through every comparator, one table.
``sketch``
    Fingerprint-estimator demo (Lemma 5.2): estimate a hidden count.
``workloads``
    List the available instance generators (``--json`` for machines).
``stream``
    Drive a churn workload through the streaming update engine
    (optionally racing the recolor-from-scratch baseline).
``serve``
    Replay an open-loop update trace through the always-on coloring
    service: periodic live dashboard, final latency percentiles, SLO
    report (report-only unless ``--strict``).
``sweep``
    Run a named scenario suite in parallel, write a JSONL artifact
    (``--trace`` attaches span trees to traceable cells).
``report``
    Summarize a sweep artifact (mean/p50/p95 per cell group, CSV export).
``compare``
    Gate one sweep artifact against a baseline; exit 1 on regression.
``trace``
    Run one workload under an enabled tracer and print the per-stage
    wall/rounds/bits table, slowest first.
``netsim``
    Run one workload on a sampled heterogeneous fabric
    (docs/NETWORK.md) and print the simulated-clock makespan with its
    critical stage and critical link.
``history``
    Append sweep artifacts to the per-commit history store and print the
    wall-time trend report (report-only; never gates).
``cells``
    Per-cell wall-time table of sweep artifacts (the in-CLI spelling of
    ``tools/print_cell_times.py``).
``fuzz``
    Cost-guided pathological-instance fuzzing (docs/FUZZING.md):
    ``run`` a time-boxed campaign (report-only), ``list`` the corpus,
    ``replay`` entries bitwise (exit 1 on mismatch), ``promote`` finds
    into the pinned ``pathology`` suite.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import color_cluster_graph
from repro.metrics import format_table
from repro.params import paper, scaled
from repro.workloads import GENERATORS, STREAMS


def _build_workload(args) -> object:
    maker = GENERATORS[args.workload]
    return maker(np.random.default_rng(args.instance_seed))


def _backend_kwargs(args) -> dict:
    """Backend selection kwargs shared by the backend-aware commands.

    ``--backend`` / ``--shards`` default to ``None`` so library-level
    resolution applies (``$REPRO_BACKEND`` / ``$REPRO_SHARDS`` are read by
    :func:`repro.parallel.backend.make_backend`; unset means serial).
    """
    backend = getattr(args, "backend", None)
    shards = getattr(args, "shards", None)
    if backend is None and shards is not None:
        backend = "sharded"
    return {"backend": backend, "shards": shards}


def _print_boundary(summary: dict | None) -> None:
    """One-line cross-shard traffic report for sharded executions."""
    if not summary:
        return
    print(
        f"backend=sharded shards={summary.get('shards')} "
        f"mode={summary.get('mode')} exchanges={summary.get('exchanges')} "
        f"boundary_bits={summary.get('total_message_bits')}"
    )


def _cmd_color(args) -> int:
    w = _build_workload(args)
    params = paper() if args.params == "paper" else scaled()
    result = color_cluster_graph(
        w.graph, params=params, seed=args.seed, regime=args.regime,
        **_backend_kwargs(args),
    )
    print(f"workload: {w.name}  ({w.notes})")
    print(
        f"machines={w.graph.n_machines} vertices={w.graph.n_vertices} "
        f"Delta={w.graph.max_degree} dilation={w.graph.dilation}"
    )
    print(
        f"regime={result.stats.regime} proper={result.proper} "
        f"rounds_h={result.rounds_h} rounds_g={result.rounds_g} "
        f"colors={len(set(result.colors.tolist()))}/{result.num_colors}"
    )
    _print_boundary(result.backend_summary)
    rows = [
        {"stage": stage, "rounds_h": rounds}
        for stage, rounds in sorted(result.stats.stage_rounds.items())
    ]
    print(format_table(rows))
    if result.stats.fallbacks:
        print(f"fallbacks: {dict(result.stats.fallbacks)}")
    if result.stats.retries:
        print(f"retries:   {dict(result.stats.retries)}")
    for note in result.stats.notes:
        print(f"note: {note}")
    return 0 if result.proper else 1


def _cmd_baselines(args) -> int:
    from repro.baselines import (
        greedy_color_count,
        local_gather_coloring,
        luby_coloring,
        palette_sparsification_coloring,
    )

    w = _build_workload(args)
    ours = color_cluster_graph(w.graph, seed=args.seed)
    rows = [
        {
            "algorithm": "this paper",
            "rounds_h": ours.rounds_h,
            "bits": ours.ledger_summary["total_message_bits"],
            "proper": ours.proper,
        }
    ]
    for name, fn in (
        ("luby (cluster)", luby_coloring),
        ("palette sparsification", palette_sparsification_coloring),
        ("local gather", local_gather_coloring),
    ):
        r = fn(w.graph, seed=args.seed)
        rows.append(
            {
                "algorithm": name,
                "rounds_h": r.rounds_h,
                "bits": r.total_message_bits,
                "proper": r.proper,
            }
        )
    print(f"workload: {w.name}  Delta={w.graph.max_degree}")
    print(format_table(rows))
    print(f"greedy would use {greedy_color_count(w.graph)} colors "
          f"(budget {w.graph.max_degree + 1})")
    return 0


def _cmd_sketch(args) -> int:
    from repro.sketch import direct_count_fingerprint, failure_probability_bound

    rng = np.random.default_rng(args.seed)
    fp = direct_count_fingerprint(rng, args.d, args.t)
    estimate = fp.estimate()
    print(f"hidden count d = {args.d}, trials t = {args.t}")
    print(f"estimate d_hat = {estimate:.1f}  (error {estimate / args.d - 1:+.1%})")
    print(f"encoded size: {fp.encoded_bits()} bits "
          f"({fp.encoded_bits() / args.t:.2f} bits/trial; Lemma 5.6)")
    print(f"Lemma 5.2 bound at xi=0.5: "
          f"fail w.p. <= {failure_probability_bound(0.5, args.t):.3g}")
    return 0


def _cmd_workloads(args) -> int:
    rows = []
    for name, maker in GENERATORS.items():
        w = maker(np.random.default_rng(0))
        rows.append(
            {
                "name": name,
                "machines": w.graph.n_machines,
                "vertices": w.graph.n_vertices,
                "Delta": w.graph.max_degree,
                "dilation": w.graph.dilation,
                "notes": w.notes if args.json else w.notes[:60],
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(format_table(rows))
    return 0


def _cmd_stream(args) -> int:
    from repro.dynamic import run_stream

    maker = GENERATORS[args.workload]
    params = paper() if args.params == "paper" else scaled()
    modes = ("repair", "scratch") if args.mode == "both" else (args.mode,)
    summaries = {}
    for mode in modes:
        # regenerate per mode: both sides must see the identical stream
        w = maker(np.random.default_rng(args.instance_seed))
        _engine, result, metrics = run_stream(
            w, params=params, seed=args.seed, mode=mode, **_backend_kwargs(args)
        )
        summaries[mode] = metrics
        print(f"workload: {w.name}  ({w.notes})")
        print(
            f"mode={mode} machines={metrics['machines']} "
            f"vertices={metrics['vertices']} Delta={metrics['delta']} "
            f"batches={metrics['batches']} updates={metrics['stream_updates']}"
        )
        if not args.quiet:
            rows = [
                {
                    "batch": r.batch_index,
                    "events": ",".join(f"{k}={v}" for k, v in r.events.items()),
                    "dirty": r.dirty,
                    "repaired": r.repaired,
                    "recolor%": f"{100 * r.recolor_fraction:.2f}",
                    "rounds_h": r.rounds_h,
                    "bits": r.message_bits,
                    "wall_s": f"{r.wall_time_s:.4f}",
                }
                for r in result.reports
            ]
            print(format_table(rows))
        print(
            f"proper={metrics['proper']} "
            f"recolor_fraction mean={metrics['recolor_fraction_mean']:.4f} "
            f"max={metrics['recolor_fraction_max']:.4f} "
            f"escalations={metrics['escalations']} "
            f"rebuilds={metrics['delta_rebuilds']} "
            f"rounds_h={metrics['rounds_h']} bits={metrics['total_message_bits']} "
            f"stream_wall={metrics['stream_wall_time_s']:.3f}s"
        )
        if "repair_ms_p50" in metrics:
            print(
                f"repair latency: p50={metrics['repair_ms_p50']:.3f}ms "
                f"p95={metrics['repair_ms_p95']:.3f}ms "
                f"p99={metrics['repair_ms_p99']:.3f}ms  "
                f"throughput={metrics['updates_per_sec']:.1f} updates/s"
            )
        if "boundary_bits" in metrics:
            print(
                f"backend=sharded shards={metrics['backend_shards']} "
                f"mode={metrics['backend_mode']} "
                f"exchanges={metrics['boundary_exchanges']} "
                f"boundary_bits={metrics['boundary_bits']}"
            )
    if len(summaries) == 2:
        repair, scratch = summaries["repair"], summaries["scratch"]
        advantage = scratch["stream_wall_time_s"] / max(
            repair["stream_wall_time_s"], 1e-9
        )
        print(
            f"wall-time advantage (scratch/repair): {advantage:.1f}x  "
            f"(repair {repair['stream_wall_time_s']:.3f}s vs "
            f"scratch {scratch['stream_wall_time_s']:.3f}s)"
        )
    return 0 if all(m["proper"] for m in summaries.values()) else 1


def _cmd_serve(args) -> int:
    """Run the always-on coloring service over a replayed trace."""
    from repro.serve import (
        ColoringService,
        DEFAULT_SLOS,
        parse_slo,
        render_dashboard,
        render_slo_report,
        evaluate_slos,
    )

    maker = GENERATORS[args.workload]
    kwargs: dict = {
        "batches": args.batches,
        "arrival_profile": args.profile,
        "arrival_rate": args.rate,
    }
    if args.vertices is not None:
        kwargs["n_vertices"] = args.vertices
    w = maker(np.random.default_rng(args.instance_seed), **kwargs)
    try:
        slos = (
            tuple(parse_slo(s) for s in args.slo) if args.slo else DEFAULT_SLOS
        )
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from exc
    params = paper() if args.params == "paper" else scaled()
    service = ColoringService(
        w,
        params=params,
        seed=args.seed,
        slos=slos,
        **_backend_kwargs(args),
    )
    print(f"workload: {w.name}  ({w.notes})")
    print(
        f"trace: {len(w.batches)} batches, {w.total_updates} updates, "
        f"profile={args.profile} rate={args.rate:g}/s"
    )
    service.start()
    print(f"bootstrap: {service.bootstrap_wall_time_s:.3f}s "
          f"({service.engine.num_colors} colors)")
    while service.remaining:
        entry = service.step()
        if not args.quiet and args.refresh and (entry.batch_index + 1) % args.refresh == 0:
            print(render_dashboard(service))
    service.stop()
    metrics = service.collect()
    print(render_dashboard(service))
    print(
        f"final: proper={metrics['proper']} "
        f"violations={metrics['violation_batches']} "
        f"escalations={metrics['escalations']} "
        f"recolor_fraction mean={metrics['recolor_fraction_mean']:.4f}"
    )
    print(
        f"repair latency (exact): p50={metrics['repair_ms_p50']:.3f}ms "
        f"p95={metrics['repair_ms_p95']:.3f}ms p99={metrics['repair_ms_p99']:.3f}ms"
    )
    print(
        f"end-to-end latency: p50={metrics['latency_ms_p50']:.3f}ms "
        f"p99={metrics['latency_ms_p99']:.3f}ms  "
        f"queueing p99={metrics['queue_ms_p99']:.3f}ms"
    )
    print(
        f"sustained throughput: {metrics['updates_per_sec']:.1f} updates/s "
        f"over {metrics['trace_duration_s']:.2f} trace-seconds"
    )
    if "boundary_bits" in metrics:
        print(
            f"backend=sharded shards={metrics['backend_shards']} "
            f"mode={metrics['backend_mode']} "
            f"exchanges={metrics['boundary_exchanges']} "
            f"boundary_bits={metrics['boundary_bits']}"
        )
    report = evaluate_slos(metrics, slos)
    print(render_slo_report(report))
    if metrics["violation_batches"]:
        return 1
    if args.strict and not report.passed:
        return 1
    return 0


# ---- experiment orchestration (repro.experiments) ---------------------------


def _cmd_sweep(args) -> int:
    from repro.experiments import SUITES, read_artifact, run_sweep, summarize

    spec = SUITES[args.suite]
    cells = spec.cells()
    backend_kwargs = _backend_kwargs(args)
    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))
    if not args.quiet:
        backend_note = (
            f", backend={backend_kwargs['backend']}"
            + (
                f":{backend_kwargs['shards']}"
                if backend_kwargs["shards"] is not None
                else ""
            )
            if backend_kwargs["backend"] is not None
            else ""
        )
        print(
            f"suite {spec.name!r}: {len(cells)} cells, jobs={args.jobs}"
            f"{backend_note} ({spec.description})",
            file=sys.stderr,
        )
    path, records = run_sweep(
        spec,
        jobs=args.jobs,
        timeout_s=args.timeout,
        out_path=args.out,
        progress=progress,
        trace=args.trace,
        **backend_kwargs,
    )
    print(format_table(summarize(read_artifact(path))))
    failed = [r for r in records if r["status"] != "ok"]
    print(f"artifact: {path}  ({len(records)} cells, {len(failed)} failed)")
    from repro.experiments.runner import error_summary

    for record in failed:
        print(f"  {record['status']}: {record['cell']['workload']} -- "
              f"{error_summary(record['error'])}")
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    """Run one workload under an enabled tracer; print the stage table."""
    from repro.observe import Tracer, aggregate_stage_rows, stage_rows

    maker = GENERATORS[args.workload]
    w = maker(np.random.default_rng(args.instance_seed))
    params = paper() if args.params == "paper" else scaled()
    tracer = Tracer()
    backend_kwargs = _backend_kwargs(args)
    if args.workload in STREAMS:
        from repro.dynamic import run_stream

        _engine, _result, metrics = run_stream(
            w, params=params, seed=args.seed, mode=args.mode, tracer=tracer,
            **backend_kwargs,
        )
        proper = bool(metrics["proper"])
        ledger_rounds = metrics["rounds_h"]
        ledger_bits = metrics["total_message_bits"]
        # the bootstrap runs on its own runtime ledger (wall time only), so
        # the span-sum invariant covers the batch spans alone
        charged = lambda r: r["stage"] != "stream.bootstrap"  # noqa: E731
    else:
        result = color_cluster_graph(
            w.graph, params=params, seed=args.seed, regime=args.regime,
            tracer=tracer, **backend_kwargs,
        )
        proper = bool(result.proper)
        ledger_rounds = result.rounds_h
        ledger_bits = result.ledger_summary["total_message_bits"]
        charged = lambda r: True  # noqa: E731
    if args.json:
        print(json.dumps(tracer.to_dict(), indent=2))
        return 0 if proper else 1
    rows = aggregate_stage_rows(stage_rows(tracer))
    rows.sort(key=lambda r: r["wall_s"], reverse=True)
    print(f"workload: {w.name}  ({w.notes})")
    print(
        f"machines={w.graph.n_machines} vertices={w.graph.n_vertices} "
        f"Delta={w.graph.max_degree} proper={proper}"
    )
    print(format_table(
        [
            {
                "stage": r["stage"],
                "spans": r["spans"],
                "wall_s": f"{r['wall_s']:.4f}",
                "rounds_h": r["rounds_h"],
                "rounds_g": r["rounds_g"],
                "bits": r["bits"],
                "max_bits": r["max_bits"],
            }
            for r in rows
        ]
    ))
    sum_rounds = sum(r["rounds_h"] for r in rows if charged(r))
    sum_bits = sum(r["bits"] for r in rows if charged(r))
    matches = sum_rounds == ledger_rounds and sum_bits == ledger_bits
    print(
        f"stage sums: rounds_h={sum_rounds} bits={sum_bits}  "
        f"ledger totals: rounds_h={ledger_rounds} bits={ledger_bits}  "
        f"({'match' if matches else 'MISMATCH'})"
    )
    exchange_spans = _collect_nested_spans(tracer.to_dict(), "shard.exchange")
    if exchange_spans:
        # nested spans: excluded from the top-level tables above, so they
        # never disturb the span-sum invariant; their boundary_bits counter
        # is the *real* cross-shard traffic (backend exchange ledger), not
        # a simulation charge
        total_bits = sum(
            s.get("counters", {}).get("boundary_bits", 0) for s in exchange_spans
        )
        wall = sum(s.get("wall_time_s", 0.0) for s in exchange_spans)
        print(
            f"shard.exchange: {len(exchange_spans)} exchanges, "
            f"boundary_bits={int(total_bits)}, wall_s={wall:.4f}"
        )
    return 0 if proper and matches else 1


def _cmd_netsim(args) -> int:
    """Run one workload on a sampled heterogeneous fabric; print the
    simulated-clock makespan with per-stage and per-link attribution."""
    from repro.observe import Tracer, aggregate_stage_rows, stage_rows

    maker = GENERATORS[args.workload]
    w = maker(
        np.random.default_rng(args.instance_seed),
        net_skew=args.skew,
        net_fill=args.fill,
    )
    model = w.netmodel
    params = paper() if args.params == "paper" else scaled()
    tracer = Tracer()
    if args.workload in STREAMS:
        from repro.dynamic import run_stream

        _engine, _result, metrics = run_stream(
            w, params=params, seed=args.seed, mode=args.mode, tracer=tracer
        )
        proper = bool(metrics["proper"])
        makespan = metrics["makespan_ms"]
        rounds = metrics["rounds_h"]
    else:
        result = color_cluster_graph(
            w.graph, params=params, seed=args.seed, regime=args.regime,
            tracer=tracer, netmodel=model,
        )
        proper = bool(result.proper)
        makespan = result.ledger_summary["makespan_ms"]
        rounds = result.rounds_h
    rows = aggregate_stage_rows(stage_rows(tracer))
    rows.sort(key=lambda r: r["makespan_ms"], reverse=True)
    critical_stage = rows[0]["stage"] if rows else "(none)"
    critical_link, critical_ms = model.critical_element()
    if args.json:
        print(json.dumps(
            {
                "workload": w.name,
                "skew": args.skew,
                "fill": args.fill,
                "machines": w.graph.n_machines,
                "slow_machines": model.n_slow_machines,
                "proper": proper,
                "rounds_h": rounds,
                "makespan_ms": makespan,
                "critical_stage": critical_stage,
                "critical_link": critical_link,
            },
            indent=2,
        ))
        return 0 if proper else 1
    print(f"workload: {w.name}  ({w.notes})")
    print(
        f"fabric: {w.graph.n_machines} machines, "
        f"{model.n_slow_machines} slow (fill={args.fill:g}), "
        f"bandwidth skew {args.skew:g}:1"
    )
    print(f"proper={proper} rounds_h={rounds} makespan={makespan:.3f}ms")
    print(format_table(
        [
            {
                "stage": r["stage"],
                "spans": r["spans"],
                "rounds_h": r["rounds_h"],
                "bits": r["bits"],
                "makespan_ms": f"{r['makespan_ms']:.3f}",
            }
            for r in rows
        ]
    ))
    print(f"critical stage: {critical_stage}")
    print(f"critical link:  {critical_link}  ({critical_ms:.3f}ms on the clock)")
    slowest = model.element_times(top=5)
    if slowest:
        print("slowest elements:")
        for name, ms in slowest:
            print(f"  {ms:10.3f}ms  {name}")
    return 0 if proper else 1


def _collect_nested_spans(trace: dict | None, name: str) -> list[dict]:
    """Every span named ``name`` anywhere in a serialized trace tree."""
    found: list[dict] = []

    def visit(span: dict) -> None:
        if span.get("name") == name:
            found.append(span)
        for child in span.get("children", []):
            visit(child)

    for span in (trace or {}).get("spans", []):
        visit(span)
    return found


def _cmd_history(args) -> int:
    """Append artifacts to the history store and print the trend report."""
    from repro.observe import (
        append_entry,
        entry_from_artifact,
        list_suites,
        load_history,
        render_history,
    )

    suites = []
    for name in args.append:
        artifact = _read_artifact_or_exit(name)
        entry = entry_from_artifact(artifact)
        path = append_entry(entry, args.dir)
        print(
            f"appended {artifact.suite} @ {entry['commit']} "
            f"({entry['total_wall_time_s']}s) -> {path}"
        )
        if artifact.suite not in suites:
            suites.append(artifact.suite)
    if args.suite:
        suites = [args.suite]
    elif not suites:
        suites = list_suites(args.dir)
        if not suites:
            print("history store is empty (append with --append ARTIFACT)")
            return 0
    for suite in suites:
        try:
            entries = load_history(suite, args.dir)
        except ValueError as exc:
            raise SystemExit(f"repro: corrupt history for {suite!r}: {exc}")
        print(render_history(
            entries,
            last_n=args.last,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
        ))
    # report-only by contract: soft regressions never flip the exit code
    return 0


def _cmd_cells(args) -> int:
    """Per-cell wall-time tables (folded tools/print_cell_times.py)."""
    from repro.observe import cells

    return cells.main(args.artifacts)


def _read_artifact_or_exit(path: str):
    from repro.experiments import read_artifact

    try:
        return read_artifact(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: cannot read artifact {path}: {exc}") from exc


def _cmd_report(args) -> int:
    from repro.experiments import summarize, to_csv

    artifact = _read_artifact_or_exit(args.artifact)
    header = artifact.header
    print(
        f"suite={artifact.suite} spec_hash={artifact.spec_hash} "
        f"git_rev={header.get('git_rev')} created={header.get('created_utc')} "
        f"cells={len(artifact.records)}"
    )
    if args.group_by:
        valid = {"suite", "workload", "workload_kwargs", "params", "regime",
                 "algorithm", "seed", "instance_seed"}
        group_by = tuple(f.strip() for f in args.group_by.split(",") if f.strip())
        unknown = [f for f in group_by if f not in valid]
        if unknown:
            raise SystemExit(
                f"repro: unknown group-by field(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(valid))}"
            )
        rows = summarize(artifact, group_by)
    else:
        rows = summarize(artifact)
    print(format_table(rows))
    if args.csv:
        path = to_csv(artifact, args.csv)
        print(f"csv: {path}")
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments import (
        compare_artifacts,
        parse_tolerance_overrides,
        render_report,
    )

    baseline = _read_artifact_or_exit(args.baseline)
    candidate = _read_artifact_or_exit(args.candidate)
    if baseline.spec_hash != candidate.spec_hash:
        print(
            f"warning: spec hashes differ ({baseline.spec_hash} vs "
            f"{candidate.spec_hash}); only overlapping cells are gated",
            file=sys.stderr,
        )
    try:
        tolerances = parse_tolerance_overrides(args.tolerance)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from exc
    report = compare_artifacts(baseline, candidate, tolerances)
    print(render_report(report))
    return report.exit_code


def _fuzz_entry_row(entry: dict) -> dict:
    return {
        "id": entry["id"],
        "generator": entry["generator"],
        "objective": entry["objective"],
        "score": entry["score"],
        "norm": "inf" if entry["norm"] is None else round(entry["norm"], 2),
        "minimized": entry["minimized"],
        "digest": entry.get("metrics", {}).get("coloring_digest", "-"),
    }


def _fuzz_dirs(args) -> object:
    """The corpus directory a fuzz subcommand operates on."""
    from repro.experiments.spec import PATHOLOGY_DIR
    from repro.fuzz import CORPUS_DIR

    if getattr(args, "pathologies", False):
        return PATHOLOGY_DIR
    return args.corpus or CORPUS_DIR


def _cmd_fuzz_run(args) -> int:
    from repro.fuzz import FuzzConfig, make_entry, run_fuzz, save_entry

    if args.iters is None and args.budget is None:
        raise SystemExit("repro: fuzz run needs --budget or --iters")
    generators = tuple(
        g.strip() for g in (args.generators or "").split(",") if g.strip()
    )
    config = FuzzConfig(
        objective=args.objective,
        generators=generators,
        root_seed=args.seed,
        iters=args.iters,
        budget_s=args.budget,
        margin=args.margin,
        cell_timeout_s=args.timeout,
        minimize=not args.no_minimize,
    )
    emit = (lambda _line: None) if args.quiet else print
    try:
        report = run_fuzz(config, progress=emit)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from exc
    paths = []
    for find in report.finds:
        entry = make_entry(find, report.objective, report.root_seed)
        paths.append(save_entry(entry, args.corpus))
    if args.json:
        payload = report.to_dict()
        for find in payload["finds"]:
            find.pop("record", None)  # bulky; the corpus entry has the snapshot
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"fuzz: objective={report.objective} seed={report.root_seed} "
        f"iterations={report.iterations} evaluations={report.evaluations} "
        f"finds={len(report.finds)}"
    )
    if report.skipped_generators:
        print(f"skipped (unscorable): {', '.join(report.skipped_generators)}")
    if report.finds:
        rows = []
        for find, path in zip(report.finds, paths):
            norm = find["norm"]
            rows.append(
                {
                    "generator": find["generator"],
                    "norm": "inf" if norm is None else round(norm, 2),
                    "score": find["score"],
                    "baseline": find["baseline_score"],
                    "weight": find["weight"],
                    "entry": path.name,
                }
            )
        print(format_table(rows))
        print(f"corpus: {paths[0].parent}")
    # report-only by design: finds are discoveries, not failures
    return 0


def _cmd_fuzz_list(args) -> int:
    from repro.fuzz import load_entries

    entries = load_entries(_fuzz_dirs(args))
    if args.json:
        print(json.dumps([e for _, e in entries], indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"no corpus entries under {_fuzz_dirs(args)}")
        return 0
    print(format_table([_fuzz_entry_row(e) for _, e in entries]))
    return 0


def _cmd_fuzz_replay(args) -> int:
    from repro.fuzz import load_entries, replay_entry, resolve_entry

    directory = _fuzz_dirs(args)
    if args.all:
        targets = load_entries(directory)
        if not targets:
            raise SystemExit(f"repro: no corpus entries under {directory}")
    elif args.entries:
        try:
            targets = [resolve_entry(ref, directory) for ref in args.entries]
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}") from exc
    else:
        raise SystemExit("repro: fuzz replay needs entry ids or --all")
    failures = 0
    for path, entry in targets:
        verdict = replay_entry(entry, timeout_s=args.timeout)
        status = "ok" if verdict["ok"] else "MISMATCH"
        detail = (
            f"score_ok={verdict['score_ok']} digest_ok={verdict['digest_ok']}"
        )
        print(f"{entry['id']}: {status}  score={verdict['score']} {detail}")
        if not verdict["ok"]:
            failures += 1
    if failures:
        print(f"{failures}/{len(targets)} entries failed to reproduce")
    return 1 if failures else 0


def _cmd_fuzz_promote(args) -> int:
    from repro.fuzz import promote_entry, resolve_entry

    for ref in args.entries:
        try:
            _path, entry = resolve_entry(ref, args.corpus)
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}") from exc
        dest = promote_entry(entry, args.dest)
        print(f"promoted {entry['id']} -> {dest}")
    print("promoted cells join the 'pathology' suite on next import")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="(Delta+1)-coloring of cluster graphs (PODC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p):
        p.add_argument(
            "--workload", choices=sorted(GENERATORS), default="planted_acd"
        )
        p.add_argument("--instance-seed", type=int, default=0)
        p.add_argument("--seed", type=int, default=0)

    def add_backend_args(p):
        p.add_argument(
            "--backend", choices=["serial", "sharded"], default=None,
            help="execution backend for the batched kernels "
            "(default: $REPRO_BACKEND, else serial); metric-invariant "
            "by the backend contract (docs/PARALLEL.md)",
        )
        p.add_argument(
            "--shards", type=int, default=None,
            help="shard count for --backend sharded "
            "(default: $REPRO_SHARDS, else 2); implies --backend sharded",
        )

    p_color = sub.add_parser("color", help="run the coloring pipeline")
    add_workload_args(p_color)
    p_color.add_argument(
        "--regime", choices=["auto", "high_degree", "polylog", "low_degree"],
        default="auto",
    )
    p_color.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    add_backend_args(p_color)
    p_color.set_defaults(func=_cmd_color)

    p_base = sub.add_parser("baselines", help="compare against the baselines")
    add_workload_args(p_base)
    p_base.set_defaults(func=_cmd_baselines)

    p_sketch = sub.add_parser("sketch", help="fingerprint estimator demo")
    p_sketch.add_argument("--d", type=int, default=1000)
    p_sketch.add_argument("--t", type=int, default=800)
    p_sketch.add_argument("--seed", type=int, default=0)
    p_sketch.set_defaults(func=_cmd_sketch)

    p_stream = sub.add_parser(
        "stream", help="drive a churn workload through the streaming engine"
    )
    p_stream.add_argument(
        "--workload", choices=sorted(STREAMS), default="sliding_window"
    )
    p_stream.add_argument("--instance-seed", type=int, default=0)
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument(
        "--mode", choices=["repair", "scratch", "both"], default="repair",
        help="incremental repair, recolor-from-scratch, or race both",
    )
    p_stream.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    p_stream.add_argument(
        "--quiet", action="store_true", help="summary only, no per-batch table"
    )
    add_backend_args(p_stream)
    p_stream.set_defaults(func=_cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="replay an open-loop trace through the always-on coloring service",
    )
    p_serve.add_argument(
        "--workload", choices=sorted(STREAMS), default="sliding_window"
    )
    p_serve.add_argument("--instance-seed", type=int, default=0)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--vertices", type=int, default=None,
        help="initial graph size (default: the generator's own)",
    )
    p_serve.add_argument(
        "--batches", type=int, default=50, help="trace length in update batches"
    )
    p_serve.add_argument(
        "--profile", choices=["constant", "diurnal", "spiky"], default="diurnal",
        help="arrival-rate shape of the open-loop trace",
    )
    p_serve.add_argument(
        "--rate", type=float, default=1000.0,
        help="base offered load in updates/second",
    )
    p_serve.add_argument(
        "--refresh", type=int, default=10, metavar="N",
        help="print the live dashboard every N batches (0 disables)",
    )
    p_serve.add_argument(
        "--slo", action="append", default=[], metavar="METRIC<=BOUND",
        help="objective override, e.g. repair_ms_p99<=250 or "
        "updates_per_sec>=500 (repeatable; default: the built-in targets)",
    )
    p_serve.add_argument(
        "--strict", action="store_true",
        help="exit 1 when an SLO misses (default: report-only)",
    )
    p_serve.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    p_serve.add_argument(
        "--quiet", action="store_true", help="final report only, no live dashboard"
    )
    add_backend_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_list = sub.add_parser("workloads", help="list instance generators")
    p_list.add_argument(
        "--json", action="store_true", help="machine-readable JSON instead of a table"
    )
    p_list.set_defaults(func=_cmd_workloads)

    from repro.experiments.spec import SUITES

    p_sweep = sub.add_parser(
        "sweep", help="run a scenario suite, write a JSONL artifact"
    )
    p_sweep.add_argument("--suite", choices=sorted(SUITES), default="smoke")
    p_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (<=1 runs serially in-process)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds (0 disables; "
        "default: the suite's own budget)",
    )
    p_sweep.add_argument(
        "--out", default=None,
        help="artifact path (default: benchmarks/results/sweep-<suite>-<ts>.jsonl)",
    )
    p_sweep.add_argument("--quiet", action="store_true", help="no progress stream")
    p_sweep.add_argument(
        "--trace", action="store_true",
        help="attach span trees to traceable cells (bitwise-invisible)",
    )
    add_backend_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_report = sub.add_parser("report", help="summarize a sweep artifact")
    p_report.add_argument("artifact")
    p_report.add_argument("--csv", default=None, help="also export raw cells as CSV")
    p_report.add_argument(
        "--group-by", default=None,
        help="comma-separated cell fields to group on "
        "(default: workload,workload_kwargs,params,regime,algorithm)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_compare = sub.add_parser(
        "compare", help="gate a candidate artifact against a baseline"
    )
    p_compare.add_argument("baseline")
    p_compare.add_argument("candidate")
    p_compare.add_argument(
        "--tolerance", action="append", default=[], metavar="METRIC=FRACTION",
        help="override a relative tolerance (repeatable), e.g. rounds_h=0.1",
    )
    p_compare.set_defaults(func=_cmd_compare)

    p_trace = sub.add_parser(
        "trace", help="run one workload under a tracer, print the stage table"
    )
    p_trace.add_argument("workload", choices=sorted(GENERATORS))
    p_trace.add_argument("--instance-seed", type=int, default=0)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "--regime", choices=["auto", "high_degree", "polylog", "low_degree"],
        default="auto", help="static pipeline regime (ignored for streams)",
    )
    p_trace.add_argument(
        "--mode", choices=["repair", "scratch"], default="repair",
        help="stream engine mode (ignored for static workloads)",
    )
    p_trace.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    p_trace.add_argument(
        "--json", action="store_true", help="dump the full span tree as JSON"
    )
    add_backend_args(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_netsim = sub.add_parser(
        "netsim",
        help="simulate a workload on a heterogeneous fabric, print the makespan",
    )
    p_netsim.add_argument("workload", choices=sorted(GENERATORS))
    p_netsim.add_argument("--instance-seed", type=int, default=0)
    p_netsim.add_argument("--seed", type=int, default=0)
    p_netsim.add_argument(
        "--skew", type=float, default=10.0,
        help="slow/standard bandwidth ratio (>= 1; 1 = homogeneous speeds)",
    )
    p_netsim.add_argument(
        "--fill", type=float, default=0.1,
        help="fraction of machines drawn slow (0..1)",
    )
    p_netsim.add_argument(
        "--regime", choices=["auto", "high_degree", "polylog", "low_degree"],
        default="auto", help="static pipeline regime (ignored for streams)",
    )
    p_netsim.add_argument(
        "--mode", choices=["repair", "scratch"], default="repair",
        help="stream engine mode (ignored for static workloads)",
    )
    p_netsim.add_argument("--params", choices=["scaled", "paper"], default="scaled")
    p_netsim.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    p_netsim.set_defaults(func=_cmd_netsim)

    p_history = sub.add_parser(
        "history", help="per-commit perf history: append + trend report"
    )
    p_history.add_argument(
        "suite", nargs="?", default=None,
        help="suite to report on (default: every suite touched or stored)",
    )
    p_history.add_argument(
        "--append", action="append", default=[], metavar="ARTIFACT",
        help="append a sweep artifact to the store first (repeatable)",
    )
    p_history.add_argument(
        "--dir", default=None,
        help="history store directory (default: benchmarks/history)",
    )
    p_history.add_argument(
        "--last", type=int, default=10, help="entries per trend window"
    )
    p_history.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative soft-regression threshold (fraction over baseline median)",
    )
    p_history.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="absolute slowdown floor before flagging",
    )
    p_history.set_defaults(func=_cmd_history)

    p_cells = sub.add_parser(
        "cells", help="per-cell wall-time table of sweep artifacts"
    )
    p_cells.add_argument("artifacts", nargs="+")
    p_cells.set_defaults(func=_cmd_cells)

    p_fuzz = sub.add_parser(
        "fuzz", help="cost-guided pathological-instance fuzzing"
    )
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_command", required=True)

    def add_corpus_arg(p):
        p.add_argument(
            "--corpus", default=None,
            help="corpus directory (default: benchmarks/fuzz_corpus)",
        )

    p_frun = fuzz_sub.add_parser(
        "run", help="time-boxed fuzz campaign (report-only, always exit 0)"
    )
    p_frun.add_argument(
        "--objective", default="rounds",
        help="cost to maximize: rounds, bits, recolor, escalations, wall, "
        "or trace:<section>[:bits|rounds|wall] (e.g. trace:acd.buddy:bits)",
    )
    p_frun.add_argument(
        "--generators", default=None, metavar="G1,G2",
        help="comma-separated generator subset (default: all fuzzable)",
    )
    p_frun.add_argument("--seed", type=int, default=0, help="root seed")
    p_frun.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; iteration k is deterministic in the root "
        "seed, the budget only decides how many run",
    )
    p_frun.add_argument(
        "--iters", type=int, default=None,
        help="exact iteration count (overrides --budget; fully deterministic)",
    )
    p_frun.add_argument(
        "--margin", type=float, default=1.25,
        help="normalized-score threshold for a find (times the baseline)",
    )
    p_frun.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-candidate cell budget in seconds",
    )
    p_frun.add_argument(
        "--no-minimize", action="store_true",
        help="record finds as discovered, skip the greedy shrink",
    )
    p_frun.add_argument("--json", action="store_true")
    p_frun.add_argument("--quiet", action="store_true", help="no progress stream")
    add_corpus_arg(p_frun)
    p_frun.set_defaults(func=_cmd_fuzz_run)

    p_flist = fuzz_sub.add_parser("list", help="list corpus entries")
    p_flist.add_argument(
        "--pathologies", action="store_true",
        help="list the pinned pathology suite instead of the working corpus",
    )
    p_flist.add_argument("--json", action="store_true")
    add_corpus_arg(p_flist)
    p_flist.set_defaults(func=_cmd_fuzz_list)

    p_freplay = fuzz_sub.add_parser(
        "replay", help="re-run entries, gate score + coloring digest (exit 1 on mismatch)"
    )
    p_freplay.add_argument(
        "entries", nargs="*", help="entry ids, id prefixes, or paths"
    )
    p_freplay.add_argument("--all", action="store_true", help="replay every entry")
    p_freplay.add_argument(
        "--pathologies", action="store_true",
        help="replay the pinned pathology entries instead of the working corpus",
    )
    p_freplay.add_argument(
        "--timeout", type=float, default=60.0, help="per-entry cell budget"
    )
    add_corpus_arg(p_freplay)
    p_freplay.set_defaults(func=_cmd_fuzz_replay)

    p_fpromote = fuzz_sub.add_parser(
        "promote", help="pin corpus entries into the pathology suite"
    )
    p_fpromote.add_argument("entries", nargs="+", help="entry ids or paths")
    p_fpromote.add_argument(
        "--dest", default=None,
        help="target directory (default: benchmarks/pathologies)",
    )
    add_corpus_arg(p_fpromote)
    p_fpromote.set_defaults(func=_cmd_fuzz_promote)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
