"""Fuzzing objectives: what "expensive" means for one run.

An :class:`Objective` turns a finished ``run_cell`` record into a scalar
cost the fuzz loop maximizes.  Two families:

- **metric objectives** read a field straight off the record's metrics
  (``rounds``, ``bits``, ``recolor``, ``escalations``) or its wall clock
  (``wall``);
- **trace-section objectives** (``trace:<section>[:bits|rounds|wall]``)
  sum one column over every span named ``<section>`` anywhere in the
  record's trace tree -- e.g. ``trace:acd.buddy:bits`` is the message
  volume the buddy predicate alone moved.

``deterministic`` marks objectives whose value is a pure function of the
cell (rounds, bits, counts -- everything the bitwise-determinism contract
pins).  Wall-clock objectives are useful for hunting slow instances but
cannot be replayed bitwise, so corpus replay only gates the score for
deterministic objectives (the coloring digest is always gated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "METRIC_OBJECTIVES",
    "Objective",
    "get_objective",
    "score_record",
]

#: Trace-span column → serialized-span field(s).
_TRACE_COLUMNS = {
    "bits": ("message_bits",),
    "rounds": ("rounds_h", "rounds_g"),
    "wall": ("wall_time_s",),
}


@dataclass(frozen=True)
class Objective:
    """A named cost function over ``run_cell`` records.

    ``section`` / ``column`` are set for trace objectives only;
    ``metric`` for metric objectives.  ``deterministic`` governs whether
    replay gates the recorded score bitwise.
    """

    name: str
    deterministic: bool
    metric: str | None = None
    section: str | None = None
    column: str | None = None


#: The built-in metric objectives, keyed by CLI name.
METRIC_OBJECTIVES: dict[str, Objective] = {
    "rounds": Objective("rounds", deterministic=True, metric="rounds_h"),
    "bits": Objective("bits", deterministic=True, metric="total_message_bits"),
    "recolor": Objective(
        "recolor", deterministic=True, metric="recolor_fraction_mean"
    ),
    "escalations": Objective(
        "escalations", deterministic=True, metric="escalations"
    ),
    # simulated-clock makespan: only scored on cells carrying the net_*
    # knobs (the metric is absent otherwise -> candidate out of scope),
    # but deterministic there -- it is a pure function of the charge
    # sequence and the seed-sampled fabric
    "makespan": Objective("makespan", deterministic=True, metric="makespan_ms"),
    "wall": Objective("wall", deterministic=False, metric="wall_time_s"),
}


def get_objective(name: str) -> Objective:
    """Resolve an objective by CLI name.

    Plain names come from :data:`METRIC_OBJECTIVES`;
    ``trace:<section>[:<column>]`` builds a trace-section objective
    (column defaults to ``bits``).  Raises ``ValueError`` on anything
    else, listing the valid spellings.
    """
    if name in METRIC_OBJECTIVES:
        return METRIC_OBJECTIVES[name]
    if name.startswith("trace:"):
        parts = name.split(":")
        if len(parts) == 2:
            section, column = parts[1], "bits"
        elif len(parts) == 3:
            section, column = parts[1], parts[2]
        else:
            raise ValueError(f"malformed trace objective {name!r}")
        if not section:
            raise ValueError(f"trace objective {name!r} names no section")
        if column not in _TRACE_COLUMNS:
            raise ValueError(
                f"unknown trace column {column!r}; "
                f"expected one of {', '.join(sorted(_TRACE_COLUMNS))}"
            )
        return Objective(
            f"trace:{section}:{column}",
            deterministic=(column != "wall"),
            section=section,
            column=column,
        )
    raise ValueError(
        f"unknown objective {name!r}; expected one of "
        f"{', '.join(sorted(METRIC_OBJECTIVES))} or trace:<section>[:<column>]"
    )


def _sum_section(spans: list[dict[str, Any]], section: str, fields: tuple[str, ...]) -> float:
    """Sum ``fields`` over every span named ``section``, at any depth."""
    total = 0.0
    for span in spans:
        if span.get("name") == section:
            total += sum(float(span.get(f) or 0) for f in fields)
        total += _sum_section(span.get("children", []), section, fields)
    return total


def score_record(objective: Objective, record: dict[str, Any]) -> float | None:
    """Extract ``objective``'s cost from a finished ``run_cell`` record.

    Returns ``None`` when the record cannot be scored: non-``ok`` status,
    a metric the cell's algorithm does not report (e.g. ``recolor`` on a
    one-shot cell), or a trace objective on an untraced record.  The fuzz
    loop treats ``None`` as "candidate out of scope", not as cost zero.
    """
    if record.get("status") != "ok":
        return None
    if objective.section is not None:
        trace = record.get("trace")
        if not trace:
            return None
        fields = _TRACE_COLUMNS[objective.column or "bits"]
        return _sum_section(trace.get("spans", []), objective.section, fields)
    if objective.metric == "wall_time_s":
        wall = record.get("wall_time_s")
        return None if wall is None else float(wall)
    value = record.get("metrics", {}).get(objective.metric)
    return None if value is None else float(value)
