"""Greedy parameter minimization of fuzzer finds.

A raw find is usually bloated: the mutation walk that discovered it also
inflated parameters that contribute nothing to the blow-up.  The
minimizer shrinks the instance -- size-role parameters first -- while the
normalized score stays above the interestingness margin, so what lands in
the corpus is the smallest instance that still exhibits the pathology
(cheap to replay in CI forever after).

The procedure is deterministic (no RNG): repeated greedy passes over the
fuzzable parameters, each trying the most aggressive shrink first (jump
to the parameter's default / box floor, then the midpoint).  A trial is
accepted iff it strictly reduces instance weight *and* keeps the
normalized score at or above the margin -- so accepted weight is monotone
non-increasing and termination is guaranteed by the per-pass fixed point
plus the evaluation budget.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments.runner import run_cell
from repro.fuzz.objectives import Objective, score_record
from repro.workloads.specs import clamp_params, fuzzable_params

__all__ = ["minimize_find", "param_weight"]

ProgressFn = Callable[[str], None]


def param_weight(generator: str, params: dict[str, Any]) -> float:
    """Instance weight: each numeric fuzzable parameter's position in its
    mutation box, summed (0 = everything at its floor).  The quantity the
    minimizer drives down."""
    weight = 0.0
    for name, spec in fuzzable_params(generator).items():
        value = params.get(name)
        if value is None or spec.kind not in ("int", "float"):
            continue
        lo, hi = spec.box
        if hi > lo:
            weight += (float(value) - lo) / (hi - lo)
    return weight


def normalized(raw: float | None, baseline: float | None) -> float | None:
    """Score relative to the generator's baseline cell (shared with the
    fuzz loop): ``raw / baseline``, with a zero baseline mapping to
    ``inf`` for any positive raw cost (strictly worse than a baseline
    that paid nothing) and ``1.0`` when both are zero."""
    if raw is None or baseline is None:
        return None
    if baseline > 0:
        return raw / baseline
    return float("inf") if raw > 0 else 1.0


def _shrink_trials(spec, current: float) -> list[float]:
    """Candidate shrunk values, most aggressive first."""
    lo, _hi = spec.box
    target = spec.default if spec.default is not None else lo
    target = spec.clamp(target)
    if float(target) >= float(current):
        target = lo
    trials = [target, (float(current) + float(target)) / 2.0]
    out: list[float] = []
    for t in trials:
        t = int(round(t)) if spec.kind == "int" else float(t)
        if float(t) < float(current) and t not in out:
            out.append(t)
    return out


def minimize_find(
    generator: str,
    cell: dict[str, Any],
    objective: Objective,
    baseline_raw: float,
    margin: float,
    *,
    timeout_s: float | None = None,
    max_evals: int = 32,
    progress: ProgressFn | None = None,
) -> tuple[dict[str, Any], dict[str, Any] | None, float, int]:
    """Shrink ``cell`` while its normalized score stays ``>= margin``.

    Returns ``(best_cell, best_record, best_raw, evals)`` where
    ``best_record`` is the full ``run_cell`` record of the minimized cell
    (``None`` only if no trial was ever accepted, in which case the input
    cell comes back unchanged and the caller already holds its record).
    """
    emit = progress or (lambda _line: None)
    params = dict(cell.get("workload_kwargs", {}))
    specs = fuzzable_params(generator)
    # size-role parameters first: shrinking scale buys the most replay time
    order = sorted(
        (n for n in specs if specs[n].kind in ("int", "float")),
        key=lambda n: (specs[n].role != "size", n),
    )
    choice_order = sorted(n for n in specs if specs[n].kind == "choice")
    best_record: dict[str, Any] | None = None
    best_raw = float("nan")
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        # canonicalize choice parameters first: resetting topology et al.
        # to their defaults costs no weight but collapses behaviorally
        # equivalent finds into one corpus entry
        for name in choice_order:
            spec = specs[name]
            current = params.get(name)
            if (
                current is None
                or spec.default is None
                or current == spec.default
                or evals >= max_evals
            ):
                continue
            candidate = clamp_params(generator, {**params, name: spec.default})
            record = run_cell(
                {**cell, "workload_kwargs": candidate}, timeout_s, trace=True
            )
            evals += 1
            raw = score_record(objective, record)
            norm = normalized(raw, baseline_raw)
            if norm is not None and norm >= margin:
                params = candidate
                best_record, best_raw = record, float(raw)  # type: ignore[arg-type]
                improved = True
                emit(f"  min {generator}.{name} -> {spec.default}")
        for name in order:
            current = params.get(name)
            if current is None:
                continue
            for trial in _shrink_trials(specs[name], current):
                if evals >= max_evals:
                    break
                candidate = clamp_params(generator, {**params, name: trial})
                if param_weight(generator, candidate) >= param_weight(
                    generator, params
                ):
                    continue  # cross-parameter clamping undid the shrink
                trial_cell = {**cell, "workload_kwargs": candidate}
                record = run_cell(trial_cell, timeout_s, trace=True)
                evals += 1
                raw = score_record(objective, record)
                norm = normalized(raw, baseline_raw)
                if norm is not None and norm >= margin:
                    params = candidate
                    best_record, best_raw = record, float(raw)  # type: ignore[arg-type]
                    improved = True
                    emit(
                        f"  min {generator}.{name} -> {candidate[name]} "
                        f"(norm {norm:.2f}, weight "
                        f"{param_weight(generator, params):.2f})"
                    )
                    break  # restart this parameter from its new value
    return {**cell, "workload_kwargs": params}, best_record, best_raw, evals
