"""The time-boxed, cost-guided fuzz loop.

Every candidate is one mutation of a parent parameter set, run through
the ordinary :func:`repro.experiments.runner.run_cell` path with tracing
on, and scored by the configured objective **normalized against the
generator's baseline cell** (the small :data:`DEFAULT_BASES` instance,
evaluated once up front).  Candidates scoring at or above the margin are
greedily minimized (:mod:`repro.fuzz.minimize`) and recorded as finds;
their parameter sets join the parent pool, so the search walks toward
expensive regions instead of sampling blindly.

Determinism under a wall-clock budget: iteration ``k`` draws all its
randomness from ``np.random.default_rng([root_seed, k])`` and parent
selection depends only on the finds of iterations ``< k``, so two runs
with the same root seed agree exactly on every iteration they both
execute -- the budget only decides how far the shared sequence gets.
``iters`` pins the exact stopping point when bitwise-identical reports
matter (tests, corpus regeneration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.experiments.runner import run_cell
from repro.fuzz.minimize import minimize_find, normalized, param_weight
from repro.fuzz.mutators import mutate
from repro.fuzz.objectives import get_objective, score_record
from repro.workloads import STREAMS

__all__ = ["DEFAULT_BASES", "FuzzConfig", "run_fuzz"]

ProgressFn = Callable[[str], None]

#: Baseline parameter sets, one per fuzzable generator: small enough that
#: a smoke budget affords dozens of evaluations, structured enough that
#: every pipeline stage runs.  These are the normalization denominators --
#: a find's score is "times more expensive than this".
DEFAULT_BASES: dict[str, dict[str, Any]] = {
    # cluster_size 1 keeps the base on the high-degree pipeline, so norms
    # measure stage-cost growth rather than only the regime-dispatch cliff
    "planted_acd": {
        "n_cliques": 3, "clique_size": 24, "n_sparse": 40, "cluster_size": 1
    },
    "cabal": {"n_cabals": 2, "clique_size": 24},
    "congest": {"n": 120},
    "contraction": {"n": 150},
    "voronoi": {"n": 200, "n_clusters": 50},
    "bridge": {"half_size": 8, "external_per_side": 6},
    "high_degree": {"n_vertices": 150, "degree_fraction": 0.4},
    "low_degree": {"n_vertices": 200, "target_degree": 6, "cluster_size": 2},
    "sliding_window": {"n_vertices": 200, "batches": 5},
    "hotspot_churn": {"n_vertices": 200, "batches": 5},
    "cluster_churn": {"n_vertices": 120, "batches": 4, "cluster_size": 4},
}

#: Hard iteration ceiling (budget-only runs cannot spin forever on
#: cached duplicates).
MAX_ITERS = 10_000


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz run's knobs (all deterministic inputs to the search)."""

    objective: str = "rounds"
    generators: tuple[str, ...] = ()
    root_seed: int = 0
    iters: int | None = None
    budget_s: float | None = 30.0
    margin: float = 1.25
    cell_timeout_s: float = 30.0
    minimize: bool = True
    max_min_evals: int = 24


@dataclass
class FuzzReport:
    """Everything a fuzz run produced, JSON-ready via :meth:`to_dict`."""

    objective: str
    root_seed: int
    margin: float
    iterations: int = 0
    evaluations: int = 0
    baselines: dict[str, float] = field(default_factory=dict)
    finds: list[dict[str, Any]] = field(default_factory=list)
    skipped_generators: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (the ``repro fuzz run --json`` payload)."""
        return {
            "objective": self.objective,
            "root_seed": self.root_seed,
            "margin": self.margin,
            "iterations": self.iterations,
            "evaluations": self.evaluations,
            "baselines": dict(self.baselines),
            "skipped_generators": list(self.skipped_generators),
            "finds": list(self.finds),
        }


def base_cell(generator: str, params: dict[str, Any]) -> dict[str, Any]:
    """The canonical fuzz cell for ``generator`` with ``params``: scaled
    preset, auto regime, pinned run/instance seeds, dispatched to the
    stream engine for churn generators and the paper pipeline otherwise."""
    return {
        "suite": "fuzz",
        "workload": generator,
        "workload_kwargs": dict(params),
        "params": "scaled",
        "regime": "auto",
        "algorithm": "dynamic" if generator in STREAMS else "paper",
        "seed": 0,
        "instance_seed": 0,
    }


def _cell_key(cell: dict[str, Any]) -> str:
    import json

    return json.dumps(
        {k: v for k, v in cell.items() if k != "suite"},
        sort_keys=True,
        separators=(",", ":"),
    )


def run_fuzz(
    config: FuzzConfig, progress: ProgressFn | None = None
) -> FuzzReport:
    """Run one cost-guided fuzzing campaign; returns the report.

    Generators whose baseline cannot be scored under the objective (e.g.
    ``recolor`` on a one-shot family) are skipped and listed in
    ``report.skipped_generators`` -- an all-skip run returns an empty
    report rather than raising, so mixed-generator invocations degrade
    gracefully.
    """
    emit = progress or (lambda _line: None)
    objective = get_objective(config.objective)
    names = list(config.generators) or sorted(DEFAULT_BASES)
    report = FuzzReport(
        objective=objective.name,
        root_seed=config.root_seed,
        margin=config.margin,
    )
    start = time.perf_counter()

    # -- baseline corpus: one cell per generator, scored once ------------
    baselines: dict[str, float] = {}
    for gen in names:
        if gen not in DEFAULT_BASES:
            raise ValueError(
                f"no fuzz base registered for generator {gen!r}; "
                f"known: {', '.join(sorted(DEFAULT_BASES))}"
            )
        record = run_cell(
            base_cell(gen, DEFAULT_BASES[gen]), config.cell_timeout_s, trace=True
        )
        report.evaluations += 1
        raw = score_record(objective, record)
        if raw is None:
            report.skipped_generators.append(gen)
            emit(f"baseline {gen}: unscorable under {objective.name}, skipped")
        else:
            baselines[gen] = float(raw)
            emit(f"baseline {gen}: {objective.name}={raw:g}")
    report.baselines = baselines
    gens = [g for g in names if g in baselines]
    if not gens:
        return report

    # -- the mutation walk ----------------------------------------------
    seen: set[str] = {
        _cell_key(base_cell(g, DEFAULT_BASES[g])) for g in gens
    }
    found_keys: set[str] = set()
    # elites: the best-normed parameter sets per generator, margin or not.
    # This is what makes the walk cost-guided rather than blind sampling:
    # a candidate at norm 1.1 is not yet a find, but it is a better parent
    # than the base, and compounding such steps crosses the margin.
    elites: dict[str, list[tuple[float, dict[str, Any]]]] = {
        g: [] for g in gens
    }
    k = 0
    while k < MAX_ITERS:
        if config.iters is not None and k >= config.iters:
            break
        if (
            config.iters is None
            and config.budget_s is not None
            and time.perf_counter() - start >= config.budget_s
        ):
            break
        rng = np.random.default_rng([config.root_seed, k])
        gen = gens[k % len(gens)]
        pool = [p for _n, p in elites[gen]]
        if pool and rng.random() < 0.7:
            # quadratic bias toward the best elite
            parent = pool[int(len(pool) * rng.random() ** 2)]
        else:
            parent = DEFAULT_BASES[gen]
        params = mutate(rng, gen, parent, pool)
        cell = base_cell(gen, params)
        if gen not in STREAMS and rng.random() < 0.25:
            cell["instance_seed"] = int(rng.integers(1, 4))
        k += 1
        key = _cell_key(cell)
        if key in seen:
            continue
        seen.add(key)
        record = run_cell(cell, config.cell_timeout_s, trace=True)
        report.evaluations += 1
        raw = score_record(objective, record)
        norm = normalized(raw, baselines[gen])
        if norm is None:
            emit(f"[{k}] {gen}: {record['status']} (unscored)")
            continue
        emit(
            f"[{k}] {gen}: {objective.name}={raw:g} "
            f"norm={norm:.2f}{' *' if norm >= config.margin else ''}"
        )
        if norm > 1.0:
            elite = elites[gen]
            elite.append((norm if norm != float("inf") else 1e18, dict(params)))
            elite.sort(key=lambda pair: -pair[0])
            del elite[6:]
        if norm < config.margin:
            continue
        # -- a find: minimize, dedupe, record ----------------------------
        min_evals = 0
        if config.minimize:
            cell, min_record, min_raw, min_evals = minimize_find(
                gen,
                cell,
                objective,
                baselines[gen],
                config.margin,
                timeout_s=config.cell_timeout_s,
                max_evals=config.max_min_evals,
                progress=progress,
            )
            report.evaluations += min_evals
            if min_record is not None:
                record, raw = min_record, min_raw
                norm = normalized(raw, baselines[gen])
        seen.add(_cell_key(cell))
        # finds deduplicate on (generator, minimized params): the same
        # parameter pathology re-discovered under another instance seed is
        # not a new find
        min_key = _cell_key(
            {"workload": gen, "kwargs": cell["workload_kwargs"]}
        )
        if min_key in found_keys:
            continue
        found_keys.add(min_key)
        report.finds.append(
            {
                "generator": gen,
                "iteration": k - 1,
                "cell": cell,
                "record": record,
                "score": float(raw),
                "baseline_score": baselines[gen],
                "norm": float(norm) if norm is not None else None,
                "weight": round(
                    param_weight(gen, cell["workload_kwargs"]), 4
                ),
                "minimized": bool(config.minimize and min_evals),
            }
        )
        emit(
            f"  find #{len(report.finds)}: {gen} norm={norm:.2f} "
            f"({min_evals} shrink evals)"
        )
    report.iterations = k
    report.finds.sort(key=lambda f: (-(f["norm"] or 0.0), f["iteration"]))
    return report
