"""Corpus management: persistent, replayable records of fuzzer finds.

Each find becomes one JSON file (schema ``repro.fuzz`` v1) carrying
everything needed to reproduce it from nothing: the full cell dict
(generator, params, seeds, algorithm), the objective and both raw and
normalized scores, the metrics snapshot (including the coloring digest),
and the aggregated per-stage trace rows at discovery time.  Two
directories share the format:

- ``benchmarks/fuzz_corpus/`` (:data:`CORPUS_DIR`) -- the working corpus
  ``repro fuzz run`` appends to; git-ignored, local to a machine.
- ``benchmarks/pathologies/`` (:data:`repro.experiments.spec.PATHOLOGY_DIR`)
  -- promoted entries, committed to the repo; the ``pathology`` suite
  loads its cells from here, so every promotion is a permanent
  regression test runnable through sweep/compare/history.

Replay reruns an entry's cell and gates the coloring digest always, and
the recorded score bitwise for deterministic objectives (wall-clock
objectives legitimately drift)."""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any

from repro.experiments.runner import run_cell
from repro.experiments.spec import PATHOLOGY_DIR
from repro.fuzz.minimize import normalized
from repro.fuzz.objectives import get_objective, score_record
from repro.observe import aggregate_stage_rows, stage_rows

__all__ = [
    "CORPUS_DIR",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "load_entries",
    "load_entry",
    "make_entry",
    "promote_entry",
    "replay_entry",
    "save_entry",
]

SCHEMA_NAME = "repro.fuzz"
SCHEMA_VERSION = 1

#: The working (git-ignored) corpus directory.
CORPUS_DIR = (
    pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "fuzz_corpus"
)


def _entry_id(generator: str, cell: dict[str, Any], objective: str) -> str:
    payload = json.dumps(
        {"cell": {k: v for k, v in cell.items() if k != "suite"},
         "objective": objective},
        sort_keys=True,
        separators=(",", ":"),
    )
    return f"{generator}-{hashlib.sha256(payload.encode()).hexdigest()[:10]}"


def make_entry(
    find: dict[str, Any], objective_name: str, root_seed: int
) -> dict[str, Any]:
    """Convert one :func:`repro.fuzz.loop.run_fuzz` find into a corpus
    entry (drops the bulky raw record, keeps metrics + aggregated trace
    stages as the reproducibility snapshot)."""
    record = find["record"]
    objective = get_objective(objective_name)
    cell = dict(find["cell"])
    return {
        "schema": {"name": SCHEMA_NAME, "version": SCHEMA_VERSION},
        "id": _entry_id(find["generator"], cell, objective.name),
        "generator": find["generator"],
        "objective": objective.name,
        "deterministic": objective.deterministic,
        "root_seed": root_seed,
        "iteration": find["iteration"],
        "score": find["score"],
        "baseline_score": find["baseline_score"],
        "norm": find["norm"],
        "minimized": find["minimized"],
        "cell": cell,
        "metrics": record.get("metrics", {}),
        "trace_stages": aggregate_stage_rows(stage_rows(record.get("trace"))),
    }


def save_entry(
    entry: dict[str, Any], directory: str | pathlib.Path | None = None
) -> pathlib.Path:
    """Write ``entry`` as ``<dir>/<id>.json`` (dir created on demand)."""
    directory = pathlib.Path(directory) if directory else CORPUS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry['id']}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path: str | pathlib.Path) -> dict[str, Any]:
    """Read one corpus entry, validating its schema stamp."""
    entry = json.loads(pathlib.Path(path).read_text())
    schema = entry.get("schema", {})
    if schema.get("name") != SCHEMA_NAME:
        raise ValueError(f"{path}: not a {SCHEMA_NAME} entry")
    if schema.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {schema.get('version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return entry


def load_entries(
    directory: str | pathlib.Path | None = None,
) -> list[tuple[pathlib.Path, dict[str, Any]]]:
    """Every entry under ``directory`` (default: the working corpus), in
    filename order; empty list when the directory does not exist."""
    directory = pathlib.Path(directory) if directory else CORPUS_DIR
    if not directory.is_dir():
        return []
    return [(p, load_entry(p)) for p in sorted(directory.glob("*.json"))]


def resolve_entry(
    ref: str, directory: str | pathlib.Path | None = None
) -> tuple[pathlib.Path, dict[str, Any]]:
    """Find an entry by id, id prefix, or path (corpus dir by default)."""
    as_path = pathlib.Path(ref)
    if as_path.is_file():
        return as_path, load_entry(as_path)
    matches = [
        (p, e) for p, e in load_entries(directory) if e["id"].startswith(ref)
    ]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ValueError(f"no corpus entry matches {ref!r}")
    ids = ", ".join(e["id"] for _, e in matches)
    raise ValueError(f"ambiguous entry ref {ref!r}: {ids}")


def replay_entry(
    entry: dict[str, Any], timeout_s: float | None = None
) -> dict[str, Any]:
    """Re-run an entry's cell and check it still reproduces.

    Returns a verdict dict: ``ok`` (overall), ``status`` (the rerun's
    cell status), ``score`` / ``norm`` (fresh values), ``score_ok``
    (bitwise score match; vacuously true for non-deterministic
    objectives), and ``digest_ok`` (coloring digest match, always
    gated)."""
    objective = get_objective(entry["objective"])
    record = run_cell(entry["cell"], timeout_s, trace=True)
    raw = score_record(objective, record)
    norm = normalized(raw, entry.get("baseline_score"))
    want_digest = entry.get("metrics", {}).get("coloring_digest")
    got_digest = record.get("metrics", {}).get("coloring_digest")
    digest_ok = want_digest is not None and got_digest == want_digest
    score_ok = (not objective.deterministic) or (
        raw is not None and float(raw) == float(entry["score"])
    )
    return {
        "ok": record["status"] == "ok" and score_ok and digest_ok,
        "status": record["status"],
        "score": None if raw is None else float(raw),
        "norm": norm,
        "score_ok": score_ok,
        "digest_ok": digest_ok,
        "digest": got_digest,
        "record": record,
    }


def promote_entry(
    entry: dict[str, Any],
    pathology_dir: str | pathlib.Path | None = None,
) -> pathlib.Path:
    """Copy ``entry`` into the pinned pathology directory.

    The cell is re-labelled into the ``pathology`` suite (its key is
    suite-independent, so artifacts still align with fuzz-time runs) and
    the file lands under ``benchmarks/pathologies/`` where
    :func:`repro.experiments.spec.pathology_suite` picks it up on next
    import -- promotion is literally "this find is now a suite cell"."""
    promoted = {
        **entry,
        "cell": {**entry["cell"], "suite": "pathology"},
    }
    return save_entry(promoted, pathology_dir or PATHOLOGY_DIR)
