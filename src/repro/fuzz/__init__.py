"""Cost-guided pathological-instance fuzzing (docs/FUZZING.md).

Hunts the instances where the pipeline's round/bit/wall-time behavior
degrades: typed mutators perturb generator parameters inside registered
bounds (:mod:`repro.workloads.specs`), a time-boxed loop scores each
candidate through the ordinary ``run_cell`` path against a baseline
corpus, finds are greedily minimized, and the corpus records every find
as a fully reproducible JSON entry that can be promoted into the pinned
``pathology`` suite -- turning each discovered blow-up into a permanent
regression test under sweep/compare/history.
"""

from repro.fuzz.corpus import (
    CORPUS_DIR,
    load_entries,
    load_entry,
    make_entry,
    promote_entry,
    replay_entry,
    resolve_entry,
    save_entry,
)
from repro.fuzz.loop import DEFAULT_BASES, FuzzConfig, FuzzReport, run_fuzz
from repro.fuzz.minimize import minimize_find, normalized, param_weight
from repro.fuzz.mutators import MUTATORS, mutate, splice
from repro.fuzz.objectives import METRIC_OBJECTIVES, Objective, get_objective, score_record

__all__ = [
    "CORPUS_DIR",
    "DEFAULT_BASES",
    "FuzzConfig",
    "FuzzReport",
    "METRIC_OBJECTIVES",
    "MUTATORS",
    "Objective",
    "get_objective",
    "load_entries",
    "load_entry",
    "make_entry",
    "minimize_find",
    "mutate",
    "normalized",
    "param_weight",
    "promote_entry",
    "replay_entry",
    "resolve_entry",
    "run_fuzz",
    "save_entry",
    "score_record",
    "splice",
]
