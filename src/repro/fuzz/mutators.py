"""Typed mutators over generator parameter sets.

Every mutator maps ``(rng, generator, params)`` to a new params dict and
ends in :func:`repro.workloads.specs.clamp_params`, so the post-condition
is uniform: **every output passes ``validate_params`` and builds** -- the
property the hypothesis suite in ``tests/test_fuzz.py`` pins.  Mutation
ranges come from each parameter's registered fuzz box
(:data:`repro.workloads.specs.PARAM_SPECS`), never from hard validity
bounds, so candidates stay inside what a smoke budget can afford to run.

Taxonomy (see docs/FUZZING.md):

- ``jitter`` -- multiplicative log-normal-ish perturbation of one numeric
  parameter: the local-search move.
- ``redraw`` -- resample one *structure*-role parameter uniformly over its
  box, biased toward the box edges: the blow-up move (densities, cabal
  counts, hotspot rates live here).
- ``flip`` -- re-pick one choice parameter (topology, mostly): support
  trees and dilation react to cluster shape discontinuously, so this is
  its own move rather than a jitter special case.
- ``splice`` -- uniform crossover of two parents' fuzzable parameters:
  recombines independently-discovered expensive traits, and for stream
  generators splices the churn-trace shape (batch counts, churn rates,
  merge/split mix) of one find onto the graph of another.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.workloads.specs import ParamSpec, clamp_params, fuzzable_params

__all__ = ["MUTATORS", "full_params", "mutate", "splice"]


def full_params(generator: str, params: dict[str, Any]) -> dict[str, Any]:
    """Fill ``params`` with spec defaults for every fuzzable parameter.

    Mutators operate on complete parameter vectors so a splice or jitter
    can touch knobs the base cell left implicit.  ``None`` defaults
    (generator-computed values) stay absent until a mutation sets them.
    """
    out = {
        name: spec.default
        for name, spec in fuzzable_params(generator).items()
        if spec.default is not None
    }
    out.update(params)
    return out


def _numeric_names(generator: str, params: dict[str, Any]) -> list[str]:
    return sorted(
        name
        for name, spec in fuzzable_params(generator).items()
        if spec.kind in ("int", "float") and params.get(name) is not None
    )


def _draw_in_box(rng: np.random.Generator, spec: ParamSpec) -> Any:
    """Uniform draw over the mutation box, biased 25% toward an edge
    (pathologies live at extremes more often than in the middle)."""
    lo, hi = spec.box
    roll = rng.random()
    if roll < 0.125:
        value = lo
    elif roll < 0.25:
        value = hi
    else:
        value = lo + (hi - lo) * rng.random()
    return int(round(value)) if spec.kind == "int" else float(value)


def jitter(
    rng: np.random.Generator, generator: str, params: dict[str, Any]
) -> dict[str, Any]:
    """Perturb one numeric parameter by a multiplicative factor in
    [0.5, 2] (ints additionally move by at least 1 so small values do not
    fixate under rounding)."""
    out = full_params(generator, params)
    names = _numeric_names(generator, out)
    if not names:
        return clamp_params(generator, out)
    name = names[rng.integers(len(names))]
    spec = fuzzable_params(generator)[name]
    factor = 2.0 ** rng.uniform(-1.0, 1.0)
    value = float(out[name]) * factor
    if spec.kind == "int" and int(round(value)) == int(out[name]):
        value = int(out[name]) + (1 if factor >= 1.0 else -1)
    out[name] = value
    return clamp_params(generator, out)


def redraw(
    rng: np.random.Generator, generator: str, params: dict[str, Any]
) -> dict[str, Any]:
    """Resample one structure-role parameter over its whole box."""
    out = full_params(generator, params)
    specs = fuzzable_params(generator)
    names = sorted(
        n for n, s in specs.items()
        if s.role == "structure" and s.kind in ("int", "float")
    ) or _numeric_names(generator, out)
    if not names:
        return clamp_params(generator, out)
    name = names[rng.integers(len(names))]
    out[name] = _draw_in_box(rng, specs[name])
    return clamp_params(generator, out)


def flip(
    rng: np.random.Generator, generator: str, params: dict[str, Any]
) -> dict[str, Any]:
    """Re-pick one choice parameter (falls back to jitter when the
    generator has none)."""
    out = full_params(generator, params)
    specs = fuzzable_params(generator)
    names = sorted(n for n, s in specs.items() if s.kind == "choice")
    if not names:
        return jitter(rng, generator, params)
    name = names[rng.integers(len(names))]
    choices = [c for c in (specs[name].choices or ()) if c is not None]
    out[name] = choices[rng.integers(len(choices))]
    return clamp_params(generator, out)


def splice(
    rng: np.random.Generator,
    generator: str,
    params: dict[str, Any],
    other: dict[str, Any],
) -> dict[str, Any]:
    """Uniform crossover: each fuzzable parameter comes from either
    parent with probability 1/2 (both parents must be ``generator``
    parameter sets)."""
    a = full_params(generator, params)
    b = full_params(generator, other)
    out = dict(a)
    for name in sorted(fuzzable_params(generator)):
        pick = b if rng.random() < 0.5 else a
        if name in pick:
            out[name] = pick[name]
        elif name in out and pick is b:
            del out[name]
    return clamp_params(generator, out)


#: Point mutators, in the deterministic order the loop draws from.
MUTATORS: tuple[Any, ...] = (jitter, jitter, redraw, flip)


def mutate(
    rng: np.random.Generator,
    generator: str,
    params: dict[str, Any],
    pool: list[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """One mutation step: a point mutator, or a splice against a random
    pool member when ``pool`` has material (probability 1/4)."""
    if pool and rng.random() < 0.25:
        other = pool[rng.integers(len(pool))]
        return splice(rng, generator, params, other)
    mutator = MUTATORS[rng.integers(len(MUTATORS))]
    return mutator(rng, generator, params)
