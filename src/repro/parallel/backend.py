"""The ExecutionBackend contract and the serial reference implementation.

A backend evaluates the pure batched kernels of
:mod:`repro.graphcore.kernels` on behalf of the coloring layer.  The
contract (docs/PARALLEL.md) has three clauses:

* **Value identity.**  For identical inputs, every backend returns the
  exact arrays the underlying kernel would: backends change *where* a
  kernel runs, never *what* it computes.  Because kernels are pure (no
  RNG, no ledger charges, no mutation), and all randomness stays with the
  coordinating process, colorings, RNG streams, and simulated-ledger
  charges are identical across backends and shard counts.
* **Deterministic merge.**  A sharded evaluation merges per-shard results
  in shard-index order, so repeated runs agree bit-for-bit.
* **Separate exchange accounting.**  Real cross-shard boundary traffic is
  charged to a backend-owned exchange ledger (surfaced via
  :meth:`ExecutionBackend.exchange_summary`), never to the simulation's
  :class:`~repro.network.ledger.BandwidthLedger` -- the simulated metrics
  of a run are backend-invariant by construction.

:class:`SerialBackend` is the identity implementation: direct in-process
delegation, used by default everywhere and bitwise-identical to the
pre-backend call sites (gated by the pinned-seed digests).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.graphcore import (
    CSRAdjacency,
    batch_conflict_mask,
    batch_slack_counts,
    batch_used_color_masks,
)

#: Environment variable naming the default backend (``serial``/``sharded``);
#: CLI flags override it.  Lets CI flip a whole sweep without new plumbing.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Environment variable naming the default shard count for ``sharded``.
SHARDS_ENV_VAR = "REPRO_SHARDS"


class ExecutionBackend(ABC):
    """Where batched kernels run (see module docstring for the contract)."""

    #: Human-readable backend name (``repro sweep`` records it).
    name: str = "abstract"

    def bind(self, runtime: Any) -> None:
        """Attach to one execution's runtime (graph, tracer, color width).

        Called by :class:`~repro.aggregation.runtime.ClusterRuntime` at
        construction.  Backends use it to size shared state and reset
        exchange accounting; the serial backend ignores it.
        """

    @abstractmethod
    def conflict_mask(
        self,
        csr: CSRAdjacency,
        colors: np.ndarray,
        vertices: np.ndarray,
        candidates: np.ndarray,
        *,
        proposal_map: np.ndarray | None = None,
        symmetric: bool = False,
    ) -> np.ndarray:
        """Evaluate :func:`repro.graphcore.batch_conflict_mask`."""

    @abstractmethod
    def used_color_masks(
        self,
        csr: CSRAdjacency,
        colors: np.ndarray,
        vertices: np.ndarray,
        num_colors: int,
    ) -> np.ndarray:
        """Evaluate :func:`repro.graphcore.batch_used_color_masks`."""

    @abstractmethod
    def slack_counts(
        self,
        csr: CSRAdjacency,
        colors: np.ndarray,
        vertices: np.ndarray,
        num_colors: int,
        *,
        active_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evaluate :func:`repro.graphcore.batch_slack_counts`."""

    def exchange_summary(self) -> dict[str, int] | None:
        """Cross-shard boundary-traffic totals, or ``None`` for backends
        that move no data between address spaces (the serial backend)."""
        return None

    def close(self) -> None:
        """Release worker processes / shared memory (idempotent)."""


class SerialBackend(ExecutionBackend):
    """In-process kernel evaluation -- the bitwise reference backend."""

    name = "serial"

    def conflict_mask(
        self, csr, colors, vertices, candidates, *, proposal_map=None, symmetric=False
    ):
        """Direct delegation to :func:`repro.graphcore.batch_conflict_mask`."""
        return batch_conflict_mask(
            csr,
            colors,
            vertices,
            candidates,
            proposal_map=proposal_map,
            symmetric=symmetric,
        )

    def used_color_masks(self, csr, colors, vertices, num_colors):
        """Direct delegation to :func:`repro.graphcore.batch_used_color_masks`."""
        return batch_used_color_masks(csr, colors, vertices, num_colors)

    def slack_counts(self, csr, colors, vertices, num_colors, *, active_mask=None):
        """Direct delegation to :func:`repro.graphcore.batch_slack_counts`."""
        return batch_slack_counts(
            csr, colors, vertices, num_colors, active_mask=active_mask
        )


#: Shared default instance: the serial backend is stateless, so every
#: runtime can use the same object without interference.
SERIAL_BACKEND = SerialBackend()


def make_backend(
    spec: str | ExecutionBackend | None = None,
    *,
    shards: int | None = None,
    mode: str | None = None,
) -> ExecutionBackend:
    """Resolve a backend from a CLI spec string, env vars, or an instance.

    ``spec`` may be ``"serial"``, ``"sharded"``, ``"sharded:<k>"``, an
    already-built :class:`ExecutionBackend` (returned as-is), or ``None``
    to consult ``$REPRO_BACKEND`` (defaulting to serial).  ``shards``
    overrides the shard count (else ``"sharded:<k>"``, else
    ``$REPRO_SHARDS``, else 2).  ``mode`` selects the sharded execution
    mode (``"fork"``/``"inline"``/``"auto"``; see
    :class:`~repro.parallel.sharded.ShardedBackend`).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "serial"
    spec = spec.strip().lower()
    if spec.startswith("sharded:"):
        spec, _, embedded = spec.partition(":")
        if shards is None:
            shards = int(embedded)
    if spec == "serial":
        return SERIAL_BACKEND
    if spec == "sharded":
        from repro.parallel.sharded import ShardedBackend

        if shards is None:
            env_shards = os.environ.get(SHARDS_ENV_VAR)
            shards = int(env_shards) if env_shards else 2
        kwargs = {} if mode is None else {"mode": mode}
        return ShardedBackend(shards=shards, **kwargs)
    raise ValueError(f"unknown backend spec {spec!r} (serial|sharded[:k])")
