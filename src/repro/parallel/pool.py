"""Shared process-pool and watchdog machinery.

Two consumers, one implementation:

* the experiment runner (:mod:`repro.experiments.runner`) scatters
  independent cells across a ``ProcessPoolExecutor`` (:func:`scatter`) and
  interrupts over-budget cells with a re-firing ``SIGALRM`` watchdog
  (:func:`arm_alarm` / :func:`disarm_alarm`);
* the sharded execution backend (:mod:`repro.parallel.sharded`) keeps a
  *persistent* set of forked workers alive across every kernel call of a
  pipeline (:class:`ShardWorkerPool`), because respawning per call would
  dwarf the kernels themselves.

The watchdog only raises while armed, so a late interval re-fire landing
inside a caller's own except/finally bookkeeping cannot escape a function
that promised never to raise.  ``SIGALRM`` is POSIX-and-main-thread only;
:func:`alarm_available` is the capability check, and callers degrade to
post-hoc budget flagging when it is False (the runner's
``timeout-unsupported`` status).
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterable, Iterator, Sequence


class WatchdogTimeout(Exception):
    """A watched computation exceeded its wall-clock budget."""


class WorkerCrash(RuntimeError):
    """A pool worker died or raised; the message carries its traceback."""


# The SIGALRM handler only raises while this flag is armed (see module
# docstring).  Module-global because signal handlers are process-global.
_alarm_state = {"armed": False}


def _alarm_handler(signum, frame):  # pragma: no cover - fires only on timeout
    if _alarm_state["armed"]:
        raise WatchdogTimeout()


def alarm_available() -> bool:
    """Whether a SIGALRM watchdog can be armed here.

    ``hasattr(signal, "SIGALRM")`` alone is not enough: ``signal.signal``
    raises ``ValueError`` off the main thread (e.g. the runner embedded
    under a thread-based caller), which used to surface as a bogus
    ``status="error"`` cell.
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def arm_alarm(timeout_s: float):
    """Install the watchdog handler and start a re-firing interval timer.

    Returns the previous ``SIGALRM`` handler (restore it after
    :func:`disarm_alarm`).  The timer re-fires every ``min(timeout_s, 0.1)``
    seconds until disarmed: a one-shot alarm can be swallowed by a broad
    ``except`` deep in library code, and the computation would then run to
    completion despite its budget.
    """
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    _alarm_state["armed"] = True
    signal.setitimer(signal.ITIMER_REAL, timeout_s, min(timeout_s, 0.1))
    return previous


def disarm_alarm() -> None:
    """Stop the watchdog: clear the armed flag and cancel the timer.

    Idempotent; safe to call from every except/finally branch of a caller.
    """
    _alarm_state["armed"] = False
    signal.setitimer(signal.ITIMER_REAL, 0)


def scatter(
    fn: Callable[..., Any],
    payloads: Sequence[tuple],
    *,
    jobs: int,
) -> Iterator[tuple[int, Any, str | None]]:
    """Run ``fn(*payload)`` for each payload across a process pool.

    Yields ``(index, result, error)`` triples as payloads complete (not in
    submission order).  A payload whose worker dies (OOM, hard crash) or
    whose future raises yields ``result=None`` with the formatted traceback
    as ``error`` -- the pool itself never raises, matching the runner's
    "partial data beats no data" discipline.
    """
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending = {
            pool.submit(fn, *payload): i for i, payload in enumerate(payloads)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                try:
                    yield index, future.result(), None
                except Exception:
                    yield index, None, traceback.format_exc(limit=5)


def _worker_loop(handler: Callable[[Any], Any], conn) -> None:
    """Forked worker body: serve requests until the ``None`` sentinel.

    Each reply is ``(ok, payload)``; a handler exception is caught and
    shipped back as a formatted traceback so the coordinator can re-raise
    with context instead of deadlocking on a dead pipe.
    """
    try:
        while True:
            request = conn.recv()
            if request is None:
                break
            try:
                conn.send((True, handler(request)))
            except Exception:
                conn.send((False, traceback.format_exc(limit=20)))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    finally:
        conn.close()


class ShardWorkerPool:
    """Persistent forked workers, one per shard, speaking over pipes.

    Built with one handler callable per worker; with the ``fork`` start
    method the handlers (and anything they close over -- shard CSRs,
    shared-memory views) are inherited copy-on-write, so nothing large is
    ever pickled.  Requests and replies go through ``Pipe`` pairs;
    :meth:`submit` is asynchronous and :meth:`result` blocks, so a
    coordinator can fan a round out to every worker before collecting in
    deterministic shard order.
    """

    #: Seconds :meth:`result` waits before declaring a worker hung.
    RESULT_TIMEOUT_S = 600.0

    def __init__(self, handlers: Sequence[Callable[[Any], Any]]):
        """Fork one worker per handler (requires :meth:`available`)."""
        ctx = multiprocessing.get_context("fork")
        self._procs = []
        self._conns = []
        for handler in handlers:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop, args=(handler, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    @staticmethod
    def available() -> bool:
        """Whether the ``fork`` start method exists on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def size(self) -> int:
        """Number of workers."""
        return len(self._procs)

    def submit(self, worker: int, request: Any) -> None:
        """Send ``request`` to ``worker`` without waiting for its reply."""
        try:
            self._conns[worker].send(request)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(f"shard worker {worker} is gone: {exc}") from exc

    def result(self, worker: int) -> Any:
        """Collect one reply from ``worker`` (blocking, bounded wait).

        Raises :class:`WorkerCrash` if the worker died, hung past
        ``RESULT_TIMEOUT_S``, or shipped back a handler traceback.
        """
        conn = self._conns[worker]
        try:
            if not conn.poll(self.RESULT_TIMEOUT_S):
                raise WorkerCrash(
                    f"shard worker {worker} produced no reply within "
                    f"{self.RESULT_TIMEOUT_S:g}s"
                )
            ok, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrash(f"shard worker {worker} died: {exc}") from exc
        if not ok:
            raise WorkerCrash(
                f"shard worker {worker} raised:\n{payload}"
            )
        return payload

    def map(self, requests: Iterable[Any]) -> list[Any]:
        """Fan one request per worker out, collect replies in worker order."""
        requests = list(requests)
        for i, request in enumerate(requests):
            self.submit(i, request)
        return [self.result(i) for i in range(len(requests))]

    def close(self) -> None:
        """Shut every worker down (sentinel, join, terminate stragglers)."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []

    def __del__(self):  # pragma: no cover - GC-time safety net
        try:
            self.close()
        except Exception:
            pass
