"""Execution backends: where the batched kernels actually run.

The coloring layer asks *what* to compute (conflict masks, used-color
masks, slack counts); an :class:`~repro.parallel.backend.ExecutionBackend`
decides *where*.  :class:`~repro.parallel.backend.SerialBackend` evaluates
kernels in-process and is bitwise-identical to calling them directly --
the default every pinned-seed digest gates.
:class:`~repro.parallel.sharded.ShardedBackend` partitions the CSR into
vertex shards (:func:`repro.graphcore.shard_csr`), evaluates each kernel
per shard -- inline or in a persistent forked worker pool sharing the
color state through anonymous shared memory -- merges results in
deterministic shard order, and charges a separate exchange ledger for the
boundary colors that cross shards between rounds.

:mod:`repro.parallel.pool` holds the process-pool and SIGALRM-watchdog
machinery shared by the sharded backend and the experiment runner.
"""

from repro.parallel.backend import (
    BACKEND_ENV_VAR,
    SHARDS_ENV_VAR,
    ExecutionBackend,
    SerialBackend,
    make_backend,
)
from repro.parallel.pool import (
    ShardWorkerPool,
    WatchdogTimeout,
    WorkerCrash,
    alarm_available,
    scatter,
)
from repro.parallel.sharded import ShardedBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "SHARDS_ENV_VAR",
    "ExecutionBackend",
    "SerialBackend",
    "ShardedBackend",
    "ShardWorkerPool",
    "WatchdogTimeout",
    "WorkerCrash",
    "alarm_available",
    "make_backend",
    "scatter",
]
