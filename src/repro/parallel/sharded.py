"""Sharded kernel evaluation over a persistent shared-memory worker pool.

:class:`ShardedBackend` partitions a graph's CSR into ``k`` vertex shards
(:func:`repro.graphcore.shard_csr`) and evaluates every kernel call
per shard.  The coordinating process keeps *all* randomness and ledger
state -- workers only ever see pure kernel inputs -- so results are
value-identical to the serial backend for any shard count (the backend
contract, docs/PARALLEL.md): per-shard partial results are merged in
deterministic shard-index order and scattered back to the caller's
query order.

Two execution modes:

* ``"fork"``: a persistent :class:`~repro.parallel.pool.ShardWorkerPool`
  of forked workers, one per shard.  Shard CSRs are inherited
  copy-on-write at fork time; the mutable round state (colors, proposal
  map, active mask) lives in anonymous shared memory
  (``multiprocessing.RawArray``) written by the coordinator before each
  round and read by workers through inherited numpy views, so nothing
  grows with the graph on the request pipes.
* ``"inline"``: the same partition, merge order, and exchange accounting
  executed in-process -- the degenerate pool for machines without
  ``fork`` (or without spare cores, where forked workers cannot win).

``"auto"`` picks ``fork`` when the platform supports it and more than one
CPU is available, else ``inline``.

Boundary accounting: before each kernel evaluation the coordinator
"ships" every shard the colors of its halo vertices that changed since
the previous exchange (the first exchange ships the whole halo).  Those
payloads are charged to per-shard :class:`~repro.network.ledger.BandwidthLedger`
partials -- ``bits = color_bits x changed-halo size`` (plus the boundary
slice of the proposal map for proposal rounds), ``rounds_h = 1`` per
exchange -- merged via :meth:`~repro.network.ledger.BandwidthLedger.absorb`
in shard order by :meth:`ShardedBackend.exchange_summary`.  This exchange
ledger is deliberately *separate* from the simulation's ledger: simulated
metrics stay backend-invariant, while the exchange summary measures what
the sharded execution actually moved.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any

import numpy as np

from repro.graphcore import CSRAdjacency, shard_csr
from repro.graphcore.kernels import (
    batch_slack_counts,
    batch_used_color_masks,
    gather_neighborhoods,
)
from repro.graphcore.shard import CSRShard, ShardPlan
from repro.network.ledger import BandwidthLedger
from repro.observe.tracer import NULL_TRACER
from repro.parallel.backend import ExecutionBackend
from repro.parallel.pool import ShardWorkerPool

#: Proposal-map sentinel for "no proposal" (mirrors resolve_proposals).
NO_PROPOSAL = -2

#: Fallback color width (bits) when the backend is used unbound.
DEFAULT_COLOR_BITS = 16

#: Fallback per-link bandwidth for the exchange ledger when unbound.
DEFAULT_EXCHANGE_CAP_BITS = 1 << 20


def _shard_conflict_mask(
    shard: CSRShard,
    colors_local: np.ndarray,
    verts_local: np.ndarray,
    candidates: np.ndarray,
    proposal_local: np.ndarray | None,
    symmetric: bool,
) -> np.ndarray:
    """Per-shard ``batch_conflict_mask`` over shard-local state.

    Neighbor colors and proposals are read from the shard-local view
    (owned + halo); the smaller-ID-wins tie-break compares *global* ids
    (mapped through ``local_to_global``), exactly as the full-CSR kernel
    does -- local ids would order halo vertices after owned ones and
    corrupt the rule.
    """
    seg_ids, flat_local = gather_neighborhoods(shard.csr, verts_local)
    flat_cand = candidates[seg_ids]
    conflict = colors_local[flat_local] == flat_cand
    if proposal_local is not None:
        same = proposal_local[flat_local] == flat_cand
        if not symmetric:
            flat_global = shard.local_to_global[flat_local]
            verts_global = verts_local + shard.lo
            same &= flat_global < verts_global[seg_ids]
        conflict |= same
    return np.bincount(seg_ids[conflict], minlength=verts_local.size) > 0


def _make_shard_handler(
    shard: CSRShard,
    colors_view: np.ndarray,
    proposal_view: np.ndarray,
    active_view: np.ndarray,
):
    """Build the request handler one forked worker serves.

    The views are numpy wrappers over the coordinator's shared-memory
    buffers; with the ``fork`` start method the closure (shard CSR
    included) is inherited copy-on-write, so the worker gathers its
    owned+halo slice fresh from shared memory on every request -- the
    in-simulation boundary import.
    """

    def handle(request: tuple) -> np.ndarray:
        kind = request[0]
        colors_local = colors_view[shard.local_to_global]
        if kind == "conflict":
            _, verts_local, cands, use_proposals, symmetric = request
            proposal_local = (
                proposal_view[shard.local_to_global] if use_proposals else None
            )
            return _shard_conflict_mask(
                shard, colors_local, verts_local, cands, proposal_local, symmetric
            )
        if kind == "used":
            _, verts_local, num_colors = request
            return batch_used_color_masks(
                shard.csr, colors_local, verts_local, num_colors
            )
        if kind == "slack":
            _, verts_local, num_colors, use_active = request
            active_local = (
                active_view[shard.local_to_global].view(bool) if use_active else None
            )
            return batch_slack_counts(
                shard.csr,
                colors_local,
                verts_local,
                num_colors,
                active_mask=active_local,
            )
        raise ValueError(f"unknown shard request kind {kind!r}")

    return handle


class ShardedBackend(ExecutionBackend):
    """Evaluate kernels per CSR shard; merge in deterministic shard order.

    Parameters
    ----------
    shards:
        Requested shard count ``k`` (clamped to the vertex count per
        graph; ``k=1`` degenerates to serial evaluation plus accounting).
    mode:
        ``"fork"`` (persistent worker pool), ``"inline"`` (in-process), or
        ``"auto"`` (fork when supported and more than one CPU is online).
    """

    name = "sharded"

    def __init__(self, shards: int = 2, mode: str = "auto"):
        """See class docstring."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if mode not in ("auto", "fork", "inline"):
            raise ValueError(f"unknown sharded mode {mode!r}")
        if mode == "auto":
            mode = (
                "fork"
                if ShardWorkerPool.available() and (os.cpu_count() or 1) > 1
                else "inline"
            )
        if mode == "fork" and not ShardWorkerPool.available():
            raise ValueError("fork start method unavailable on this platform")
        self.shards = shards
        self.mode = mode
        self._tracer = NULL_TRACER
        self._color_bits = DEFAULT_COLOR_BITS
        self._cap_bits = DEFAULT_EXCHANGE_CAP_BITS
        self._csr: CSRAdjacency | None = None
        self._plan: ShardPlan | None = None
        self._pool: ShardWorkerPool | None = None
        self._handlers: list | None = None
        self._colors_view: np.ndarray | None = None
        self._proposal_view: np.ndarray | None = None
        self._active_view: np.ndarray | None = None
        self._synced: np.ndarray | None = None
        self._never_synced = True
        self._shard_ledgers: list[BandwidthLedger] = []
        self._exchanges = 0

    # ---- lifecycle -----------------------------------------------------------

    def bind(self, runtime: Any) -> None:
        """Adopt one execution's tracer and message widths.

        Rebinding (a new pipeline, a dynamic escalation onto a snapshot
        graph) keeps the cumulative exchange ledgers but drops the shard
        plan, so the next kernel call re-partitions the new graph.
        """
        self._tracer = runtime.tracer if runtime.tracer is not None else NULL_TRACER
        self._color_bits = runtime.color_bits
        ledger = getattr(runtime, "ledger", None)
        if ledger is not None:
            self._cap_bits = ledger.bandwidth_bits
        self._drop_plan()

    def close(self) -> None:
        """Shut the worker pool down and forget the current plan."""
        self._drop_plan()

    def _drop_plan(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._csr = None
        self._plan = None
        self._handlers = None
        self._colors_view = None
        self._proposal_view = None
        self._active_view = None
        self._synced = None
        self._never_synced = True

    def _ensure_plan(self, csr: CSRAdjacency) -> ShardPlan:
        """(Re)build the shard plan, shared state, and worker pool for
        ``csr``.  Keyed on CSR identity: the coloring layer passes the same
        CSR object for the whole pipeline, so this runs once per graph."""
        if self._plan is not None and self._csr is csr:
            return self._plan
        self._drop_plan()
        plan = shard_csr(csr, self.shards)
        n = max(csr.n_vertices, 1)
        if self.mode == "fork":
            colors_buf = multiprocessing.RawArray("q", n)
            proposal_buf = multiprocessing.RawArray("q", n)
            active_buf = multiprocessing.RawArray("b", n)
            self._colors_view = np.frombuffer(colors_buf, dtype=np.int64)
            self._proposal_view = np.frombuffer(proposal_buf, dtype=np.int64)
            self._active_view = np.frombuffer(active_buf, dtype=np.int8)
            handlers = [
                _make_shard_handler(
                    shard, self._colors_view, self._proposal_view, self._active_view
                )
                for shard in plan.shards
            ]
            self._pool = ShardWorkerPool(handlers)
        else:
            self._handlers = None  # inline mode gathers from caller arrays
        while len(self._shard_ledgers) < plan.k:
            self._shard_ledgers.append(
                BandwidthLedger(bandwidth_bits=self._cap_bits, dilation=1)
            )
        self._csr = csr
        self._plan = plan
        self._synced = None
        self._never_synced = True
        return plan

    # ---- boundary exchange ---------------------------------------------------

    def _exchange(
        self,
        plan: ShardPlan,
        colors: np.ndarray,
        proposal_map: np.ndarray | None,
        touched: np.ndarray,
    ) -> int:
        """Account one boundary-color exchange; returns total payload bits.

        ``touched[i]`` marks shards that received work this round; only
        they are shipped their boundary payload (and charged).  The first
        exchange after a (re)plan ships each shard its full halo -- the
        initial distribution -- and later exchanges ship only the halo
        entries whose color changed since the previous exchange.
        """
        if self._synced is None:
            self._synced = np.full(colors.shape, -3, dtype=np.int64)
        changed = colors != self._synced
        total_bits = 0
        for shard, ledger in zip(plan.shards, self._shard_ledgers):
            if not touched[shard.index]:
                continue
            halo = shard.halo
            payload = int(halo.size) if self._never_synced else int(
                np.count_nonzero(changed[halo])
            )
            bits = self._color_bits * payload
            if proposal_map is not None and halo.size:
                bits += self._color_bits * int(
                    np.count_nonzero(proposal_map[halo] != NO_PROPOSAL)
                )
            ledger.charge(
                "shard.exchange", bits, rounds_h=1, pipelined=True
            )
            total_bits += bits
        np.copyto(self._synced, colors)
        self._never_synced = False
        self._exchanges += 1
        return total_bits

    def exchange_summary(self) -> dict[str, int]:
        """Cross-shard traffic totals: per-shard ledger partials merged via
        ``absorb`` in shard-index order, plus exchange/shard counts."""
        merged = BandwidthLedger(bandwidth_bits=self._cap_bits, dilation=1)
        for index, ledger in enumerate(self._shard_ledgers):
            merged.absorb(ledger.summary(), op=f"shard[{index}]")
        summary = merged.summary()
        summary["exchanges"] = self._exchanges
        summary["shards"] = self.shards
        summary["mode"] = self.mode
        return summary

    # ---- dispatch ------------------------------------------------------------

    def _dispatch(
        self,
        csr: CSRAdjacency,
        colors: np.ndarray,
        vertices: np.ndarray,
        requests_for,
        merge_dtype,
        result_columns: int | None,
        *,
        op: str,
        row_payload: np.ndarray | None = None,
        proposal_map: np.ndarray | None = None,
        active_mask: np.ndarray | None = None,
    ):
        """Shared scatter/compute/merge skeleton for every kernel op.

        ``requests_for(shard, verts_local, payload_slice)`` builds the
        per-shard request (``payload_slice`` is the matching slice of
        ``row_payload``, a per-query-vertex companion array such as the
        candidate colors).  Per-shard results are collected in
        shard-index order and scattered back to the caller's query order
        through the stable owner sort's inverse permutation.
        """
        verts = np.asarray(vertices, dtype=np.int64).reshape(-1)
        plan = self._ensure_plan(csr)
        owners = plan.owner_of(verts)
        order = np.argsort(owners, kind="stable")
        sorted_verts = verts[order]
        sorted_owners = owners[order]
        sorted_payload = row_payload[order] if row_payload is not None else None
        starts = np.searchsorted(sorted_owners, np.arange(plan.k))
        stops = np.searchsorted(sorted_owners, np.arange(plan.k), side="right")
        touched = stops > starts

        with self._tracer.span("shard.exchange", op=op, shards=plan.k) as span:
            bits = self._exchange(plan, colors, proposal_map, touched)
            span.counter("boundary_bits", bits)
            span.counter("vertices", int(verts.size))

        if self.mode == "fork":
            np.copyto(self._colors_view, colors)
            if proposal_map is not None:
                np.copyto(self._proposal_view, proposal_map)
            if active_mask is not None:
                np.copyto(self._active_view, active_mask.view(np.int8))

        pieces: list[np.ndarray | None] = [None] * plan.k
        submitted = []
        for shard in plan.shards:
            if not touched[shard.index]:
                continue
            lo, hi = starts[shard.index], stops[shard.index]
            verts_local = sorted_verts[lo:hi] - shard.lo
            payload_slice = (
                sorted_payload[lo:hi] if sorted_payload is not None else None
            )
            request = requests_for(shard, verts_local, payload_slice)
            if self.mode == "fork":
                self._pool.submit(shard.index, request)
                submitted.append(shard.index)
            else:
                with self._tracer.span(f"shard.compute[{shard.index}]", op=op):
                    pieces[shard.index] = self._inline_compute(
                        shard, request, colors, proposal_map, active_mask
                    )
        for index in submitted:
            with self._tracer.span(f"shard.compute[{index}]", op=op):
                pieces[index] = self._pool.result(index)

        shape = (verts.size,) if result_columns is None else (
            verts.size,
            result_columns,
        )
        out = np.empty(shape, dtype=merge_dtype)
        parts = [pieces[i] for i in range(plan.k) if touched[i]]
        if parts:
            out[order] = np.concatenate(parts, axis=0)
        return out

    def _inline_compute(
        self,
        shard: CSRShard,
        request: tuple,
        colors: np.ndarray,
        proposal_map: np.ndarray | None,
        active_mask: np.ndarray | None,
    ) -> np.ndarray:
        """Inline-mode evaluation: gather shard-local views directly from
        the caller's arrays (no shared memory) and run the same per-shard
        kernels the forked workers run."""
        kind = request[0]
        colors_local = colors[shard.local_to_global]
        if kind == "conflict":
            _, verts_local, cands, use_proposals, symmetric = request
            proposal_local = (
                proposal_map[shard.local_to_global] if use_proposals else None
            )
            return _shard_conflict_mask(
                shard, colors_local, verts_local, cands, proposal_local, symmetric
            )
        if kind == "used":
            _, verts_local, num_colors = request
            return batch_used_color_masks(
                shard.csr, colors_local, verts_local, num_colors
            )
        _, verts_local, num_colors, use_active = request
        active_local = active_mask[shard.local_to_global] if use_active else None
        return batch_slack_counts(
            shard.csr, colors_local, verts_local, num_colors, active_mask=active_local
        )

    # ---- ExecutionBackend ops ------------------------------------------------

    def conflict_mask(
        self, csr, colors, vertices, candidates, *, proposal_map=None, symmetric=False
    ):
        """Sharded :func:`repro.graphcore.batch_conflict_mask` (value-identical)."""
        verts = np.asarray(vertices, dtype=np.int64).reshape(-1)
        cands = np.asarray(candidates, dtype=np.int64).reshape(-1)
        if verts.size == 0:
            return np.zeros(0, dtype=bool)

        def requests_for(shard, verts_local, cands_slice):
            return (
                "conflict",
                verts_local,
                cands_slice,
                proposal_map is not None,
                symmetric,
            )

        return self._dispatch(
            csr,
            colors,
            verts,
            requests_for,
            bool,
            None,
            op="conflict",
            row_payload=cands,
            proposal_map=proposal_map,
        )

    def used_color_masks(self, csr, colors, vertices, num_colors):
        """Sharded :func:`repro.graphcore.batch_used_color_masks` (value-identical)."""
        verts = np.asarray(vertices, dtype=np.int64).reshape(-1)
        if verts.size == 0:
            return np.zeros((0, num_colors), dtype=bool)

        def requests_for(shard, verts_local, _payload):
            return ("used", verts_local, num_colors)

        return self._dispatch(
            csr, colors, verts, requests_for, bool, num_colors, op="used"
        )

    def slack_counts(self, csr, colors, vertices, num_colors, *, active_mask=None):
        """Sharded :func:`repro.graphcore.batch_slack_counts` (value-identical)."""
        verts = np.asarray(vertices, dtype=np.int64).reshape(-1)
        if verts.size == 0:
            return np.zeros(0, dtype=np.int64)

        def requests_for(shard, verts_local, _payload):
            return ("slack", verts_local, num_colors, active_mask is not None)

        return self._dispatch(
            csr,
            colors,
            verts,
            requests_for,
            np.int64,
            None,
            op="slack",
            active_mask=active_mask,
        )
