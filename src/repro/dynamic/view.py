"""Static conflict-graph views over the dynamic engine's state.

The streaming engine maintains adjacency in a :class:`~repro.dynamic.delta.DeltaCSR`
plus per-cluster metadata (machine counts, support-tree height estimates).
When the full one-shot pipeline must run -- the recolor-from-scratch baseline
and the engine's own escalation path -- it needs a graph exposing the
read interface of :class:`~repro.cluster.cluster_graph.ClusterGraph`.
:class:`FrozenConflictGraph` is that adapter: an immutable snapshot built on
a plain CSR, exactly like :class:`~repro.cluster.virtual_graph.VirtualGraph`
duck-types the same interface for Appendix A.

Removed vertices appear as isolated (edge-free) ids so the stable-id
contract of the stream survives the snapshot; isolated vertices cannot
constrain anything and cost the pipeline nothing interesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphcore.csr import CSRAdjacency


@dataclass
class FrozenConflictGraph:
    """An immutable conflict graph defined directly by a CSR backbone.

    Attributes
    ----------
    csr:
        Adjacency over all allocated ids (dead ids have empty slices).
    cluster_sizes:
        Machines per cluster (0 for dead ids).
    dilation:
        Support-tree height bound carried over from the live engine.
    """

    csr: CSRAdjacency
    cluster_sizes: np.ndarray
    dilation: int
    _neighbor_sets: dict[int, frozenset[int]] = field(
        default_factory=dict, repr=False
    )

    # -- ClusterGraph-compatible read interface -------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of allocated vertex ids (dead ids included, isolated)."""
        return self.csr.n_vertices

    @property
    def n_machines(self) -> int:
        """Total machines across live clusters (the ``n`` of w.h.p. bounds)."""
        return int(self.cluster_sizes.sum())

    @property
    def max_degree(self) -> int:
        """``Delta`` of the snapshot (0 for an edgeless graph)."""
        degrees = self.csr.degrees
        return int(degrees.max()) if degrees.size else 0

    def degree(self, v: int) -> int:
        """H-degree of ``v`` (0 for dead ids)."""
        return int(self.csr.indptr[v + 1] - self.csr.indptr[v])

    def neighbors(self, v: int) -> list[int]:
        """Sorted H-neighbor list of ``v`` (fresh per call)."""
        return self.csr.neighbors(v).tolist()

    def neighbor_array(self, v: int) -> np.ndarray:
        """H-neighbors of ``v`` as a zero-copy CSR slice (kernel input)."""
        return self.csr.neighbors(v)

    def neighbor_set(self, v: int) -> frozenset[int]:
        """H-neighbors of ``v`` as a frozenset, cached per vertex."""
        cached = self._neighbor_sets.get(v)
        if cached is None:
            cached = frozenset(self.csr.neighbors(v).tolist())
            self._neighbor_sets[v] = cached
        return cached

    def are_adjacent(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an H-edge (binary search on the CSR)."""
        nbrs = self.csr.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    def anti_neighbors_within(self, v: int, vertex_set) -> list[int]:
        """Vertices of ``vertex_set`` not adjacent to ``v`` (Section 4.1)."""
        nbrs = self.neighbor_set(v)
        return [u for u in vertex_set if u != v and u not in nbrs]

    def cluster_size(self, v: int) -> int:
        """Machines in cluster ``v`` at snapshot time (0 for dead ids)."""
        return int(self.cluster_sizes[v])

    def iter_h_edges(self):
        """All H-edges ``(u, v)`` with ``u < v`` (lexicographic)."""
        edge_u, edge_v = self.csr.edge_arrays()
        return zip(edge_u.tolist(), edge_v.tolist())

    def h_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected edge list as ``(u, v)`` arrays with ``u < v`` (the
        vectorized properness checker's input)."""
        return self.csr.edge_arrays()

    @property
    def n_h_edges(self) -> int:
        """Number of H-edges in the snapshot."""
        return self.csr.n_directed_edges // 2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrozenConflictGraph(vertices={self.n_vertices}, "
            f"machines={self.n_machines}, Delta={self.max_degree}, "
            f"dilation={self.dilation})"
        )
