"""The streaming update engine: colorings maintained under churn.

:class:`DynamicColoring` holds a conflict graph (as a delta-buffered CSR
plus cluster metadata) and a proper coloring, and absorbs
:class:`~repro.dynamic.updates.UpdateBatch` objects one at a time.  Each
batch is applied structurally, then only the *conflict frontier* -- vertices
whose color became invalid (monochromatic new edge, palette-bound violation,
merge collision) or who have no color yet (arrivals, split halves) -- is
repaired with the same batched TryColor machinery the one-shot pipeline
runs on (:mod:`repro.graphcore` kernels over the delta-aware gathers).

This mirrors the decentralized-repair reading of the paper's model: a
vertex reacts to conflicts it can observe locally, with every palette probe
and proposal round charged to a :class:`~repro.network.ledger.BandwidthLedger`
exactly as the static stages charge theirs.  When repair would touch more
than ``escalate_fraction`` of the graph (or sequential completion gets
stuck), the engine concedes and recolors from scratch through
:func:`repro.color_cluster_graph` -- recorded, never silent.

The palette bound is maintained *tightly*: after every batch the palette is
``Delta + 1`` for the current maximum degree, so shrinking the graph shrinks
the palette (recoloring the now-out-of-range vertices) and growing it grows
the palette -- the invariant the dynamic tests assert batch by batch.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.coloring.types import UNCOLORED
from repro.graphcore import (
    conflict_mask_from_flat,
    is_proper_edges,
    used_color_masks_from_flat,
)
from repro.dynamic.delta import DeltaCSR
from repro.dynamic.updates import Update, UpdateBatch
from repro.dynamic.view import FrozenConflictGraph
from repro.network.ledger import BandwidthLedger
from repro.observe.tracer import NULL_TRACER
from repro.params import AlgorithmParameters, log2ceil, scaled


class RepairError(RuntimeError):
    """The engine produced an improper coloring (an engine bug, not churn)."""


@dataclass
class BatchReport:
    """Everything one applied batch did, for stats and experiment records."""

    batch_index: int
    events: dict[str, int]
    dirty: int  #: vertices on the conflict frontier after structural apply
    repaired: int  #: vertices recolored by the frontier repair loop
    recolor_fraction: float  #: repaired / alive (1.0 when escalated)
    escalated: bool  #: fell back to a full scratch recolor
    repair_rounds: int  #: TryColor rounds the repair loop ran
    greedy_vertices: int  #: vertices finished by sequential completion
    compacted: bool  #: delta buffer folded into a fresh base CSR this batch
    rounds_h: int  #: ledger H-rounds charged by this batch
    message_bits: int  #: ledger payload bits charged by this batch
    wall_time_s: float
    proper: bool  #: checker-verified (True when verification is off)
    num_colors: int  #: palette bound after the batch (Delta + 1)


@dataclass
class StreamResult:
    """Aggregate of a fully consumed stream (what experiment cells report)."""

    reports: list[BatchReport] = field(default_factory=list)

    @property
    def batches(self) -> int:
        """Number of batches consumed."""
        return len(self.reports)

    @property
    def all_proper(self) -> bool:
        """Whether every batch ended checker-proper."""
        return all(r.proper for r in self.reports)

    @property
    def total_repaired(self) -> int:
        """Vertices recolored across the whole stream."""
        return sum(r.repaired for r in self.reports)

    @property
    def mean_recolor_fraction(self) -> float:
        """Mean per-batch recolored fraction (0 for an empty stream)."""
        if not self.reports:
            return 0.0
        return sum(r.recolor_fraction for r in self.reports) / len(self.reports)

    @property
    def max_recolor_fraction(self) -> float:
        """Worst per-batch recolored fraction (1.0 marks an escalation)."""
        return max((r.recolor_fraction for r in self.reports), default=0.0)

    @property
    def escalations(self) -> int:
        """Batches that fell back to a full scratch recolor."""
        return sum(1 for r in self.reports if r.escalated)

    @property
    def rounds_h(self) -> int:
        """Total ledger H-rounds charged over the stream."""
        return sum(r.rounds_h for r in self.reports)

    @property
    def message_bits(self) -> int:
        """Total ledger payload bits charged over the stream."""
        return sum(r.message_bits for r in self.reports)

    @property
    def wall_time_s(self) -> float:
        """Wall-clock seconds spent inside ``apply`` over the stream."""
        return sum(r.wall_time_s for r in self.reports)


class DynamicColoring:
    """A proper coloring maintained under a stream of update batches.

    Parameters
    ----------
    graph:
        The initial :class:`~repro.cluster.cluster_graph.ClusterGraph`.
    params:
        Constants preset (default :func:`repro.params.scaled`).
    seed / rng:
        Randomness for the bootstrap coloring and all repair rounds.
    colors:
        Optional starting coloring (must be proper with ``Delta + 1``
        colors); when omitted the one-shot pipeline bootstraps one.
    mode:
        ``"repair"`` (incremental frontier repair, the engine proper) or
        ``"scratch"`` (apply updates structurally, then recolor everything
        each batch -- the baseline the experiments compare against).
    escalate_fraction:
        Frontier size (as a fraction of live vertices) beyond which repair
        concedes to a scratch recolor.
    rebuild_fraction:
        Delta-buffer compaction threshold (see :class:`DeltaCSR`).
    verify_each_batch:
        Run the vectorized properness checker after every batch and raise
        :class:`RepairError` on a miss (ground truth, not charged).
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer`; the engine binds
        its stream ledger to it and wraps the bootstrap coloring plus every
        :meth:`apply` call in a span (``stream.bootstrap``,
        ``stream.batch[batch=i]``).  Tracing reads snapshots only -- traced
        streams are bitwise-identical to untraced ones.
    backend:
        Optional :class:`~repro.parallel.backend.ExecutionBackend` (or
        spec string) for the pipeline runs the engine delegates to: the
        bootstrap coloring and every large-frontier scratch-recolor
        escalation -- exactly the paths where batched kernels dominate.
        Value-identical by the backend contract (docs/PARALLEL.md).
    metrics:
        Optional :class:`~repro.observe.metrics.MetricsRegistry`; when
        bound, every applied batch feeds the live ``stream.*`` instruments
        (repair-latency histogram, frontier sizes, recolor fractions,
        escalation/violation counters, palette and liveness gauges).  The
        registry is fed from the finished :class:`BatchReport` only --
        values already measured -- so an instrumented run is
        bitwise-identical to a bare one (same contract as ``tracer``).
    netmodel:
        Optional :class:`~repro.network.hetnet.HetNetModel` attached to
        the stream ledger and shared with every scratch-escalation
        sub-run, so the stream's ``makespan_ms`` covers exactly the
        rounds the stream ledger accounts (the bootstrap, whose rounds
        are not stream rounds, stays outside the simulated clock too).
        Bitwise-invisible, same contract as ``tracer``.
    """

    def __init__(
        self,
        graph,
        *,
        params: AlgorithmParameters | None = None,
        seed: int = 0,
        rng: np.random.Generator | None = None,
        colors: np.ndarray | None = None,
        mode: str = "repair",
        escalate_fraction: float = 0.5,
        rebuild_fraction: float = 0.25,
        verify_each_batch: bool = True,
        tracer=None,
        backend=None,
        metrics=None,
        netmodel=None,
    ):
        if mode not in ("repair", "scratch"):
            raise ValueError(f"unknown mode {mode!r}")
        self.params = params or scaled()
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.mode = mode
        self.backend = backend
        self.metrics = metrics
        self.netmodel = netmodel
        self.escalate_fraction = escalate_fraction
        self.verify_each_batch = verify_each_batch
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # initial graph, kept for reporting static cell fields (sizes,
        # Delta, dilation at bootstrap); live topology is self.delta
        self.graph = graph
        self.delta = DeltaCSR(graph.csr, rebuild_fraction=rebuild_fraction)
        self.cluster_sizes = np.asarray(
            [graph.cluster_size(v) for v in range(graph.n_vertices)],
            dtype=np.int64,
        )
        self.tree_heights = np.asarray(
            [t.height for t in graph.trees], dtype=np.int64
        )
        self.ledger = BandwidthLedger(
            bandwidth_bits=self.params.bandwidth_bits(max(2, graph.n_machines)),
            dilation=max(1, graph.dilation),
        )
        if netmodel is not None:
            # the stream ledger and every pipeline sub-run (bootstrap,
            # scratch escalations) share ONE model: per-element times
            # accumulate across them while absorb() folds the scalar
            self.ledger.attach_netmodel(netmodel)
        self.tracer.bind_ledger(self.ledger)
        self.num_colors = self.delta.max_degree + 1
        if colors is None:
            from repro import color_cluster_graph

            # the bootstrap runs on its own runtime ledger (its cost is
            # reported as bootstrap_wall_time_s, not stream rounds), so the
            # span captures wall time and zero stream-ledger charges
            with self.tracer.span("stream.bootstrap"):
                bootstrap = color_cluster_graph(
                    graph,
                    params=self.params,
                    rng=self.rng,
                    verify=True,
                    backend=self.backend,
                )
            colors = bootstrap.colors
        self.colors = np.asarray(colors, dtype=np.int64).copy()
        if self.colors.size != graph.n_vertices:
            raise ValueError(
                f"colors covers {self.colors.size} vertices; "
                f"graph has {graph.n_vertices}"
            )
        self._assert_proper("bootstrap")
        self.reports: list[BatchReport] = []

    # ---- derived state -------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Allocated vertex ids, dead ones included (ids are stable)."""
        return self.delta.n_vertices

    @property
    def n_alive(self) -> int:
        """Live vertices (the denominator of ``recolor_fraction``)."""
        return self.delta.n_alive

    @property
    def n_machines(self) -> int:
        """Machines across live clusters (drives bandwidth-bit sizing)."""
        return int(self.cluster_sizes[self.delta.alive_mask].sum())

    @property
    def max_degree(self) -> int:
        """Current ``Delta``; the palette is re-tightened to ``Delta + 1``
        after every batch."""
        return self.delta.max_degree

    @property
    def dilation(self) -> int:
        """Max support-tree height over live clusters (estimated after
        merge/split; see ROADMAP)."""
        alive = self.delta.alive_mask
        if not alive.any():
            return 1
        return max(1, int(self.tree_heights[alive].max()))

    @property
    def color_bits(self) -> int:
        """Bits of one color message under the current palette."""
        return log2ceil(self.num_colors + 1)

    def snapshot_graph(self) -> FrozenConflictGraph:
        """Current state as a static conflict graph (scratch-path input)."""
        sizes = np.where(self.delta.alive_mask, self.cluster_sizes, 0)
        return FrozenConflictGraph(
            csr=self.delta.as_csr(),
            cluster_sizes=sizes,
            dilation=self.dilation,
        )

    def result(self) -> StreamResult:
        """All batch reports so far, aggregated."""
        return StreamResult(reports=list(self.reports))

    # ---- batch application ---------------------------------------------------

    def apply(self, batch: UpdateBatch) -> BatchReport:
        """Apply one batch structurally, repair the frontier, verify."""
        with self.tracer.span("stream.batch", batch=len(self.reports)) as span:
            return self._apply_in_span(batch, span)

    def _apply_in_span(self, batch: UpdateBatch, span) -> BatchReport:
        start = time.perf_counter()
        before = self.ledger.snapshot()
        dirty: set[int] = set()
        for update in batch.in_application_order():
            self._apply_update(update, dirty)
        # repairs run on the post-update network: charge them at the
        # dilation the batch's merges/splits/arrivals produced
        self.ledger.dilation = self.dilation
        dirty |= self._retighten_palette()
        dirty = {v for v in dirty if self.delta.is_alive(v)}
        for v in dirty:
            self.colors[v] = UNCOLORED

        escalated = False
        repair_rounds = 0
        greedy_count = 0
        if self.mode == "scratch":
            self._recolor_scratch(op="stream_scratch")
            repaired = self.n_alive  # the baseline recolors everything
        elif dirty and len(dirty) > self.escalate_fraction * max(1, self.n_alive):
            self._recolor_scratch(op="stream_escalation")
            repaired = self.n_alive
            escalated = True
        else:
            repaired, repair_rounds, greedy_count, escalated = self._repair(
                sorted(dirty)
            )

        compacted = self.delta.maybe_compact()
        proper = True
        if self.verify_each_batch:
            # report a miss instead of raising: sweep cells and the CLI
            # surface proper=False the same graceful way static cells do
            proper = self._check_proper() is None
        after = self.ledger.snapshot()
        diff = before.diff(after)
        report = BatchReport(
            batch_index=len(self.reports),
            events=batch.counts(),
            dirty=len(dirty),
            repaired=repaired,
            recolor_fraction=repaired / max(1, self.n_alive),
            escalated=escalated,
            repair_rounds=repair_rounds,
            greedy_vertices=greedy_count,
            compacted=compacted,
            rounds_h=diff.rounds_h,
            message_bits=diff.total_message_bits,
            wall_time_s=time.perf_counter() - start,
            proper=proper,
            num_colors=self.num_colors,
        )
        span.counter("frontier", report.dirty)
        span.counter("repaired", report.repaired)
        span.counter("repair_rounds", report.repair_rounds)
        if report.escalated:
            span.counter("escalations", 1)
        if report.compacted:
            span.counter("compactions", 1)
        self.reports.append(report)
        if self.metrics is not None:
            self._observe_batch(report)
        return report

    def _observe_batch(self, report: BatchReport) -> None:
        """Feed the bound registry from one finished report.

        Reads the report and derived state only -- never the RNG, never
        the ledger -- so instrumented streams stay bitwise-identical to
        bare ones (asserted by ``tests/test_service.py``).
        """
        m = self.metrics
        m.counter("stream.batches").inc()
        m.counter("stream.updates").inc(sum(report.events.values()))
        m.counter("stream.repaired").inc(report.repaired)
        m.counter("stream.rounds_h").inc(report.rounds_h)
        m.counter("stream.message_bits").inc(report.message_bits)
        if report.escalated:
            m.counter("stream.escalations").inc()
        if not report.proper:
            m.counter("stream.violations").inc()
        m.histogram("stream.repair_ms").record(report.wall_time_s * 1000.0)
        m.histogram("stream.frontier", min_value=1.0).record(report.dirty)
        m.histogram("stream.recolor_fraction", min_value=1e-6).record(
            report.recolor_fraction
        )
        m.gauge("stream.n_alive").set(self.n_alive)
        m.gauge("stream.delta").set(self.max_degree)
        m.gauge("stream.num_colors").set(self.num_colors)

    def run(self, batches) -> StreamResult:
        """Apply every batch of an iterable; returns the aggregate."""
        for batch in batches:
            self.apply(batch)
        return self.result()

    # ---- structural updates --------------------------------------------------

    def _apply_update(self, update: Update, dirty: set[int]) -> None:
        kind = update.kind
        if kind == "edge_delete":
            self.delta.delete_edge(update.u, update.v)
        elif kind == "edge_insert":
            self.delta.insert_edge(update.u, update.v)
            cu, cv = self.colors[update.u], self.colors[update.v]
            if cu == cv and cu != UNCOLORED:
                # local conflict resolution: the larger id backs off (the
                # mirror image of TryColor's smaller-ID-wins rule)
                dirty.add(max(update.u, update.v))
        elif kind == "vertex_remove":
            self.delta.remove_vertex(update.u)
            self.colors[update.u] = 0  # dead ids are edge-free; value is moot
            self.cluster_sizes[update.u] = 0
            self.tree_heights[update.u] = 0
        elif kind == "vertex_add":
            w = self._allocate_vertex(update.size)
            for x in update.edges:
                self.delta.insert_edge(w, int(x))
            dirty.add(w)
        elif kind == "cluster_merge":
            self._merge(update.u, update.v, dirty)
        elif kind == "cluster_split":
            self._split(update.u, update.edges, update.size, dirty)
        else:  # pragma: no cover - Update.__post_init__ rejects unknown kinds
            raise ValueError(f"unknown update kind {kind!r}")

    def _allocate_vertex(self, size: int) -> int:
        w = self.delta.add_vertex()
        size = max(1, int(size))
        self.cluster_sizes = np.append(self.cluster_sizes, size)
        # arrivals wire their machines as a star: height 1 for singletons
        # and pairs, 2 otherwise (leader + leaves)
        self.tree_heights = np.append(self.tree_heights, 1 if size <= 2 else 2)
        self.colors = np.append(self.colors, UNCOLORED)
        return w

    def _merge(self, u: int, v: int, dirty: set[int]) -> None:
        """``u`` absorbs ``v``; they must be H-adjacent (Definition 3.1:
        the merged machine set stays connected through a realizing link)."""
        if not self.delta.has_edge(u, v):
            raise ValueError(f"cannot merge non-adjacent clusters {u} and {v}")
        for x in self.delta.remove_vertex(v):
            if x != u and not self.delta.has_edge(u, x):
                self.delta.insert_edge(u, x)
        self.colors[v] = 0
        self.cluster_sizes[u] += self.cluster_sizes[v]
        self.cluster_sizes[v] = 0
        # support trees join across the realizing link: heights add
        self.tree_heights[u] = self.tree_heights[u] + self.tree_heights[v] + 1
        self.tree_heights[v] = 0
        cu = self.colors[u]
        if cu != UNCOLORED and bool(
            (self.colors[self.delta.neighbors(u)] == cu).any()
        ):
            dirty.add(u)

    def _split(
        self, u: int, moved: tuple[int, ...], size: int, dirty: set[int]
    ) -> None:
        """``u`` sheds ``size`` machines and the neighbors in ``moved`` into
        a fresh cluster; the halves stay linked by a new H-edge."""
        if int(self.cluster_sizes[u]) < 2:
            raise ValueError(
                f"cluster {u} has {int(self.cluster_sizes[u])} machine(s); "
                "splitting needs at least 2"
            )
        size = max(1, min(int(size), int(self.cluster_sizes[u]) - 1))
        w = self._allocate_vertex(size)
        self.tree_heights[w] = self.tree_heights[u]  # conservative carry-over
        self.cluster_sizes[u] -= size
        for x in moved:
            x = int(x)
            self.delta.delete_edge(u, x)
            self.delta.insert_edge(w, x)
        self.delta.insert_edge(u, w)
        dirty.add(w)

    def _retighten_palette(self) -> set[int]:
        """Pin the palette to ``Delta + 1`` for the *current* ``Delta``;
        returns vertices whose color fell outside the shrunk palette."""
        new_q = self.delta.max_degree + 1
        violators: set[int] = set()
        if new_q < self.num_colors:
            alive = self.delta.alive_mask
            bad = np.flatnonzero(alive & (self.colors >= new_q))
            violators = {int(v) for v in bad}
        self.num_colors = new_q
        return violators

    # ---- repair --------------------------------------------------------------

    def _repair(self, dirty: list[int]) -> tuple[int, int, int, bool]:
        """Frontier repair: batched TryColor rounds over the dirty set, then
        sequential completion; escalates if completion gets stuck.

        Returns ``(repaired, rounds, greedy_vertices, escalated)``.
        """
        if not dirty:
            return 0, 0, 0, False
        remaining = np.asarray(dirty, dtype=np.int64)
        q = self.num_colors
        budget = 2 * int(math.ceil(math.log2(max(self.n_alive, 4)))) + 8
        rounds = 0
        for _ in range(budget):
            if remaining.size == 0:
                break
            rounds += 1
            seg_ids, flat = self.delta.gather(remaining)
            used = used_color_masks_from_flat(
                seg_ids, self.colors[flat], remaining.size, q
            )
            free_counts = q - used.sum(axis=1)
            proposals = np.full(remaining.size, -2, dtype=np.int64)
            can = free_counts > 0
            if can.any():
                ranks = np.zeros(remaining.size, dtype=np.int64)
                ranks[can] = self.rng.integers(0, free_counts[can])
                # the rank-th free color of each row, via cumulative count
                free_cumsum = np.cumsum(~used, axis=1)
                proposals[can] = (
                    free_cumsum[can] > ranks[can, None]
                ).argmax(axis=1)
            proposal_map = np.full(self.n_vertices, -2, dtype=np.int64)
            proposal_map[remaining] = proposals
            blocked = conflict_mask_from_flat(
                seg_ids,
                flat,
                self.colors,
                remaining,
                proposals,
                proposal_map=proposal_map,
            )
            adopt = can & ~blocked
            self.colors[remaining[adopt]] = proposals[adopt]
            # charge: one pipelined palette bitmap + announce/learn rounds,
            # the exact accounting of the one-shot fallback ladder
            self.ledger.charge(
                "stream_repair_palette", q, rounds_h=1, pipelined=True
            )
            self.ledger.charge(
                "stream_repair", self.color_bits, rounds_h=2, pipelined=True
            )
            remaining = remaining[~adopt]
        greedy_count = 0
        stuck: list[int] = []
        for v in remaining.tolist():
            nbr_colors = self.colors[self.delta.neighbors(v)]
            free_mask = np.ones(q, dtype=bool)
            held = nbr_colors[(nbr_colors >= 0) & (nbr_colors < q)]
            free_mask[held] = False
            free = np.flatnonzero(free_mask)
            if free.size == 0:
                stuck.append(v)
                continue
            self.colors[v] = int(free[0])
            greedy_count += 1
            self.ledger.charge(
                "stream_repair_greedy", self.color_bits, rounds_h=1, pipelined=True
            )
        if stuck:
            # palette exhausted locally (cannot happen with q = Delta + 1
            # unless state is inconsistent): concede to the one-shot pipeline
            self._recolor_scratch(op="stream_escalation")
            return self.n_alive, rounds, greedy_count, True
        return len(dirty), rounds, greedy_count, False

    def _recolor_scratch(self, *, op: str) -> None:
        """Recolor the whole graph via the one-shot pipeline; the sub-run's
        ledger is absorbed under ``op`` so stream accounting stays total."""
        from repro import color_cluster_graph

        snapshot = self.snapshot_graph()
        result = color_cluster_graph(
            snapshot,
            params=self.params,
            rng=self.rng,
            verify=False,
            backend=self.backend,
            netmodel=self.netmodel,
        )
        self.colors = np.asarray(result.colors, dtype=np.int64).copy()
        self.num_colors = result.num_colors
        self.ledger.absorb(result.ledger_summary, op=op)

    # ---- verification --------------------------------------------------------

    def _check_proper(self) -> str | None:
        """Ground-truth check: every live vertex colored inside the palette
        and no monochromatic edge.  Returns a diagnosis string on a miss,
        ``None`` when the invariants hold."""
        alive = self.delta.alive_mask
        live_colors = self.colors[alive]
        if live_colors.size and (
            (live_colors < 0).any() or (live_colors >= self.num_colors).any()
        ):
            return f"colors outside palette [0, {self.num_colors})"
        edge_u, edge_v = self.delta.edge_arrays()
        if not is_proper_edges(edge_u, edge_v, self.colors):
            return "monochromatic edge survived repair"
        return None

    def _assert_proper(self, context: str) -> None:
        """Raise :class:`RepairError` on an invariant miss (the bootstrap
        contract: a caller-supplied starting coloring must be valid)."""
        problem = self._check_proper()
        if problem is not None:
            raise RepairError(f"{context}: {problem}")
