"""Delta-buffered CSR adjacency: the storage layer of the streaming engine.

A :class:`DeltaCSR` holds an immutable :class:`~repro.graphcore.csr.CSRAdjacency`
*base* plus small overlay buffers of edits (inserted edges, deleted edges,
added/removed vertices).  Queries merge base and overlay on the fly; when the
overlay grows past ``rebuild_fraction`` of the base, :meth:`compact` folds
everything into a fresh base via :meth:`CSRAdjacency.from_edge_arrays` -- the
classic periodic-rebuild scheme, so a long stream of small batches never
degrades query cost.

Vertex ids are stable across the lifetime of the structure: removing a vertex
leaves a dead (edge-free) id behind rather than renumbering, so stream events
can keep referring to the ids they were generated against.
"""

from __future__ import annotations

import numpy as np

from repro.graphcore.csr import CSRAdjacency

_EMPTY = np.empty(0, dtype=np.int64)


class DeltaCSR:
    """A mutable undirected adjacency: CSR base + edit overlay.

    Parameters
    ----------
    base:
        The starting adjacency (vertices ``0..base.n_vertices-1`` alive).
    rebuild_fraction:
        Compact when overlay edits exceed this fraction of the base's
        directed-edge count (plus a small absolute floor, so tiny graphs
        do not rebuild on every edit).
    """

    def __init__(self, base: CSRAdjacency, *, rebuild_fraction: float = 0.25):
        if rebuild_fraction <= 0:
            raise ValueError("rebuild_fraction must be positive")
        self._base = base
        self._rebuild_fraction = rebuild_fraction
        self._n = base.n_vertices
        self._alive = np.ones(self._n, dtype=bool)
        # overlay: per-vertex *sets* (symmetric); _deleted only holds base
        # edges, _inserted only holds non-base edges -- never both
        self._inserted: dict[int, set[int]] = {}
        self._deleted: dict[int, set[int]] = {}
        self._delta_ops = 0
        self._rebuilds = 0
        self._degrees = base.degrees.astype(np.int64)
        self._n_edges = base.n_directed_edges // 2

    # ---- size and liveness ---------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Total ids ever allocated (alive + dead)."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Current undirected edge count."""
        return self._n_edges

    @property
    def n_alive(self) -> int:
        """Number of live vertices."""
        return int(self._alive.sum())

    @property
    def alive_mask(self) -> np.ndarray:
        """Boolean liveness mask over all ids (read-only view)."""
        return self._alive

    def is_alive(self, v: int) -> bool:
        """Whether id ``v`` is currently a live vertex."""
        return bool(self._alive[v])

    @property
    def degrees(self) -> np.ndarray:
        """Current per-vertex degrees (dead vertices have 0)."""
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Current ``Delta`` over live vertices (0 for an empty graph)."""
        return int(self._degrees.max()) if self._n else 0

    @property
    def pending_delta_ops(self) -> int:
        """Overlay edits accumulated since the last compaction."""
        return self._delta_ops

    @property
    def rebuilds(self) -> int:
        """Number of compactions performed so far."""
        return self._rebuilds

    # ---- mutation ------------------------------------------------------------

    def _check_alive(self, v: int) -> None:
        if not (0 <= v < self._n) or not self._alive[v]:
            raise ValueError(f"vertex {v} is not alive")

    def _base_has(self, u: int, v: int) -> bool:
        if u >= self._base.n_vertices:
            return False
        nbrs = self._base.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is a current edge (base + overlay)."""
        if v in self._inserted.get(u, ()):
            return True
        if v in self._deleted.get(u, ()):
            return False
        return self._base_has(u, v)

    def insert_edge(self, u: int, v: int) -> None:
        """Add undirected edge ``{u, v}``; raises if present or degenerate."""
        self._check_alive(u)
        self._check_alive(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        if self.has_edge(u, v):
            raise ValueError(f"edge ({u},{v}) already present")
        if self._base_has(u, v):  # resurrect a base edge: undo its deletion
            self._deleted[u].discard(v)
            self._deleted[v].discard(u)
        else:
            self._inserted.setdefault(u, set()).add(v)
            self._inserted.setdefault(v, set()).add(u)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._n_edges += 1
        self._delta_ops += 1

    def delete_edge(self, u: int, v: int) -> None:
        """Remove undirected edge ``{u, v}``; raises if absent."""
        if not self.has_edge(u, v):
            raise ValueError(f"edge ({u},{v}) not present")
        ins_u = self._inserted.get(u)
        if ins_u is not None and v in ins_u:  # overlay-only edge: cancel it
            ins_u.discard(v)
            self._inserted[v].discard(u)
        else:
            self._deleted.setdefault(u, set()).add(v)
            self._deleted.setdefault(v, set()).add(u)
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self._n_edges -= 1
        self._delta_ops += 1

    def add_vertex(self) -> int:
        """Allocate a fresh isolated vertex; returns its id."""
        v = self._n
        self._n += 1
        self._alive = np.append(self._alive, True)
        self._degrees = np.append(self._degrees, 0)
        self._delta_ops += 1
        return v

    def remove_vertex(self, v: int) -> list[int]:
        """Delete all of ``v``'s edges and mark it dead; returns the
        neighbors it was detached from (the repair frontier)."""
        self._check_alive(v)
        detached = [int(u) for u in self.neighbors(v)]
        for u in detached:
            self.delete_edge(v, u)
        self._alive[v] = False
        self._delta_ops += 1
        return detached

    # ---- queries -------------------------------------------------------------

    def neighbors(self, v: int) -> np.ndarray:
        """Current sorted neighbor array of ``v`` (dead vertices: empty)."""
        if v >= self._n or not self._alive[v]:
            return _EMPTY
        base = (
            self._base.neighbors(v) if v < self._base.n_vertices else _EMPTY
        )
        dels = self._deleted.get(v)
        if dels:
            base = base[~np.isin(base, np.fromiter(dels, dtype=np.int64))]
        ins = self._inserted.get(v)
        if not ins:
            return base
        extra = np.fromiter(ins, dtype=np.int64, count=len(ins))
        return np.sort(np.concatenate([base, extra]))

    def gather(self, vertices) -> tuple[np.ndarray, np.ndarray]:
        """Flattened neighborhoods of ``vertices`` -- the delta-aware
        counterpart of :func:`repro.graphcore.gather_neighborhoods`, aligned
        the same way so the flat kernels consume either."""
        verts = np.asarray(vertices, dtype=np.int64).reshape(-1)
        segments = [self.neighbors(int(v)) for v in verts]
        counts = np.fromiter(
            (s.size for s in segments), dtype=np.int64, count=len(segments)
        )
        seg_ids = np.repeat(np.arange(verts.size, dtype=np.int64), counts)
        flat = (
            np.concatenate(segments) if segments else _EMPTY
        )
        return seg_ids, flat if flat.size else _EMPTY

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Current undirected edge list as ``(u, v)`` arrays with ``u < v``
        (the properness checker's input; merged from base + overlay)."""
        base_u, base_v = self._base.edge_arrays()
        if self._deleted and any(self._deleted.values()):
            codes = base_u * self._n + base_v
            dead = np.fromiter(
                (
                    (u * self._n + w) if u < w else (w * self._n + u)
                    for u, ws in self._deleted.items()
                    for w in ws
                    if u < w
                ),
                dtype=np.int64,
            )
            keep = ~np.isin(codes, dead)
            base_u, base_v = base_u[keep], base_v[keep]
        ins_pairs = [
            (u, w)
            for u, ws in self._inserted.items()
            for w in ws
            if u < w
        ]
        if not ins_pairs:
            return base_u, base_v
        ins = np.asarray(ins_pairs, dtype=np.int64)
        return (
            np.concatenate([base_u, ins[:, 0]]),
            np.concatenate([base_v, ins[:, 1]]),
        )

    # ---- compaction ----------------------------------------------------------

    def should_compact(self) -> bool:
        """Whether the overlay has outgrown the rebuild budget."""
        budget = max(64, int(self._rebuild_fraction * max(1, 2 * self._n_edges)))
        return self._delta_ops > budget

    def compact(self) -> CSRAdjacency:
        """Fold the overlay into a fresh base CSR and return it."""
        edge_u, edge_v = self.edge_arrays()
        self._base = CSRAdjacency.from_edge_arrays(edge_u, edge_v, self._n)
        self._inserted = {}
        self._deleted = {}
        self._delta_ops = 0
        self._rebuilds += 1
        return self._base

    def maybe_compact(self) -> bool:
        """Compact if past the rebuild budget; returns whether it happened."""
        if self.should_compact():
            self.compact()
            return True
        return False

    def as_csr(self) -> CSRAdjacency:
        """A CSR equal to the *current* adjacency.

        Returns the base directly when the overlay is clean; otherwise
        builds a throwaway CSR without clearing the overlay (rebuild policy
        stays with :meth:`maybe_compact`).
        """
        if self._delta_ops == 0 and self._n == self._base.n_vertices:
            return self._base
        edge_u, edge_v = self.edge_arrays()
        return CSRAdjacency.from_edge_arrays(edge_u, edge_v, self._n)
