"""Streaming update engine: colorings maintained under edge/cluster churn.

The one-shot pipeline colors a static instance end-to-end; this package
keeps that coloring *alive* while the underlying network churns -- links
appear and disappear, clusters arrive, depart, merge and split -- repairing
only the conflict frontier instead of recoloring from scratch.

* :class:`~repro.dynamic.delta.DeltaCSR` -- delta-buffered CSR adjacency
  with periodic rebuild through ``CSRAdjacency.from_edge_arrays``;
* :class:`~repro.dynamic.updates.UpdateBatch` -- the update vocabulary;
* :class:`~repro.dynamic.engine.DynamicColoring` -- the engine: batched
  TryColor repair on the dirty set, ledger-charged, escalating to the
  one-shot pipeline when repair would touch too much of the graph;
* :class:`~repro.dynamic.view.FrozenConflictGraph` -- static snapshots the
  scratch baseline and the escalation path run the full pipeline on.
"""

from repro.dynamic.delta import DeltaCSR
from repro.dynamic.engine import (
    BatchReport,
    DynamicColoring,
    RepairError,
    StreamResult,
)
from repro.dynamic.harness import latency_fields, run_stream, summarize_stream
from repro.dynamic.updates import KINDS, Update, UpdateBatch
from repro.dynamic.view import FrozenConflictGraph

__all__ = [
    "BatchReport",
    "DeltaCSR",
    "DynamicColoring",
    "FrozenConflictGraph",
    "KINDS",
    "RepairError",
    "StreamResult",
    "Update",
    "UpdateBatch",
    "latency_fields",
    "run_stream",
    "summarize_stream",
]
