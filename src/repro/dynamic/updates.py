"""Update vocabulary of the streaming engine.

A stream is a sequence of :class:`UpdateBatch` objects; each batch is an
unordered set of structural events the network absorbed "since the last
tick": links appearing/disappearing between clusters (H-edge insert/delete),
clusters arriving or departing wholesale (vertex add/remove), and cluster
membership churn (merge/split).  The engine applies a batch atomically and
repairs the coloring once per batch, which is the granularity all stats and
ledger charges are reported at.

Vertex ids are assigned sequentially by the engine (``next_vertex_id``);
generators mirror that rule so batches can reference vertices they create.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Update kinds, in application order within a batch (removals before
#: insertions so a batch can recycle capacity; merges/splits last so they
#: see the batch's edge churn).
KINDS = (
    "edge_delete",
    "vertex_remove",
    "vertex_add",
    "edge_insert",
    "cluster_merge",
    "cluster_split",
)


@dataclass(frozen=True)
class Update:
    """One structural event.

    Payload by ``kind``:

    * ``edge_insert`` / ``edge_delete``: ``u``, ``v`` -- the H-edge.
    * ``vertex_add``: ``edges`` -- neighbors of the new vertex (which gets
      the next sequential id); ``size`` -- machines in the new cluster.
    * ``vertex_remove``: ``u`` -- the departing vertex.
    * ``cluster_merge``: ``u`` absorbs ``v`` (they must be H-adjacent:
      merged clusters stay connected through a realizing link).
    * ``cluster_split``: ``u`` splits; ``edges`` lists the neighbors that
      move to the new half (next sequential id), ``size`` the machines it
      takes along.  The halves stay linked by a fresh H-edge.
    """

    kind: str
    u: int = -1
    v: int = -1
    edges: tuple[int, ...] = ()
    size: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown update kind {self.kind!r}")


@dataclass
class UpdateBatch:
    """One tick's worth of churn, applied and repaired atomically."""

    updates: list[Update] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.updates)

    def counts(self) -> dict[str, int]:
        """Events per kind (stable key order, zero-free)."""
        out: dict[str, int] = {}
        for kind in KINDS:
            k = sum(1 for up in self.updates if up.kind == kind)
            if k:
                out[kind] = k
        return out

    def in_application_order(self) -> list[Update]:
        """Updates sorted by kind precedence (stable within a kind)."""
        rank = {kind: i for i, kind in enumerate(KINDS)}
        return sorted(self.updates, key=lambda up: rank[up.kind])

    # -- convenience constructors ---------------------------------------------

    def edge_insert(self, u: int, v: int) -> "UpdateBatch":
        """Append an H-edge insertion ``{u, v}`` (chainable)."""
        self.updates.append(Update("edge_insert", u=u, v=v))
        return self

    def edge_delete(self, u: int, v: int) -> "UpdateBatch":
        """Append an H-edge deletion ``{u, v}`` (chainable)."""
        self.updates.append(Update("edge_delete", u=u, v=v))
        return self

    def vertex_add(self, edges: Iterable[int] = (), size: int = 1) -> "UpdateBatch":
        """Append a cluster arrival: the next sequential id, wired to
        ``edges``, carrying ``size`` machines (chainable)."""
        self.updates.append(
            Update("vertex_add", edges=tuple(edges), size=size)
        )
        return self

    def vertex_remove(self, u: int) -> "UpdateBatch":
        """Append a cluster departure of ``u`` (chainable)."""
        self.updates.append(Update("vertex_remove", u=u))
        return self

    def cluster_merge(self, u: int, v: int) -> "UpdateBatch":
        """Append a merge: ``u`` absorbs its H-neighbor ``v`` (chainable)."""
        self.updates.append(Update("cluster_merge", u=u, v=v))
        return self

    def cluster_split(
        self, u: int, moved_neighbors: Iterable[int], size: int = 1
    ) -> "UpdateBatch":
        """Append a split of ``u``: ``moved_neighbors`` rewire to the new
        half, which takes ``size`` machines (chainable)."""
        self.updates.append(
            Update("cluster_split", u=u, edges=tuple(moved_neighbors), size=size)
        )
        return self
