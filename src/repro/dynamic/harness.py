"""Shared stream execution: one entry point for the CLI and the sweep runner.

:func:`run_stream` consumes a :class:`~repro.workloads.streams.StreamWorkload`
through a :class:`~repro.dynamic.engine.DynamicColoring` in either mode and
returns the artifact-ready metrics dict, so ``repro stream`` and stream
sweep cells report identical quantities.  :func:`summarize_stream` is the
shared summarization step: the always-on service driver
(:mod:`repro.serve`) runs its own batch loop but funnels the finished
engine through the same function, so a served stream and a swept stream
report byte-identical deterministic metrics.
"""

from __future__ import annotations

import time
from typing import Any

from repro.dynamic.engine import DynamicColoring, StreamResult
from repro.parallel.backend import ExecutionBackend, make_backend
from repro.params import AlgorithmParameters


def latency_fields(
    wall_times_s: list[float], total_updates: int, elapsed_s: float
) -> dict[str, Any]:
    """Latency/throughput scalars from per-batch wall times.

    One source of truth for the percentile math: ``repro stream``,
    stream sweep cells, and the service driver all call this, so the
    ``repair_ms_p*`` a dashboard shows and the one an artifact records
    can never disagree.  Percentiles are exact (numpy linear
    interpolation via :func:`repro.observe.metrics.exact_percentiles`);
    the bounded-error :class:`~repro.observe.metrics.LogHistogram` is
    for live mergeable views only, never for artifact scalars.
    """
    from repro.observe.metrics import exact_percentiles

    fields: dict[str, Any] = {
        "batch_wall_times_s": [round(t, 6) for t in wall_times_s],
        "updates_per_sec": (
            round(total_updates / elapsed_s, 2) if elapsed_s > 0 else 0.0
        ),
    }
    if wall_times_s:
        pcts = exact_percentiles([t * 1000.0 for t in wall_times_s])
        fields.update(
            repair_ms_p50=round(pcts["p50"], 4),
            repair_ms_p95=round(pcts["p95"], 4),
            repair_ms_p99=round(pcts["p99"], 4),
        )
    return fields


def summarize_stream(
    engine: DynamicColoring, result: StreamResult, batches
) -> dict[str, Any]:
    """Artifact-ready metrics dict for a fully consumed stream.

    Covers the static cell fields (sizes, Delta, dilation of the
    *initial* graph), the stream aggregates, and the per-batch latency
    fields (:func:`latency_fields`).  Callers layer on whatever only
    they know: :func:`run_stream` adds bootstrap wall time and backend
    boundary traffic; the service driver adds queueing-delay and SLO
    fields.
    """
    graph = engine.graph
    ledger = engine.ledger.summary()
    alive_colors = engine.colors[engine.delta.alive_mask]
    wall_times = [r.wall_time_s for r in result.reports]
    total_updates = sum(len(b) for b in batches)
    metrics: dict[str, Any] = {
        "machines": graph.n_machines,
        "vertices": graph.n_vertices,
        "delta": graph.max_degree,
        "dilation": graph.dilation,
        "bandwidth_cap_bits": engine.ledger.bandwidth_bits,
        "num_colors": engine.num_colors,
        "regime_effective": "stream",
        "rounds_h": ledger["rounds_h"],
        "rounds_g": ledger["rounds_g"],
        "total_message_bits": ledger["total_message_bits"],
        "max_message_bits": ledger["max_message_bits"],
        "colors_used": len(set(alive_colors.tolist())),
        "proper": bool(result.all_proper),
        "fallbacks": result.escalations,
        "retries": 0,
        "batches": result.batches,
        "stream_updates": total_updates,
        "repaired_vertices": result.total_repaired,
        "recolor_fraction_mean": result.mean_recolor_fraction,
        "recolor_fraction_max": result.max_recolor_fraction,
        "escalations": result.escalations,
        "violation_batches": sum(1 for r in result.reports if not r.proper),
        "delta_rebuilds": engine.delta.rebuilds,
        "stream_wall_time_s": round(result.wall_time_s, 4),
        "vertices_final": engine.n_alive,
        "delta_final": engine.max_degree,
    }
    if "makespan_ms" in ledger:
        # heterogeneous network model attached (repro.network.hetnet):
        # simulated-clock totals ride along; absent otherwise so
        # homogeneous stream artifacts stay byte-identical to pre-model ones
        metrics["makespan_ms"] = ledger["makespan_ms"]
        if getattr(engine, "netmodel", None) is not None:
            metrics["critical_link"] = engine.netmodel.critical_element()[0]
    metrics.update(latency_fields(wall_times, total_updates, result.wall_time_s))
    return metrics


def run_stream(
    workload,
    *,
    params: AlgorithmParameters | None = None,
    seed: int = 0,
    mode: str = "repair",
    verify_each_batch: bool = True,
    tracer=None,
    backend: str | ExecutionBackend | None = None,
    shards: int | None = None,
    metrics=None,
) -> tuple[DynamicColoring, StreamResult, dict[str, Any]]:
    """Bootstrap, absorb every batch, and summarize.

    Returns ``(engine, result, metrics)``; ``metrics`` carries the static
    cell fields (sizes, Delta, dilation of the *initial* graph) plus the
    stream-specific ones, including ``batch_wall_times_s`` (every batch's
    measured repair wall time) and the exact ``repair_ms_p50/p95/p99``
    derived from them.  ``wall_time_s`` inside the metrics covers only
    the batch loop (``stream_wall_time_s``); the sweep runner separately
    records whole-cell wall time, which additionally includes workload
    generation and the bootstrap coloring (identical for both modes).
    ``tracer`` (optional) is handed to the engine: the trace gains a
    ``stream.bootstrap`` span plus one ``stream.batch`` span per batch.
    ``backend`` / ``shards`` select the execution backend for the engine's
    pipeline delegations (bootstrap + scratch escalations); every metric
    is backend-invariant by contract, and a sharded run adds its real
    boundary-traffic totals (``boundary_bits`` et al.) to ``metrics``.
    ``metrics`` (a :class:`~repro.observe.metrics.MetricsRegistry`,
    optional) binds a live registry to the engine; it is fed from
    finished batch reports only, so passing one cannot change any
    reported value.  A workload carrying a sampled heterogeneous network
    model (``workload.netmodel``, see :mod:`repro.network.hetnet`) has it
    attached to the engine automatically; the returned metrics then also
    carry ``makespan_ms`` and ``critical_link``.
    """
    graph = workload.graph
    batches = getattr(workload, "batches", None)
    if batches is None:
        raise ValueError(
            f"workload {workload.name!r} has no update stream; "
            "stream modes need a StreamWorkload"
        )
    owns_backend = not isinstance(backend, ExecutionBackend) and (
        backend is not None or shards is not None
    )
    if backend is None and shards is not None:
        backend = "sharded"
    exec_backend = (
        make_backend(backend, shards=shards) if backend is not None else None
    )
    bootstrap_start = time.perf_counter()
    # map the cell-algorithm alias; anything unrecognized falls through to
    # DynamicColoring's own mode validation rather than silently running
    # repair under a baseline label
    engine_mode = "scratch" if mode == "recolor_scratch" else mode
    engine = DynamicColoring(
        graph,
        params=params,
        seed=seed,
        mode=engine_mode,
        verify_each_batch=verify_each_batch,
        tracer=tracer,
        backend=exec_backend,
        metrics=metrics,
        netmodel=getattr(workload, "netmodel", None),
    )
    bootstrap_s = time.perf_counter() - bootstrap_start
    result = engine.run(batches)
    summary = summarize_stream(engine, result, batches)
    summary["bootstrap_wall_time_s"] = round(bootstrap_s, 4)
    if exec_backend is not None:
        exchange = exec_backend.exchange_summary()
        if exchange:
            summary.update(
                backend="sharded",
                backend_mode=exchange.get("mode"),
                backend_shards=exchange.get("shards"),
                boundary_bits=exchange.get("total_message_bits", 0),
                boundary_exchanges=exchange.get("exchanges", 0),
            )
        if owns_backend:
            exec_backend.close()
    return engine, result, summary
