"""Shared stream execution: one entry point for the CLI and the sweep runner.

:func:`run_stream` consumes a :class:`~repro.workloads.streams.StreamWorkload`
through a :class:`~repro.dynamic.engine.DynamicColoring` in either mode and
returns the artifact-ready metrics dict, so ``repro stream`` and stream
sweep cells report identical quantities.
"""

from __future__ import annotations

import time
from typing import Any

from repro.dynamic.engine import DynamicColoring, StreamResult
from repro.parallel.backend import ExecutionBackend, make_backend
from repro.params import AlgorithmParameters


def run_stream(
    workload,
    *,
    params: AlgorithmParameters | None = None,
    seed: int = 0,
    mode: str = "repair",
    verify_each_batch: bool = True,
    tracer=None,
    backend: str | ExecutionBackend | None = None,
    shards: int | None = None,
) -> tuple[DynamicColoring, StreamResult, dict[str, Any]]:
    """Bootstrap, absorb every batch, and summarize.

    Returns ``(engine, result, metrics)``; ``metrics`` carries the static
    cell fields (sizes, Delta, dilation of the *initial* graph) plus the
    stream-specific ones.  ``wall_time_s`` inside the metrics covers only
    the batch loop (``stream_wall_time_s``); the sweep runner separately
    records whole-cell wall time, which additionally includes workload
    generation and the bootstrap coloring (identical for both modes).
    ``tracer`` (optional) is handed to the engine: the trace gains a
    ``stream.bootstrap`` span plus one ``stream.batch`` span per batch.
    ``backend`` / ``shards`` select the execution backend for the engine's
    pipeline delegations (bootstrap + scratch escalations); every metric
    is backend-invariant by contract, and a sharded run adds its real
    boundary-traffic totals (``boundary_bits`` et al.) to ``metrics``.
    """
    graph = workload.graph
    batches = getattr(workload, "batches", None)
    if batches is None:
        raise ValueError(
            f"workload {workload.name!r} has no update stream; "
            "stream modes need a StreamWorkload"
        )
    owns_backend = not isinstance(backend, ExecutionBackend) and (
        backend is not None or shards is not None
    )
    if backend is None and shards is not None:
        backend = "sharded"
    exec_backend = (
        make_backend(backend, shards=shards) if backend is not None else None
    )
    bootstrap_start = time.perf_counter()
    # map the cell-algorithm alias; anything unrecognized falls through to
    # DynamicColoring's own mode validation rather than silently running
    # repair under a baseline label
    engine_mode = "scratch" if mode == "recolor_scratch" else mode
    engine = DynamicColoring(
        graph,
        params=params,
        seed=seed,
        mode=engine_mode,
        verify_each_batch=verify_each_batch,
        tracer=tracer,
        backend=exec_backend,
    )
    bootstrap_s = time.perf_counter() - bootstrap_start
    result = engine.run(batches)
    ledger = engine.ledger.summary()
    alive_colors = engine.colors[engine.delta.alive_mask]
    metrics: dict[str, Any] = {
        "machines": graph.n_machines,
        "vertices": graph.n_vertices,
        "delta": graph.max_degree,
        "dilation": graph.dilation,
        "bandwidth_cap_bits": engine.ledger.bandwidth_bits,
        "num_colors": engine.num_colors,
        "regime_effective": "stream",
        "rounds_h": ledger["rounds_h"],
        "rounds_g": ledger["rounds_g"],
        "total_message_bits": ledger["total_message_bits"],
        "max_message_bits": ledger["max_message_bits"],
        "colors_used": len(set(alive_colors.tolist())),
        "proper": bool(result.all_proper),
        "fallbacks": result.escalations,
        "retries": 0,
        "batches": result.batches,
        "stream_updates": sum(len(b) for b in batches),
        "repaired_vertices": result.total_repaired,
        "recolor_fraction_mean": result.mean_recolor_fraction,
        "recolor_fraction_max": result.max_recolor_fraction,
        "escalations": result.escalations,
        "delta_rebuilds": engine.delta.rebuilds,
        "bootstrap_wall_time_s": round(bootstrap_s, 4),
        "stream_wall_time_s": round(result.wall_time_s, 4),
        "vertices_final": engine.n_alive,
        "delta_final": engine.max_degree,
    }
    if exec_backend is not None:
        summary = exec_backend.exchange_summary()
        if summary:
            metrics.update(
                backend="sharded",
                backend_mode=summary.get("mode"),
                backend_shards=summary.get("shards"),
                boundary_bits=summary.get("total_message_bits", 0),
                boundary_exchanges=summary.get("exchanges", 0),
            )
        if owns_backend:
            exec_backend.close()
    return engine, result, metrics
