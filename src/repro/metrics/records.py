"""Experiment records and table formatting shared by the benchmarks.

Every benchmark produces an :class:`ExperimentRecord` -- the paper-claimed
quantity next to the measured one -- and prints it with
:func:`format_table`, so ``pytest benchmarks/ --benchmark-only`` output
doubles as the EXPERIMENTS.md source material.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentRecord:
    """One experiment's outcome."""

    experiment: str
    claim: str
    params_preset: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **kwargs: Any) -> None:
        """Append one measurement row."""
        self.rows.append(kwargs)

    def to_text(self) -> str:
        """Render as the table the benchmark prints."""
        lines = [f"== {self.experiment} ==", f"claim: {self.claim}",
                 f"preset: {self.params_preset}"]
        if self.rows:
            lines.append(format_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def format_table(rows: list[dict[str, Any]]) -> str:
    """Fixed-width text table from a list of homogeneous dicts."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    rendered = [
        {h: _fmt(row.get(h)) for h in headers} for row in rows
    ]
    widths = {
        h: max(len(h), max(len(r[h]) for r in rendered)) for h in headers
    }
    head = "  ".join(h.ljust(widths[h]) for h in headers)
    sep = "  ".join("-" * widths[h] for h in headers)
    body = [
        "  ".join(r[h].ljust(widths[h]) for h in headers) for r in rendered
    ]
    return "\n".join([head, sep, *body])


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
