"""Experiment result records and table rendering."""

from repro.metrics.records import ExperimentRecord, format_table

__all__ = ["ExperimentRecord", "format_table"]
