"""Churn workload generators: streams of update batches with known shape.

A :class:`StreamWorkload` is a :class:`~repro.workloads.generators.Workload`
plus a pre-generated list of :class:`~repro.dynamic.updates.UpdateBatch`
objects, deterministic given the rng.  Three churn families mirror how
production cluster graphs actually move:

* :func:`sliding_window_stream` -- an edge stream with a fixed-size window:
  every batch retires the oldest links and admits fresh ones (steady-state
  turnover, the classic dynamic-graph benchmark shape);
* :func:`hotspot_churn_stream` -- churn concentrated on a small hot subset,
  plus machine arrivals wired into the hotspot and departures elsewhere
  (skewed traffic, the "heavy traffic" shape of the ROADMAP north star);
* :func:`cluster_churn_stream` -- cluster merge/split traces with background
  edge churn (the contraction/decomposition shape: clusters are transient).

Generators validate their own events against a *shadow* of the engine's
structural state (the same :class:`~repro.dynamic.delta.DeltaCSR` machinery),
so every emitted batch is applicable by construction; the engine re-validates
on application and raises on any drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.builders import ClusterTopology, blowup
from repro.dynamic.delta import DeltaCSR
from repro.dynamic.updates import UpdateBatch
from repro.workloads.generators import GENERATORS, Workload, _random_network


@dataclass
class StreamWorkload(Workload):
    """A churn instance: initial graph + the update batches to absorb."""

    batches: list[UpdateBatch] = field(default_factory=list)

    @property
    def total_updates(self) -> int:
        """Number of structural events across every batch."""
        return sum(len(b) for b in self.batches)


class _Shadow:
    """Generator-side mirror of the engine's structural state.

    Tracks just enough (adjacency + cluster sizes + liveness) to emit only
    applicable events; the engine's own application is the authority and
    raises if a generator ever drifts from these semantics.
    """

    def __init__(self, graph):
        self.delta = DeltaCSR(graph.csr)
        self.sizes = [graph.cluster_size(v) for v in range(graph.n_vertices)]

    def alive_vertices(self) -> np.ndarray:
        return np.flatnonzero(self.delta.alive_mask)

    def insert(self, u: int, v: int) -> None:
        self.delta.insert_edge(u, v)

    def delete(self, u: int, v: int) -> None:
        self.delta.delete_edge(u, v)

    def add(self, edges, size: int) -> int:
        w = self.delta.add_vertex()
        self.sizes.append(size)
        for x in edges:
            self.delta.insert_edge(w, int(x))
        return w

    def remove(self, v: int) -> None:
        self.delta.remove_vertex(v)
        self.sizes[v] = 0

    def merge(self, u: int, v: int) -> None:
        for x in self.delta.remove_vertex(v):
            if x != u and not self.delta.has_edge(u, x):
                self.delta.insert_edge(u, x)
        self.sizes[u] += self.sizes[v]
        self.sizes[v] = 0

    def split(self, u: int, moved, size: int) -> int:
        w = self.delta.add_vertex()
        size = max(1, min(int(size), self.sizes[u] - 1))
        self.sizes.append(size)
        self.sizes[u] -= size
        for x in moved:
            self.delta.delete_edge(u, int(x))
            self.delta.insert_edge(w, int(x))
        self.delta.insert_edge(u, w)
        return w


def _initial_graph(
    rng: np.random.Generator,
    n_vertices: int,
    avg_degree: float,
    cluster_size: int,
    topology: ClusterTopology,
):
    """A connected random conflict graph blown up into clusters."""
    h = _random_network(rng, n_vertices, 0.0, avg_degree)
    return blowup(h, rng, cluster_size=cluster_size, topology=topology)


def _sample_new_edge(
    rng: np.random.Generator,
    shadow: _Shadow,
    pool_u: np.ndarray,
    pool_v: np.ndarray,
    max_tries: int = 64,
) -> tuple[int, int] | None:
    """A uniformly drawn currently-absent pair (endpoint pools may differ)."""
    for _ in range(max_tries):
        u = int(pool_u[rng.integers(0, pool_u.size)])
        v = int(pool_v[rng.integers(0, pool_v.size)])
        if u != v and not shadow.delta.has_edge(u, v):
            return (u, v)
    return None


def sliding_window_stream(
    rng: np.random.Generator,
    *,
    n_vertices: int = 300,
    avg_degree: float = 8.0,
    cluster_size: int = 1,
    topology: ClusterTopology = "star",
    batches: int = 8,
    churn_fraction: float = 0.05,
) -> StreamWorkload:
    """Sliding-window edge turnover: each batch retires the
    ``churn_fraction`` oldest edges and admits as many fresh random ones.

    The live edge count (and hence the degree profile) stays roughly
    stationary, so this isolates pure *turnover* cost -- the acceptance
    scenario of the dynamic subsystem.
    """
    graph = _initial_graph(rng, n_vertices, avg_degree, cluster_size, topology)
    shadow = _Shadow(graph)
    edge_u, edge_v = graph.h_edge_arrays()
    window: list[tuple[int, int]] = list(
        zip(edge_u.tolist(), edge_v.tolist())
    )
    churn = max(1, int(churn_fraction * len(window)))
    verts = shadow.alive_vertices()
    out: list[UpdateBatch] = []
    for _ in range(batches):
        batch = UpdateBatch()
        retired, window = window[:churn], window[churn:]
        for u, v in retired:
            batch.edge_delete(u, v)
            shadow.delete(u, v)
        for _ in range(churn):
            pair = _sample_new_edge(rng, shadow, verts, verts)
            if pair is None:
                continue
            batch.edge_insert(*pair)
            shadow.insert(*pair)
            window.append(pair)
        out.append(batch)
    return StreamWorkload(
        name="sliding_window",
        graph=graph,
        notes=(
            f"{batches} batches x {churn} edge turnover on "
            f"G(n={n_vertices}, d~{avg_degree:g})"
        ),
        batches=out,
    )


def hotspot_churn_stream(
    rng: np.random.Generator,
    *,
    n_vertices: int = 300,
    avg_degree: float = 10.0,
    cluster_size: int = 1,
    topology: ClusterTopology = "star",
    batches: int = 8,
    hotspot_fraction: float = 0.05,
    churn_edges: int | None = None,
    arrivals: int = 4,
    departures: int = 2,
) -> StreamWorkload:
    """Skewed churn: edge turnover concentrated on a small hotspot, new
    clusters arriving wired into the hotspot, old ones departing elsewhere.

    Hotspot degrees drift upward, exercising palette *growth*; departures
    exercise shrinkage and the palette-retightening path.
    """
    graph = _initial_graph(rng, n_vertices, avg_degree, cluster_size, topology)
    shadow = _Shadow(graph)
    hot_count = max(2, int(hotspot_fraction * n_vertices))
    hotspot = np.arange(hot_count, dtype=np.int64)
    churn = (
        churn_edges
        if churn_edges is not None
        else max(1, int(0.02 * graph.n_h_edges))
    )
    out: list[UpdateBatch] = []
    for _ in range(batches):
        batch = UpdateBatch()
        # retire random hotspot-incident edges (any edge when none left)
        edge_u, edge_v = shadow.delta.edge_arrays()
        touches_hot = (edge_u < hot_count) | (edge_v < hot_count)
        pool = np.flatnonzero(touches_hot)
        if pool.size == 0:
            pool = np.arange(edge_u.size)
        take = min(churn, pool.size)
        picked = rng.choice(pool, size=take, replace=False)
        for i in picked:
            u, v = int(edge_u[i]), int(edge_v[i])
            batch.edge_delete(u, v)
            shadow.delete(u, v)
        # departures: non-hotspot veterans leave wholesale
        candidates = shadow.alive_vertices()
        candidates = candidates[candidates >= hot_count]
        for _ in range(min(departures, max(0, candidates.size - 1))):
            v = int(candidates[rng.integers(0, candidates.size)])
            batch.vertex_remove(v)
            shadow.remove(v)
            candidates = candidates[candidates != v]
        # arrivals: new clusters wired into the hotspot
        for _ in range(arrivals):
            alive_hot = hotspot[shadow.delta.alive_mask[hotspot]]
            if alive_hot.size == 0:
                break
            k = min(3, alive_hot.size)
            targets = [int(t) for t in rng.choice(alive_hot, size=k, replace=False)]
            size = int(rng.integers(1, 4))
            batch.vertex_add(edges=targets, size=size)
            shadow.add(targets, size=size)
        # fresh hotspot-incident edges
        verts = shadow.alive_vertices()
        alive_hot = hotspot[shadow.delta.alive_mask[hotspot]]
        if alive_hot.size:
            for _ in range(churn):
                pair = _sample_new_edge(rng, shadow, alive_hot, verts)
                if pair is None:
                    continue
                batch.edge_insert(*pair)
                shadow.insert(*pair)
        out.append(batch)
    return StreamWorkload(
        name="hotspot_churn",
        graph=graph,
        notes=(
            f"{batches} batches, {hot_count}-vertex hotspot, "
            f"{churn} edge churn + {arrivals} arrivals/{departures} departures"
        ),
        batches=out,
    )


def cluster_churn_stream(
    rng: np.random.Generator,
    *,
    n_vertices: int = 150,
    avg_degree: float = 8.0,
    cluster_size: int = 4,
    topology: ClusterTopology = "star",
    batches: int = 6,
    merges_per_batch: int = 3,
    splits_per_batch: int = 3,
    churn_edges: int | None = None,
) -> StreamWorkload:
    """Merge/split traces: clusters coalesce and fission while background
    edge churn keeps the conflict frontier moving -- the shape contraction
    and decomposition algorithms impose on their cluster graphs."""
    if cluster_size < 2:
        raise ValueError("cluster_churn_stream needs cluster_size >= 2 to split")
    graph = _initial_graph(rng, n_vertices, avg_degree, cluster_size, topology)
    shadow = _Shadow(graph)
    churn = (
        churn_edges
        if churn_edges is not None
        else max(1, int(0.02 * graph.n_h_edges))
    )
    out: list[UpdateBatch] = []
    for _ in range(batches):
        batch = UpdateBatch()
        # background edge churn first (matches the batch application order)
        edge_u, edge_v = shadow.delta.edge_arrays()
        take = min(churn, edge_u.size)
        picked = rng.choice(edge_u.size, size=take, replace=False)
        for i in picked:
            u, v = int(edge_u[i]), int(edge_v[i])
            batch.edge_delete(u, v)
            shadow.delete(u, v)
        verts = shadow.alive_vertices()
        for _ in range(churn):
            pair = _sample_new_edge(rng, shadow, verts, verts)
            if pair is None:
                continue
            batch.edge_insert(*pair)
            shadow.insert(*pair)
        # merges: adjacent alive pairs coalesce
        for _ in range(merges_per_batch):
            edge_u, edge_v = shadow.delta.edge_arrays()
            if edge_u.size == 0:
                break
            i = int(rng.integers(0, edge_u.size))
            u, v = int(edge_u[i]), int(edge_v[i])
            batch.cluster_merge(u, v)
            shadow.merge(u, v)
        # splits: big-enough clusters shed half their neighbors
        for _ in range(splits_per_batch):
            candidates = [
                int(v)
                for v in shadow.alive_vertices()
                if shadow.sizes[v] >= 2 and shadow.delta.neighbors(int(v)).size >= 1
            ]
            if not candidates:
                break
            u = candidates[int(rng.integers(0, len(candidates)))]
            nbrs = shadow.delta.neighbors(u)
            k = int(nbrs.size) // 2
            moved = (
                [int(x) for x in rng.choice(nbrs, size=k, replace=False)]
                if k
                else []
            )
            size = max(1, shadow.sizes[u] // 2)
            batch.cluster_split(u, moved, size=size)
            shadow.split(u, moved, size)
        out.append(batch)
    return StreamWorkload(
        name="cluster_churn",
        graph=graph,
        notes=(
            f"{batches} batches, {merges_per_batch} merges + "
            f"{splits_per_batch} splits each, {churn} edge churn"
        ),
        batches=out,
    )


#: Stream-capable generators (every entry also lives in ``GENERATORS``, so
#: listings, sweeps, and the CLI resolve them uniformly; this sub-registry
#: is what stream-only surfaces -- ``repro stream``, the stream suites --
#: iterate).
STREAMS = {
    "sliding_window": sliding_window_stream,
    "hotspot_churn": hotspot_churn_stream,
    "cluster_churn": cluster_churn_stream,
}

GENERATORS.update(STREAMS)
