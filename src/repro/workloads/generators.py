"""Workload generators with planted ground truth.

Each generator returns a :class:`Workload`: a cluster graph plus whatever
ground truth the corresponding experiment needs (planted clique membership,
anti-degrees, expected regime).  Generators are deterministic given the rng.

The families mirror the paper's narrative:

* planted ACD instances (dense almost-cliques + genuinely sparse vertices)
  for Experiment E6 and the non-cabal pipeline;
* cabal instances (near-cliques with tiny external degree and controlled
  anti-degree) for the colorful-matching and put-aside experiments;
* CONGEST identity instances (``H = G``), the model the paper generalizes;
* contraction/Voronoi instances, how cluster graphs arise in practice;
* the Figure 1 example and Figure 2/3 bridge pathology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.cluster.builders import ClusterTopology, blowup, contraction_clusters, voronoi_clusters
from repro.cluster.cluster_graph import ClusterGraph
from repro.network.commgraph import CommGraph
from repro.workloads.specs import PARAM_SPECS, validated  # noqa: F401  (re-exported)


@dataclass
class Workload:
    """A test instance: the graph, its provenance, and planted truth.

    ``hetnet`` / ``netmodel`` are only populated when the generator was
    called with the ``net_*`` knobs (see
    :func:`repro.workloads.specs.validated`): the
    :class:`~repro.network.hetnet.HetNetSpec` that was requested and the
    :class:`~repro.network.hetnet.HetNetModel` sampled over this
    workload's communication graph.  Both stay ``None`` on the default
    homogeneous fabric.
    """

    name: str
    graph: ClusterGraph
    planted_cliques: list[list[int]] = field(default_factory=list)
    planted_sparse: list[int] = field(default_factory=list)
    expected_regime: str = "auto"  # "high_degree" | "low_degree" | "auto"
    notes: str = ""
    hetnet: object = None
    netmodel: object = None

    @property
    def delta(self) -> int:
        """Maximum degree of the conflict graph."""
        return self.graph.max_degree


def _planted_almost_clique(
    h: nx.Graph,
    members: list[int],
    rng: np.random.Generator,
    anti_degree: int,
) -> None:
    """Add a clique on ``members`` minus a random sprinkling of anti-edges
    giving each vertex anti-degree about ``anti_degree``.
    """
    size = len(members)
    h.add_edges_from(
        (members[i], members[j]) for i in range(size) for j in range(i + 1, size)
    )
    if anti_degree <= 0:
        return
    target_anti_edges = (anti_degree * size) // 2
    removed = 0
    budget = {v: anti_degree for v in members}
    attempts = 0
    while removed < target_anti_edges and attempts < 20 * target_anti_edges:
        attempts += 1
        i, j = rng.integers(0, size, size=2)
        u, v = members[int(i)], members[int(j)]
        if u == v or not h.has_edge(u, v):
            continue
        if budget[u] <= 0 or budget[v] <= 0:
            continue
        h.remove_edge(u, v)
        budget[u] -= 1
        budget[v] -= 1
        removed += 1


@validated("planted_acd")
def planted_acd_instance(
    rng: np.random.Generator,
    *,
    n_cliques: int = 4,
    clique_size: int = 50,
    anti_degree: int = 1,
    external_degree: int = 2,
    n_sparse: int = 60,
    sparse_degree_fraction: float = 0.5,
    cluster_size: int = 3,
    topology: ClusterTopology = "star",
    link_multiplicity: int = 2,
) -> Workload:
    """Dense almost-cliques plus a sparse fringe (Experiment E6, Alg. 4).

    Clique vertices get ``external_degree`` edges to the sparse part (making
    the cliques non-cabals when ``external_degree`` exceeds the cabal
    threshold, cabals otherwise).  Sparse vertices form an Erdos-Renyi graph
    with expected degree ``sparse_degree_fraction * clique_size`` -- high
    enough to be interesting, sparse enough to have Omega(eps^2 Delta)
    sparsity.
    """
    h = nx.Graph()
    cliques: list[list[int]] = []
    next_id = 0
    for _ in range(n_cliques):
        members = list(range(next_id, next_id + clique_size))
        next_id += clique_size
        h.add_nodes_from(members)
        _planted_almost_clique(h, members, rng, anti_degree)
        cliques.append(members)
    sparse = list(range(next_id, next_id + n_sparse))
    h.add_nodes_from(sparse)
    if n_sparse > 1:
        p = min(1.0, sparse_degree_fraction * clique_size / max(1, n_sparse - 1))
        for i in range(n_sparse):
            for j in range(i + 1, n_sparse):
                if rng.random() < p:
                    h.add_edge(sparse[i], sparse[j])
    if sparse:
        for members in cliques:
            for v in members:
                targets = rng.choice(sparse, size=min(external_degree, n_sparse), replace=False)
                for t in targets:
                    h.add_edge(v, int(t))
    graph = blowup(
        h,
        rng,
        cluster_size=cluster_size,
        topology=topology,
        link_multiplicity=link_multiplicity,
    )
    return Workload(
        name="planted_acd",
        graph=graph,
        planted_cliques=cliques,
        planted_sparse=sparse,
        expected_regime="auto",
        notes=(
            f"{n_cliques} cliques of {clique_size} (anti-degree ~{anti_degree}, "
            f"external ~{external_degree}), {n_sparse} sparse vertices"
        ),
    )


@validated("cabal")
def cabal_instance(
    rng: np.random.Generator,
    *,
    n_cabals: int = 3,
    clique_size: int = 60,
    anti_degree: int = 2,
    inter_cabal_links: int = 2,
    cluster_size: int = 2,
    topology: ClusterTopology = "star",
) -> Workload:
    """Near-disjoint dense cliques with tiny external degree -- the cabal
    regime of Sections 6 and 7 (Experiments E7/E8).

    Consecutive cabals are joined by ``inter_cabal_links`` single edges, so
    external degrees are O(1) and every clique classifies as a cabal.
    """
    h = nx.Graph()
    cliques: list[list[int]] = []
    next_id = 0
    for _ in range(n_cabals):
        members = list(range(next_id, next_id + clique_size))
        next_id += clique_size
        h.add_nodes_from(members)
        _planted_almost_clique(h, members, rng, anti_degree)
        cliques.append(members)
    for i in range(n_cabals):
        a, b = cliques[i], cliques[(i + 1) % n_cabals]
        if n_cabals == 1:
            break
        for _ in range(inter_cabal_links):
            u = a[int(rng.integers(0, len(a)))]
            v = b[int(rng.integers(0, len(b)))]
            if u != v:
                h.add_edge(u, v)
    graph = blowup(h, rng, cluster_size=cluster_size, topology=topology)
    return Workload(
        name="cabal",
        graph=graph,
        planted_cliques=cliques,
        expected_regime="auto",
        notes=f"{n_cabals} cabals of {clique_size}, anti-degree ~{anti_degree}",
    )


def _random_network(
    rng: np.random.Generator, n: int, p: float, avg_degree: float | None
) -> nx.Graph:
    """One connected G(n, p) draw.

    When ``avg_degree`` is given it overrides ``p`` with ``avg_degree/(n-1)``
    and switches to the O(n + m) sampler, which is what makes 50k-machine
    instances generable at all; the default dense sampler is kept for every
    historical call site so pinned instance seeds keep drawing the exact
    same graphs.
    """
    seed = int(rng.integers(0, 2**31))
    if avg_degree is not None:
        p = min(1.0, avg_degree / max(1, n - 1))
        g = nx.fast_gnp_random_graph(n, p, seed=seed)
    else:
        g = nx.erdos_renyi_graph(n, p, seed=seed)
    components = list(nx.connected_components(g))
    for i in range(len(components) - 1):
        g.add_edge(next(iter(components[i])), next(iter(components[i + 1])))
    return g


@validated("congest")
def congest_instance(
    rng: np.random.Generator,
    *,
    n: int = 300,
    p: float | None = None,
    avg_degree: float | None = None,
) -> Workload:
    """``H = G``: the CONGEST special case the paper strictly generalizes."""
    if p is None:
        p = min(1.0, 8.0 / n + 0.05)
    g = _random_network(rng, n, p, avg_degree)
    comm = CommGraph.from_networkx(g)
    return Workload(
        name="congest",
        graph=ClusterGraph.identity(comm),
        expected_regime="auto",
        notes=f"identity clusters on G(n={n}, p={p:.3f})",
    )


@validated("contraction")
def contraction_instance(
    rng: np.random.Generator,
    *,
    n: int = 600,
    p: float = 0.02,
    fraction: float = 0.5,
    avg_degree: float | None = None,
) -> Workload:
    """Cluster graph obtained by contracting a random forest of a random
    network -- how cluster graphs arise in flow/decomposition algorithms.
    """
    g = _random_network(rng, n, p, avg_degree)
    comm = CommGraph.from_networkx(g)
    return Workload(
        name="contraction",
        graph=contraction_clusters(comm, fraction, rng),
        expected_regime="auto",
        notes=f"random forest contraction ({fraction:.0%}) of G(n={n}, p={p})",
    )


@validated("voronoi")
def voronoi_instance(
    rng: np.random.Generator,
    *,
    n: int = 600,
    p: float = 0.02,
    n_clusters: int = 150,
    avg_degree: float | None = None,
) -> Workload:
    """Voronoi (BFS-region) clustering of a random network."""
    g = _random_network(rng, n, p, avg_degree)
    comm = CommGraph.from_networkx(g)
    return Workload(
        name="voronoi",
        graph=voronoi_clusters(comm, n_clusters, rng),
        expected_regime="auto",
        notes=f"{n_clusters} BFS regions of G(n={n}, p={p})",
    )


@validated("figure1")
def figure1_example(rng: np.random.Generator | None = None) -> Workload:
    """The 4-cluster illustration of Figure 1: a communication graph whose
    clusters form a path-with-chord conflict graph, including a doubly-linked
    cluster pair (the degree-overcounting hazard of Section 1.1).

    The instance is hand-built and fully deterministic; ``rng`` is accepted
    (and unused) so the generator has the same ``(rng, **kwargs)`` signature
    as every other registry entry.
    """
    # Machines 0-2: cluster A (path); 3-5: cluster B (star); 6-7: cluster C;
    # 8: cluster D (singleton).  B-C realized by two distinct links.
    edges = [
        (0, 1), (1, 2),          # A internal
        (3, 4), (3, 5),          # B internal
        (6, 7),                  # C internal
        (2, 3),                  # A-B
        (4, 6), (5, 7),          # B-C twice
        (7, 8),                  # C-D
        (1, 8),                  # A-D
    ]
    comm = CommGraph(9, edges)
    assignment = [0, 0, 0, 1, 1, 1, 2, 2, 3]
    return Workload(
        name="figure1",
        graph=ClusterGraph.from_assignment(comm, assignment),
        notes="hand-built Figure 1 example (4 clusters, one doubled link)",
    )


@validated("bridge")
def bridge_pathology(
    rng: np.random.Generator, *, half_size: int = 20, external_per_side: int = 10
) -> Workload:
    """The Figure 2/3 hazard: a bridge-topology cluster whose halves see
    different external neighbors, forcing palette information through one
    ``O(log n)``-bit link.
    """
    h = nx.Graph()
    center = 0
    externals = list(range(1, 2 * external_per_side + 1))
    h.add_nodes_from([center] + externals)
    for v in externals:
        h.add_edge(center, v)
    # externals form a sparse ring so the instance is connected and colorable
    for i in range(len(externals)):
        h.add_edge(externals[i], externals[(i + 1) % len(externals)])
    graph = blowup(
        h,
        rng,
        cluster_size=max(2, half_size),
        topology="bridge",
        link_multiplicity=1,
    )
    return Workload(
        name="bridge",
        graph=graph,
        notes=f"bridge cluster with {2 * external_per_side} external neighbors",
    )


@validated("high_degree")
def high_degree_instance(
    rng: np.random.Generator,
    *,
    n_vertices: int = 400,
    degree_fraction: float = 0.5,
    cluster_size: int = 2,
    topology: ClusterTopology = "star",
    avg_degree: float | None = None,
) -> Workload:
    """A dense random conflict graph whose Delta exceeds the (scaled)
    high-degree threshold -- Theorem 1.2 territory (Experiment E1).

    ``avg_degree`` switches to an absolute expected degree (sparse sampler),
    the way large-n scale instances keep Delta above the threshold without
    quadratic edge counts.
    """
    p = degree_fraction
    g = _random_network(rng, n_vertices, p, avg_degree)
    graph = blowup(g, rng, cluster_size=cluster_size, topology=topology)
    density = f"{p:.2f}" if avg_degree is None else f"d~{avg_degree:g}"
    return Workload(
        name="high_degree",
        graph=graph,
        expected_regime="high_degree",
        notes=f"G({n_vertices}, {density}) conflict graph, clusters of {cluster_size}",
    )


@validated("low_degree")
def low_degree_instance(
    rng: np.random.Generator,
    *,
    n_vertices: int = 500,
    target_degree: int = 8,
    cluster_size: int = 3,
    topology: ClusterTopology = "path",
) -> Workload:
    """A sparse conflict graph (Delta = O(log n)): Theorem 1.1 territory
    (Experiment E2)."""
    d = max(2, target_degree)
    if (n_vertices * d) % 2 == 1:
        n_vertices += 1
    g = nx.random_regular_graph(d, n_vertices, seed=int(rng.integers(0, 2**31)))
    graph = blowup(g, rng, cluster_size=cluster_size, topology=topology)
    return Workload(
        name="low_degree",
        graph=graph,
        expected_regime="low_degree",
        notes=f"{d}-regular conflict graph on {n_vertices} vertices",
    )


#: Registry of every generator under its workload name -- the single place
#: the CLI and the experiments subsystem resolve workload names.  Every
#: entry has the uniform signature ``maker(rng, **kwargs)``.
GENERATORS = {
    "planted_acd": planted_acd_instance,
    "cabal": cabal_instance,
    "congest": congest_instance,
    "contraction": contraction_instance,
    "voronoi": voronoi_instance,
    "bridge": bridge_pathology,
    "high_degree": high_degree_instance,
    "low_degree": low_degree_instance,
    "figure1": figure1_example,
}
