"""Instance generators with planted ground truth (see DESIGN.md Section 2).

Importing this package registers both the static families
(:mod:`repro.workloads.generators`) and the churn streams
(:mod:`repro.workloads.streams`) in the shared ``GENERATORS`` registry, so
every surface -- CLI listings, sweeps, the stream runner -- resolves
workload names through the same table.
"""

from repro.workloads.generators import (
    GENERATORS,
    Workload,
    bridge_pathology,
    cabal_instance,
    congest_instance,
    contraction_instance,
    figure1_example,
    high_degree_instance,
    low_degree_instance,
    planted_acd_instance,
    voronoi_instance,
)
from repro.workloads.specs import (
    PARAM_SPECS,
    ParamSpec,
    clamp_params,
    fuzzable_params,
    validate_params,
)
from repro.workloads.streams import (
    STREAMS,
    StreamWorkload,
    cluster_churn_stream,
    hotspot_churn_stream,
    sliding_window_stream,
)

__all__ = [
    "GENERATORS",
    "PARAM_SPECS",
    "ParamSpec",
    "STREAMS",
    "clamp_params",
    "fuzzable_params",
    "validate_params",
    "StreamWorkload",
    "Workload",
    "cluster_churn_stream",
    "hotspot_churn_stream",
    "sliding_window_stream",
    "bridge_pathology",
    "cabal_instance",
    "congest_instance",
    "contraction_instance",
    "figure1_example",
    "high_degree_instance",
    "low_degree_instance",
    "planted_acd_instance",
    "voronoi_instance",
]
