"""Instance generators with planted ground truth (see DESIGN.md Section 2)."""

from repro.workloads.generators import (
    GENERATORS,
    Workload,
    bridge_pathology,
    cabal_instance,
    congest_instance,
    contraction_instance,
    figure1_example,
    high_degree_instance,
    low_degree_instance,
    planted_acd_instance,
    voronoi_instance,
)

__all__ = [
    "GENERATORS",
    "Workload",
    "bridge_pathology",
    "cabal_instance",
    "congest_instance",
    "contraction_instance",
    "figure1_example",
    "high_degree_instance",
    "low_degree_instance",
    "planted_acd_instance",
    "voronoi_instance",
]
