"""Machine-readable parameter specifications for the workload generators.

Every generator in :data:`~repro.workloads.generators.GENERATORS` takes a
keyword-only parameter set; this module is the single registry describing
those parameters -- name, type, hard validity bounds, and (for the fuzzer)
the *mutation box*: the smaller range inside which automated perturbation
is allowed to roam.  Two consumers:

- :func:`validate_params` runs at generator call time (wired in through
  the :func:`validated` decorator), so a bad parameter fails immediately
  with a message naming the parameter and its bounds instead of deep
  inside graph construction;
- :mod:`repro.fuzz.mutators` reads the same specs to jitter, redraw, and
  splice parameters while guaranteeing every candidate stays buildable.

Hard bounds are deliberately generous (they encode "the generator can
build this at all", e.g. the 50k-vertex scale suite); the fuzz box is
deliberately tight (it encodes "a smoke-budget fuzz run can afford to
evaluate this").
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Any

__all__ = [
    "NET_PARAM_NAMES",
    "PARAM_SPECS",
    "ParamSpec",
    "clamp_params",
    "fuzzable_params",
    "validate_params",
    "validated",
]

#: Cluster topologies the blowup builder understands (mirrors
#: ``repro.cluster.builders.ClusterTopology``; kept as data so the specs
#: module stays import-light).
TOPOLOGIES = ("path", "star", "clique", "tree", "bridge")

#: Arrival profiles plus "no schedule" (mirrors
#: ``repro.workloads.streams.ARRIVAL_PROFILES``).
ARRIVAL_CHOICES = (None, "constant", "diurnal", "spiky")


@dataclass(frozen=True)
class ParamSpec:
    """One generator parameter: type, validity bounds, and mutation box.

    ``low``/``high`` are the *hard* inclusive bounds a caller-supplied
    value must satisfy (``None`` = unbounded on that side).  ``fuzz``
    marks the parameter as mutable by the fuzzer; ``fuzz_low`` /
    ``fuzz_high`` bound the mutation box (defaulting to the hard bounds).
    ``role`` tags what the parameter controls -- ``"size"`` (instance
    scale, what the minimizer shrinks first), ``"structure"`` (planted
    shape: densities, cabal counts, hotspot rates -- what the structural
    mutator exaggerates), or ``"shape"`` (everything else).
    ``allow_none`` admits ``None`` (generator-computed default).
    """

    kind: str  # "int" | "float" | "choice"
    default: Any = None
    low: float | None = None
    high: float | None = None
    choices: tuple[Any, ...] | None = None
    fuzz: bool = False
    fuzz_low: float | None = None
    fuzz_high: float | None = None
    role: str = "shape"
    allow_none: bool = False

    @property
    def box(self) -> tuple[float, float]:
        """The mutation box ``(lo, hi)`` (falls back to the hard bounds)."""
        lo = self.fuzz_low if self.fuzz_low is not None else self.low
        hi = self.fuzz_high if self.fuzz_high is not None else self.high
        return (float(lo), float(hi))

    def check(self, name: str, value: Any) -> None:
        """Raise ``ValueError`` unless ``value`` is valid for this spec."""
        if value is None:
            if self.allow_none:
                return
            raise ValueError(f"parameter {name!r} does not accept None")
        if self.kind == "choice":
            if value not in (self.choices or ()):
                raise ValueError(
                    f"parameter {name!r} must be one of "
                    f"{', '.join(map(repr, self.choices or ()))}; got {value!r}"
                )
            return
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, numbers.Integral):
                raise ValueError(
                    f"parameter {name!r} must be an integer, got {value!r}"
                )
        elif self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, numbers.Real):
                raise ValueError(
                    f"parameter {name!r} must be a number, got {value!r}"
                )
        else:  # pragma: no cover - registry construction error
            raise ValueError(f"parameter {name!r} has unknown kind {self.kind!r}")
        if self.low is not None and value < self.low:
            raise ValueError(
                f"parameter {name!r} must be >= {self.low:g}, got {value!r}"
            )
        if self.high is not None and value > self.high:
            raise ValueError(
                f"parameter {name!r} must be <= {self.high:g}, got {value!r}"
            )

    def clamp(self, value: Any) -> Any:
        """Coerce ``value`` into the mutation box (type-correctly)."""
        if value is None or self.kind == "choice":
            return value
        lo, hi = self.box
        clamped = min(max(float(value), lo), hi)
        return int(round(clamped)) if self.kind == "int" else float(clamped)


def _topology(default: str = "star") -> ParamSpec:
    return ParamSpec(
        kind="choice", default=default, choices=TOPOLOGIES, fuzz=True
    )


def _arrival_specs() -> dict[str, ParamSpec]:
    """The open-loop arrival knobs shared by every stream generator
    (service material; excluded from the fuzz search space)."""
    return {
        "arrival_profile": ParamSpec(
            kind="choice", default=None, choices=ARRIVAL_CHOICES, allow_none=True
        ),
        "arrival_rate": ParamSpec(kind="float", default=1000.0, low=1e-9),
    }


#: The heterogeneous-fabric knobs shared by *every* generator (handled
#: centrally in :func:`validated`, never passed to the generator body).
NET_PARAM_NAMES = ("net_skew", "net_fill")


def _net_specs() -> dict[str, ParamSpec]:
    """The heterogeneous network knobs (:mod:`repro.network.hetnet`).

    Both default to ``None`` (no model sampled: the homogeneous fabric,
    bitwise-identical to the pre-hetnet behavior), so they stay absent
    from ``full_params`` until a caller -- or a fuzzer ``redraw`` -- sets
    one.  ``net_skew`` is the slow/standard bandwidth ratio, ``net_fill``
    the fraction of machines drawn slow; fuzz boxes keep smoke-budget
    searches inside the sweep range the ``hetnet`` suites pin.
    """
    return {
        "net_skew": ParamSpec(
            kind="float", default=None, low=1.0, high=1e6, allow_none=True,
            fuzz=True, fuzz_low=1.0, fuzz_high=100.0, role="structure",
        ),
        "net_fill": ParamSpec(
            kind="float", default=None, low=0.0, high=1.0, allow_none=True,
            fuzz=True, fuzz_low=0.0, fuzz_high=0.2, role="structure",
        ),
    }


#: Per-generator parameter specifications, keyed exactly like
#: ``GENERATORS``.  Every keyword parameter of every registered generator
#: appears here; :func:`validate_params` rejects anything else.
PARAM_SPECS: dict[str, dict[str, ParamSpec]] = {
    "planted_acd": {
        "n_cliques": ParamSpec(
            kind="int", default=4, low=1, high=256,
            fuzz=True, fuzz_low=1, fuzz_high=8, role="structure",
        ),
        "clique_size": ParamSpec(
            kind="int", default=50, low=2, high=5000,
            fuzz=True, fuzz_low=8, fuzz_high=96, role="size",
        ),
        "anti_degree": ParamSpec(
            kind="int", default=1, low=0, high=256,
            fuzz=True, fuzz_low=0, fuzz_high=10, role="structure",
        ),
        "external_degree": ParamSpec(
            kind="int", default=2, low=0, high=1024,
            fuzz=True, fuzz_low=0, fuzz_high=16, role="structure",
        ),
        "n_sparse": ParamSpec(
            kind="int", default=60, low=0, high=100_000,
            fuzz=True, fuzz_low=0, fuzz_high=160, role="size",
        ),
        "sparse_degree_fraction": ParamSpec(
            kind="float", default=0.5, low=0.0, high=16.0,
            fuzz=True, fuzz_low=0.0, fuzz_high=2.0, role="structure",
        ),
        "cluster_size": ParamSpec(
            kind="int", default=3, low=1, high=128,
            fuzz=True, fuzz_low=1, fuzz_high=6, role="size",
        ),
        "topology": _topology(),
        "link_multiplicity": ParamSpec(
            kind="int", default=2, low=1, high=64,
            fuzz=True, fuzz_low=1, fuzz_high=4,
        ),
        **_net_specs(),
    },
    "cabal": {
        "n_cabals": ParamSpec(
            kind="int", default=3, low=1, high=128,
            fuzz=True, fuzz_low=1, fuzz_high=6, role="structure",
        ),
        "clique_size": ParamSpec(
            kind="int", default=60, low=2, high=5000,
            fuzz=True, fuzz_low=10, fuzz_high=96, role="size",
        ),
        "anti_degree": ParamSpec(
            kind="int", default=2, low=0, high=256,
            fuzz=True, fuzz_low=0, fuzz_high=12, role="structure",
        ),
        "inter_cabal_links": ParamSpec(
            kind="int", default=2, low=0, high=1024,
            fuzz=True, fuzz_low=0, fuzz_high=24, role="structure",
        ),
        "cluster_size": ParamSpec(
            kind="int", default=2, low=1, high=128,
            fuzz=True, fuzz_low=1, fuzz_high=4, role="size",
        ),
        "topology": _topology(),
        **_net_specs(),
    },
    "congest": {
        "n": ParamSpec(
            kind="int", default=300, low=2, high=500_000,
            fuzz=True, fuzz_low=40, fuzz_high=500, role="size",
        ),
        "p": ParamSpec(
            kind="float", default=None, low=0.0, high=1.0, allow_none=True,
            fuzz=True, fuzz_low=0.01, fuzz_high=0.6, role="structure",
        ),
        "avg_degree": ParamSpec(
            kind="float", default=None, low=0.0, high=4096.0, allow_none=True,
        ),
        **_net_specs(),
    },
    "contraction": {
        "n": ParamSpec(
            kind="int", default=600, low=2, high=500_000,
            fuzz=True, fuzz_low=60, fuzz_high=700, role="size",
        ),
        "p": ParamSpec(
            kind="float", default=0.02, low=0.0, high=1.0,
            fuzz=True, fuzz_low=0.005, fuzz_high=0.2, role="structure",
        ),
        "fraction": ParamSpec(
            kind="float", default=0.5, low=0.0, high=1.0,
            fuzz=True, fuzz_low=0.05, fuzz_high=0.95, role="structure",
        ),
        "avg_degree": ParamSpec(
            kind="float", default=None, low=0.0, high=4096.0, allow_none=True,
        ),
        **_net_specs(),
    },
    "voronoi": {
        "n": ParamSpec(
            kind="int", default=600, low=2, high=500_000,
            fuzz=True, fuzz_low=80, fuzz_high=800, role="size",
        ),
        "p": ParamSpec(
            kind="float", default=0.02, low=0.0, high=1.0,
            fuzz=True, fuzz_low=0.005, fuzz_high=0.15, role="structure",
        ),
        "n_clusters": ParamSpec(
            kind="int", default=150, low=1, high=500_000,
            fuzz=True, fuzz_low=10, fuzz_high=300, role="structure",
        ),
        "avg_degree": ParamSpec(
            kind="float", default=None, low=0.0, high=4096.0, allow_none=True,
        ),
        **_net_specs(),
    },
    "bridge": {
        "half_size": ParamSpec(
            kind="int", default=20, low=2, high=2000,
            fuzz=True, fuzz_low=2, fuzz_high=40, role="size",
        ),
        "external_per_side": ParamSpec(
            kind="int", default=10, low=1, high=2000,
            fuzz=True, fuzz_low=2, fuzz_high=40, role="structure",
        ),
        **_net_specs(),
    },
    "high_degree": {
        "n_vertices": ParamSpec(
            kind="int", default=400, low=2, high=500_000,
            fuzz=True, fuzz_low=60, fuzz_high=500, role="size",
        ),
        "degree_fraction": ParamSpec(
            kind="float", default=0.5, low=0.0, high=1.0,
            fuzz=True, fuzz_low=0.05, fuzz_high=0.9, role="structure",
        ),
        "cluster_size": ParamSpec(
            kind="int", default=2, low=1, high=128,
            fuzz=True, fuzz_low=1, fuzz_high=4, role="size",
        ),
        "topology": _topology(),
        "avg_degree": ParamSpec(
            kind="float", default=None, low=0.0, high=4096.0, allow_none=True,
        ),
        **_net_specs(),
    },
    "low_degree": {
        "n_vertices": ParamSpec(
            kind="int", default=500, low=4, high=500_000,
            fuzz=True, fuzz_low=60, fuzz_high=900, role="size",
        ),
        "target_degree": ParamSpec(
            kind="int", default=8, low=2, high=1024,
            fuzz=True, fuzz_low=3, fuzz_high=24, role="structure",
        ),
        "cluster_size": ParamSpec(
            kind="int", default=3, low=1, high=128,
            fuzz=True, fuzz_low=1, fuzz_high=6, role="size",
        ),
        "topology": _topology(default="path"),
        **_net_specs(),
    },
    "figure1": {**_net_specs()},
    "sliding_window": {
        "n_vertices": ParamSpec(
            kind="int", default=300, low=4, high=500_000,
            fuzz=True, fuzz_low=60, fuzz_high=500, role="size",
        ),
        "avg_degree": ParamSpec(
            kind="float", default=8.0, low=0.0, high=1024.0,
            fuzz=True, fuzz_low=3.0, fuzz_high=24.0, role="structure",
        ),
        "cluster_size": ParamSpec(
            kind="int", default=1, low=1, high=128,
            fuzz=True, fuzz_low=1, fuzz_high=3, role="size",
        ),
        "topology": _topology(),
        "batches": ParamSpec(
            kind="int", default=8, low=1, high=100_000,
            fuzz=True, fuzz_low=3, fuzz_high=12, role="size",
        ),
        "churn_fraction": ParamSpec(
            kind="float", default=0.05, low=0.0, high=1.0,
            fuzz=True, fuzz_low=0.01, fuzz_high=0.5, role="structure",
        ),
        **_arrival_specs(),
        **_net_specs(),
    },
    "hotspot_churn": {
        "n_vertices": ParamSpec(
            kind="int", default=300, low=4, high=500_000,
            fuzz=True, fuzz_low=60, fuzz_high=500, role="size",
        ),
        "avg_degree": ParamSpec(
            kind="float", default=10.0, low=0.0, high=1024.0,
            fuzz=True, fuzz_low=3.0, fuzz_high=24.0, role="structure",
        ),
        "cluster_size": ParamSpec(
            kind="int", default=1, low=1, high=128,
            fuzz=True, fuzz_low=1, fuzz_high=3, role="size",
        ),
        "topology": _topology(),
        "batches": ParamSpec(
            kind="int", default=8, low=1, high=100_000,
            fuzz=True, fuzz_low=3, fuzz_high=12, role="size",
        ),
        "hotspot_fraction": ParamSpec(
            # fuzz box reaches 0.9: with the old 0.3 ceiling no in-box
            # parameter set could dirty > escalate_fraction of the graph,
            # so the "escalations" fuzz objective could never fire
            # (tests/test_fuzz.py pins an in-box escalating cell)
            kind="float", default=0.05, low=0.0, high=1.0,
            fuzz=True, fuzz_low=0.01, fuzz_high=0.9, role="structure",
        ),
        "churn_edges": ParamSpec(
            kind="int", default=None, low=0, high=1_000_000, allow_none=True,
            fuzz=True, fuzz_low=4, fuzz_high=400, role="structure",
        ),
        "arrivals": ParamSpec(
            kind="int", default=4, low=0, high=1024,
            fuzz=True, fuzz_low=0, fuzz_high=12, role="structure",
        ),
        "departures": ParamSpec(
            kind="int", default=2, low=0, high=1024,
            fuzz=True, fuzz_low=0, fuzz_high=12, role="structure",
        ),
        **_arrival_specs(),
        **_net_specs(),
    },
    "cluster_churn": {
        "n_vertices": ParamSpec(
            kind="int", default=150, low=4, high=500_000,
            fuzz=True, fuzz_low=40, fuzz_high=400, role="size",
        ),
        "avg_degree": ParamSpec(
            kind="float", default=8.0, low=0.0, high=1024.0,
            fuzz=True, fuzz_low=3.0, fuzz_high=20.0, role="structure",
        ),
        "cluster_size": ParamSpec(
            # the generator needs >= 2 to have anything to split
            kind="int", default=4, low=2, high=128,
            fuzz=True, fuzz_low=2, fuzz_high=8, role="size",
        ),
        "topology": _topology(),
        "batches": ParamSpec(
            kind="int", default=6, low=1, high=100_000,
            fuzz=True, fuzz_low=2, fuzz_high=10, role="size",
        ),
        "merges_per_batch": ParamSpec(
            kind="int", default=3, low=0, high=1024,
            fuzz=True, fuzz_low=0, fuzz_high=8, role="structure",
        ),
        "splits_per_batch": ParamSpec(
            kind="int", default=3, low=0, high=1024,
            fuzz=True, fuzz_low=0, fuzz_high=8, role="structure",
        ),
        "churn_edges": ParamSpec(
            kind="int", default=None, low=0, high=1_000_000, allow_none=True,
            fuzz=True, fuzz_low=2, fuzz_high=200, role="structure",
        ),
        **_arrival_specs(),
        **_net_specs(),
    },
}


def validate_params(name: str, kwargs: dict[str, Any]) -> None:
    """Validate generator kwargs against :data:`PARAM_SPECS`.

    Raises ``ValueError`` naming the offending parameter (unknown name,
    wrong type, out of hard bounds) -- the error a caller sees *before*
    any graph construction starts.  Unknown generator names raise too, so
    a registry/spec drift cannot silently skip validation.
    """
    try:
        specs = PARAM_SPECS[name]
    except KeyError:
        raise ValueError(
            f"no parameter specs registered for generator {name!r}"
        ) from None
    for key, value in kwargs.items():
        spec = specs.get(key)
        if spec is None:
            raise ValueError(
                f"generator {name!r} has no parameter {key!r}; valid "
                f"parameters: {', '.join(sorted(specs)) or '(none)'}"
            )
        spec.check(key, value)


def clamp_params(name: str, params: dict[str, Any]) -> dict[str, Any]:
    """Coerce every fuzz-mutable value into its mutation box.

    The post-condition every mutator relies on: the returned dict passes
    :func:`validate_params` and the generator can build it.  Non-mutable
    keys pass through unchanged (they were never mutated); a couple of
    cross-parameter constraints that per-parameter boxes cannot express
    are clamped here.
    """
    specs = PARAM_SPECS[name]
    out = dict(params)
    for key, value in out.items():
        spec = specs.get(key)
        if spec is not None and spec.fuzz:
            out[key] = spec.clamp(value)
    # cross-parameter constraints
    if name == "voronoi" and "n_clusters" in out:
        n = out.get("n", specs["n"].default)
        out["n_clusters"] = max(1, min(int(out["n_clusters"]), int(n)))
    if name == "low_degree" and "target_degree" in out:
        n = out.get("n_vertices", specs["n_vertices"].default)
        out["target_degree"] = max(2, min(int(out["target_degree"]), int(n) - 1))
    return out


def fuzzable_params(name: str) -> dict[str, ParamSpec]:
    """The subset of ``PARAM_SPECS[name]`` the fuzzer may mutate."""
    return {k: s for k, s in PARAM_SPECS[name].items() if s.fuzz}


def validated(name: str):
    """Decorator wiring :func:`validate_params` into a generator.

    Applied at definition time in :mod:`repro.workloads.generators` and
    :mod:`repro.workloads.streams`, so both registry dispatch *and* direct
    imports get call-time validation.

    The decorator is also where the heterogeneous-fabric knobs
    (:data:`NET_PARAM_NAMES`) are handled: they are validated like any
    other parameter, then *popped* before the generator body runs -- no
    generator knows about them.  When any is set, a
    :class:`~repro.network.hetnet.HetNetModel` is sampled over the built
    workload's communication graph from a ``SeedSequence`` child spawned
    off the workload RNG (spawning consumes no bit-stream draws, so the
    graph itself is bit-identical with the knobs on or off) and attached
    as ``workload.hetnet`` / ``workload.netmodel``.
    """
    import functools

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(rng=None, **kwargs):
            validate_params(name, kwargs)
            net = {k: kwargs.pop(k) for k in NET_PARAM_NAMES if k in kwargs}
            workload = fn(rng, **kwargs)
            if any(v is not None for v in net.values()):
                import numpy as np

                from repro.network.hetnet import HetNetModel, HetNetSpec

                spec = HetNetSpec(
                    skew=net.get("net_skew") or 1.0,
                    fill=net["net_fill"] if net.get("net_fill") is not None
                    else 0.1,
                )
                source = rng if rng is not None else np.random.default_rng(0)
                workload.hetnet = spec
                workload.netmodel = HetNetModel.sample(
                    workload.graph, spec, source.spawn(1)[0]
                )
            return workload

        return wrapper

    return decorate
