"""Per-cell wall-time annotation for sweep artifacts (CI log aid).

Reads one or more experiment JSONL artifacts and prints a compact
``cell -> wall time`` table, slowest first, plus the suite total.  CI's
``scale_smoke`` job runs this after the sweep so estimator-level
regressions show up in the job log at a glance -- *without* gating on wall
time (machine noise makes hard time gates flaky; ``repro compare`` reports
time but only gates on metrics, and this tool only prints).

Lives in :mod:`repro.observe` as the read-only sibling of the history
store; ``tools/print_cell_times.py`` remains as a thin shim for the
existing CI invocation, and ``repro cells`` is the in-CLI spelling.

Usage::

    repro cells scale_smoke.jsonl [more.jsonl ...]

Exit code 0 unless an artifact cannot be read.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def cell_label(cell: dict) -> str:
    """Human-readable cell key: workload(kwargs) + regime/seed."""
    kwargs = cell.get("workload_kwargs") or {}
    inner = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    label = f"{cell.get('workload', '?')}({inner})"
    regime = cell.get("regime")
    if regime and regime != "auto":
        label += f" regime={regime}"
    seed = cell.get("seed")
    if seed not in (None, 0):
        label += f" seed={seed}"
    return label


def print_timings(path: Path) -> int:
    """Print the per-cell wall-time table of one artifact; returns the
    number of timed cells."""
    rows: list[tuple[float, str, str]] = []
    suite = path.name
    with path.open() as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("kind") == "header":
                suite = record.get("suite", suite)
                continue
            if record.get("kind") != "cell":
                continue
            wall = record.get("wall_time_s")
            rows.append(
                (
                    float(wall) if wall is not None else float("nan"),
                    cell_label(record.get("cell", {})),
                    record.get("status", "?"),
                )
            )
    rows.sort(key=lambda r: (r[0] != r[0], -r[0]))  # slowest first, NaN last
    total = sum(w for w, _, _ in rows if w == w)
    print(f"== {suite}: per-cell wall times ({len(rows)} cells, "
          f"{total:.2f}s total) ==")
    for wall, label, status in rows:
        tag = "" if status == "ok" else f"  [{status}]"
        shown = f"{wall:8.2f}s" if wall == wall else "      --"
        print(f"  {shown}  {label}{tag}")
    return len(rows)


def main(argv: list[str]) -> int:
    """Print timing tables for every artifact named on the command line."""
    if not argv:
        print("usage: print_cell_times.py ARTIFACT.jsonl [...]", file=sys.stderr)
        return 2
    for name in argv:
        path = Path(name)
        if not path.is_file():
            print(f"print_cell_times: no such artifact {name}", file=sys.stderr)
            return 2
        print_timings(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
