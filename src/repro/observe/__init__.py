"""Observability: stage-level tracing and per-commit performance history.

Everything here *watches* the pipeline without perturbing it.  The
contract that makes the subsystem trustworthy:

- a :class:`~repro.observe.tracer.Tracer` only reads the bandwidth
  ledger's snapshots and the wall clock -- it never draws from the RNG,
  never charges the ledger, and never branches the algorithms, so an
  enabled tracer is *bitwise-invisible* (same colorings, same per-op
  ledger, same RNG end state; tested in ``tests/test_observe.py``);
- the default :data:`~repro.observe.tracer.NULL_TRACER` makes the whole
  layer a single no-op method call when tracing is off;
- live metrics (:mod:`repro.observe.metrics`) follow the same neutrality
  contract: a :class:`~repro.observe.metrics.MetricsRegistry` is fed
  *measured values* from finished batch reports, so an instrumented
  service run is bitwise-identical to a bare one;
- history reporting (:mod:`repro.observe.history`) is *report-only*: it
  flags soft wall-time regressions across commits but never gates
  (``repro compare`` on metrics is the gate).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and how it maps onto
the paper's stages.
"""

from repro.observe.cells import cell_label, print_timings
from repro.observe.history import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD,
    HISTORY_DIR,
    ServiceDrift,
    Slowdown,
    append_entry,
    detect_service_drift,
    detect_slowdowns,
    entry_from_artifact,
    history_path,
    list_suites,
    load_history,
    render_history,
    service_trend_rows,
    trend_rows,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    WindowedSeries,
    exact_percentiles,
)
from repro.observe.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    aggregate_stage_rows,
    stage_rows,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "stage_rows",
    "aggregate_stage_rows",
    "cell_label",
    "print_timings",
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "WindowedSeries",
    "exact_percentiles",
    "Slowdown",
    "ServiceDrift",
    "detect_service_drift",
    "service_trend_rows",
    "entry_from_artifact",
    "append_entry",
    "load_history",
    "list_suites",
    "history_path",
    "detect_slowdowns",
    "trend_rows",
    "render_history",
    "HISTORY_DIR",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
]
