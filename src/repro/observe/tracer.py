"""Stage-level tracing: nested spans over wall time, ledger windows, counters.

The paper bounds every phase of the algorithm separately -- ACD
construction, slack generation, cabal coloring, synchronized trials, the
put-aside finish -- in ``O(log* n)`` broadcast-and-aggregate rounds, but a
:class:`~repro.network.ledger.BandwidthLedger` only accumulates run totals.
A :class:`Tracer` attributes those totals: each :meth:`Tracer.span` opens a
named window that records wall time, the ledger counters accumulated inside
it (``rounds_h`` / ``rounds_g`` / payload bits, plus the true
*window-local* maximum message width via the ledger's max-window stack),
and free-form counters (frontier sizes, escalations, rows processed).
Spans nest: a stage span contains its per-pass spans, and a child's
counters are a sub-interval of its parent's.

Neutrality contract
-------------------

Tracing must be *bitwise-invisible*: an enabled tracer only reads ledger
snapshots and the wall clock -- it never draws randomness, never charges
the ledger, and never changes control flow.  The pinned-seed digest tests
(``tests/test_observe.py``) prove an enabled-tracer run produces the same
colorings, per-op ledger, and RNG end state as an untraced run.  The
default is the module singleton :data:`NULL_TRACER`, whose ``span`` returns
a shared no-op context manager -- the overhead of an untraced call site is
one attribute lookup and one method call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "aggregate_stage_rows",
    "stage_rows",
]


@dataclass
class SpanRecord:
    """One closed (or still-open) span: a named, tagged measurement window.

    ``rounds_h`` / ``rounds_g`` / ``message_bits`` / ``num_operations`` are
    ledger-counter differences between span entry and exit (zero when the
    tracer has no bound ledger); ``max_message_bits`` is the true
    *window-local* maximum capped message width (see
    :meth:`repro.network.ledger.BandwidthLedger.push_max_window`), not the
    ledger's global running maximum.
    """

    name: str
    tags: dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    rounds_h: int = 0
    rounds_g: int = 0
    message_bits: int = 0
    max_message_bits: int = 0
    num_operations: int = 0
    #: Simulated time accumulated inside the span when the bound ledger
    #: carries a heterogeneous network model (:mod:`repro.network.hetnet`);
    #: stays 0.0 -- and is omitted from the serialized span -- otherwise.
    makespan_ms: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    def counter(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto this span's counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def walk(self) -> Iterator["SpanRecord"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (the artifact ``trace`` section schema)."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall_time_s": round(self.wall_time_s, 6),
            "rounds_h": self.rounds_h,
            "rounds_g": self.rounds_g,
            "message_bits": self.message_bits,
            "max_message_bits": self.max_message_bits,
            "num_operations": self.num_operations,
        }
        if self.makespan_ms:
            out["makespan_ms"] = round(self.makespan_ms, 6)
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`.

    Exposes the underlying :class:`SpanRecord` as ``record`` and forwards
    :meth:`counter` to it, so call sites can write
    ``with tracer.span("x") as sp: sp.counter("rows", k)``.
    """

    __slots__ = ("_tracer", "record", "_start", "_before")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record
        self._start = 0.0
        self._before = None

    def counter(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto the span's counter ``name``."""
        self.record.counter(name, value)

    def __enter__(self) -> "_ActiveSpan":
        ledger = self._tracer.ledger
        if ledger is not None:
            self._before = ledger.snapshot()
            ledger.push_max_window()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.record.wall_time_s += time.perf_counter() - self._start
        ledger = self._tracer.ledger
        if ledger is not None and self._before is not None:
            after = ledger.snapshot()
            before = self._before
            self.record.rounds_h += after.rounds_h - before.rounds_h
            self.record.rounds_g += after.rounds_g - before.rounds_g
            self.record.message_bits += (
                after.total_message_bits - before.total_message_bits
            )
            self.record.num_operations += (
                after.num_operations - before.num_operations
            )
            self.record.makespan_ms += after.makespan_ms - before.makespan_ms
            window_max = ledger.pop_max_window()
            if window_max > self.record.max_message_bits:
                self.record.max_message_bits = window_max
        self._tracer._pop(self.record)
        return False


class Tracer:
    """Collects a tree of :class:`SpanRecord` windows for one execution.

    Parameters
    ----------
    ledger:
        Optional :class:`~repro.network.ledger.BandwidthLedger` whose
        counters spans attribute.  The executing runtime normally binds its
        own ledger via :meth:`bind_ledger` before any span opens.

    The tracer is single-threaded by design (like the runtimes it traces):
    spans close in LIFO order, enforced with a ``RuntimeError`` on misuse.
    """

    enabled: bool = True

    def __init__(self, ledger=None) -> None:
        self.ledger = ledger
        self.root = SpanRecord(name="trace")
        self._stack: list[SpanRecord] = [self.root]

    # ---- wiring --------------------------------------------------------------

    def bind_ledger(self, ledger) -> None:
        """Attach the ledger whose counters spans will attribute.

        Binding is only legal while no span is open: an open span holds a
        snapshot (and a max-window frame) of the previously bound ledger,
        and swapping underneath it would mis-attribute every counter.
        """
        if len(self._stack) > 1:
            raise RuntimeError(
                "cannot bind a ledger while spans are open "
                f"(innermost: {self._stack[-1].name!r})"
            )
        self.ledger = ledger

    # ---- spans ---------------------------------------------------------------

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a named child span of the innermost open span.

        Returns a context manager; counters recorded through it land on
        this span.  Tags are free-form identifying labels (``round=3``).
        """
        record = SpanRecord(name=name, tags=tags)
        self._stack[-1].children.append(record)
        self._stack.append(record)
        return _ActiveSpan(self, record)

    def _pop(self, record: SpanRecord) -> None:
        if self._stack[-1] is not record:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span {record.name!r} closed out of order "
                f"(innermost is {self._stack[-1].name!r})"
            )
        self._stack.pop()

    def counter(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto the innermost open span (or the root)."""
        self._stack[-1].counter(name, value)

    # ---- views ---------------------------------------------------------------

    @property
    def spans(self) -> list[SpanRecord]:
        """The top-level spans (direct children of the implicit root)."""
        return self.root.children

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready trace tree: ``{"spans": [...]}`` (the artifact
        ``trace`` section)."""
        return {"spans": [s.to_dict() for s in self.spans]}


class _NullSpan:
    """The shared no-op span: enters, exits, and counts into the void."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def counter(self, name: str, value: float = 1) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``span`` hands back one shared context-manager instance, so the cost
    of an untraced call site is a method call and nothing else -- no
    allocation, no clock read, no ledger snapshot.  Use the module
    singleton :data:`NULL_TRACER` rather than constructing new instances.
    """

    enabled: bool = False

    def bind_ledger(self, ledger) -> None:
        """No-op."""

    def span(self, name: str, **tags: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def counter(self, name: str, value: float = 1) -> None:
        """No-op."""

    def to_dict(self) -> None:
        """A null tracer has no trace (``None``, not an empty tree)."""
        return None


#: Module-level no-op singleton every runtime defaults to.
NULL_TRACER = NullTracer()


# ---- table views ------------------------------------------------------------


def stage_rows(
    trace: Tracer | dict[str, Any] | None,
) -> list[dict[str, Any]]:
    """Flatten a trace's *top-level* spans into table-ready stage rows.

    Accepts a live :class:`Tracer` or a serialized ``to_dict()`` tree (the
    artifact ``trace`` section).  One row per top-level span, in execution
    order: ``stage`` (name plus any tags), ``wall_s``, ``rounds_h``,
    ``rounds_g``, ``bits``, ``max_bits``.  Top-level spans partition the
    run, so summing any column reproduces the run's ledger totals -- the
    invariant ``repro trace`` prints and tests assert.
    """
    if trace is None:
        return []
    spans = trace.to_dict()["spans"] if isinstance(trace, Tracer) else (
        trace.get("spans", [])
    )
    rows = []
    for span in spans:
        tags = span.get("tags", {})
        label = span["name"]
        if tags:
            label += "[" + ",".join(f"{k}={v}" for k, v in sorted(tags.items())) + "]"
        rows.append(
            {
                "stage": label,
                "wall_s": float(span.get("wall_time_s", 0.0)),
                "rounds_h": int(span.get("rounds_h", 0)),
                "rounds_g": int(span.get("rounds_g", 0)),
                "bits": int(span.get("message_bits", 0)),
                "max_bits": int(span.get("max_message_bits", 0)),
                "makespan_ms": float(span.get("makespan_ms", 0.0)),
            }
        )
    return rows


def aggregate_stage_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Merge stage rows that share a span *name* (tags stripped), summing
    every column -- e.g. the per-batch ``stream.batch[batch=i]`` rows of a
    stream trace collapse into one ``stream.batch`` row.  ``max_bits``
    merges by maximum (it is a width, not a payload)."""
    merged: dict[str, dict[str, Any]] = {}
    for row in rows:
        name = row["stage"].split("[", 1)[0]
        bucket = merged.setdefault(
            name,
            {"stage": name, "wall_s": 0.0, "rounds_h": 0, "rounds_g": 0,
             "bits": 0, "max_bits": 0, "makespan_ms": 0.0, "spans": 0},
        )
        bucket["wall_s"] += row["wall_s"]
        bucket["rounds_h"] += row["rounds_h"]
        bucket["rounds_g"] += row["rounds_g"]
        bucket["bits"] += row["bits"]
        bucket["max_bits"] = max(bucket["max_bits"], row["max_bits"])
        bucket["makespan_ms"] += row.get("makespan_ms", 0.0)
        bucket["spans"] += 1
    return list(merged.values())
