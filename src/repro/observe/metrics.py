"""Streaming metrics: counters, gauges, log-scale histograms, time series.

The tracer (:mod:`repro.observe.tracer`) explains *one* run after the fact;
this module watches a *long-running* one while it executes.  A
:class:`MetricsRegistry` holds named instruments that a live engine feeds
batch by batch -- the observability substrate of the always-on coloring
service (:mod:`repro.serve`):

* :class:`Counter` -- monotone event count (updates absorbed, escalations,
  properness violations);
* :class:`Gauge` -- last-written level (live vertices, current ``Delta``);
* :class:`LogHistogram` -- mergeable fixed-bucket log-scale histogram for
  latency-shaped distributions, with p50/p95/p99 extraction whose relative
  error is bounded by the bucket growth factor (see below);
* :class:`WindowedSeries` -- fixed-width time windows accumulating
  count/sum/min/max, for throughput-over-time and properness-over-time.

Everything here obeys the observe-layer neutrality contract
(docs/OBSERVABILITY.md): instruments are fed *measured values* -- they
never draw randomness, never charge a ledger, and never branch the
algorithms, so an instrumented run is bitwise-identical to a bare one.

Histogram accuracy
------------------

A :class:`LogHistogram` buckets positive values geometrically: value ``v``
lands in bucket ``floor(log(v / min_value) / log(growth))``.  Quantile
extraction walks the cumulative counts to the bucket holding the
nearest-rank sample and returns the bucket's geometric midpoint, clamped
to the observed ``[min, max]``.  Every sample in a bucket is within a
factor ``sqrt(growth)`` of that midpoint, so the reported quantile is
within relative error ``sqrt(growth) - 1`` of the true nearest-rank
percentile (default growth ``2**0.25``: under 9.1%; the property tests in
``tests/test_metrics.py`` pin this against ``numpy.percentile``).  Two
histograms with the same layout merge by adding bucket counts -- merge is
associative and commutative, so per-shard or per-window histograms roll up
losslessly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "WindowedSeries",
    "exact_percentiles",
]

#: Default bucket growth factor: quantiles within ``sqrt(growth)-1`` < 9.1%.
DEFAULT_GROWTH = 2.0 ** 0.25

#: Default smallest resolvable positive value (microsecond-scale when the
#: unit is milliseconds); smaller positives clamp into bucket 0.
DEFAULT_MIN_VALUE = 1e-3


@dataclass
class Counter:
    """A monotone event counter (``inc`` only; merge adds)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Absorb another counter's count."""
        self.value += other.value

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot."""
        return {"value": self.value}


@dataclass
class Gauge:
    """A last-write-wins level (``set`` overwrites; merge keeps the latest
    write, tracked by an internal write sequence)."""

    value: float | None = None
    _writes: int = 0

    def set(self, value: float) -> None:
        """Overwrite the level."""
        self.value = float(value)
        self._writes += 1

    def merge(self, other: "Gauge") -> None:
        """Keep whichever side wrote more recently (by write count -- the
        deterministic proxy the registry uses instead of wall clocks)."""
        if other._writes > self._writes:
            self.value = other.value
            self._writes = other._writes

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot."""
        return {"value": self.value}


class LogHistogram:
    """Mergeable fixed-bucket log-scale histogram (see module docstring).

    Parameters
    ----------
    growth:
        Geometric bucket width; quantile relative error is bounded by
        ``sqrt(growth) - 1``.  Must exceed 1.
    min_value:
        Lower edge of bucket 0.  Positive samples below it clamp into
        bucket 0; zero and negative samples count into a dedicated
        underflow bucket (they are tracked, and quantiles treat them as
        the smallest samples).
    """

    __slots__ = (
        "growth", "min_value", "_log_growth", "buckets", "zero_count",
        "count", "total", "min", "max",
    )

    def __init__(
        self, growth: float = DEFAULT_GROWTH, min_value: float = DEFAULT_MIN_VALUE
    ) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._log_growth = math.log(self.growth)
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ---- recording -----------------------------------------------------------

    def _index(self, value: float) -> int:
        return max(0, int(math.log(value / self.min_value) / self._log_growth))

    def record(self, value: float) -> None:
        """Count one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def record_many(self, values: Iterable[float]) -> None:
        """Count every sample of an iterable."""
        for value in values:
            self.record(value)

    # ---- extraction ----------------------------------------------------------

    @property
    def mean(self) -> float | None:
        """Exact sample mean (``None`` when empty)."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Nearest-rank ``q``-quantile (``q`` in [0, 100]) within the
        documented relative-error bound; ``None`` when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zero_count:
            return max(0.0, self.min)
        seen = self.zero_count
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                # geometric midpoint of [min_value*g^idx, min_value*g^(idx+1))
                mid = self.min_value * self.growth ** (idx + 0.5)
                return min(max(mid, self.min, 0.0), self.max)
        return self.max  # pragma: no cover - counts always cover the rank

    def percentiles(self, qs: Sequence[float] = (50, 95, 99)) -> dict[str, float | None]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for the given ranks."""
        return {f"p{q:g}": self.quantile(q) for q in qs}

    # ---- merge ---------------------------------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        """Add another histogram's counts; layouts must match exactly."""
        if (self.growth, self.min_value) != (other.growth, other.min_value):
            raise ValueError(
                "cannot merge histograms with different layouts: "
                f"(growth={self.growth}, min={self.min_value}) vs "
                f"(growth={other.growth}, min={other.min_value})"
            )
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot: exact count/sum/min/max/mean plus the
        p50/p95/p99 extraction (bucket arrays stay internal)."""
        out: dict[str, Any] = {"count": self.count}
        if self.count:
            out.update(
                sum=round(self.total, 6),
                min=round(self.min, 6),
                max=round(self.max, 6),
                mean=round(self.total / self.count, 6),
            )
            out.update(
                {
                    k: round(v, 6)
                    for k, v in self.percentiles().items()
                    if v is not None
                }
            )
        return out


class WindowedSeries:
    """Fixed-width time windows accumulating count/sum/min/max per window.

    ``record(t, value)`` folds a sample into window ``floor(t / window_s)``;
    :meth:`points` returns one aggregate row per non-empty window in time
    order -- the series ``repro serve`` plots throughput and
    properness-over-time from.  Merging two series adds their windows
    (layouts must match).
    """

    __slots__ = ("window_s", "_windows")

    def __init__(self, window_s: float = 1.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.window_s = float(window_s)
        self._windows: dict[int, list[float]] = {}  # idx -> [count, sum, min, max]

    def record(self, t: float, value: float = 1.0) -> None:
        """Fold ``value`` into the window containing time ``t`` (seconds)."""
        idx = int(math.floor(t / self.window_s))
        w = self._windows.get(idx)
        if w is None:
            self._windows[idx] = [1.0, float(value), float(value), float(value)]
        else:
            w[0] += 1.0
            w[1] += value
            w[2] = min(w[2], value)
            w[3] = max(w[3], value)

    def points(self) -> list[dict[str, float]]:
        """One row per non-empty window, in time order: ``t`` (window
        start), ``count``, ``sum``, ``min``, ``max``, ``mean``, and
        ``rate`` (sum per second of window width)."""
        rows = []
        for idx in sorted(self._windows):
            count, total, lo, hi = self._windows[idx]
            rows.append(
                {
                    "t": idx * self.window_s,
                    "count": count,
                    "sum": total,
                    "min": lo,
                    "max": hi,
                    "mean": total / count,
                    "rate": total / self.window_s,
                }
            )
        return rows

    def merge(self, other: "WindowedSeries") -> None:
        """Add another series' windows; window widths must match."""
        if self.window_s != other.window_s:
            raise ValueError(
                f"cannot merge series with window_s {self.window_s} vs "
                f"{other.window_s}"
            )
        for idx, (count, total, lo, hi) in other._windows.items():
            w = self._windows.get(idx)
            if w is None:
                self._windows[idx] = [count, total, lo, hi]
            else:
                w[0] += count
                w[1] += total
                w[2] = min(w[2], lo)
                w[3] = max(w[3], hi)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (window width + the aggregate rows)."""
        return {"window_s": self.window_s, "points": self.points()}


@dataclass
class MetricsRegistry:
    """Named instruments for one long-running execution.

    Accessors are get-or-create (``registry.counter("stream.updates")``),
    so instrumentation sites need no registration ceremony.  Instrument
    kinds are namespaced separately; asking for an existing name with
    mismatched construction arguments raises (layouts are part of a
    metric's identity -- required for lossless merges).
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, LogHistogram] = field(default_factory=dict)
    series: dict[str, WindowedSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge()
        return inst

    def histogram(
        self,
        name: str,
        growth: float = DEFAULT_GROWTH,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> LogHistogram:
        """Get or create the histogram ``name`` (layout must agree with
        any earlier creation)."""
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = LogHistogram(growth, min_value)
        elif (inst.growth, inst.min_value) != (float(growth), float(min_value)):
            raise ValueError(
                f"histogram {name!r} already exists with layout "
                f"(growth={inst.growth}, min={inst.min_value})"
            )
        return inst

    def windowed(self, name: str, window_s: float = 1.0) -> WindowedSeries:
        """Get or create the windowed series ``name`` (width must agree
        with any earlier creation)."""
        inst = self.series.get(name)
        if inst is None:
            inst = self.series[name] = WindowedSeries(window_s)
        elif inst.window_s != float(window_s):
            raise ValueError(
                f"series {name!r} already exists with window_s {inst.window_s}"
            )
        return inst

    def merge(self, other: "MetricsRegistry") -> None:
        """Absorb another registry instrument-by-instrument (per-shard or
        per-window registries roll up into one)."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).merge(gauge)
        for name, hist in other.histograms.items():
            self.histogram(name, hist.growth, hist.min_value).merge(hist)
        for name, series in other.series.items():
            self.windowed(name, series.window_s).merge(series)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every instrument, grouped by kind."""
        return {
            "counters": {k: v.to_dict() for k, v in sorted(self.counters.items())},
            "gauges": {k: v.to_dict() for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(self.histograms.items())
            },
            "series": {k: v.to_dict() for k, v in sorted(self.series.items())},
        }


def exact_percentiles(
    values: Sequence[float], qs: Sequence[float] = (50, 95, 99)
) -> dict[str, float]:
    """Exact (linear-interpolation) percentiles of a small sample.

    The scalar artifact fields (``repair_ms_p50`` et al.) come from here --
    one source of truth shared by :func:`repro.dynamic.harness.run_stream`,
    the service driver, and ``repro stream`` -- while the streaming
    :class:`LogHistogram` serves the live dashboard, where its bounded
    relative error is the price of mergeable constant memory.  Raises on an
    empty sample (callers gate on having batches).
    """
    if len(values) == 0:
        raise ValueError("exact_percentiles needs at least one sample")
    import numpy as np

    arr = np.asarray(values, dtype=np.float64)
    return {f"p{q:g}": float(np.percentile(arr, q)) for q in qs}
