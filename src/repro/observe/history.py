"""Append-only per-commit performance history (Perun-style profile store).

``repro compare`` gates two artifacts by hand; the history store makes the
system *remember*: every appended sweep artifact becomes one JSON line in
``benchmarks/history/<suite>.jsonl`` carrying the commit, per-cell wall
times, and (when the sweep was traced) the per-stage breakdown.  The trend
report then shows each cell's wall time across the last N commits and
flags *soft* regressions -- latest wall time above the median of the
preceding entries by more than a relative threshold AND an absolute floor.

Soft means soft: wall time measures the machine as much as the algorithm,
so history reporting never gates (exit code 0 always; ``repro compare``
remains the metric gate).  Entry schema::

    {"kind": "history", "schema": "repro.observe.history",
     "schema_version": 1, "suite": ..., "spec_hash": ..., "commit": ...,
     "created_utc": ..., "total_wall_time_s": ...,
     "cells": [{"key": ..., "label": ..., "status": ...,
                "wall_time_s": ..., "stages": {name: {"wall_time_s": ...,
                "rounds_h": ..., "rounds_g": ..., "message_bits": ...}},
                "service": {"repair_ms_p50": ..., "repair_ms_p95": ...,
                "repair_ms_p99": ..., "updates_per_sec": ...,
                "queue_ms_p99": ..., "violation_batches": ...,
                "slo_pass": ...}}]}

``stages`` is present only for cells that carried a ``trace`` section
(``repro sweep --trace``); its names are the top-level span names of
:mod:`repro.observe.tracer`.  ``service`` is present only for cells whose
metrics carried latency percentiles (stream and service cells) -- an
*additive* extension, so version-1 entries written before it existed
still load and render.  Service drift detection mirrors the wall-time
soft regressions: ``repair_ms_p99`` rising or ``updates_per_sec``
falling against the recent median is flagged, report-only.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # import cycle: experiments.runner itself uses the tracer
    from repro.experiments.artifacts import Artifact

HISTORY_SCHEMA = "repro.observe.history"
HISTORY_SCHEMA_VERSION = 1

#: Default store location, next to the sweep artifacts.
HISTORY_DIR = (
    pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "history"
)

#: Soft-regression defaults: latest must exceed the baseline median by 25%
#: *and* by 50 ms before it is flagged (tiny cells are all machine noise).
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_SECONDS = 0.05


def _cell_label(cell: dict[str, Any]) -> str:
    from repro.experiments.spec import Cell

    return Cell.from_dict(cell).label()


def _stage_breakdown(trace: dict[str, Any] | None) -> dict[str, Any] | None:
    """Collapse a cell's trace section to per-stage totals (top-level spans
    merged by name; repeated spans -- e.g. ``stream.batch`` -- sum)."""
    if not trace:
        return None
    from repro.observe.tracer import aggregate_stage_rows, stage_rows

    stages: dict[str, Any] = {}
    for row in aggregate_stage_rows(stage_rows(trace)):
        stages[row["stage"]] = {
            "wall_time_s": round(row["wall_s"], 6),
            "rounds_h": row["rounds_h"],
            "rounds_g": row["rounds_g"],
            "message_bits": row["bits"],
        }
        if row.get("makespan_ms"):
            # hetnet cells only -- absent keys keep homogeneous history
            # entries byte-identical to pre-hetnet ones
            stages[row["stage"]]["makespan_ms"] = round(row["makespan_ms"], 6)
    return stages or None


#: Metrics lifted from a cell's metrics dict into its history ``service``
#: sub-dict (when present): the latency/throughput scalars the service
#: trend report tracks across commits.
SERVICE_HISTORY_METRICS = (
    "repair_ms_p50",
    "repair_ms_p95",
    "repair_ms_p99",
    "updates_per_sec",
    "queue_ms_p99",
    "latency_ms_p99",
    "violation_batches",
    "slo_pass",
)


def _service_fields(metrics: dict[str, Any] | None) -> dict[str, Any] | None:
    """The service sub-dict of one cell (None when the cell has no
    latency percentiles -- one-shot cells)."""
    if not metrics or metrics.get("repair_ms_p99") is None:
        return None
    return {
        k: metrics[k] for k in SERVICE_HISTORY_METRICS if metrics.get(k) is not None
    }


def entry_from_artifact(artifact: Artifact) -> dict[str, Any]:
    """Convert one sweep artifact into a history entry (no I/O)."""
    header = artifact.header
    cells = []
    total = 0.0
    for record in artifact.records:
        wall = record.get("wall_time_s")
        cell = {
            "key": record.get("key"),
            "label": _cell_label(record.get("cell", {})),
            "status": record.get("status"),
            "wall_time_s": wall,
        }
        stages = _stage_breakdown(record.get("trace"))
        if stages:
            cell["stages"] = stages
        service = _service_fields(record.get("metrics"))
        if service:
            cell["service"] = service
        cells.append(cell)
        if record.get("status") == "ok" and wall is not None:
            total += float(wall)
    return {
        "kind": "history",
        "schema": HISTORY_SCHEMA,
        "schema_version": HISTORY_SCHEMA_VERSION,
        "suite": artifact.suite,
        "spec_hash": artifact.spec_hash,
        "commit": header.get("git_rev", "unknown"),
        "created_utc": header.get("created_utc"),
        "total_wall_time_s": round(total, 4),
        "cells": cells,
    }


def history_path(suite: str, history_dir: str | pathlib.Path | None = None) -> pathlib.Path:
    """``<history_dir>/<suite>.jsonl`` (default dir: ``benchmarks/history``)."""
    directory = pathlib.Path(history_dir) if history_dir else HISTORY_DIR
    return directory / f"{suite}.jsonl"


def append_entry(
    entry: dict[str, Any], history_dir: str | pathlib.Path | None = None
) -> pathlib.Path:
    """Append one entry to its suite's history file (append-only store)."""
    path = history_path(entry["suite"], history_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as sink:
        sink.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(
    suite: str, history_dir: str | pathlib.Path | None = None
) -> list[dict[str, Any]]:
    """All entries of a suite's history file, oldest first (empty list when
    the suite has no history yet)."""
    path = history_path(suite, history_dir)
    if not path.is_file():
        return []
    entries = []
    with open(path) as source:
        for lineno, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            if obj.get("schema") != HISTORY_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: schema {obj.get('schema')!r} is not "
                    f"{HISTORY_SCHEMA!r}"
                )
            if obj.get("schema_version") != HISTORY_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{lineno}: schema_version "
                    f"{obj.get('schema_version')} unsupported"
                )
            entries.append(obj)
    return entries


def list_suites(history_dir: str | pathlib.Path | None = None) -> list[str]:
    """Suites that have a history file in the store."""
    directory = pathlib.Path(history_dir) if history_dir else HISTORY_DIR
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.jsonl"))


# ---- trend + soft regression detection --------------------------------------


@dataclass
class Slowdown:
    """One flagged soft regression: a cell (or the suite total) whose latest
    wall time exceeds the baseline median of the preceding entries."""

    label: str
    baseline_s: float  #: median wall time over the preceding entries
    latest_s: float
    commits: int  #: number of history entries the baseline summarizes

    @property
    def relative(self) -> float:
        """Fractional slowdown of latest over baseline."""
        if self.baseline_s <= 0:
            return float("inf") if self.latest_s > 0 else 0.0
        return self.latest_s / self.baseline_s - 1.0


def _wall_series(entries: list[dict[str, Any]]) -> dict[str, list[float | None]]:
    """Per-cell wall-time series across entries (None where a cell is
    missing or not ok), keyed by cell key; plus the ``__total__`` series."""
    series: dict[str, list[float | None]] = {"__total__": []}
    labels: dict[str, str] = {}
    for i, entry in enumerate(entries):
        for cell in entry.get("cells", ()):
            key = cell.get("key") or cell.get("label")
            labels[key] = cell.get("label", key)
            column = series.setdefault(key, [None] * i)
            wall = cell.get("wall_time_s")
            column.append(
                float(wall)
                if cell.get("status") == "ok" and wall is not None
                else None
            )
        total = entry.get("total_wall_time_s")
        series["__total__"].append(float(total) if total is not None else None)
        for column in series.values():  # pad cells absent from this entry
            while len(column) <= i:
                column.append(None)
    series_labels = {k: labels.get(k, k) for k in series}
    series_labels["__total__"] = "(suite total)"
    return {series_labels[k] if k != "__total__" else "(suite total)": v
            for k, v in series.items()}


def detect_slowdowns(
    entries: list[dict[str, Any]],
    *,
    last_n: int = 10,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[Slowdown]:
    """Flag cells whose latest wall time regressed against recent history.

    The baseline is the *median* of each cell's ok wall times over the
    preceding ``last_n - 1`` entries (median shrugs off one noisy commit);
    the latest entry regresses softly when it exceeds the baseline by both
    the relative ``threshold`` and the absolute ``min_seconds`` floor.
    Needs at least two entries; returns the flags sorted worst-first.
    """
    if len(entries) < 2:
        return []
    window = entries[-last_n:]
    flags: list[Slowdown] = []
    for label, column in _wall_series(window).items():
        latest = column[-1]
        prior = [w for w in column[:-1] if w is not None]
        if latest is None or not prior:
            continue
        baseline = statistics.median(prior)
        if latest > baseline * (1 + threshold) and latest - baseline > min_seconds:
            flags.append(
                Slowdown(
                    label=label,
                    baseline_s=baseline,
                    latest_s=latest,
                    commits=len(prior),
                )
            )
    flags.sort(key=lambda s: s.relative, reverse=True)
    return flags


@dataclass
class ServiceDrift:
    """One flagged service-metric drift: a cell whose latest latency
    percentile rose (or throughput fell) against the recent median.
    Report-only, like :class:`Slowdown` -- wall-derived metrics never
    gate."""

    label: str
    metric: str  #: e.g. ``repair_ms_p99`` or ``updates_per_sec``
    baseline: float  #: median over the preceding entries
    latest: float
    commits: int
    direction: str  #: ``"up"`` (higher is worse) or ``"down"`` (lower is worse)

    @property
    def relative(self) -> float:
        """Fractional drift of latest against baseline, signed so that
        positive always means worse."""
        if self.baseline <= 0:
            return float("inf") if self.latest > 0 and self.direction == "up" else 0.0
        change = self.latest / self.baseline - 1.0
        return change if self.direction == "up" else -change


def _service_series(
    entries: list[dict[str, Any]], metric: str
) -> dict[str, list[float | None]]:
    """Per-cell series of one service metric across entries, keyed by cell
    label (None where the cell is missing, failed, or pre-service)."""
    series: dict[str, list[float | None]] = {}
    labels: dict[str, str] = {}
    for i, entry in enumerate(entries):
        for cell in entry.get("cells", ()):
            service = cell.get("service")
            if service is None:
                continue
            key = cell.get("key") or cell.get("label")
            labels[key] = cell.get("label", key)
            column = series.setdefault(key, [None] * i)
            value = service.get(metric)
            column.append(
                float(value)
                if cell.get("status") == "ok" and value is not None
                else None
            )
        for column in series.values():
            while len(column) <= i:
                column.append(None)
    return {labels.get(k, k): v for k, v in series.items()}


#: Service metrics drift detection watches, with the direction that is
#: worse: p99 repair latency rising, sustained throughput falling.
SERVICE_DRIFT_METRICS = (
    ("repair_ms_p99", "up"),
    ("updates_per_sec", "down"),
)


def detect_service_drift(
    entries: list[dict[str, Any]],
    *,
    last_n: int = 10,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[ServiceDrift]:
    """Flag service cells whose latency p99 rose or throughput fell beyond
    ``threshold`` against the median of the preceding entries.  Same
    median-of-recent-history shape as :func:`detect_slowdowns`; needs at
    least two entries with service data; report-only by contract."""
    if len(entries) < 2:
        return []
    window = entries[-last_n:]
    flags: list[ServiceDrift] = []
    for metric, direction in SERVICE_DRIFT_METRICS:
        for label, column in _service_series(window, metric).items():
            latest = column[-1]
            prior = [v for v in column[:-1] if v is not None]
            if latest is None or not prior:
                continue
            baseline = statistics.median(prior)
            if baseline <= 0:
                continue
            change = latest / baseline - 1.0
            drifted = (
                change > threshold if direction == "up" else change < -threshold
            )
            if drifted:
                flags.append(
                    ServiceDrift(
                        label=label,
                        metric=metric,
                        baseline=baseline,
                        latest=latest,
                        commits=len(prior),
                        direction=direction,
                    )
                )
    flags.sort(key=lambda d: d.relative, reverse=True)
    return flags


def service_trend_rows(
    entries: list[dict[str, Any]], *, last_n: int = 10
) -> list[dict[str, Any]]:
    """Table-ready per-cell service trend over the last ``last_n`` entries:
    latest p50/p95/p99 repair latency, sustained updates/sec with its
    baseline median, and the SLO verdict.  Empty when no entry carries
    service data (pre-service history files)."""
    window = entries[-last_n:]
    latest_entry = window[-1] if window else {}
    p99_series = _service_series(window, "repair_ms_p99")
    ups_series = _service_series(window, "updates_per_sec")
    latest_cells = {
        (c.get("label") or c.get("key")): c
        for c in latest_entry.get("cells", ())
        if c.get("service") is not None
    }
    rows = []
    for label, cell in sorted(latest_cells.items()):
        service = cell["service"]
        ups_column = ups_series.get(label, [])
        ups_prior = [v for v in ups_column[:-1] if v is not None]
        p99_column = p99_series.get(label, [])
        p99_prior = [v for v in p99_column[:-1] if v is not None]
        rows.append(
            {
                "cell": label,
                "p50_ms": service.get("repair_ms_p50", ""),
                "p95_ms": service.get("repair_ms_p95", ""),
                "p99_ms": service.get("repair_ms_p99", ""),
                "p99_baseline_ms": (
                    f"{statistics.median(p99_prior):.3f}" if p99_prior else ""
                ),
                "updates_per_sec": service.get("updates_per_sec", ""),
                "ups_baseline": (
                    f"{statistics.median(ups_prior):.1f}" if ups_prior else ""
                ),
                "violations": service.get("violation_batches", ""),
                "slo": (
                    ""
                    if service.get("slo_pass") is None
                    else ("ok" if service.get("slo_pass") else "FAIL")
                ),
            }
        )
    return rows


def trend_rows(
    entries: list[dict[str, Any]], *, last_n: int = 10
) -> list[dict[str, Any]]:
    """Table-ready per-cell trend over the last ``last_n`` entries: baseline
    median, latest wall time, and the relative delta (slowest-latest first)."""
    window = entries[-last_n:]
    rows = []
    for label, column in _wall_series(window).items():
        present = [w for w in column if w is not None]
        if not present:
            continue
        latest = column[-1]
        prior = [w for w in column[:-1] if w is not None]
        baseline = statistics.median(prior) if prior else None
        delta = ""
        if baseline and latest is not None and baseline > 0:
            delta = f"{latest / baseline - 1.0:+.1%}"
        rows.append(
            {
                "cell": label,
                "entries": len(present),
                "baseline_s": f"{baseline:.3f}" if baseline is not None else "",
                "latest_s": f"{latest:.3f}" if latest is not None else "--",
                "delta": delta,
                "_sort": latest if latest is not None else -1.0,
            }
        )
    rows.sort(key=lambda r: r["_sort"], reverse=True)
    for row in rows:
        del row["_sort"]
    return rows


def render_history(
    entries: list[dict[str, Any]],
    *,
    last_n: int = 10,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> str:
    """Human-readable trend report (the ``repro history`` output): commit
    strip, per-cell trend table, and SOFT REGRESSION lines.  Report-only by
    contract -- callers must not turn this into a gate."""
    from repro.metrics import format_table

    if not entries:
        return "no history entries"
    window = entries[-last_n:]
    suite = window[-1].get("suite", "?")
    commits = " -> ".join(
        f"{e.get('commit', '?')}({e.get('total_wall_time_s', '?')}s)"
        for e in window
    )
    lines = [
        f"suite {suite!r}: {len(entries)} history entries "
        f"(showing last {len(window)})",
        f"commits: {commits}",
        format_table(trend_rows(entries, last_n=last_n)),
    ]
    service_rows = service_trend_rows(entries, last_n=last_n)
    if service_rows:
        lines.append("service trend (latency in ms, throughput in updates/s):")
        lines.append(format_table(service_rows))
    slowdowns = detect_slowdowns(
        entries, last_n=last_n, threshold=threshold, min_seconds=min_seconds
    )
    for s in slowdowns:
        lines.append(
            f"SOFT REGRESSION {s.label}: {s.baseline_s:.3f}s -> "
            f"{s.latest_s:.3f}s ({s.relative:+.1%} vs median of "
            f"{s.commits} entr{'y' if s.commits == 1 else 'ies'})"
        )
    drifts = detect_service_drift(entries, last_n=last_n, threshold=threshold)
    for d in drifts:
        arrow = "rose" if d.direction == "up" else "fell"
        lines.append(
            f"SERVICE DRIFT {d.label}: {d.metric} {arrow} "
            f"{d.baseline:.3f} -> {d.latest:.3f} ({d.relative:+.1%} worse "
            f"vs median of {d.commits} entr{'y' if d.commits == 1 else 'ies'})"
        )
    flagged = len(slowdowns) + len(drifts)
    if not flagged:
        lines.append(
            f"no soft regressions (threshold {threshold:.0%} + "
            f"{min_seconds * 1000:.0f}ms floor; report-only, never gates)"
        )
    else:
        lines.append(
            f"{flagged} soft regression(s)/drift(s) flagged "
            "(report-only, never gates)"
        )
    return "\n".join(lines)
