"""Communication-network substrate: graphs, accounting, faithful simulation,
and the heterogeneous simulated-time layer (:mod:`repro.network.hetnet`)."""

from repro.network.commgraph import CommGraph
from repro.network.hetnet import HetNetModel, HetNetSpec, MachineType
from repro.network.ledger import BandwidthLedger, LedgerSnapshot, ModelViolation
from repro.network.machine_sim import MachineSimulator, Message

__all__ = [
    "CommGraph",
    "BandwidthLedger",
    "HetNetModel",
    "HetNetSpec",
    "LedgerSnapshot",
    "MachineType",
    "ModelViolation",
    "MachineSimulator",
    "Message",
]
