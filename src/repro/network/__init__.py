"""Communication-network substrate: graphs, accounting, faithful simulation."""

from repro.network.commgraph import CommGraph
from repro.network.ledger import BandwidthLedger, LedgerSnapshot, ModelViolation
from repro.network.machine_sim import MachineSimulator, Message

__all__ = [
    "CommGraph",
    "BandwidthLedger",
    "LedgerSnapshot",
    "ModelViolation",
    "MachineSimulator",
    "Message",
]
