"""The communication network ``G = (V_G, E_G)`` of Section 3.2.

Machines are integers ``0..n-1``; links are undirected pairs.  ``CommGraph``
is deliberately minimal and immutable-after-construction: algorithms never
mutate the network, they only send messages over it (accounted for by
:mod:`repro.network.ledger`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import networkx as nx


class CommGraph:
    """An undirected communication network of ``n`` machines.

    Parameters
    ----------
    n:
        Number of machines.
    edges:
        Iterable of ``(u, v)`` links.  Self-loops are rejected; duplicate
        links are collapsed.
    """

    __slots__ = ("n", "_adj", "_m")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        if n <= 0:
            raise ValueError(f"need at least one machine, got n={n}")
        self.n = n
        adj: list[set[int]] = [set() for _ in range(n)]
        m = 0
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on machine {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"link ({u},{v}) out of range for n={n}")
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                m += 1
        self._adj = [sorted(s) for s in adj]
        self._m = m

    # ---- basic accessors ---------------------------------------------------

    @property
    def num_links(self) -> int:
        """Number of undirected links."""
        return self._m

    def neighbors(self, machine: int) -> Sequence[int]:
        """Machines adjacent to ``machine`` (sorted)."""
        return self._adj[machine]

    def degree(self, machine: int) -> int:
        """Number of links incident to ``machine``."""
        return len(self._adj[machine])

    def has_link(self, u: int, v: int) -> bool:
        """Whether machines ``u`` and ``v`` share a link."""
        a, b = self._adj[u], self._adj[v]
        # binary search the shorter list
        src, tgt = (a, v) if len(a) <= len(b) else (b, u)
        lo, hi = 0, len(src)
        while lo < hi:
            mid = (lo + hi) // 2
            if src[mid] < tgt:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(src) and src[lo] == tgt

    def iter_links(self) -> Iterator[tuple[int, int]]:
        """All links, each once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    # ---- interop ------------------------------------------------------------

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "CommGraph":
        """Build from a networkx graph with integer-relabelable nodes."""
        relabeled = nx.convert_node_labels_to_integers(graph)
        return cls(relabeled.number_of_nodes(), relabeled.edges())

    def to_networkx(self) -> nx.Graph:
        """Export to networkx (used by reference checks and generators)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.iter_links())
        return graph

    def is_connected_subset(self, machines: Sequence[int]) -> bool:
        """Whether ``G[machines]`` is connected (BFS restricted to the set)."""
        if not machines:
            return False
        member = set(machines)
        seen = {machines[0]}
        frontier = [machines[0]]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v in member and v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return len(seen) == len(member)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CommGraph(n={self.n}, links={self._m})"
