"""The communication network ``G = (V_G, E_G)`` of Section 3.2.

Machines are integers ``0..n-1``; links are undirected pairs.  ``CommGraph``
is deliberately minimal and immutable-after-construction: algorithms never
mutate the network, they only send messages over it (accounted for by
:mod:`repro.network.ledger`).

Adjacency is stored as CSR (``indptr``/``indices`` int64 arrays) built in
one vectorized pass -- construction used to be the wall-clock floor of every
50k-machine scale instance.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from repro.graphcore.csr import CSRAdjacency


class CommGraph:
    """An undirected communication network of ``n`` machines.

    Parameters
    ----------
    n:
        Number of machines.
    edges:
        Iterable of ``(u, v)`` links.  Self-loops are rejected; duplicate
        links are collapsed.
    """

    __slots__ = (
        "n", "_indptr", "_indices", "_link_u", "_link_v", "_link_codes",
        "_m", "_csr",
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        if n <= 0:
            raise ValueError(f"need at least one machine, got n={n}")
        self.n = n
        if isinstance(edges, np.ndarray):
            arr = edges.astype(np.int64, copy=False).reshape(-1, 2)
        else:
            arr = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if arr.size:
            loops = arr[:, 0] == arr[:, 1]
            if loops.any():
                raise ValueError(
                    f"self-loop on machine {int(arr[loops][0, 0])}"
                )
            bad = (arr < 0) | (arr >= n)
            if bad.any():
                u, v = arr[bad.any(axis=1)][0]
                raise ValueError(f"link ({int(u)},{int(v)}) out of range for n={n}")
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            codes = np.unique(lo * n + hi)
            self._link_u = codes // n
            self._link_v = codes % n
            self._link_codes = codes
        else:
            self._link_u = np.empty(0, dtype=np.int64)
            self._link_v = np.empty(0, dtype=np.int64)
            self._link_codes = np.empty(0, dtype=np.int64)
        self._m = int(self._link_u.size)
        self._csr = CSRAdjacency.from_edge_arrays(self._link_u, self._link_v, n)
        self._indptr = self._csr.indptr
        self._indices = self._csr.indices

    # ---- basic accessors ---------------------------------------------------

    @property
    def num_links(self) -> int:
        """Number of undirected links."""
        return self._m

    @property
    def csr(self) -> CSRAdjacency:
        """The machine-level CSR backbone (same arrays the accessors slice);
        lets machine-level batch work -- e.g. the vectorized Voronoi BFS --
        run through the :mod:`repro.graphcore` kernels."""
        return self._csr

    def neighbors(self, machine: int) -> Sequence[int]:
        """Machines adjacent to ``machine`` (sorted; zero-copy CSR slice)."""
        return self._indices[self._indptr[machine] : self._indptr[machine + 1]]

    def degree(self, machine: int) -> int:
        """Number of links incident to ``machine``."""
        return int(self._indptr[machine + 1] - self._indptr[machine])

    def has_link(self, u: int, v: int) -> bool:
        """Whether machines ``u`` and ``v`` share a link."""
        a = self.neighbors(u)
        b = self.neighbors(v)
        src, tgt = (a, v) if a.size <= b.size else (b, u)
        i = int(np.searchsorted(src, tgt))
        return i < src.size and int(src[i]) == tgt

    def link_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All links as parallel ``(u, v)`` int64 arrays with ``u < v``,
        lexicographically sorted (the vectorized construction input of
        :meth:`ClusterGraph.from_assignment`)."""
        return self._link_u, self._link_v

    def link_index(self, u: int, v: int) -> int:
        """Position of link ``{u, v}`` in the :meth:`link_arrays` order.

        The canonical index for per-link attribute arrays (the
        heterogeneous network model keys its bandwidth/latency samples by
        it).  Raises ``KeyError`` when the machines share no link.
        """
        lo, hi = (u, v) if u < v else (v, u)
        code = lo * self.n + hi
        i = int(np.searchsorted(self._link_codes, code))
        if i >= self._m or int(self._link_codes[i]) != code:
            raise KeyError(f"machines {u} and {v} share no link")
        return i

    def iter_links(self) -> Iterator[tuple[int, int]]:
        """All links, each once, as ``(u, v)`` with ``u < v`` (sorted)."""
        for u, v in zip(self._link_u.tolist(), self._link_v.tolist()):
            yield (u, v)

    # ---- interop ------------------------------------------------------------

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "CommGraph":
        """Build from a networkx graph with integer-relabelable nodes.

        Nodes already labeled ``0..n-1`` in iteration order (every
        generator in :mod:`repro.workloads` produces these) skip the
        relabeling graph copy, and the edge list is drained into a flat
        int64 buffer instead of a boxed list of tuples -- together ~4x
        faster at 50k machines / 250k links.
        """
        identity = all(i == node for i, node in enumerate(graph.nodes()))
        relabeled = (
            graph if identity else nx.convert_node_labels_to_integers(graph)
        )
        m = relabeled.number_of_edges()
        flat = np.fromiter(
            (endpoint for edge in relabeled.edges() for endpoint in edge),
            dtype=np.int64,
            count=2 * m,
        )
        return cls(relabeled.number_of_nodes(), flat.reshape(-1, 2))

    def to_networkx(self) -> nx.Graph:
        """Export to networkx (used by reference checks and generators)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.iter_links())
        return graph

    def is_connected_subset(self, machines: Sequence[int]) -> bool:
        """Whether ``G[machines]`` is connected (BFS restricted to the set)."""
        if len(machines) == 0:
            return False
        member = set(int(m) for m in machines)
        start = int(machines[0])
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self.neighbors(u).tolist():
                    if v in member and v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return len(seen) == len(member)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CommGraph(n={self.n}, links={self._m})"
