"""Round and bandwidth accounting for the cluster-graph model.

The model (Section 3.2): links carry ``O(log n)`` bits per synchronous round.
One round *on H* consists of a broadcast in each support tree, computation on
inter-cluster links, and a convergecast -- costing ``O(d)`` rounds on ``G``
where ``d`` is the dilation (maximum support-tree diameter).  The paper hides
the multiplicative ``d`` inside big-Oh; we track both:

* ``rounds_h`` -- rounds counted in broadcast-and-aggregate units, the number
  the theorems bound (``O(log* n)`` etc.);
* ``rounds_g`` -- underlying network rounds, showing the ``d`` dependency
  (Experiment E12).

A message wider than the bandwidth cap is either a hard
:class:`ModelViolation` (``strict=True``) or is *pipelined*: it is split into
cap-sized pieces, costing extra ``G``-rounds, which is exactly how the
paper's proofs account for long messages (e.g. Lemma 5.7's ``O(xi^-2)``
aggregation).
"""

from __future__ import annotations

import contextlib
import math
from collections import Counter
from dataclasses import dataclass, field


class ModelViolation(RuntimeError):
    """Raised when an operation breaks the communication model."""


class _MaxWindowValue:
    """Result holder yielded by :meth:`BandwidthLedger.max_window`;
    ``value`` is the window-local maximum, filled on context exit."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


@dataclass
class LedgerSnapshot:
    """Immutable view of ledger counters, for before/after diffs.

    ``makespan_ms`` is the simulated-clock total of the heterogeneous
    network model (:mod:`repro.network.hetnet`); it stays ``0.0`` on
    ledgers without an attached model, so snapshot consumers predating
    the model see only zeros.
    """

    rounds_h: int
    rounds_g: int
    total_message_bits: int
    max_message_bits: int
    num_operations: int
    makespan_ms: float = 0.0

    def diff(self, later: "LedgerSnapshot") -> "LedgerSnapshot":
        """Counters accumulated between ``self`` and ``later``.

        Contract: ``rounds_h`` / ``rounds_g`` / ``total_message_bits`` /
        ``num_operations`` are true window differences.
        ``max_message_bits`` is **not** window-local: a high-water mark
        cannot be reconstructed from two running maxima, so the diff
        carries ``later``'s *global* running maximum (the mark as of the
        window's end) unchanged.  Callers needing the true within-window
        maximum must bracket the window with
        :meth:`BandwidthLedger.push_max_window` /
        :meth:`BandwidthLedger.pop_max_window` (or the
        :meth:`BandwidthLedger.max_window` context manager), which is what
        tracer spans do.
        """
        return LedgerSnapshot(
            rounds_h=later.rounds_h - self.rounds_h,
            rounds_g=later.rounds_g - self.rounds_g,
            total_message_bits=later.total_message_bits - self.total_message_bits,
            max_message_bits=later.max_message_bits,
            num_operations=later.num_operations - self.num_operations,
            makespan_ms=later.makespan_ms - self.makespan_ms,
        )


@dataclass
class BandwidthLedger:
    """Accumulates the communication cost of a distributed execution.

    Parameters
    ----------
    bandwidth_bits:
        Per-link per-round capacity, typically ``Theta(log n)``.
    dilation:
        Default support-tree diameter ``d`` used to convert H-rounds into
        G-rounds when an operation does not override it.
    strict:
        If True, an unpipelined message wider than ``bandwidth_bits`` raises
        :class:`ModelViolation` instead of being silently split.
    netmodel:
        Optional :class:`~repro.network.hetnet.HetNetModel`.  When
        attached, every charge additionally advances the simulated clock
        (``makespan_ms``) by ``effective_rounds x envelope(capped width)``
        and accounts the time onto the critical element.  The model is
        strictly read-only toward the execution: no RNG draws, no extra
        charges, no control-flow changes -- attaching one is bitwise
        invisible to every pre-existing counter (the hetnet neutrality
        tests pin this, same contract as the tracer).
    """

    bandwidth_bits: int
    dilation: int = 1
    strict: bool = True
    rounds_h: int = 0
    rounds_g: int = 0
    total_message_bits: int = 0
    max_message_bits: int = 0
    num_operations: int = 0
    per_op_rounds: Counter = field(default_factory=Counter)
    per_op_bits: Counter = field(default_factory=Counter)
    netmodel: object | None = None
    makespan_ms: float = 0.0
    #: Open max-window frames (innermost last); see :meth:`push_max_window`.
    _window_maxes: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bandwidth_bits <= 0:
            raise ValueError("bandwidth must be positive")
        if self.dilation <= 0:
            raise ValueError("dilation must be positive")

    # ---- charging -----------------------------------------------------------

    def charge(
        self,
        op: str,
        message_bits: int,
        *,
        rounds_h: int = 1,
        depth: int | None = None,
        pipelined: bool = False,
    ) -> int:
        """Charge one cluster-level operation.

        Parameters
        ----------
        op:
            Operation label (for per-op breakdowns).
        message_bits:
            Width of the widest message this operation puts on any link.
        rounds_h:
            Number of broadcast-and-aggregate units consumed.
        depth:
            Tree depth for this op; defaults to the ledger's dilation.
        pipelined:
            Whether long messages are split into cap-sized pieces over extra
            rounds instead of violating the model.

        Returns
        -------
        int
            The number of H-rounds actually charged (after pipelining).

        Notes
        -----
        Accounting invariants (relied on by the experiment artifacts):

        * **Rounds measure time** and therefore include pipelining: both the
          ledger totals and ``per_op_rounds`` accumulate the *effective*
          (post-splitting) H-rounds, so
          ``sum(per_op_rounds.values()) == rounds_h`` always holds.
        * **Bits measure payload** and are therefore pipelining-invariant:
          splitting a wide message into cap-sized pieces repartitions the
          same ``message_bits * rounds_h`` payload over more rounds without
          creating bits.  Both ``total_message_bits`` and ``per_op_bits``
          accumulate that same quantity, so
          ``sum(per_op_bits.values()) == total_message_bits`` always holds.
        * A charge with ``rounds_h == 0`` but positive ``message_bits``
          accounts its payload once (it models data riding along an
          already-charged round) and advances no simulated time.
        """
        if message_bits < 0 or rounds_h < 0:
            raise ValueError("negative cost")
        pieces = max(1, math.ceil(message_bits / self.bandwidth_bits))
        if pieces > 1 and not pipelined:
            if self.strict:
                raise ModelViolation(
                    f"operation {op!r} sends {message_bits} bits on one link in "
                    f"one round; cap is {self.bandwidth_bits}. Declare "
                    f"pipelined=True or shrink the message."
                )
            pipelined = True
        effective_rounds_h = rounds_h * (pieces if pipelined else 1)
        d = self.dilation if depth is None else max(1, depth)
        bits_charged = message_bits * max(1, rounds_h)
        self.rounds_h += effective_rounds_h
        self.rounds_g += effective_rounds_h * d
        self.total_message_bits += bits_charged
        capped_width = min(message_bits, self.bandwidth_bits)
        if self.netmodel is not None and effective_rounds_h > 0:
            self.makespan_ms += self.netmodel.account(
                capped_width, effective_rounds_h
            )
        self.max_message_bits = max(self.max_message_bits, capped_width)
        if self._window_maxes and capped_width > self._window_maxes[-1]:
            self._window_maxes[-1] = capped_width
        self.num_operations += 1
        self.per_op_rounds[op] += effective_rounds_h
        self.per_op_bits[op] += bits_charged
        return effective_rounds_h

    def absorb(self, summary: dict[str, int], *, op: str) -> None:
        """Fold another execution's headline counters into this ledger.

        The streaming engine runs the one-shot pipeline on a private ledger
        when it escalates to a scratch recolor; absorbing that run's
        :meth:`summary` under a single ``op`` label keeps the stream ledger's
        invariants intact (``sum(per_op_rounds) == rounds_h`` and
        ``sum(per_op_bits) == total_message_bits``).  Simulated time folds
        the same way: a sub-run sharing this ledger's network model
        contributes its ``makespan_ms`` here, so split accounting sums to
        exactly the unsplit total (the merge/absorb consistency tests).
        """
        if "makespan_ms" in summary:
            self.makespan_ms += float(summary["makespan_ms"])
        rounds_h = int(summary["rounds_h"])
        bits = int(summary["total_message_bits"])
        self.rounds_h += rounds_h
        self.rounds_g += int(summary["rounds_g"])
        self.total_message_bits += bits
        self.max_message_bits = max(
            self.max_message_bits, int(summary["max_message_bits"])
        )
        self.num_operations += int(summary["num_operations"])
        absorbed_max = int(summary["max_message_bits"])
        if self._window_maxes and absorbed_max > self._window_maxes[-1]:
            self._window_maxes[-1] = absorbed_max
        self.per_op_rounds[op] += rounds_h
        self.per_op_bits[op] += bits

    def charge_local(self, op: str) -> None:
        """Record a zero-round bookkeeping operation (local computation)."""
        self.num_operations += 1
        self.per_op_rounds[op] += 0

    def attach_netmodel(self, model) -> None:
        """Attach a :class:`~repro.network.hetnet.HetNetModel`.

        Only legal on a pristine ledger: attaching after charges were
        recorded would leave those rounds outside the simulated clock and
        silently under-report the makespan.
        """
        if self.num_operations or self.rounds_h:
            raise RuntimeError(
                "cannot attach a network model to a ledger that already "
                f"recorded {self.num_operations} operations"
            )
        self.netmodel = model

    # ---- window-local maxima -------------------------------------------------
    #
    # A running maximum cannot be diffed from snapshots (see
    # LedgerSnapshot.diff), so the ledger tracks within-window maxima
    # directly: a stack of frames, each holding the widest capped message
    # charged while it was open.  O(1) per charge, exact under nesting --
    # popping a frame folds its maximum into the parent frame, so an outer
    # window sees everything its inner windows saw.

    def push_max_window(self) -> None:
        """Open a max-window frame: start tracking the widest (capped)
        message charged from now until the matching :meth:`pop_max_window`."""
        self._window_maxes.append(0)

    def pop_max_window(self) -> int:
        """Close the innermost max-window frame and return its true
        within-window maximum message width (0 if nothing was charged).
        Folds the result into the enclosing frame, if any."""
        if not self._window_maxes:
            raise RuntimeError("pop_max_window without a matching push")
        window_max = self._window_maxes.pop()
        if self._window_maxes and window_max > self._window_maxes[-1]:
            self._window_maxes[-1] = window_max
        return window_max

    @contextlib.contextmanager
    def max_window(self):
        """Context-manager form of the max-window stack: yields a one-slot
        holder whose ``value`` is filled with the window maximum on exit.

        >>> with ledger.max_window() as w:
        ...     ledger.charge("op", 12)
        >>> w.value
        12
        """
        holder = _MaxWindowValue()
        self.push_max_window()
        try:
            yield holder
        finally:
            holder.value = self.pop_max_window()

    # ---- inspection ----------------------------------------------------------

    def snapshot(self) -> LedgerSnapshot:
        """Current counters as an immutable snapshot."""
        return LedgerSnapshot(
            rounds_h=self.rounds_h,
            rounds_g=self.rounds_g,
            total_message_bits=self.total_message_bits,
            max_message_bits=self.max_message_bits,
            num_operations=self.num_operations,
            makespan_ms=self.makespan_ms,
        )

    def assert_compliant(self) -> None:
        """Verify no recorded message exceeded the cap (Experiment E11)."""
        if self.max_message_bits > self.bandwidth_bits:
            raise ModelViolation(
                f"recorded a {self.max_message_bits}-bit message; "
                f"cap is {self.bandwidth_bits}"
            )

    def summary(self) -> dict[str, int]:
        """Headline counters as a plain dict (for experiment records).

        ``makespan_ms`` appears only when a network model is attached, so
        artifacts of homogeneous runs are byte-identical to pre-model ones.
        """
        out = {
            "rounds_h": self.rounds_h,
            "rounds_g": self.rounds_g,
            "total_message_bits": self.total_message_bits,
            "max_message_bits": self.max_message_bits,
            "num_operations": self.num_operations,
        }
        if self.netmodel is not None:
            out["makespan_ms"] = round(self.makespan_ms, 6)
        return out
