"""Heterogeneous network model: per-link speeds and simulated-time makespan.

The paper (and the :class:`~repro.network.ledger.BandwidthLedger`) treats
every link of ``G`` as identical: a round is a round.  Real clusters are
not like that -- machines come in types, links have bandwidth and latency,
and a fraction of links is simply slow (the cluster-generator idiom of
Helix-style simulators: node-type percentages plus link statistics with a
``fill_with_slow_link`` fraction).  This module adds that layer *on the
side* of the ledger:

* :class:`HetNetSpec` -- the distribution knobs (bandwidth skew, slow-link
  fill fraction, base bandwidth/latency), carried by a workload when its
  generator was asked for ``net_skew`` / ``net_fill``;
* :class:`HetNetModel` -- a concrete sampled fabric: a machine type per
  node and a bandwidth/latency per G-link, drawn deterministically from a
  generator spawned off the workload RNG (spawning consumes no draws, so
  the sampled graph is bit-identical with or without the model);
* simulated time -- every ledger charge of (capped) width ``w`` costs
  ``effective_rounds x envelope(w)`` milliseconds, where ``envelope`` is
  the upper envelope of one affine line ``A + B*w`` per *element*:

  - one line per support-tree **root path** (machine ``m`` of cluster
    ``c``): ``A`` = summed latency, ``B`` = summed inverse bandwidth along
    root->m -- a broadcast-and-aggregate round completes when its slowest
    root path does, so stragglers and deep trees surface here;
  - one line per **H-edge designated link** (the first realizing G-link,
    the one the inter-cluster computation step pays).

  The active envelope segment names the element the round waited on;
  per-element accumulated time makes ``critical_link`` a measurement, not
  a guess.

Invisibility contract (same as the tracer, docs/OBSERVABILITY.md): the
model never draws from the workload or algorithm RNG, never charges the
ledger, and never branches algorithm control flow.  A run with the model
attached produces bitwise-identical colorings, per-op ledger counters, and
RNG end state; it only *additionally* reports ``makespan_ms`` and
``critical_link``.  See docs/NETWORK.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "HetNetModel",
    "HetNetSpec",
    "MACHINE_TYPES",
    "MachineType",
]


@dataclass(frozen=True)
class MachineType:
    """One machine class: a name plus the link statistics its links get.

    ``bandwidth_mbps`` is the per-link capacity in Mbit/s;
    ``latency_ms`` the per-hop propagation delay.  A link inherits the
    *slower* of its two endpoints' types (a fast NIC cannot outrun a slow
    peer).
    """

    name: str
    bandwidth_mbps: float
    latency_ms: float


#: The two built-in machine classes of the default fabric.  ``slow`` is a
#: placeholder scaled by :attr:`HetNetSpec.skew` at sampling time.
MACHINE_TYPES = ("standard", "slow")


@dataclass(frozen=True)
class HetNetSpec:
    """Distribution knobs for sampling a heterogeneous fabric.

    Parameters
    ----------
    skew:
        Bandwidth ratio standard:slow (``>= 1``).  ``1.0`` is the
        homogeneous fabric -- every link identical, makespan degenerates to
        a constant multiple of effective rounds.
    fill:
        Fraction of machines typed ``slow`` (the ``fill_with_slow_link``
        idiom: a link is slow when either endpoint is).
    base_bandwidth_mbps / base_latency_ms:
        Statistics of a ``standard`` link.  A ``slow`` link divides the
        bandwidth by ``skew`` and multiplies the latency by
        ``latency_skew`` (default: ``skew``).
    jitter:
        Log-normal sigma applied per link to both bandwidth and latency
        (``0.0`` = none), modelling within-type variance.
    """

    skew: float = 1.0
    fill: float = 0.1
    base_bandwidth_mbps: float = 100.0
    base_latency_ms: float = 0.1
    latency_skew: float | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.skew < 1.0:
            raise ValueError(f"skew must be >= 1, got {self.skew:g}")
        if not 0.0 <= self.fill <= 1.0:
            raise ValueError(f"fill must be in [0, 1], got {self.fill:g}")
        if self.base_bandwidth_mbps <= 0 or self.base_latency_ms < 0:
            raise ValueError("base bandwidth must be positive, latency >= 0")

    def machine_types(self) -> tuple[MachineType, MachineType]:
        """The concrete ``(standard, slow)`` pair this spec describes."""
        lat_skew = self.latency_skew if self.latency_skew is not None else self.skew
        return (
            MachineType("standard", self.base_bandwidth_mbps, self.base_latency_ms),
            MachineType(
                "slow",
                self.base_bandwidth_mbps / self.skew,
                self.base_latency_ms * lat_skew,
            ),
        )

    def to_dict(self) -> dict[str, float]:
        """JSON-ready form (artifact/CLI headers)."""
        return {
            "skew": self.skew,
            "fill": self.fill,
            "base_bandwidth_mbps": self.base_bandwidth_mbps,
            "base_latency_ms": self.base_latency_ms,
            "latency_skew": (
                self.latency_skew if self.latency_skew is not None else self.skew
            ),
            "jitter": self.jitter,
        }


def _mbps_to_bits_per_ms(mbps: np.ndarray | float) -> np.ndarray | float:
    """Mbit/s -> bits/ms (the unit transfer times are computed in)."""
    return mbps * 1e3


@dataclass
class HetNetModel:
    """A sampled fabric plus the simulated-clock accounting over it.

    Construction paths:

    * :meth:`sample` -- draw machine types and per-link statistics from a
      :class:`HetNetSpec` (the workload path);
    * :meth:`from_links` -- explicit per-link arrays (the property-test
      path: monotonicity and degeneracy tests build exact fabrics).

    The model is attached to a
    :class:`~repro.network.ledger.BandwidthLedger` via
    ``ledger.attach_netmodel``; the ledger calls :meth:`account` once per
    charge.  Several ledgers may share one model (the stream engine and
    its scratch-escalation sub-runs do): per-element times accumulate in
    the model while each ledger keeps its own ``makespan_ms`` scalar, and
    :meth:`~repro.network.ledger.BandwidthLedger.absorb` folds the scalar
    -- so split accounting sums to exactly the unsplit total.
    """

    #: Machine type index per node (0 = standard, 1 = slow).
    machine_type: np.ndarray
    #: Per-G-link arrays, indexed like ``CommGraph.link_arrays()``.
    link_bandwidth_mbps: np.ndarray
    link_latency_ms: np.ndarray
    #: Affine time lines ``A + B*w`` (ms, ms/bit) per element.
    line_a: np.ndarray
    line_b: np.ndarray
    #: Human-readable element names, aligned with the line arrays.
    element_names: list[str]
    #: The spec this fabric was sampled from (None for explicit fabrics).
    spec: HetNetSpec | None = None
    #: Accumulated simulated time per element (filled by :meth:`account`).
    element_time_ms: np.ndarray = field(default=None)  # type: ignore[assignment]
    _cache: dict[int, tuple[float, int]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.element_time_ms is None:
            self.element_time_ms = np.zeros(self.line_a.size, dtype=np.float64)
        if not (
            self.line_a.size == self.line_b.size == len(self.element_names)
        ):
            raise ValueError("line arrays and element names disagree in length")

    # ---- construction --------------------------------------------------------

    @classmethod
    def sample(cls, graph, spec: HetNetSpec, rng: np.random.Generator) -> "HetNetModel":
        """Draw a fabric for ``graph`` (a ClusterGraph) from ``spec``.

        ``rng`` must be dedicated to the fabric -- callers spawn it off the
        workload generator's RNG (``rng.spawn(1)[0]``), which perturbs no
        existing stream.  Identical ``(graph, spec, rng seed)`` always
        yields identical arrays (pinned by the determinism tests).
        """
        comm = graph.comm
        standard, slow = spec.machine_types()
        machine_type = (rng.random(comm.n) < spec.fill).astype(np.int8)
        link_u, link_v = comm.link_arrays()
        link_slow = (machine_type[link_u] | machine_type[link_v]).astype(bool)
        bandwidth = np.where(
            link_slow, slow.bandwidth_mbps, standard.bandwidth_mbps
        ).astype(np.float64)
        latency = np.where(
            link_slow, slow.latency_ms, standard.latency_ms
        ).astype(np.float64)
        if spec.jitter > 0:
            m = link_u.size
            bandwidth = bandwidth * np.exp(rng.normal(0.0, spec.jitter, m))
            latency = latency * np.exp(rng.normal(0.0, spec.jitter, m))
        return cls.from_links(
            graph, bandwidth, latency, machine_type=machine_type, spec=spec
        )

    @classmethod
    def from_links(
        cls,
        graph,
        bandwidth_mbps: np.ndarray,
        latency_ms: np.ndarray,
        *,
        machine_type: np.ndarray | None = None,
        spec: HetNetSpec | None = None,
    ) -> "HetNetModel":
        """Build the time lines for explicit per-link arrays.

        ``bandwidth_mbps`` / ``latency_ms`` are indexed like
        ``graph.comm.link_arrays()``.  One line per non-root machine of
        every support tree (root-path sums) and one per H-edge designated
        realizing link.
        """
        comm = graph.comm
        bandwidth_mbps = np.asarray(bandwidth_mbps, dtype=np.float64)
        latency_ms = np.asarray(latency_ms, dtype=np.float64)
        if bandwidth_mbps.size != comm.num_links or latency_ms.size != comm.num_links:
            raise ValueError(
                f"per-link arrays cover {bandwidth_mbps.size}/{latency_ms.size} "
                f"links; G has {comm.num_links}"
            )
        if (bandwidth_mbps <= 0).any() or (latency_ms < 0).any():
            raise ValueError("bandwidth must be positive, latency >= 0")
        inv_bw = 1.0 / np.asarray(
            _mbps_to_bits_per_ms(bandwidth_mbps), dtype=np.float64
        )
        line_a: list[float] = []
        line_b: list[float] = []
        names: list[str] = []
        # support-tree root paths: prefix sums down each tree (parents come
        # before children in BFS insertion order, so one pass suffices)
        for cluster, tree in enumerate(graph.trees):
            path_a: dict[int, float] = {tree.root: 0.0}
            path_b: dict[int, float] = {tree.root: 0.0}
            for machine, parent in tree.parent.items():
                if parent is None:
                    continue
                idx = comm.link_index(machine, parent)
                path_a[machine] = path_a[parent] + float(latency_ms[idx])
                path_b[machine] = path_b[parent] + float(inv_bw[idx])
                line_a.append(path_a[machine])
                line_b.append(path_b[machine])
                names.append(f"tree[{cluster}] root->{machine}")
        # H-edge designated links: the first realizing G-link, the one the
        # inter-cluster computation step of every H-round pays
        for (u, v), realizers in sorted(graph.links.items()):
            gu, gv = realizers[0]
            idx = comm.link_index(gu, gv)
            line_a.append(float(latency_ms[idx]))
            line_b.append(float(inv_bw[idx]))
            names.append(f"link[{u}-{v}] via {gu}-{gv}")
        if not names:  # single isolated cluster of one machine: no links
            line_a, line_b, names = [0.0], [0.0], ["(no links)"]
        if machine_type is None:
            machine_type = np.zeros(comm.n, dtype=np.int8)
        return cls(
            machine_type=np.asarray(machine_type, dtype=np.int8),
            link_bandwidth_mbps=bandwidth_mbps,
            link_latency_ms=latency_ms,
            line_a=np.asarray(line_a, dtype=np.float64),
            line_b=np.asarray(line_b, dtype=np.float64),
            element_names=names,
            spec=spec,
        )

    # ---- simulated clock -----------------------------------------------------

    def _envelope(self, width: int) -> tuple[float, int]:
        """Upper-envelope value and arg at ``width`` (cached per width; an
        execution only charges a handful of distinct capped widths)."""
        hit = self._cache.get(width)
        if hit is None:
            times = self.line_a + self.line_b * float(width)
            idx = int(np.argmax(times))  # ties -> lowest index: deterministic
            hit = (float(times[idx]), idx)
            self._cache[width] = hit
        return hit

    def round_time_ms(self, width: int) -> float:
        """Simulated duration of one H-round whose widest (capped) message
        is ``width`` bits: the slowest element's ``latency + bits/bandwidth``
        term, i.e. the upper envelope of every time line at ``width``."""
        return self._envelope(width)[0]

    def account(self, width: int, rounds: int) -> float:
        """Charge ``rounds`` H-rounds of (capped) width ``width``.

        Returns the simulated milliseconds added; accumulates the same
        amount onto the critical element's clock (:meth:`critical_element`
        reads it back).  Called by the ledger only -- algorithms never see
        this object.
        """
        if rounds <= 0:
            return 0.0
        time_ms, idx = self._envelope(width)
        total = time_ms * rounds
        self.element_time_ms[idx] += total
        return total

    # ---- attribution ---------------------------------------------------------

    def critical_element(self) -> tuple[str, float]:
        """The element that accumulated the most simulated time (the
        critical link/root-path of the execution) and its total ms."""
        idx = int(np.argmax(self.element_time_ms))
        return self.element_names[idx], float(self.element_time_ms[idx])

    def element_times(self, top: int = 5) -> list[tuple[str, float]]:
        """The ``top`` slowest elements as ``(name, ms)``, descending, only
        those that accumulated any time."""
        order = np.argsort(self.element_time_ms)[::-1][:top]
        return [
            (self.element_names[int(i)], float(self.element_time_ms[int(i)]))
            for i in order
            if self.element_time_ms[int(i)] > 0
        ]

    @property
    def n_slow_machines(self) -> int:
        """Number of machines typed ``slow`` in the sampled fabric."""
        return int(self.machine_type.sum())
