"""Faithful per-machine synchronous message-passing simulator.

This is the validation backend of DESIGN.md Section 3.1: it executes actual
flooding on the communication graph, one message per link per round, with the
bandwidth cap enforced on every concrete message.  It is ``Theta(m)`` work
per round and is therefore used only on small instances, by tests that check
the cluster-level cost accounting against a real execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.network.commgraph import CommGraph
from repro.network.ledger import ModelViolation


@dataclass
class Message:
    """A concrete message in flight: ``payload`` must fit in the cap."""

    src: int
    dst: int
    payload: object
    bits: int


@dataclass
class MachineSimulator:
    """Synchronous rounds over a :class:`CommGraph`.

    Each machine is driven by a callback
    ``step(machine, round_index, inbox) -> list[(neighbor, payload, bits)]``
    returning the messages to send this round.  The simulator enforces:

    * one message per directed link per round;
    * each message at most ``bandwidth_bits`` wide.
    """

    comm: CommGraph
    bandwidth_bits: int
    rounds_elapsed: int = 0
    total_bits: int = 0
    _inboxes: list[list[Message]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._inboxes = [[] for _ in range(self.comm.n)]

    def run_round(
        self,
        step: Callable[[int, int, list[Message]], list[tuple[int, object, int]]],
    ) -> None:
        """Execute one synchronous round with ``step`` as every machine's
        program.  Raises :class:`ModelViolation` on cap or link misuse.
        """
        outboxes: list[list[Message]] = [[] for _ in range(self.comm.n)]
        used_links: set[tuple[int, int]] = set()
        for machine in range(self.comm.n):
            inbox = self._inboxes[machine]
            for dst, payload, bits in step(machine, self.rounds_elapsed, inbox):
                if not self.comm.has_link(machine, dst):
                    raise ModelViolation(
                        f"machine {machine} sent to non-neighbor {dst}"
                    )
                if bits > self.bandwidth_bits:
                    raise ModelViolation(
                        f"{bits}-bit message exceeds cap {self.bandwidth_bits}"
                    )
                key = (machine, dst)
                if key in used_links:
                    raise ModelViolation(
                        f"machine {machine} sent twice to {dst} in one round"
                    )
                used_links.add(key)
                outboxes[dst].append(Message(machine, dst, payload, bits))
                self.total_bits += bits
        self._inboxes = outboxes
        self.rounds_elapsed += 1

    def run(
        self,
        step: Callable[[int, int, list[Message]], list[tuple[int, object, int]]],
        *,
        rounds: int,
    ) -> None:
        """Run ``rounds`` synchronous rounds."""
        for _ in range(rounds):
            self.run_round(step)

    def inbox(self, machine: int) -> list[Message]:
        """Messages delivered to ``machine`` in the last round."""
        return self._inboxes[machine]
