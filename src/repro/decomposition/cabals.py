"""External-degree estimation, cabal classification, reserved colors.

After the ACD, each dense vertex estimates its external degree ``e~_v``
(fingerprints with the predicate "neighbor outside ``K_v``", Lemma 5.7), the
clique aggregates the average ``e~_K`` exactly on a BFS tree, and cliques
with ``e~_K < ell`` become *cabals* (Section 4.1).  Reserved colors follow
Equation (2): ``r_K = 250 max(e~_K, ell)`` (scaled multiplier in the scaled
preset), capped at ``300 eps Delta``.

Also here: the anti-degree proxy of Equation (3),

    x_v = |K| - (Delta + 1) + e~_v  in  a_v - (Delta - deg(v)) ± delta e_v,

the quantity non-cabal inlier classification uses because anti-degrees are
not approximable on cluster graphs.
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime
from repro.decomposition.acd import AlmostCliqueDecomposition
from repro.graphcore import batch_label_mismatch_counts, csr_of
from repro.sketch.fingerprint import batch_count_estimates


def annotate_with_cabals(
    runtime: ClusterRuntime,
    acd: AlmostCliqueDecomposition,
    *,
    op: str = "cabal_classify",
) -> AlmostCliqueDecomposition:
    """Fill in ``e_tilde``, ``e_tilde_clique``, ``cabal_flags`` and
    ``reserved`` on an ACD, in place (returned for chaining).

    Cost: one fingerprint pass (``O(1/delta^2)`` rounds) plus one exact
    aggregation over a clique-spanning BFS tree per clique (``O(1)`` rounds,
    cliques are vertex-disjoint).
    """
    graph = runtime.graph
    params = runtime.params
    n = runtime.n
    delta = graph.max_degree
    trials = params.fingerprint_trials(n, max(params.delta, 1e-3))

    # All dense vertices at once: external degrees are one label-mismatch
    # gather over the CSR (label = clique id), estimates one batched
    # fingerprint pass.  Vertex order (clique by clique, members in order)
    # matches the per-vertex loop this replaces, so the RNG stream and the
    # resulting estimates are bitwise identical.
    dense = [v for members in acd.cliques for v in members]
    e_tilde: dict[int, float] = {}
    if dense:
        true_external = batch_label_mismatch_counts(
            csr_of(graph), acd.clique_of, dense
        )
        estimates = batch_count_estimates(runtime.rng, true_external, trials)
        e_tilde = {v: float(e) for v, e in zip(dense, estimates)}
    runtime.wide_message(op + "_external", 2 * trials + 16)

    e_tilde_clique: list[float] = []
    cabal_flags: list[bool] = []
    reserved: list[int] = []
    ell = params.ell(n)
    for members in acd.cliques:
        avg = sum(e_tilde[v] for v in members) / max(1, len(members))
        e_tilde_clique.append(avg)
        cabal_flags.append(avg < ell)
        reserved.append(params.reserved_colors(avg, n, delta))
    # |K| and the e~_K average: one convergecast + broadcast per clique, all
    # cliques in parallel (they are vertex-disjoint).
    runtime.h_rounds(op + "_average", count=2)

    acd.e_tilde = e_tilde
    acd.e_tilde_clique = e_tilde_clique
    acd.cabal_flags = cabal_flags
    acd.reserved = reserved
    return acd


def anti_degree_proxy(
    acd: AlmostCliqueDecomposition, graph, v: int
) -> float:
    """Equation (3)'s ``x_v = |K| - (Delta + 1) + e~_v``.

    Each vertex can compute this from quantities it already holds (``|K|``
    from the clique aggregation, ``Delta`` global, ``e~_v`` its own
    estimate); it over/under-shoots ``a_v`` by ``(Delta - deg(v)) ± delta e_v``,
    an error the slack accounting absorbs (Lemma 4.11).
    """
    idx = int(acd.clique_of[v])
    if idx < 0:
        raise ValueError(f"vertex {v} is sparse; x_v is defined for dense vertices")
    k_size = len(acd.cliques[idx])
    return k_size - (graph.max_degree + 1) + acd.e_tilde[v]
