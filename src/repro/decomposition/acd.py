"""Almost-clique decomposition on cluster graphs (Proposition 4.3).

Pipeline (all fingerprint-powered, ``O(eps^-2)`` rounds):

1. solve the buddy predicate on every edge (Lemma 5.8);
2. every vertex estimates its number of incident buddy edges (Lemma 5.7 with
   the predicate "this link carries a buddy edge") and declares itself a
   dense candidate if the estimate is large;
3. almost-cliques are the connected components of the buddy graph restricted
   to dense candidates ([ACK19, Lemma 4.8]); components have diameter 2, so
   an ``O(1)``-round BFS elects leaders and spreads clique ids;
4. repair: components violating Definition 4.2 (possible at finite scale,
   where "w.h.p." events do fail) are dissolved into the sparse side --
   the fallback discipline of DESIGN.md 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aggregation.bfs import bfs_forest
from repro.aggregation.runtime import ClusterRuntime
from repro.decomposition.buddy import buddy_predicate
from repro.decomposition.sparsity import is_valid_almost_clique
from repro.graphcore import label_components
from repro.sketch.fingerprint import batch_count_estimates


@dataclass
class AlmostCliqueDecomposition:
    """The output of ComputeACD plus the per-clique statistics later stages
    need (filled in by :mod:`repro.decomposition.cabals`).

    Attributes
    ----------
    sparse:
        Vertices of ``V_sparse``.
    cliques:
        ``cliques[i]`` is the sorted member list of almost-clique ``i``.
    clique_of:
        ``clique_of[v]`` is the clique index of ``v`` or ``-1`` if sparse.
    e_tilde:
        Estimated external degree per dense vertex (``e~_v``).
    e_tilde_clique:
        Estimated average external degree per clique (``e~_K``).
    cabal_flags:
        ``cabal_flags[i]`` iff clique ``i`` is a cabal (``e~_K < ell``).
    reserved:
        Reserved-color count ``r_K`` per clique (Equation (2)).
    repaired_components:
        Number of components dissolved by the repair step (0 w.h.p.).
    """

    sparse: list[int]
    cliques: list[list[int]]
    clique_of: np.ndarray
    e_tilde: dict[int, float] = field(default_factory=dict)
    e_tilde_clique: list[float] = field(default_factory=list)
    cabal_flags: list[bool] = field(default_factory=list)
    reserved: list[int] = field(default_factory=list)
    repaired_components: int = 0

    @property
    def num_cliques(self) -> int:
        """Number of almost-cliques."""
        return len(self.cliques)

    def dense_vertices(self) -> list[int]:
        """All vertices of ``V_dense``."""
        return [v for members in self.cliques for v in members]

    def is_cabal_vertex(self, v: int) -> bool:
        """Whether ``v`` lies in a cabal."""
        idx = int(self.clique_of[v])
        return idx >= 0 and self.cabal_flags[idx]

    def cabal_indices(self) -> list[int]:
        """Indices of cliques classified as cabals."""
        return [i for i, f in enumerate(self.cabal_flags) if f]

    def non_cabal_indices(self) -> list[int]:
        """Indices of cliques that are not cabals."""
        return [i for i, f in enumerate(self.cabal_flags) if not f]

    def external_degree_true(self, graph, v: int) -> int:
        """Exact ``e_v`` (test/benchmark ground truth, not algorithm-visible)."""
        idx = int(self.clique_of[v])
        if idx < 0:
            return graph.degree(v)
        members = set(self.cliques[idx])
        return sum(1 for u in graph.neighbors(v) if u not in members)

    def anti_degree_true(self, graph, v: int) -> int:
        """Exact ``a_v = |K_v \\ N(v)| - 1`` (self excluded)."""
        idx = int(self.clique_of[v])
        if idx < 0:
            return 0
        members = self.cliques[idx]
        nbrs = graph.neighbor_set(v)
        return sum(1 for u in members if u != v and u not in nbrs)

    def avg_anti_degree_true(self, graph, clique_index: int) -> float:
        """Exact ``a_K`` (ground truth)."""
        members = self.cliques[clique_index]
        if not members:
            return 0.0
        return sum(self.anti_degree_true(graph, v) for v in members) / len(members)


def compute_acd(
    runtime: ClusterRuntime, eps: float | None = None, *, op: str = "acd"
) -> AlmostCliqueDecomposition:
    """ComputeACD (Proposition 4.3): an ``eps``-almost-clique decomposition
    in ``O(eps^-2)`` rounds, w.h.p.
    """
    graph = runtime.graph
    params = runtime.params
    if eps is None:
        eps = params.eps
    n_v = graph.n_vertices
    delta = graph.max_degree
    xi = max(eps, params.acd_detection_xi)

    tracer = runtime.tracer
    with tracer.span(op + ".buddy") as span:
        buddy = buddy_predicate(runtime, xi, op=op + "_buddy")
        yes_u, yes_v = buddy.yes_edge_arrays()
        span.counter("yes_edges", int(yes_u.size))

    # Step 2: estimate per-vertex buddy-edge counts (Lemma 5.7, predicate
    # "incident edge is a buddy edge").  One batched fingerprint draw +
    # estimate over all vertices; the RNG stream matches the per-vertex
    # loop this replaces bitwise.
    with tracer.span(op + ".count") as span:
        buddy_count = np.bincount(yes_u, minlength=n_v) + np.bincount(
            yes_v, minlength=n_v
        )
        trials = params.fingerprint_trials(runtime.n, max(xi, 1e-3))
        estimates = batch_count_estimates(runtime.rng, buddy_count, trials)
        runtime.wide_message(op + "_count", 2 * trials + 16)
        dense_mask = estimates >= (1 - 3 * xi) * delta
        span.counter("rows", n_v)
        span.counter("dense_candidates", int(dense_mask.sum()))

    # Step 3: components of the buddy graph restricted to dense candidates.
    # Min-id label propagation (diameter-2 components, so O(1) sweeps);
    # grouping by label in id order reproduces the per-vertex BFS's
    # component enumeration exactly.
    with tracer.span(op + ".components") as span:
        comp_labels = label_components(yes_u, yes_v, n_v, dense_mask)
        components: list[list[int]] = []
        if dense_mask.any():
            dense = np.flatnonzero(dense_mask)
            order = np.argsort(comp_labels[dense], kind="stable")
            grouped = dense[order]
            boundaries = np.flatnonzero(
                np.diff(comp_labels[grouped], prepend=-2)
            )
            components = [
                part.tolist() for part in np.split(grouped, boundaries[1:])
            ]
        if components:
            # Leader election + id dissemination: O(1)-round BFS on the
            # vertex-disjoint components (Lemma 3.2).
            bfs_forest(
                runtime,
                [(comp[0], comp) for comp in components],
                op=op + "_leaders",
            )
        span.counter("components", len(components))

    # Step 4: repair.
    with tracer.span(op + ".repair") as span:
        kept: list[list[int]] = []
        repaired = 0
        for comp in components:
            if is_valid_almost_clique(graph, comp, eps):
                kept.append(comp)
            else:
                repaired += 1
        span.counter("repaired", repaired)
    clique_of = np.full(n_v, -1, dtype=np.int64)
    for idx, comp in enumerate(kept):
        clique_of[comp] = idx
    sparse = np.flatnonzero(clique_of < 0).tolist()
    return AlmostCliqueDecomposition(
        sparse=sparse,
        cliques=kept,
        clique_of=clique_of,
        repaired_components=repaired,
    )
