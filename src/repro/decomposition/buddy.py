"""The distributed buddy predicate (Lemma 5.8).

For each H-edge, the incident machines must decide:

* YES if ``|N(u) ∩ N(v)| >= (1 - xi) Delta``;
* NO  if ``|N(u) ∩ N(v)| <  (1 - 2 xi) Delta``;
* anything in between.

The trick of Lemma 5.8: intersections are not aggregatable, but *unions*
are -- ``Y^{uv} = max(Y^u, Y^v)`` is the fingerprint of ``N(u) ∪ N(v)``
because max tolerates overlap.  Combined with degree estimates,
``|N ∩| = deg(u) + deg(v) - |N ∪|`` separates the two cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.sketch.fingerprint import FingerprintTable, batch_estimate, neighborhood_maxima


@dataclass
class BuddyResult:
    """Per-edge YES/NO answers plus the intermediate sketches (reused by the
    ACD construction so the same randomness serves both phases, as in the
    paper's single pass).
    """

    yes_edges: set[tuple[int, int]]
    degree_estimates: np.ndarray
    neighborhood_rows: np.ndarray
    trials: int


def _directed_edge_arrays(graph) -> tuple[np.ndarray, np.ndarray]:
    """Both orientations of every H-edge as parallel src/dst arrays."""
    pairs = list(graph.iter_h_edges())
    if not pairs:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    arr = np.asarray(pairs, dtype=np.int64)
    src = np.concatenate([arr[:, 0], arr[:, 1]])
    dst = np.concatenate([arr[:, 1], arr[:, 0]])
    return src, dst


def buddy_predicate(
    runtime: ClusterRuntime, xi: float, *, op: str = "buddy"
) -> BuddyResult:
    """Solve the ``xi``-buddy predicate on every H-edge (Lemma 5.8).

    Cost: ``O(xi^-2)`` rounds -- one degree-estimation fingerprint pass, one
    neighborhood-fingerprint pass, one link exchange of encoded maxima.
    """
    graph = runtime.graph
    n_v = graph.n_vertices
    delta = graph.max_degree
    trials = runtime.params.fingerprint_trials(runtime.n, max(xi / 2.0, 1e-3))

    table = FingerprintTable(n_v, trials, runtime.rng)
    src, dst = _directed_edge_arrays(graph)
    rows = neighborhood_maxima(table.rows, src, dst, n_v)

    degree_estimates = batch_estimate(rows)
    # Charge: fingerprint convergecast + broadcast (pipelined wide messages).
    bits = 2 * trials + 16
    runtime.wide_message(op + "_degree", bits)
    runtime.wide_message(op + "_nbhd", bits)
    runtime.wide_message(op + "_exchange", bits, depth=1)

    # Vertices whose estimated degree is clearly below Delta answer NO to all
    # incident edges: they cannot carry friendly edges (Lemma 5.8 first step).
    low_degree = degree_estimates < (1 - 2.0 * xi) * delta

    yes_edges: set[tuple[int, int]] = set()
    pairs = list(graph.iter_h_edges())
    if pairs:
        arr = np.asarray(pairs, dtype=np.int64)
        # |N(u) ∩ N(v)| = deg(u) + deg(v) - |N(u) ∪ N(v)|, every term
        # estimated by a fingerprint; accept when the intersection clears the
        # midpoint between the YES ((1-xi)Delta) and NO ((1-2xi)Delta) cases.
        # Edges processed in chunks: the union matrix is (edges x trials) and
        # must not dominate peak memory on dense graphs.
        chunk = max(1, (1 << 24) // max(1, trials))
        accept_all = np.zeros(len(pairs), dtype=bool)
        for start in range(0, len(pairs), chunk):
            part = arr[start : start + chunk]
            union_rows = np.maximum(rows[part[:, 0]], rows[part[:, 1]])
            union_estimates = batch_estimate(union_rows)
            intersections = (
                degree_estimates[part[:, 0]]
                + degree_estimates[part[:, 1]]
                - union_estimates
            )
            accept = intersections >= (1 - 1.5 * xi) * delta
            accept &= ~(low_degree[part[:, 0]] | low_degree[part[:, 1]])
            accept_all[start : start + len(part)] = accept
        for (u, v), ok in zip(pairs, accept_all):
            if ok:
                yes_edges.add((u, v))
    return BuddyResult(
        yes_edges=yes_edges,
        degree_estimates=degree_estimates,
        neighborhood_rows=rows,
        trials=trials,
    )
