"""The distributed buddy predicate (Lemma 5.8).

For each H-edge, the incident machines must decide:

* YES if ``|N(u) ∩ N(v)| >= (1 - xi) Delta``;
* NO  if ``|N(u) ∩ N(v)| <  (1 - 2 xi) Delta``;
* anything in between.

The trick of Lemma 5.8: intersections are not aggregatable, but *unions*
are -- ``Y^{uv} = max(Y^u, Y^v)`` is the fingerprint of ``N(u) ∪ N(v)``
because max tolerates overlap.  Combined with degree estimates,
``|N ∩| = deg(u) + deg(v) - |N ∪|`` separates the two cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.graphcore import csr_of
from repro.sketch.fingerprint import FingerprintTable
from repro.sketch.streaming import StreamingUnionEstimator


@dataclass
class BuddyResult:
    """Per-edge YES/NO answers plus the intermediate sketches (reused by the
    ACD construction so the same randomness serves both phases, as in the
    paper's single pass).

    ``yes_u``/``yes_v`` hold the YES edges as parallel int64 arrays with
    ``u < v`` in lexicographic order -- the form the vectorized ACD steps
    consume; ``yes_edges`` is the same information as a set of pairs.
    """

    yes_edges: set[tuple[int, int]]
    degree_estimates: np.ndarray
    neighborhood_rows: np.ndarray
    trials: int
    yes_u: np.ndarray | None = None
    yes_v: np.ndarray | None = None

    def yes_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """YES edges as parallel ``(u, v)`` arrays (derived from the set
        when the construction did not supply them, e.g. hand-built test
        doubles)."""
        if self.yes_u is None or self.yes_v is None:
            pairs = sorted(self.yes_edges)
            self.yes_u = np.fromiter(
                (u for u, _ in pairs), dtype=np.int64, count=len(pairs)
            )
            self.yes_v = np.fromiter(
                (v for _, v in pairs), dtype=np.int64, count=len(pairs)
            )
        return self.yes_u, self.yes_v


def buddy_predicate(
    runtime: ClusterRuntime, xi: float, *, op: str = "buddy"
) -> BuddyResult:
    """Solve the ``xi``-buddy predicate on every H-edge (Lemma 5.8).

    Cost: ``O(xi^-2)`` rounds -- one degree-estimation fingerprint pass, one
    neighborhood-fingerprint pass, one link exchange of encoded maxima.
    """
    graph = runtime.graph
    n_v = graph.n_vertices
    delta = graph.max_degree
    trials = runtime.params.fingerprint_trials(runtime.n, max(xi / 2.0, 1e-3))

    table = FingerprintTable(n_v, trials, runtime.rng)
    stream = StreamingUnionEstimator.from_csr_neighborhoods(
        csr_of(graph), table.rows
    )
    rows = stream.state

    # One fused order-statistics pass serves both the degree estimates and
    # the union probes: the planes index caches per-row (K*, Z).
    planes = stream.union_planes()
    degree_estimates = planes.row_estimates()
    # Charge: fingerprint convergecast + broadcast (pipelined wide messages).
    bits = 2 * trials + 16
    runtime.wide_message(op + "_degree", bits)
    runtime.wide_message(op + "_nbhd", bits)
    runtime.wide_message(op + "_exchange", bits, depth=1)

    # Vertices whose estimated degree is clearly below Delta answer NO to all
    # incident edges: they cannot carry friendly edges (Lemma 5.8 first step).
    low_degree = degree_estimates < (1 - 2.0 * xi) * delta

    yes_edges: set[tuple[int, int]] = set()
    yes_u = np.empty(0, dtype=np.int64)
    yes_v = np.empty(0, dtype=np.int64)
    edge_u, edge_v = csr_of(graph).edge_arrays()
    if edge_u.size:
        # |N(u) ∩ N(v)| = deg(u) + deg(v) - |N(u) ∪ N(v)|, every term
        # estimated by a fingerprint; accept when the intersection clears the
        # midpoint between the YES ((1-xi)Delta) and NO ((1-2xi)Delta) cases.
        # The union term runs on the packed bit-plane index: per-edge union
        # order statistics from ANDed plane popcounts, so nothing of size
        # (edges x trials) is ever materialized (see docs/ESTIMATORS.md).
        union_estimates = planes.union_estimates(edge_u, edge_v)
        intersections = (
            degree_estimates[edge_u] + degree_estimates[edge_v] - union_estimates
        )
        accept = intersections >= (1 - 1.5 * xi) * delta
        accept &= ~(low_degree[edge_u] | low_degree[edge_v])
        yes_u, yes_v = edge_u[accept], edge_v[accept]
        yes_edges = {
            (int(u), int(v)) for u, v in zip(yes_u, yes_v)
        }
    return BuddyResult(
        yes_edges=yes_edges,
        degree_estimates=degree_estimates,
        neighborhood_rows=rows,
        trials=trials,
        yes_u=yes_u,
        yes_v=yes_v,
    )
