"""Almost-clique decomposition machinery (Sections 4.1 and 5.4)."""

from repro.decomposition.sparsity import (
    all_sparsities,
    exact_acd_reference,
    friendly_edges,
    is_valid_almost_clique,
    sparsity,
)
from repro.decomposition.buddy import BuddyResult, buddy_predicate
from repro.decomposition.acd import AlmostCliqueDecomposition, compute_acd
from repro.decomposition.cabals import annotate_with_cabals, anti_degree_proxy

__all__ = [
    "all_sparsities",
    "exact_acd_reference",
    "friendly_edges",
    "is_valid_almost_clique",
    "sparsity",
    "BuddyResult",
    "buddy_predicate",
    "AlmostCliqueDecomposition",
    "compute_acd",
    "annotate_with_cabals",
    "anti_degree_proxy",
]
