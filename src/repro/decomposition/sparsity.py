"""Sparsity and exact decomposition references (Definitions 4.1/4.2).

These exact computations are *not* available to the distributed algorithm
(computing ``|N(u) ∩ N(v)|`` is a set-intersection problem on cluster
graphs); they serve as ground truth for tests and for Experiment E6's
quality comparison against the fingerprint-based ACD.
"""

from __future__ import annotations

import numpy as np


def sparsity(graph, v: int) -> float:
    """Exact sparsity ``zeta_v`` (Definition 4.1):

        zeta_v = (1/Delta) * [ C(Delta, 2) - (1/2) sum_{u in N(v)} |N(u) ∩ N(v)| ].

    Counts (scaled) missing edges in ``v``'s neighborhood.
    """
    delta = graph.max_degree
    if delta == 0:
        return 0.0
    nv = graph.neighbor_set(v)
    common_total = sum(len(graph.neighbor_set(u) & nv) for u in nv)
    return (delta * (delta - 1) / 2.0 - common_total / 2.0) / delta


def all_sparsities(graph) -> np.ndarray:
    """Exact ``zeta_v`` for every vertex (dense-matrix path when feasible).

    For graphs up to a few thousand vertices this uses one boolean matrix
    product; beyond that it falls back to per-vertex set intersections.
    """
    n = graph.n_vertices
    delta = graph.max_degree
    if delta == 0:
        return np.zeros(n)
    if n <= 4096:
        adj = np.zeros((n, n), dtype=np.float32)
        for v in range(n):
            nbrs = graph.neighbors(v)
            if nbrs:
                adj[v, nbrs] = 1.0
        common = adj @ adj  # common[u, v] = |N(u) ∩ N(v)|
        totals = (adj * common).sum(axis=1)  # sum over u in N(v)
        return (delta * (delta - 1) / 2.0 - totals / 2.0) / delta
    return np.array([sparsity(graph, v) for v in range(n)])


def is_valid_almost_clique(graph, members: list[int], eps: float) -> bool:
    """Definition 4.2 condition (2): ``|K| <= (1+eps) Delta`` and every
    member has ``|N(v) ∩ K| >= (1-eps)|K|``.
    """
    delta = graph.max_degree
    k = len(members)
    if k == 0 or k > (1 + eps) * delta:
        return False
    mset = set(members)
    for v in members:
        inside = len(graph.neighbor_set(v) & mset)
        if inside < (1 - eps) * k:
            return False
    return True


def friendly_edges(graph, xi: float) -> set[tuple[int, int]]:
    """Exact ``xi``-friendly edges: ``{u, v}`` with
    ``|N(u) ∩ N(v)| >= (1 - xi) Delta`` (Section 5.4).
    """
    delta = graph.max_degree
    out: set[tuple[int, int]] = set()
    for u, v in graph.iter_h_edges():
        common = len(graph.neighbor_set(u) & graph.neighbor_set(v))
        if common >= (1 - xi) * delta:
            out.add((u, v))
    return out


def exact_acd_reference(
    graph, eps: float, xi: float | None = None
) -> tuple[list[int], list[list[int]]]:
    """Reference ACD built from *exact* friendliness (the [ACK19, Lemma 4.8]
    construction the distributed algorithm approximates).

    Returns ``(sparse_vertices, almost_cliques)``.  Components of the buddy
    graph that fail Definition 4.2 are dissolved into the sparse side, which
    matches the repair discipline of the distributed version.
    """
    if xi is None:
        xi = eps / 3.0
    delta = graph.max_degree
    buddy = friendly_edges(graph, xi)
    degree_in_buddy: dict[int, int] = {}
    adj: dict[int, list[int]] = {}
    for u, v in buddy:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
        degree_in_buddy[u] = degree_in_buddy.get(u, 0) + 1
        degree_in_buddy[v] = degree_in_buddy.get(v, 0) + 1
    dense_candidates = {
        v for v, d in degree_in_buddy.items() if d >= (1 - 2 * xi) * delta
    }
    seen: set[int] = set()
    cliques: list[list[int]] = []
    for start in sorted(dense_candidates):
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        frontier = [start]
        while frontier:
            nxt = []
            for x in frontier:
                for y in adj.get(x, []):
                    if y in dense_candidates and y not in seen:
                        seen.add(y)
                        comp.append(y)
                        nxt.append(y)
            frontier = nxt
        cliques.append(sorted(comp))
    kept = [c for c in cliques if is_valid_almost_clique(graph, c, eps)]
    clustered = {v for c in kept for v in c}
    sparse = [v for v in range(graph.n_vertices) if v not in clustered]
    return sparse, kept
