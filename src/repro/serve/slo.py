"""Declarative SLO targets checked against collected service metrics.

A service-level objective here is a named bound on one collected metric:
``repair_ms_p99`` at most 250, ``violation_batches`` at most 0,
``updates_per_sec`` at least 1000.  Targets are declarative data
(:class:`SLOTarget`), evaluation is a pure function over the metrics dict
the driver collects (:func:`evaluate_slos`), and the rendered report is
what ``repro serve`` prints at shutdown.

SLO checks are *report-only by default*: wall-clock-derived metrics
(latency percentiles, throughput) measure the machine as much as the
algorithm, so CI gates on ``repro compare``'s deterministic metrics and
prints the SLO report for humans.  ``repro serve --strict`` turns failures
into a nonzero exit for deployments that do want the gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_SLOS",
    "SLOReport",
    "SLOResult",
    "SLOTarget",
    "evaluate_slos",
    "parse_slo",
    "render_slo_report",
]

#: Comparison operators an SLO may use: ``max`` (observed must stay at or
#: below the threshold) and ``min`` (at or above).
BOUNDS = ("max", "min")


@dataclass(frozen=True)
class SLOTarget:
    """One declarative objective: a bound on a collected metric."""

    metric: str  #: key into the collected metrics dict (e.g. ``repair_ms_p99``)
    bound: str  #: ``"max"`` or ``"min"``
    threshold: float

    def __post_init__(self) -> None:
        """Validate the bound direction."""
        if self.bound not in BOUNDS:
            raise ValueError(f"bound must be one of {BOUNDS}, got {self.bound!r}")

    def check(self, observed: float) -> bool:
        """Whether ``observed`` satisfies this objective."""
        if self.bound == "max":
            return observed <= self.threshold
        return observed >= self.threshold

    def describe(self) -> str:
        """Human-readable form, e.g. ``repair_ms_p99 <= 250``."""
        op = "<=" if self.bound == "max" else ">="
        return f"{self.metric} {op} {self.threshold:g}"


#: Report-only defaults for the service suites and ``repro serve``: zero
#: tolerated properness violations, a generous p99 repair-latency ceiling,
#: and a token throughput floor (real deployments override all three).
DEFAULT_SLOS: tuple[SLOTarget, ...] = (
    SLOTarget("violation_batches", "max", 0.0),
    SLOTarget("repair_ms_p99", "max", 1000.0),
    SLOTarget("updates_per_sec", "min", 1.0),
)


def parse_slo(spec: str) -> SLOTarget:
    """Parse a CLI-style objective: ``metric<=threshold`` or
    ``metric>=threshold`` (``repro serve --slo repair_ms_p99<=250``)."""
    for op, bound in (("<=", "max"), (">=", "min")):
        metric, sep, value = spec.partition(op)
        if sep:
            metric = metric.strip()
            if not metric:
                raise ValueError(f"empty metric in SLO spec {spec!r}")
            try:
                threshold = float(value)
            except ValueError:
                raise ValueError(
                    f"non-numeric threshold in SLO spec {spec!r}"
                ) from None
            return SLOTarget(metric, bound, threshold)
    raise ValueError(
        f"SLO spec {spec!r} needs '<=' or '>=' (e.g. repair_ms_p99<=250)"
    )


@dataclass(frozen=True)
class SLOResult:
    """One evaluated objective: the target, what was observed, the verdict.

    ``observed`` is ``None`` when the metrics dict lacks the target's key
    -- counted as a failure (an objective on a metric nobody collected is a
    configuration bug worth surfacing, not a silent pass)."""

    target: SLOTarget
    observed: float | None

    @property
    def ok(self) -> bool:
        """Whether the objective is met."""
        return self.observed is not None and self.target.check(self.observed)


@dataclass
class SLOReport:
    """Every evaluated objective of one service run."""

    results: list[SLOResult]

    @property
    def passed(self) -> bool:
        """Whether every objective is met."""
        return all(r.ok for r in self.results)

    @property
    def failed(self) -> list[SLOResult]:
        """The objectives that missed."""
        return [r for r in self.results if not r.ok]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (what service artifacts embed as ``slo``)."""
        return {
            "passed": self.passed,
            "targets": [
                {
                    "slo": r.target.describe(),
                    "observed": r.observed,
                    "ok": r.ok,
                }
                for r in self.results
            ],
        }


def evaluate_slos(
    metrics: Mapping[str, Any], targets: Iterable[SLOTarget] = DEFAULT_SLOS
) -> SLOReport:
    """Check every target against the collected metrics dict."""
    results = []
    for target in targets:
        observed = metrics.get(target.metric)
        results.append(
            SLOResult(
                target=target,
                observed=float(observed) if observed is not None else None,
            )
        )
    return SLOReport(results=results)


def render_slo_report(report: SLOReport) -> str:
    """The final SLO table ``repro serve`` prints (report-only by default)."""
    from repro.metrics import format_table

    rows = [
        {
            "slo": r.target.describe(),
            "observed": "--" if r.observed is None else f"{r.observed:g}",
            "status": "ok" if r.ok else "FAIL",
        }
        for r in report.results
    ]
    verdict = (
        "SLO: all objectives met"
        if report.passed
        else f"SLO: {len(report.failed)} objective(s) MISSED"
    )
    return format_table(rows) + "\n" + verdict
