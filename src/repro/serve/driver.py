"""Open-loop trace-driven driver for the always-on coloring service.

:class:`ColoringService` replays a :class:`~repro.workloads.streams.
StreamWorkload` against a live :class:`~repro.dynamic.engine.DynamicColoring`
under the workload's arrival schedule, on a *virtual clock*: batch ``i``
arrives at ``arrivals[i]`` (trace seconds), starts as soon as the engine is
free (``start = max(arrival, previous completion)``), and completes after
its *measured* repair wall time.  Queueing delay -- the open-loop signal a
closed back-to-back replay cannot see -- is ``start - arrival``; end-to-end
latency is ``completion - arrival``.  Replay itself runs as fast as the
engine allows (no sleeping), so a 200-second trace measures in engine
wall time while still reporting trace-clock throughput and queueing.

Lifecycle follows the workload-manager idiom: :meth:`ColoringService.start`
bootstraps the engine, :meth:`~ColoringService.step` absorbs one batch,
:meth:`~ColoringService.stop` releases owned resources, and
:meth:`~ColoringService.collect` returns the artifact-ready metrics dict --
the stream summary of :func:`repro.dynamic.harness.summarize_stream` plus
the service-only fields (queue/latency percentiles, sustained trace-clock
throughput, the SLO verdict).  :func:`run_service` wraps the whole
lifecycle for the sweep runner and ``repro serve``.

Like the tracer and the metrics registry, the driver obeys the
observe-layer neutrality contract: it feeds instruments from finished
batch reports and the virtual clock only, so a served stream produces
bitwise-identical colorings, ledger, and RNG end state to the same
workload pushed through :func:`~repro.dynamic.harness.run_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.dynamic.engine import BatchReport, DynamicColoring, StreamResult
from repro.dynamic.harness import latency_fields, summarize_stream
from repro.observe.metrics import MetricsRegistry, exact_percentiles
from repro.observe.tracer import NULL_TRACER
from repro.parallel.backend import ExecutionBackend, make_backend
from repro.params import AlgorithmParameters
from repro.serve.slo import DEFAULT_SLOS, SLOTarget, evaluate_slos

__all__ = ["ColoringService", "ServiceEntry", "render_dashboard", "run_service"]


@dataclass(frozen=True)
class ServiceEntry:
    """One served batch on the virtual trace clock (all times in seconds
    from trace start)."""

    batch_index: int
    arrival_s: float  #: when the batch arrived at the service
    start_s: float  #: when the engine picked it up (>= arrival_s)
    service_s: float  #: measured repair wall time
    updates: int
    repaired: int
    escalated: bool
    proper: bool

    @property
    def completion_s(self) -> float:
        """When the batch finished (trace clock)."""
        return self.start_s + self.service_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting behind earlier batches."""
        return self.start_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end arrival-to-completion latency."""
        return self.completion_s - self.arrival_s


class ColoringService:
    """An always-on coloring engine fed by an open-loop update trace.

    Parameters mirror :func:`repro.dynamic.harness.run_stream` (same
    engine underneath); ``slos`` is the tuple of
    :class:`~repro.serve.slo.SLOTarget` objectives :meth:`collect`
    evaluates, and ``metrics`` an optional shared
    :class:`~repro.observe.metrics.MetricsRegistry` (the service creates
    a private one when omitted).
    """

    def __init__(
        self,
        workload,
        *,
        params: AlgorithmParameters | None = None,
        seed: int = 0,
        mode: str = "repair",
        verify_each_batch: bool = True,
        tracer=None,
        backend: str | ExecutionBackend | None = None,
        shards: int | None = None,
        metrics: MetricsRegistry | None = None,
        slos: Iterable[SLOTarget] = DEFAULT_SLOS,
    ) -> None:
        batches = getattr(workload, "batches", None)
        if batches is None:
            raise ValueError(
                f"workload {workload.name!r} has no update stream; "
                "the service needs a StreamWorkload"
            )
        self.workload = workload
        self.params = params
        self.seed = seed
        self.mode = mode
        self.verify_each_batch = verify_each_batch
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slos = tuple(slos)
        self._backend_spec = backend
        self._shards = shards
        self._owns_backend = not isinstance(backend, ExecutionBackend) and (
            backend is not None or shards is not None
        )
        self.backend: ExecutionBackend | None = (
            backend if isinstance(backend, ExecutionBackend) else None
        )
        arrivals = getattr(workload, "arrivals", None)
        self.arrivals: list[float] = (
            [float(t) for t in arrivals]
            if arrivals is not None
            else [0.0] * len(batches)
        )
        if len(self.arrivals) != len(batches):
            raise ValueError(
                f"arrival schedule covers {len(self.arrivals)} batches; "
                f"workload has {len(batches)}"
            )
        self.engine: DynamicColoring | None = None
        self.entries: list[ServiceEntry] = []
        self.bootstrap_wall_time_s = 0.0
        self._next_batch = 0
        self._clock_s = 0.0  # trace-clock time the engine frees up
        self._running = False

    # ---- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether :meth:`start` has run and :meth:`stop` has not."""
        return self._running

    @property
    def remaining(self) -> int:
        """Batches of the trace not yet served."""
        return len(self.workload.batches) - self._next_batch

    def start(self) -> None:
        """Bootstrap the engine (and the execution backend, if requested).

        Idempotent-hostile on purpose: a service serves one trace once;
        restarting mid-trace would silently skip arrivals."""
        if self._running:
            raise RuntimeError("service already started")
        if self.engine is not None:
            raise RuntimeError("service already consumed its trace")
        import time

        backend_spec = self._backend_spec
        if backend_spec is None and self._shards is not None:
            backend_spec = "sharded"
        if self.backend is None and backend_spec is not None:
            self.backend = make_backend(backend_spec, shards=self._shards)
        bootstrap_start = time.perf_counter()
        engine_mode = "scratch" if self.mode == "recolor_scratch" else self.mode
        # the engine owns the tracer from here: it binds its stream ledger
        # (illegal inside an open span) and emits the stream.bootstrap span
        # itself; driver spans (service.batch) nest engine spans below them
        self.engine = DynamicColoring(
            self.workload.graph,
            params=self.params,
            seed=self.seed,
            mode=engine_mode,
            verify_each_batch=self.verify_each_batch,
            tracer=self.tracer,
            backend=self.backend,
            metrics=self.metrics,
            netmodel=getattr(self.workload, "netmodel", None),
        )
        self.bootstrap_wall_time_s = time.perf_counter() - bootstrap_start
        self._running = True

    def step(self) -> ServiceEntry:
        """Serve the next batch of the trace: wait for its arrival (virtual
        clock), apply it, and log the timing entry."""
        if not self._running:
            raise RuntimeError("service not started")
        if self._next_batch >= len(self.workload.batches):
            raise RuntimeError("trace exhausted")
        i = self._next_batch
        batch = self.workload.batches[i]
        arrival = self.arrivals[i]
        start_s = max(arrival, self._clock_s)
        with self.tracer.span("service.batch", batch=i) as span:
            report: BatchReport = self.engine.apply(batch)
            span.counter("queue_ms", (start_s - arrival) * 1000.0)
        entry = ServiceEntry(
            batch_index=i,
            arrival_s=arrival,
            start_s=start_s,
            service_s=report.wall_time_s,
            updates=len(batch),
            repaired=report.repaired,
            escalated=report.escalated,
            proper=report.proper,
        )
        self._observe_entry(entry)
        self.entries.append(entry)
        self._clock_s = entry.completion_s
        self._next_batch += 1
        return entry

    def _observe_entry(self, entry: ServiceEntry) -> None:
        """Feed the service-level instruments (queueing, latency, and the
        over-trace-time series) from one finished entry."""
        m = self.metrics
        m.histogram("service.queue_ms").record(entry.queue_s * 1000.0)
        m.histogram("service.latency_ms").record(entry.latency_s * 1000.0)
        m.gauge("service.clock_s").set(entry.completion_s)
        m.windowed("service.updates").record(entry.completion_s, entry.updates)
        m.windowed("service.proper").record(
            entry.completion_s, 1.0 if entry.proper else 0.0
        )

    def run(self) -> list[ServiceEntry]:
        """Serve the whole trace: start if needed, step to exhaustion, stop."""
        if not self._running:
            self.start()
        while self.remaining:
            self.step()
        self.stop()
        return self.entries

    def stop(self) -> None:
        """Stop serving and release an owned execution backend."""
        if not self._running:
            return
        self._running = False
        if self.backend is not None and self._owns_backend:
            self.backend.close()

    # ---- views ---------------------------------------------------------------

    def recent_entries(self, duration_s: float = 30.0) -> list[ServiceEntry]:
        """Entries completed within the last ``duration_s`` trace seconds."""
        cutoff = self._clock_s - duration_s
        return [e for e in self.entries if e.completion_s >= cutoff]

    def result(self) -> StreamResult:
        """The engine's stream aggregate (empty before :meth:`start`)."""
        if self.engine is None:
            return StreamResult()
        return StreamResult(reports=list(self.engine.reports))

    def collect(self) -> dict[str, Any]:
        """Artifact-ready metrics for the batches served so far.

        The deterministic stream fields come from
        :func:`~repro.dynamic.harness.summarize_stream` -- byte-identical
        to a ``run_stream`` of the same workload -- layered with the
        service-only fields: ``queue_ms_p50/p95/p99``,
        ``latency_ms_p50/p95/p99``, trace-clock ``updates_per_sec``
        (total updates over the final completion time, so idle gaps in
        the arrival schedule count against throughput), and the ``slo``
        verdict."""
        if self.engine is None:
            raise RuntimeError("service not started; nothing to collect")
        served = self.workload.batches[: self._next_batch]
        with self.tracer.span("service.collect"):
            metrics = summarize_stream(self.engine, self.result(), served)
        metrics["bootstrap_wall_time_s"] = round(self.bootstrap_wall_time_s, 4)
        metrics["arrival_profile"] = (
            getattr(self.workload, "arrival_profile", None) or "none"
        )
        rate = getattr(self.workload, "arrival_rate", None)
        if rate is not None:
            metrics["arrival_rate"] = rate
        if self.entries:
            total_updates = sum(e.updates for e in self.entries)
            elapsed = self.entries[-1].completion_s
            # trace-clock throughput: on the open-loop clock the service
            # cannot finish before the last arrival, so idle time between
            # sparse arrivals counts against sustained updates/sec
            metrics.update(
                latency_fields(
                    [e.service_s for e in self.entries], total_updates, elapsed
                )
            )
            queue_pcts = exact_percentiles(
                [e.queue_s * 1000.0 for e in self.entries]
            )
            latency_pcts = exact_percentiles(
                [e.latency_s * 1000.0 for e in self.entries]
            )
            metrics.update(
                queue_ms_p50=round(queue_pcts["p50"], 4),
                queue_ms_p95=round(queue_pcts["p95"], 4),
                queue_ms_p99=round(queue_pcts["p99"], 4),
                latency_ms_p50=round(latency_pcts["p50"], 4),
                latency_ms_p95=round(latency_pcts["p95"], 4),
                latency_ms_p99=round(latency_pcts["p99"], 4),
                trace_duration_s=round(elapsed, 4),
            )
        slo_report = evaluate_slos(metrics, self.slos)
        metrics["slo"] = slo_report.to_dict()
        metrics["slo_pass"] = slo_report.passed
        metrics["slo_failed"] = len(slo_report.failed)
        if self.backend is not None:
            exchange = self.backend.exchange_summary()
            if exchange:
                metrics.update(
                    backend="sharded",
                    backend_mode=exchange.get("mode"),
                    backend_shards=exchange.get("shards"),
                    boundary_bits=exchange.get("total_message_bits", 0),
                    boundary_exchanges=exchange.get("exchanges", 0),
                )
        return metrics


def render_dashboard(service: ColoringService, window_s: float = 30.0) -> str:
    """The periodic live view ``repro serve`` prints: registry-backed
    totals, bounded-error latency percentiles from the streaming
    histograms, and the recent-window throughput.

    Reads the registry and the entry log only -- rendering mid-trace
    cannot perturb the stream (neutrality contract)."""
    from repro.metrics import format_table

    m = service.metrics
    served = len(service.entries)
    total = len(service.workload.batches)
    counters = {k: v.value for k, v in sorted(m.counters.items())}
    lines = [
        f"service: {served}/{total} batches @ trace t={service._clock_s:.2f}s",
        "  "
        + "  ".join(f"{k.removeprefix('stream.')}={v:g}" for k, v in counters.items()),
    ]
    rows = []
    for name in ("stream.repair_ms", "service.queue_ms", "service.latency_ms"):
        hist = m.histograms.get(name)
        if hist is None or not hist.count:
            continue
        pcts = hist.percentiles()
        rows.append(
            {
                "histogram": name,
                "count": hist.count,
                "p50": round(pcts["p50"], 3),
                "p95": round(pcts["p95"], 3),
                "p99": round(pcts["p99"], 3),
                "max": round(hist.max, 3),
            }
        )
    if rows:
        lines.append(format_table(rows))
    recent = service.recent_entries(window_s)
    if recent:
        span_s = max(
            recent[-1].completion_s - min(e.arrival_s for e in recent), 1e-9
        )
        updates = sum(e.updates for e in recent)
        lines.append(
            f"  last {window_s:g}s: {updates} updates "
            f"({updates / span_s:.1f}/s), "
            f"{sum(1 for e in recent if not e.proper)} violations"
        )
    return "\n".join(lines)


def run_service(
    workload,
    *,
    params: AlgorithmParameters | None = None,
    seed: int = 0,
    mode: str = "repair",
    verify_each_batch: bool = True,
    tracer=None,
    backend: str | ExecutionBackend | None = None,
    shards: int | None = None,
    metrics: MetricsRegistry | None = None,
    slos: Iterable[SLOTarget] = DEFAULT_SLOS,
) -> tuple[ColoringService, dict[str, Any]]:
    """Serve the whole trace and collect: the service analogue of
    :func:`repro.dynamic.harness.run_stream` (what service sweep cells
    call).  Returns ``(service, metrics)``."""
    service = ColoringService(
        workload,
        params=params,
        seed=seed,
        mode=mode,
        verify_each_batch=verify_each_batch,
        tracer=tracer,
        backend=backend,
        shards=shards,
        metrics=metrics,
        slos=slos,
    )
    service.run()
    return service, service.collect()
