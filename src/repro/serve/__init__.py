"""Always-on coloring service: trace replay driver + SLO evaluation.

:mod:`repro.serve.driver` replays open-loop update traces against a live
:class:`~repro.dynamic.engine.DynamicColoring` on a virtual clock;
:mod:`repro.serve.slo` declares and checks service-level objectives over
the collected metrics.  See docs/SERVICE.md.
"""

from repro.serve.driver import (
    ColoringService,
    ServiceEntry,
    render_dashboard,
    run_service,
)
from repro.serve.slo import (
    DEFAULT_SLOS,
    SLOReport,
    SLOResult,
    SLOTarget,
    evaluate_slos,
    parse_slo,
    render_slo_report,
)

__all__ = [
    "ColoringService",
    "DEFAULT_SLOS",
    "SLOReport",
    "SLOResult",
    "SLOTarget",
    "ServiceEntry",
    "evaluate_slos",
    "parse_slo",
    "render_dashboard",
    "render_slo_report",
    "run_service",
]
