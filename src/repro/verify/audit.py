"""One-call audit of a pipeline run: properness + budget + model compliance.

Benchmarks and downstream users get a single verdict object instead of
re-assembling the checks by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.verify.checker import violations


@dataclass
class AuditReport:
    """The outcome of :func:`audit_run`."""

    proper: bool
    total: bool
    within_budget: bool
    bandwidth_compliant: bool
    monochromatic_edges: int
    uncolored_vertices: int
    fallback_vertices: int
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Everything a correct run must satisfy."""
        return (
            self.proper
            and self.total
            and self.within_budget
            and self.bandwidth_compliant
        )


def audit_run(graph, result, *, bandwidth_cap: int | None = None) -> AuditReport:
    """Audit a :class:`~repro.coloring.stats.ColoringResult` against the
    graph it colored.

    ``bandwidth_cap`` defaults to the cap recorded in the result's ledger
    summary context (pass explicitly to audit against a different model).
    """
    colors = result.colors
    problems: list[str] = []

    bad_edges = violations(graph, colors)
    if bad_edges:
        problems.append(f"{len(bad_edges)} monochromatic edges, e.g. {bad_edges[:3]}")
    uncolored = int((colors < 0).sum())
    if uncolored:
        problems.append(f"{uncolored} uncolored vertices")
    over_budget = int((colors >= result.num_colors).sum())
    if over_budget:
        problems.append(f"{over_budget} vertices beyond the {result.num_colors}-color budget")

    widest = int(result.ledger_summary.get("max_message_bits", 0))
    cap = bandwidth_cap
    compliant = True
    if cap is not None and widest > cap:
        compliant = False
        problems.append(f"widest message {widest} bits exceeds cap {cap}")

    return AuditReport(
        proper=not bad_edges,
        total=uncolored == 0,
        within_budget=over_budget == 0,
        bandwidth_compliant=compliant,
        monochromatic_edges=len(bad_edges),
        uncolored_vertices=uncolored,
        fallback_vertices=sum(result.stats.fallbacks.values()),
        problems=problems,
    )
