"""Validation layer: proper colorings, decompositions, matchings, model
compliance.

Everything here is *centralized* ground-truth checking, used by tests and
at the end of pipeline runs; none of it is available to the distributed
algorithms.
"""

from __future__ import annotations

import numpy as np

# Kept in sync with repro.coloring.types.UNCOLORED; duplicated here (it is a
# one-line protocol constant) to keep the verification layer import-light and
# free of cycles with the coloring package.
UNCOLORED = -1


def is_proper(graph, colors: np.ndarray, *, allow_partial: bool = False) -> bool:
    """Whether ``colors`` is a proper (partial) coloring of the conflict
    graph: endpoints of every edge differ (``⊥`` clashes with nothing).

    Conflict graphs with a CSR backbone (``h_edge_arrays``) are checked in
    one vectorized pass; duck-typed graphs fall back to the edge loop.
    """
    edge_arrays = getattr(graph, "h_edge_arrays", None)
    if edge_arrays is not None:
        from repro.graphcore import is_proper_edges

        edge_u, edge_v = edge_arrays()
        return is_proper_edges(
            edge_u, edge_v, colors, allow_partial=allow_partial
        )
    for u, v in graph.iter_h_edges():
        cu, cv = int(colors[u]), int(colors[v])
        if cu == UNCOLORED or cv == UNCOLORED:
            if not allow_partial:
                return False
            continue
        if cu == cv:
            return False
    return True


def violations(graph, colors: np.ndarray) -> list[tuple[int, int]]:
    """All monochromatic edges (diagnostics for failed runs), in
    ``(u, v)``, ``u < v``, lexicographic order."""
    edge_arrays = getattr(graph, "h_edge_arrays", None)
    if edge_arrays is not None:
        from repro.graphcore import violations_edges

        edge_u, edge_v = edge_arrays()
        return violations_edges(edge_u, edge_v, colors)
    bad = []
    for u, v in graph.iter_h_edges():
        cu, cv = int(colors[u]), int(colors[v])
        if cu != UNCOLORED and cu == cv:
            bad.append((u, v))
    return bad


def check_delta_plus_one(graph, coloring) -> None:
    """Assert a total, proper (Δ+1)-coloring; raises AssertionError with a
    diagnosis otherwise."""
    assert coloring.num_colors == graph.max_degree + 1, (
        f"palette has {coloring.num_colors} colors; Δ+1 = {graph.max_degree + 1}"
    )
    uncolored = coloring.uncolored_vertices()
    assert not uncolored, f"{len(uncolored)} vertices uncolored, e.g. {uncolored[:5]}"
    bad = violations(graph, coloring.colors)
    assert not bad, f"{len(bad)} monochromatic edges, e.g. {bad[:5]}"


def check_acd(graph, acd, eps: float) -> list[str]:
    """Validate Definition 4.2 on a decomposition; returns a list of
    human-readable problems (empty = valid)."""
    problems: list[str] = []
    delta = graph.max_degree
    seen: set[int] = set()
    for i, members in enumerate(acd.cliques):
        mset = set(members)
        if seen & mset:
            problems.append(f"clique {i} overlaps another clique")
        seen |= mset
        if len(members) > (1 + eps) * delta:
            problems.append(f"clique {i} has {len(members)} > (1+eps)Δ members")
        for v in members:
            inside = len(graph.neighbor_set(v) & mset)
            if inside < (1 - eps) * len(members):
                problems.append(
                    f"vertex {v} in clique {i}: {inside} internal neighbors "
                    f"< (1-eps)|K| = {(1 - eps) * len(members):.1f}"
                )
                break
    overlap = seen & set(acd.sparse)
    if overlap:
        problems.append(f"{len(overlap)} vertices both sparse and dense")
    if len(seen) + len(acd.sparse) != graph.n_vertices:
        problems.append("decomposition does not cover V")
    return problems


def check_colorful_matching(
    graph, coloring, members: list[int]
) -> int:
    """Validate reuse inside one clique: every used color is proper, and the
    returned value is ``M_K = |K ∩ dom φ| - |φ(K)|`` (reuse count)."""
    colored = [v for v in members if coloring.is_colored(v)]
    by_color: dict[int, list[int]] = {}
    for v in colored:
        by_color.setdefault(coloring.get(v), []).append(v)
    for c, vs in by_color.items():
        for i in range(len(vs)):
            for j in range(i + 1, len(vs)):
                assert not graph.are_adjacent(vs[i], vs[j]), (
                    f"adjacent vertices {vs[i]},{vs[j]} share color {c}"
                )
    return len(colored) - len(by_color)


def check_put_aside(graph, put_aside: dict[int, list[int]], r: int) -> list[str]:
    """Validate Lemma 4.18's properties 1-2 on computed put-aside sets."""
    problems: list[str] = []
    owner: dict[int, int] = {}
    for idx, vs in put_aside.items():
        if len(vs) != r:
            problems.append(f"cabal {idx}: |P_K| = {len(vs)} != r = {r}")
        for v in vs:
            owner[v] = idx
    for v, idx in owner.items():
        for u in graph.neighbors(v):
            if u in owner and owner[u] != idx:
                problems.append(f"edge between put-aside sets: {v} ({idx}) - {u} ({owner[u]})")
    return problems
