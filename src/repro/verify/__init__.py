"""Ground-truth validation of colorings, decompositions and model compliance."""

from repro.verify.audit import AuditReport, audit_run
from repro.verify.checker import (
    check_acd,
    check_colorful_matching,
    check_delta_plus_one,
    check_put_aside,
    is_proper,
    violations,
)

__all__ = [
    "AuditReport",
    "audit_run",
    "check_acd",
    "check_colorful_matching",
    "check_delta_plus_one",
    "check_put_aside",
    "is_proper",
    "violations",
]
