"""Deviation encoding of fingerprint maxima (Lemmas 5.5 and 5.6).

Each maximum individually needs ``Theta(log log n)`` bits, which would push
``t = Theta(log n)`` maxima to ``Theta(log n loglog n)`` bits -- too wide for
one ``O(log n)``-bit message.  Lemma 5.5 shows the values concentrate: the
total deviation from ``ceil(log2 d)`` is ``O(t)`` w.h.p.  Lemma 5.6 turns
this into an encoding: store a baseline ``k`` (``O(loglog d)`` bits), then
each value as ``sign | unary deviation | separator`` -- ``O(t + loglog d)``
bits in total.

We implement the actual bitstring (round-trippable) so the measured sizes in
Experiment E4 are real, not formulas.
"""

from __future__ import annotations

import numpy as np

_BASELINE_FIELD = 16  # bits reserved for |baseline|; values are O(log n) << 2^16
_SIGN_NEG = "1"
_SIGN_POS = "0"


def best_baseline(values: np.ndarray) -> int:
    """The integer minimizing total absolute deviation: the median.

    Lemma 5.6 allows any ``k`` with small total deviation; the median is
    optimal for the L1 objective and always within the lemma's budget.
    """
    if values.size == 0:
        raise ValueError("cannot encode an empty fingerprint")
    return int(np.median(values))


def encode_maxima(values: np.ndarray, baseline: int | None = None) -> str:
    """Encode maxima as a bitstring per Lemma 5.6.

    Format: 1 sign bit + ``_BASELINE_FIELD``-bit baseline magnitude, then per
    value ``sign`` + ``|v - k|`` ones + a ``0`` separator.

    Returns the bitstring (a str of '0'/'1'; its ``len`` is the bit cost).
    """
    if values.size == 0:
        raise ValueError("cannot encode an empty fingerprint")
    k = best_baseline(values) if baseline is None else baseline
    sign = _SIGN_NEG if k < 0 else _SIGN_POS
    parts = [sign, format(abs(k), f"0{_BASELINE_FIELD}b")]
    for v in values:
        dev = int(v) - k
        parts.append(_SIGN_NEG if dev < 0 else _SIGN_POS)
        parts.append("1" * abs(dev))
        parts.append("0")
    return "".join(parts)


def decode_maxima(bits: str) -> np.ndarray:
    """Inverse of :func:`encode_maxima`."""
    if len(bits) < 1 + _BASELINE_FIELD:
        raise ValueError("truncated encoding")
    sign = -1 if bits[0] == _SIGN_NEG else 1
    k = sign * int(bits[1 : 1 + _BASELINE_FIELD], 2)
    out = []
    i = 1 + _BASELINE_FIELD
    while i < len(bits):
        dev_sign = -1 if bits[i] == _SIGN_NEG else 1
        i += 1
        run = 0
        while i < len(bits) and bits[i] == "1":
            run += 1
            i += 1
        if i >= len(bits):
            raise ValueError("missing separator")
        i += 1  # consume the 0 separator
        out.append(k + dev_sign * run)
    return np.asarray(out, dtype=np.int64)


def encoded_size_bits(values: np.ndarray, baseline: int | None = None) -> int:
    """Bit cost of the encoding without materializing the string.

    ``1 + _BASELINE_FIELD`` header bits plus ``2 + |v - k|`` per value.
    """
    if values.size == 0:
        raise ValueError("cannot encode an empty fingerprint")
    k = best_baseline(values) if baseline is None else baseline
    deviations = np.abs(values.astype(np.int64) - k)
    return int(1 + _BASELINE_FIELD + 2 * values.size + deviations.sum())
