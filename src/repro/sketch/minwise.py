"""Min-wise independent hashing (Definition C.1 / Lemma C.2).

A ``(eps, s)``-min-wise family guarantees that for any set ``X`` of at most
``s`` elements, each element hashes to the minimum with probability
``(1 ± eps)/|X|``.  Algorithm 7 (Step 7) uses such functions to sample a
near-uniform anti-neighbor.

Substitution (DESIGN.md 3.4): instead of the ``O(log 1/eps)``-wise
independent constructions of [Ind01], we use a seeded 64-bit mixing hash,
which is statistically *stronger* (indistinguishable from full independence
for our set sizes); the descriptor cost charged to the ledger is the
``O(log N * log 1/eps)`` bits of the lemma.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_MASK = (1 << 64) - 1


def _mix(x: int) -> int:
    """SplitMix64 finalizer -- a high-quality 64-bit mixing function."""
    x &= _MASK
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK
    return x ^ (x >> 31)


@dataclass(frozen=True)
class MinwiseHash:
    """One function of the family, identified by a seed.

    ``descriptor_bits(N, eps)`` gives the message width needed to ship the
    function to a cluster (Lemma C.2: ``O(log N * log 1/eps)``).
    """

    seed: int

    def value(self, x: int) -> int:
        """Hash of one element (64-bit)."""
        return _mix(x ^ _mix(self.seed))

    def values(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized hashing of an int array."""
        out = np.empty(len(xs), dtype=np.uint64)
        for i, x in enumerate(xs):
            out[i] = self.value(int(x))
        return out

    def argmin(self, xs) -> int:
        """The element of ``xs`` with smallest hash (ties by value order --
        hash collisions on 64 bits are negligible).
        """
        items = list(xs)
        if not items:
            raise ValueError("argmin of empty set")
        return min(items, key=lambda x: (self.value(int(x)), int(x)))

    @staticmethod
    def descriptor_bits(domain_size: int, eps: float) -> int:
        """Lemma C.2 descriptor size ``O(log N * log 1/eps)``."""
        log_n = max(1.0, math.log2(max(domain_size, 2)))
        log_eps = max(1.0, math.log2(1.0 / max(eps, 1e-9)))
        return int(math.ceil(log_n * log_eps))


def sample_minwise(rng: np.random.Generator) -> MinwiseHash:
    """Draw a uniformly random member of the family."""
    return MinwiseHash(seed=int(rng.integers(0, 2**63 - 1)))
