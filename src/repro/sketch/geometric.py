"""Geometric random variables and their maxima (Section 5.1).

A geometric variable of parameter ``lam`` takes value ``k >= 0`` with
probability ``lam^k - lam^(k+1)`` (failures before the first success).  The
paper's fingerprints are coordinate-wise maxima of such variables; three
facts drive everything:

* Claim 5.1: ``P(max of d < k) = (1 - lam^k)^d`` -- so the maximum encodes
  ``log_{1/lam} d`` and can be *estimated* (Lemma 5.2);
* Lemma 5.3: the maximum is unique with probability ``>= (1-lam)/(1+lam)``
  (``2/3`` at ``lam = 1/2``) regardless of ``d``;
* Lemma 5.4: conditioned on uniqueness, the argmax is uniform.

Both sampling paths are provided: per-element variables (needed when the
*identity* of the argmax matters, e.g. Algorithm 7) and direct sampling of
the maximum from its CDF (statistically identical, ``O(1)`` per trial,
used for pure counting).
"""

from __future__ import annotations

import math

import numpy as np

DEFAULT_LAMBDA = 0.5

#: Sentinel for the maximum over an empty set (merge identity).
EMPTY_MAX = -1


def sample_geometric(
    rng: np.random.Generator, size: int | tuple[int, ...], lam: float = DEFAULT_LAMBDA
) -> np.ndarray:
    """Sample geometric(``lam``) variables on support ``{0, 1, 2, ...}``.

    numpy's ``geometric(p)`` counts trials to first success on ``{1, 2, ...}``
    with success probability ``p``; the paper's parameterization has failure
    probability ``lam``, hence ``p = 1 - lam`` and a shift by one.
    """
    if not 0.0 < lam < 1.0:
        raise ValueError("lam must be in (0, 1)")
    return rng.geometric(1.0 - lam, size=size).astype(np.int64) - 1


def sample_max_of_geometrics(
    rng: np.random.Generator,
    d: int,
    trials: int,
    lam: float = DEFAULT_LAMBDA,
) -> np.ndarray:
    """Directly sample ``trials`` i.i.d. copies of ``max of d`` geometrics.

    Inverts the CDF ``F(k) = (1 - lam^(k+1))^d`` (Claim 5.1): with
    ``U ~ Uniform(0,1)``, ``Y = ceil(log_lam(1 - U^(1/d))) - 1`` clamped to
    ``>= 0``.  Exact in distribution, ``O(trials)`` work independent of
    ``d`` -- the fast path for counting-only fingerprints.
    """
    if d < 0:
        raise ValueError("d must be non-negative")
    if d == 0:
        return np.full(trials, EMPTY_MAX, dtype=np.int64)
    u = rng.random(trials)
    # 1 - u^(1/d) in a numerically careful way: use expm1/log1p
    log_u = np.log(np.clip(u, 1e-300, 1.0))
    tail = -np.expm1(log_u / d)  # 1 - u^(1/d), stays accurate for huge d
    tail = np.clip(tail, 1e-300, 1.0)
    y = np.ceil(np.log(tail) / math.log(lam)).astype(np.int64) - 1
    return np.maximum(y, 0)


def sample_max_of_geometrics_batch(
    rng: np.random.Generator,
    counts: np.ndarray,
    trials: int,
    lam: float = DEFAULT_LAMBDA,
) -> np.ndarray:
    """Sample :func:`sample_max_of_geometrics` for many set sizes at once.

    Parameters
    ----------
    rng:
        Randomness source.  The uniform draws are consumed in exactly the
        order a per-row loop of :func:`sample_max_of_geometrics` would
        consume them (rows with ``counts == 0`` draw nothing), so replacing
        such a loop with one batched call keeps the RNG stream bitwise
        identical -- the invariant the decomposition vectorization relies on.
    counts:
        int array of set sizes ``d``, one per output row.  Must be
        non-negative.
    trials:
        Number of parallel trials ``t`` (columns).

    Returns
    -------
    An ``(len(counts), trials)`` int64 matrix whose row ``i`` is distributed
    as the coordinate-wise maximum of ``counts[i]`` geometric(``lam``)
    fingerprint rows; rows with ``counts[i] == 0`` are all ``EMPTY_MAX``.
    """
    d = np.asarray(counts, dtype=np.int64).reshape(-1)
    if d.size and int(d.min()) < 0:
        raise ValueError("counts must be non-negative")
    out = np.full((d.size, trials), EMPTY_MAX, dtype=np.int64)
    positive = d > 0
    k = int(positive.sum())
    if k == 0 or trials == 0:
        return out
    u = rng.random((k, trials))
    # identical elementwise arithmetic to sample_max_of_geometrics, with the
    # per-row divisor broadcast down the rows
    log_u = np.log(np.clip(u, 1e-300, 1.0))
    tail = -np.expm1(log_u / d[positive, None])
    tail = np.clip(tail, 1e-300, 1.0)
    y = np.ceil(np.log(tail) / math.log(lam)).astype(np.int64) - 1
    out[positive] = np.maximum(y, 0)
    return out


def prob_max_below(k: int, d: int, lam: float = DEFAULT_LAMBDA) -> float:
    """``P(max of d geometrics < k) = (1 - lam^k)^d`` (Claim 5.1)."""
    if d == 0:
        return 1.0
    if k <= 0:
        return 0.0
    return (1.0 - lam**k) ** d


def non_unique_max_bound(lam: float = DEFAULT_LAMBDA) -> float:
    """Lemma 5.3's bound on ``P(maximum is not unique)``:
    ``(1-lam)^2 / (1-lam^2) = (1-lam)/(1+lam)``, i.e. ``1/3`` at
    ``lam = 1/2`` -- independent of ``d``.
    """
    return (1.0 - lam) / (1.0 + lam)


def argmax_with_uniqueness(values: np.ndarray) -> tuple[int, bool]:
    """Index of the maximum and whether it is unique.

    Operates on one trial's per-element variables; ``EMPTY_MAX`` entries are
    ignored (they encode "not participating").
    """
    if values.size == 0:
        return (-1, False)
    best = int(values.max())
    if best == EMPTY_MAX:
        return (-1, False)
    where = np.flatnonzero(values == best)
    return (int(where[0]), len(where) == 1)


def merge_maxima(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coordinate-wise maximum -- the aggregation operator.  Safe on
    redundant paths: ``merge(x, x) = x``, which is exactly why fingerprints
    survive the double-counting hazard of Section 1.1.
    """
    return np.maximum(a, b)
