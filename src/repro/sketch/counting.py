"""Approximate counting from fingerprints (Lemma 5.7).

Every vertex ``v`` holds a predicate ``P_v`` over its neighbors; the goal is
for every ``v`` to learn ``|N(v) ∩ P_v^{-1}(1)|`` within a ``(1 ± xi)``
factor, all in parallel, in ``O(xi^-2)`` rounds.  The machines of ``V(v)``
aggregate coordinate-wise maxima up the support tree using the Lemma 5.6
encoding, so each (pipelined) message is ``O(t + loglog n)`` bits.

Two execution paths (identical in distribution):

* ``shared`` -- materialize per-vertex variables (FingerprintTable) and take
  maxima over the eligible neighbors; required when fingerprints will later
  be merged across vertices (e.g. the union sketches of Lemma 5.8).
* ``direct`` -- sample each vertex's maximum straight from the CDF, ``O(t)``
  per vertex; valid when only the count matters.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.sketch.fingerprint import (
    Fingerprint,
    FingerprintTable,
    direct_count_fingerprint,
)


def _charge_fingerprint_aggregation(
    runtime: ClusterRuntime, trials: int, op: str
) -> None:
    """Charge the cost of one network-wide fingerprint aggregation: a
    pipelined ``O(t + loglog n)``-bit convergecast plus broadcast per vertex,
    all vertices in parallel (Lemma 5.7's ``O(xi^-2)`` rounds).
    """
    bits = 2 * trials + 16  # Lemma 5.6 size; header dominated by deviations
    runtime.wide_message(op, bits)
    runtime.wide_message(op, bits)


def approximate_counts_shared(
    runtime: ClusterRuntime,
    table: FingerprintTable,
    eligible: Mapping[int, Iterable[int]],
    *,
    op: str = "approx_count",
) -> dict[int, float]:
    """Estimate ``|N(v) ∩ P_v^{-1}(1)|`` using shared variables.

    ``eligible[v]`` lists the neighbors satisfying ``P_v`` (the simulation
    evaluates the predicate; in the real system the machine incident to each
    link knows it -- Lemma 5.7's knowledge requirement).
    """
    estimates: dict[int, float] = {}
    for v, neighbors in eligible.items():
        fp = table.set_fingerprint(neighbors)
        estimates[v] = fp.estimate()
    _charge_fingerprint_aggregation(runtime, table.trials, op)
    return estimates


def approximate_counts_direct(
    runtime: ClusterRuntime,
    true_counts: Mapping[int, int],
    trials: int,
    *,
    op: str = "approx_count",
) -> dict[int, float]:
    """Estimate counts via the fast path (fresh variables per vertex).

    Statistically identical to the shared path when no cross-vertex merging
    is needed; ``O(trials)`` work per vertex regardless of degree.
    """
    estimates: dict[int, float] = {}
    for v, d in true_counts.items():
        fp = direct_count_fingerprint(runtime.rng, int(d), trials)
        estimates[v] = fp.estimate()
    _charge_fingerprint_aggregation(runtime, trials, op)
    return estimates


def neighborhood_fingerprints(
    runtime: ClusterRuntime,
    table: FingerprintTable,
    vertices: Iterable[int],
    predicate: Callable[[int, int], bool] | None = None,
    *,
    op: str = "nbhd_fingerprint",
) -> dict[int, Fingerprint]:
    """Compute ``Y^v = max over eligible u in N(v)`` for each requested
    vertex, returning mergeable fingerprints (Lemma 5.8 needs the raw
    vectors, not just estimates).
    """
    graph = runtime.graph
    out: dict[int, Fingerprint] = {}
    for v in vertices:
        if predicate is None:
            nbrs = graph.neighbors(v)
        else:
            nbrs = [u for u in graph.neighbors(v) if predicate(v, u)]
        out[v] = table.set_fingerprint(nbrs)
    _charge_fingerprint_aggregation(runtime, table.trials, op)
    return out


def approximate_degrees(
    runtime: ClusterRuntime, xi: float, *, op: str = "approx_degree"
) -> dict[int, float]:
    """Every vertex estimates its true H-degree within ``(1 ± xi)`` -- the
    primitive CONGEST gets for free and cluster graphs cannot compute
    exactly (Section 1.1).
    """
    graph = runtime.graph
    trials = runtime.params.fingerprint_trials(runtime.n, xi)
    counts = {v: graph.degree(v) for v in range(graph.n_vertices)}
    return approximate_counts_direct(runtime, counts, trials, op=op)
