"""Fingerprinting and pseudo-random tools (Section 5, Appendix C)."""

from repro.sketch.geometric import (
    DEFAULT_LAMBDA,
    EMPTY_MAX,
    argmax_with_uniqueness,
    merge_maxima,
    non_unique_max_bound,
    prob_max_below,
    sample_geometric,
    sample_max_of_geometrics,
    sample_max_of_geometrics_batch,
)
from repro.sketch.fingerprint import (
    Fingerprint,
    FingerprintTable,
    batch_count_estimates,
    batch_estimate,
    batch_estimate_exact,
    direct_count_fingerprint,
    estimate_cardinality,
    failure_probability_bound,
    neighborhood_maxima,
    trials_for,
)
from repro.sketch.encoding import (
    best_baseline,
    decode_maxima,
    encode_maxima,
    encoded_size_bits,
)
from repro.sketch.counting import (
    approximate_counts_direct,
    approximate_counts_shared,
    approximate_degrees,
    neighborhood_fingerprints,
)
from repro.sketch.minwise import MinwiseHash, sample_minwise
from repro.sketch.representative import RepresentativeFamily, RepresentativeSet
from repro.sketch.streaming import (
    StreamingUnionEstimator,
    UnionPlanes,
    estimates_from_counts,
    fused_topk_counts,
    threshold_index,
)

__all__ = [
    "DEFAULT_LAMBDA",
    "EMPTY_MAX",
    "argmax_with_uniqueness",
    "merge_maxima",
    "non_unique_max_bound",
    "prob_max_below",
    "sample_geometric",
    "sample_max_of_geometrics",
    "sample_max_of_geometrics_batch",
    "Fingerprint",
    "FingerprintTable",
    "batch_count_estimates",
    "batch_estimate",
    "batch_estimate_exact",
    "direct_count_fingerprint",
    "neighborhood_maxima",
    "estimate_cardinality",
    "failure_probability_bound",
    "trials_for",
    "best_baseline",
    "decode_maxima",
    "encode_maxima",
    "encoded_size_bits",
    "approximate_counts_direct",
    "approximate_counts_shared",
    "approximate_degrees",
    "neighborhood_fingerprints",
    "MinwiseHash",
    "sample_minwise",
    "RepresentativeFamily",
    "RepresentativeSet",
    "StreamingUnionEstimator",
    "UnionPlanes",
    "estimates_from_counts",
    "fused_topk_counts",
    "threshold_index",
]
