"""Fused streaming union-cardinality estimation (Lemma 5.2 at scale).

The Lemma 5.2 estimator needs only two *integer* statistics of a
fingerprint ``(Y_1, ..., Y_t)``:

    K* = min{k : Z_k >= q}      with  Z_k = |{i : Y_i < k}|,  q = ceil((27/40) t)
    Z  = Z_{K*}

``K*`` equals the ``q``-th order statistic plus one, and both quantities are
exact counts -- they do not depend on the order in which maxima were
accumulated.  Everything in this module exploits that invariance:

* :func:`fused_topk_counts` reads ``(K*, Z)`` off one ``np.partition`` pass,
  counting only the unpartitioned upper tail instead of re-scanning the full
  ``(rows, trials)`` matrix -- the fused top-``k`` that replaces the second
  ``maxima < K*`` sweep of the pre-fusion batched estimator.
* :func:`estimates_from_counts` turns ``(K*, Z)`` into ``d_hat`` in either
  the vectorized ``log1p`` form (bitwise-identical to
  :func:`~repro.sketch.fingerprint.batch_estimate`) or the ``math.log``
  scalar form (bitwise-identical to
  :func:`~repro.sketch.fingerprint.estimate_cardinality`), evaluating the
  scalar form once per *distinct* ``(K*, Z)`` pair instead of once per row.
* :class:`UnionPlanes` answers Lemma 5.8's union queries
  ``d_hat(N(u) ∪ N(v))`` for whole edge arrays without ever materializing
  the ``(edges, trials)`` union matrix: ``max(a_i, b_i) < k`` iff
  ``a_i < k`` and ``b_i < k``, so ``Z_k`` of a union is a popcount of ANDed
  per-vertex threshold bitmasks.  An escalating probe starts each edge at
  its provable lower bound ``K* >= max(K*_u, K*_v)`` and almost always
  terminates in one round.
* :class:`StreamingUnionEstimator` is the accumulation half of the
  contract: per-trial running maxima absorbed block by block
  (``np.maximum.at`` / segment reductions) in ``O(rows * trials)`` memory,
  finalized by a single fused order-statistics pass.

The estimator contract -- which variants agree bit-for-bit, and where the
sanctioned one-ulp divergence lives -- is documented in
``docs/ESTIMATORS.md`` and enforced by ``tests/test_streaming.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketch.geometric import EMPTY_MAX

_THRESHOLD_NUM = 27
_THRESHOLD_DEN = 40


def threshold_index(trials: int) -> int:
    """Lemma 5.2's threshold rank ``q = ceil((27/40) t)``, clamped to
    ``[1, t]`` exactly as the batched estimators clamp it."""
    q = int(math.ceil((_THRESHOLD_NUM / _THRESHOLD_DEN) * trials))
    return min(max(q, 1), trials)


def fused_topk_counts(
    maxima: np.ndarray, q: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Raw order statistics ``(K*, Z)`` of every row in one fused pass.

    ``K*`` is the ``q``-th smallest value plus one (the smallest ``k`` with
    ``Z_k >= q``); ``Z`` is the exact count of entries strictly below
    ``K*``.  One ``np.partition`` yields the pivot, and ``Z`` is recovered
    by counting pivot-exceeding entries in the *upper tail only* (positions
    ``>= q - 1``; the lower partition is ``<= pivot`` by construction), so
    the full-matrix ``maxima < K*`` comparison of the unfused path -- and
    its ``(rows, trials)`` boolean temporary -- disappear.

    Returns int64 arrays, unclamped: callers apply the ``K* >= 1`` /
    ``Z in [0.5, t - 0.5]`` clamps of the Lemma 5.2 boundary handling.
    Rows that are entirely ``EMPTY_MAX`` come out as ``K* = 0, Z = t``.
    """
    if maxima.ndim != 2:
        raise ValueError("expected a (rows, trials) matrix")
    rows, t = maxima.shape
    if t == 0:
        raise ValueError("empty fingerprints have no estimate")
    if q is None:
        q = threshold_index(t)
    part = np.partition(maxima, q - 1, axis=1)
    pivot = part[:, q - 1]
    k_star = pivot.astype(np.int64) + 1
    above = (part[:, q - 1 :] > pivot[:, None]).sum(axis=1)
    z = t - above.astype(np.int64)
    return k_star, z


def estimates_from_counts(
    k_star: np.ndarray,
    z: np.ndarray,
    trials: int,
    *,
    exact: bool = False,
    empty_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Lemma 5.2 estimates ``d_hat = ln(Z/t) / ln(1 - 2^-K*)`` from raw
    integer order statistics.

    The boundary clamps (``K* >= 1``, ``Z`` clipped to ``[0.5, t - 0.5]``)
    are applied here, matching :func:`~repro.sketch.fingerprint\
.estimate_cardinality` exactly.  Two final-math forms:

    * ``exact=False`` -- the vectorized ``log1p``/``exp2`` expression,
      bitwise-identical to :func:`~repro.sketch.fingerprint.batch_estimate`
      (and within one ulp of the scalar estimator);
    * ``exact=True`` -- the scalar ``math.log`` expression of the per-vertex
      estimator, evaluated once per *distinct* ``(K*, Z)`` pair (both are
      small integers, so whole edge arrays share a handful of pairs) and
      scattered back -- bitwise-identical to per-row
      :func:`~repro.sketch.fingerprint.estimate_cardinality` at a fraction
      of the scalar-loop cost.

    ``empty_rows`` marks rows whose underlying set was empty; their
    estimate is forced to exactly ``0.0``.
    """
    t = int(trials)
    if t <= 0:
        raise ValueError("trials must be positive")
    k_eff = np.maximum(k_star.astype(np.int64), 1)
    z_eff = np.clip(z.astype(np.float64), 0.5, t - 0.5)
    if exact:
        pair = k_eff * (t + 1) + np.clip(z.astype(np.int64), 0, t)
        uniq, inverse = np.unique(pair, return_inverse=True)
        uk = uniq // (t + 1)
        uz = np.clip((uniq % (t + 1)).astype(np.float64), 0.5, t - 0.5)
        table = np.fromiter(
            (
                math.log(zi / t) / math.log(1.0 - 2.0 ** (-int(ki)))
                for zi, ki in zip(uz, uk)
            ),
            dtype=np.float64,
            count=uniq.size,
        )
        estimates = table[inverse].reshape(k_eff.shape)
    else:
        estimates = np.log(z_eff / t) / np.log1p(
            -np.exp2(-k_eff.astype(np.float64))
        )
    if empty_rows is not None:
        estimates[empty_rows] = 0.0
    return estimates


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(rows, words)`` uint64 matrix."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    # numpy < 2.0 fallback: 256-entry lookup over the byte view
    lut = _popcount_rows._lut
    if lut is None:
        lut = np.array(
            [bin(i).count("1") for i in range(256)], dtype=np.uint8
        )
        _popcount_rows._lut = lut
    as_bytes = words.view(np.uint8).reshape(words.shape[0], -1)
    return lut[as_bytes].sum(axis=1, dtype=np.int64)


_popcount_rows._lut = None


class UnionPlanes:
    """Packed threshold bit-planes answering pairwise union-cardinality
    queries without materializing union fingerprints (Lemma 5.8 fused).

    Built from a ``(rows, trials)`` matrix of per-row maxima (typically the
    neighborhood fingerprints of every vertex).  Plane ``k`` stores, packed
    64 trials per word, the bits ``Y^r_i < k``; since
    ``max(a, b) < k  iff  a < k and b < k``, the union's ``Z_k`` is the
    popcount of two ANDed plane rows.  ``K*`` of the union is found by an
    escalating probe from the per-edge lower bound
    ``max(K*_left, K*_right)`` (unions only shrink ``Z_k``, so ``K*`` never
    decreases under merging) -- one popcount round for almost every edge,
    bounded by the global value range.

    Memory: ``O(rows * planes * trials / 64)`` words for the planes plus
    ``O(chunk)`` probe temporaries -- nothing scales with the number of
    queried pairs.  All outputs are bitwise-identical to running
    :func:`~repro.sketch.fingerprint.batch_estimate` (or the ``exact``
    variant) on the materialized union matrix.
    """

    def __init__(self, rows: np.ndarray, *, empty_value: int = EMPTY_MAX):
        if rows.ndim != 2:
            raise ValueError("expected a (rows, trials) matrix")
        n, t = rows.shape
        if t == 0:
            raise ValueError("empty fingerprints have no estimate")
        self.trials = int(t)
        self.q = threshold_index(t)
        self.row_k, self.row_z = fused_topk_counts(rows, self.q)
        self.empty_rows = np.all(rows == empty_value, axis=1)
        # plane k covers threshold k_lo + k; K* of any union lies in
        # [min row K*, global max value + 1] and Z at the top plane is t,
        # so the probe always terminates inside the plane range.
        self._k_lo = int(self.row_k.min()) if n else 0
        k_hi = (int(rows.max()) + 1) if n else 0
        self._n_planes = max(1, k_hi - self._k_lo + 1)
        self._words = (t + 63) // 64
        planes = np.zeros((n, self._n_planes, self._words * 8), dtype=np.uint8)
        packed_width = (t + 7) // 8
        for k in range(self._n_planes):
            planes[:, k, :packed_width] = np.packbits(
                rows < (self._k_lo + k), axis=1
            )
        self._planes = planes.view(np.uint64).reshape(
            n, self._n_planes, self._words
        )

    def row_estimates(self, *, exact: bool = False) -> np.ndarray:
        """Lemma 5.2 estimates of the rows themselves (no union), from the
        order statistics already computed at construction -- bitwise equal
        to ``batch_estimate(rows)`` (``batch_estimate_exact`` when
        ``exact``)."""
        return estimates_from_counts(
            self.row_k,
            self.row_z,
            self.trials,
            exact=exact,
            empty_rows=self.empty_rows,
        )

    def union_order_statistics(
        self, left: np.ndarray, right: np.ndarray, *, chunk_rows: int = 1 << 18
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw ``(K*, Z)`` of ``max(rows[left], rows[right])`` per pair.

        Identical integers to :func:`fused_topk_counts` on the materialized
        union matrix; pairs are processed in chunks of ``chunk_rows`` so the
        working set stays ``O(chunk * trials / 64)`` words.
        """
        left = np.asarray(left, dtype=np.int64).reshape(-1)
        right = np.asarray(right, dtype=np.int64).reshape(-1)
        if left.shape != right.shape:
            raise ValueError("left/right pair arrays must align")
        m = left.size
        k_star = np.empty(m, dtype=np.int64)
        z = np.empty(m, dtype=np.int64)
        planes, q = self._planes, self.q
        for start in range(0, m, chunk_rows):
            cl = left[start : start + chunk_rows]
            cr = right[start : start + chunk_rows]
            kcur = np.maximum(self.row_k[cl], self.row_k[cr]) - self._k_lo
            todo = np.arange(cl.size)
            ck = np.empty(cl.size, dtype=np.int64)
            cz = np.empty(cl.size, dtype=np.int64)
            while todo.size:
                sel_k = kcur[todo]
                counts = _popcount_rows(
                    planes[cl[todo], sel_k] & planes[cr[todo], sel_k]
                )
                done = counts >= q
                hit = todo[done]
                ck[hit] = sel_k[done] + self._k_lo
                cz[hit] = counts[done]
                todo = todo[~done]
                kcur[todo] += 1
                if todo.size and int(kcur[todo].max()) >= self._n_planes:
                    raise AssertionError(
                        "union probe escaped the plane range"
                    )  # unreachable: the top plane counts every trial
            k_star[start : start + cl.size] = ck
            z[start : start + cl.size] = cz
        return k_star, z

    def union_estimates(
        self,
        left: np.ndarray,
        right: np.ndarray,
        *,
        exact: bool = False,
        chunk_rows: int = 1 << 18,
    ) -> np.ndarray:
        """Cardinality estimates of ``N(left) ∪ N(right)`` per pair --
        bitwise equal to ``batch_estimate(np.maximum(rows[left],
        rows[right]))`` without the ``(pairs, trials)`` intermediate."""
        k_star, z = self.union_order_statistics(
            left, right, chunk_rows=chunk_rows
        )
        left = np.asarray(left, dtype=np.int64).reshape(-1)
        right = np.asarray(right, dtype=np.int64).reshape(-1)
        empty = self.empty_rows[left] & self.empty_rows[right]
        return estimates_from_counts(
            k_star, z, self.trials, exact=exact, empty_rows=empty
        )


class StreamingUnionEstimator:
    """Per-row union fingerprints accumulated block by block, estimated in
    one fused pass -- the streaming half of the estimator contract.

    The state is the ``(n_rows, trials)`` matrix of running coordinate-wise
    maxima (initialized to ``EMPTY_MAX``, the merge identity).  Because max
    is idempotent, commutative, and associative, *any* block partition and
    absorption order yields the same final state, and because the Lemma 5.2
    statistics are exact integer counts, the resulting estimates are
    bitwise-identical to a single batched pass over the fully materialized
    matrix (``tests/test_streaming.py`` pins this property).

    Peak memory is ``O(n_rows * trials)`` regardless of how many elements
    stream through -- absorbing the neighbor blocks of a graph never builds
    the ``(edges, trials)`` gather the pre-fusion union path materialized.
    """

    def __init__(
        self,
        n_rows: int,
        trials: int,
        *,
        dtype: np.dtype | type = np.int16,
        empty_value: int = EMPTY_MAX,
    ):
        self.trials = int(trials)
        self.empty_value = int(empty_value)
        self._state = np.full((n_rows, trials), empty_value, dtype=dtype)

    @classmethod
    def from_csr_neighborhoods(
        cls, csr, rows: np.ndarray, *, empty_value: int = EMPTY_MAX
    ) -> "StreamingUnionEstimator":
        """Seed the state with every vertex's neighborhood fingerprint in
        one segmented reduction over the CSR layout
        (:func:`~repro.graphcore.neighborhood_max_rows` -- itself a
        flat-chunked streaming pass, so neighbor rows are never gathered
        whole)."""
        from repro.graphcore import neighborhood_max_rows

        est = cls(0, rows.shape[1], dtype=rows.dtype, empty_value=empty_value)
        est._state = neighborhood_max_rows(csr, rows, empty_value=empty_value)
        return est

    @property
    def state(self) -> np.ndarray:
        """The ``(n_rows, trials)`` running-maxima matrix (live view)."""
        return self._state

    def absorb(self, row_ids: np.ndarray, maxima: np.ndarray) -> None:
        """Merge a block of fingerprints into the running maxima.

        ``maxima[j]`` is merged into row ``row_ids[j]``; repeated ids within
        one block are handled correctly (``np.maximum.at`` is an unbuffered
        scatter), so a neighbor stream can be absorbed in arbitrary
        segments.
        """
        ids = np.asarray(row_ids, dtype=np.int64).reshape(-1)
        if ids.size == 0:
            return
        np.maximum.at(self._state, ids, maxima)

    def absorb_block(self, start: int, maxima: np.ndarray) -> None:
        """Merge a contiguous block (rows ``start : start + len(maxima)``)
        with a plain elementwise maximum -- the fast path when the caller
        streams disjoint row ranges."""
        stop = start + maxima.shape[0]
        np.maximum(
            self._state[start:stop], maxima, out=self._state[start:stop]
        )

    def order_statistics(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-row ``(K*, Z)`` of the current state (one fused pass)."""
        return fused_topk_counts(self._state, threshold_index(self.trials))

    def estimates(self, *, exact: bool = False) -> np.ndarray:
        """Lemma 5.2 estimates of the current state -- bitwise equal to
        ``batch_estimate(state)`` (``batch_estimate_exact`` when
        ``exact``), rows still at the merge identity estimating 0."""
        k_star, z = self.order_statistics()
        empty = np.all(self._state == self.empty_value, axis=1)
        return estimates_from_counts(
            k_star, z, self.trials, exact=exact, empty_rows=empty
        )

    def union_planes(self) -> UnionPlanes:
        """Freeze the current state into a :class:`UnionPlanes` index for
        pairwise union queries (the Lemma 5.8 buddy step)."""
        return UnionPlanes(self._state, empty_value=self.empty_value)
