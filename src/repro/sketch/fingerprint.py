"""Fingerprints: vectors of maxima with the Lemma 5.2 cardinality estimator.

A *fingerprint* of a set ``S`` is the vector ``(Y_1, ..., Y_t)`` where
``Y_i = max_{u in S} X_{u,i}`` over i.i.d. geometric variables.  Because the
aggregation operator is max, fingerprints are immune to redundant paths --
the property that makes them computable on cluster graphs where plain sums
double-count (Section 1.1).

``estimate_cardinality`` implements the estimator of Lemma 5.2 verbatim:

    Z_k  = |{i : Y_i < k}|
    K*   = min{k : Z_k >= (27/40) t}
    d_hat = ln(Z_{K*} / t) / ln(1 - 2^{-K*})

with the guarantee ``|d - d_hat| <= xi d`` w.p. ``>= 1 - 6 exp(-xi^2 t/200)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sketch.encoding import encoded_size_bits
from repro.sketch.geometric import (
    DEFAULT_LAMBDA,
    EMPTY_MAX,
    merge_maxima,
    sample_geometric,
    sample_max_of_geometrics,
    sample_max_of_geometrics_batch,
)
from repro.sketch.streaming import (
    estimates_from_counts,
    fused_topk_counts,
    threshold_index,
)


def estimate_cardinality(maxima: np.ndarray) -> float:
    """Estimate ``d`` from ``t`` maxima of ``d`` geometric(1/2) variables.

    Implements Lemma 5.2's ``d_hat``.  Degenerate inputs are handled the way
    a distributed implementation would: an all-``EMPTY_MAX`` fingerprint
    means the set was empty (return 0); at the boundary ``Z = t`` we clamp to
    ``t - 1/2`` (the lemma's regime guarantees ``Z_{K*} < t`` w.h.p., so the
    clamp only fires outside its guarantee).  ``K*`` is clamped to ``>= 1``
    (reachable only when over ``27/40`` of the coordinates are ``EMPTY_MAX``
    yet some are not -- impossible for real fingerprints, whose rows are
    all-empty or all-valid), keeping every estimator variant total and
    aligned on such synthetic input (docs/ESTIMATORS.md).
    """
    t = int(maxima.size)
    if t == 0:
        raise ValueError("empty fingerprint has no estimate")
    if np.all(maxima == EMPTY_MAX):
        return 0.0
    # for integer counts, z >= (27/40) t  iff  z >= ceil((27/40) t) = q
    threshold = threshold_index(t)
    sorted_maxima = np.sort(maxima)
    # Z_k counts maxima strictly below k; K* is the smallest k whose count
    # reaches the 27/40 threshold.  The candidate k values are (max value)+1.
    k_star = None
    z_kstar = None
    for k in range(0, int(sorted_maxima[-1]) + 2):
        z = int(np.searchsorted(sorted_maxima, k, side="left"))
        if z >= threshold:
            k_star = k
            z_kstar = z
            break
    if k_star is None:  # unreachable: k = max+1 has Z = t
        raise AssertionError("threshold never reached")
    z_eff = min(float(z_kstar), t - 0.5)
    z_eff = max(z_eff, 0.5)
    k_star = max(k_star, 1)
    return math.log(z_eff / t) / math.log(1.0 - 2.0 ** (-k_star))


def _batched_estimates(maxima: np.ndarray, *, exact: bool) -> np.ndarray:
    """Shared body of the batched Lemma 5.2 estimators: one fused
    order-statistics pass (:func:`~repro.sketch.streaming.fused_topk_counts`)
    followed by the requested final-math form
    (:func:`~repro.sketch.streaming.estimates_from_counts`)."""
    if maxima.ndim != 2:
        raise ValueError("expected a (rows, trials) matrix")
    rows, t = maxima.shape
    if t == 0:
        raise ValueError("empty fingerprints have no estimate")
    empty_rows = np.all(maxima == EMPTY_MAX, axis=1)
    k_star, z = fused_topk_counts(maxima, threshold_index(t))
    return estimates_from_counts(
        k_star, z, t, exact=exact, empty_rows=empty_rows
    )


def batch_estimate(maxima: np.ndarray) -> np.ndarray:
    """Vectorized Lemma 5.2 estimator over a ``(rows, t)`` matrix of maxima.

    Agrees with :func:`estimate_cardinality` per row up to one ulp (the
    fully vectorized ``log1p``/``exp2`` final step can round differently in
    the last bit); rows that are entirely ``EMPTY_MAX`` estimate 0.  Use
    :func:`batch_estimate_exact` when a per-vertex loop is being replaced
    and bitwise identity matters.
    """
    return _batched_estimates(maxima, exact=False)


def batch_estimate_exact(maxima: np.ndarray) -> np.ndarray:
    """Bitwise-exact batched Lemma 5.2 estimator.

    The order statistics (integer, exact) are vectorized; the two ``log``
    calls go through :mod:`math` -- evaluated once per *distinct* ``(K*, Z)``
    pair rather than once per row (``K*`` and ``Z`` are small integers, so
    large batches share a handful of pairs) -- so every row reproduces
    :func:`estimate_cardinality` to the last bit: the contract the
    decomposition's pinned-seed bitwise tests rely on.
    """
    return _batched_estimates(maxima, exact=True)


def failure_probability_bound(xi: float, t: int) -> float:
    """Lemma 5.2's failure bound ``6 exp(-xi^2 t / 200)``."""
    return 6.0 * math.exp(-(xi * xi) * t / 200.0)


def trials_for(xi: float, failure: float) -> int:
    """Trials needed so the Lemma 5.2 bound is at most ``failure``."""
    return max(1, int(math.ceil(200.0 / (xi * xi) * math.log(6.0 / failure))))


@dataclass
class Fingerprint:
    """One aggregatable fingerprint (the ``(Y_i)`` vector).

    ``merge`` is coordinate-wise max -- idempotent, commutative, associative,
    with the all-``EMPTY_MAX`` fingerprint as identity.
    """

    maxima: np.ndarray

    @classmethod
    def empty(cls, trials: int) -> "Fingerprint":
        """The merge identity (fingerprint of the empty set)."""
        return cls(np.full(trials, EMPTY_MAX, dtype=np.int64))

    def merge(self, other: "Fingerprint") -> "Fingerprint":
        """Aggregate with another fingerprint (max per coordinate)."""
        return Fingerprint(merge_maxima(self.maxima, other.maxima))

    def estimate(self) -> float:
        """Cardinality estimate (Lemma 5.2)."""
        return estimate_cardinality(self.maxima)

    def encoded_bits(self) -> int:
        """Message width under the Lemma 5.6 encoding."""
        return encoded_size_bits(np.maximum(self.maxima, 0))

    @property
    def trials(self) -> int:
        """Number of parallel trials ``t``."""
        return int(self.maxima.size)


class FingerprintTable:
    """Shared per-vertex geometric variables ``X_{v,i}`` for a vertex set.

    Used when *correlations* matter: the union fingerprint of
    ``N(u) ∪ N(v)`` (Lemma 5.8's buddy predicate) must reuse the same
    underlying variables, so vertices draw their ``X`` rows once and
    neighborhood fingerprints are maxima over rows.

    ``rows`` is an ``(n_vertices, trials)`` int16 matrix; geometric(1/2)
    values exceed 32767 with probability ``< 2^-32767`` -- irrelevant.
    """

    def __init__(
        self,
        n_vertices: int,
        trials: int,
        rng: np.random.Generator,
        lam: float = DEFAULT_LAMBDA,
    ):
        self.trials = trials
        self.lam = lam
        self.rows = sample_geometric(rng, (n_vertices, trials), lam).astype(np.int16)

    def vertex_fingerprint(self, v: int) -> Fingerprint:
        """Fingerprint of the singleton ``{v}`` (its own variables)."""
        return Fingerprint(self.rows[v].astype(np.int64))

    def set_fingerprint(self, vertices) -> Fingerprint:
        """Fingerprint of an arbitrary vertex set (max over their rows)."""
        idx = np.fromiter(vertices, dtype=np.int64)
        if idx.size == 0:
            return Fingerprint.empty(self.trials)
        return Fingerprint(self.rows[idx].max(axis=0).astype(np.int64))

    def argmax_per_trial(self, vertices) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """For each trial: the max value, the first vertex attaining it, and
        whether it is attained uniquely.  Drives Algorithm 7 (Step 4).
        """
        idx = np.fromiter(vertices, dtype=np.int64)
        if idx.size == 0:
            empty = np.full(self.trials, EMPTY_MAX, dtype=np.int64)
            return empty, np.full(self.trials, -1, dtype=np.int64), np.zeros(
                self.trials, dtype=bool
            )
        block = self.rows[idx].astype(np.int64)  # (|S|, t)
        values = block.max(axis=0)
        attained = block == values[None, :]
        counts = attained.sum(axis=0)
        first_pos = attained.argmax(axis=0)
        argmax_vertices = idx[first_pos]
        return values, argmax_vertices, counts == 1


def neighborhood_maxima(
    rows: np.ndarray, edges_src: np.ndarray, edges_dst: np.ndarray, n_vertices: int
) -> np.ndarray:
    """All neighborhood fingerprints at once.

    ``rows`` is the ``(n, t)`` per-vertex variable matrix; ``edges_src/dst``
    list every directed edge.  Returns ``Y`` with
    ``Y[v] = max over u in N(v) of rows[u]`` (``EMPTY_MAX`` where ``N(v)`` is
    empty) -- one scatter-max pass instead of a per-vertex loop.
    """
    t = rows.shape[1]
    out = np.full((n_vertices, t), EMPTY_MAX, dtype=rows.dtype)
    np.maximum.at(out, edges_dst, rows[edges_src])
    return out


def direct_count_fingerprint(
    rng: np.random.Generator, d: int, trials: int, lam: float = DEFAULT_LAMBDA
) -> Fingerprint:
    """Fast-path fingerprint of an anonymous ``d``-element set, sampled
    straight from the max distribution (identical in law; ``O(trials)``).
    """
    return Fingerprint(sample_max_of_geometrics(rng, d, trials, lam))


def batch_count_estimates(
    rng: np.random.Generator,
    counts: np.ndarray,
    trials: int,
    lam: float = DEFAULT_LAMBDA,
) -> np.ndarray:
    """Lemma 5.2 estimates for many anonymous set sizes in two matrix ops.

    The batched replacement for a per-vertex loop of
    ``direct_count_fingerprint(rng, d, trials).estimate()``: one
    :func:`~repro.sketch.geometric.sample_max_of_geometrics_batch` draw (RNG
    stream bitwise identical to the loop, rows with ``counts == 0`` drawing
    nothing) followed by one :func:`batch_estimate_exact` pass (bitwise
    identical to per-row :func:`estimate_cardinality`).

    Returns a float64 array aligned with ``counts``; zero-count rows
    estimate exactly 0.
    """
    maxima = sample_max_of_geometrics_batch(rng, counts, trials, lam)
    return batch_estimate_exact(maxima)
