"""Representative color-set families (Definition C.5 / Lemma C.6).

MultiColorTrial needs each vertex to try up to ``Theta(log n)`` colors while
describing them in ``O(log n)`` bits.  The device is a globally known family
of ``s``-sized subsets of the color universe such that a random member
intersects every large-enough target set proportionally; a vertex sends only
the index of its chosen member.

Substitution (DESIGN.md 3.4): Lemma C.6 proves such families *exist* via the
probabilistic method; we realize a member directly as a seeded pseudorandom
subset (which satisfies Definition C.5 w.h.p. -- the same argument), and
charge the ``O(log n)``-bit index for shipping it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sketch.minwise import _mix


@dataclass(frozen=True)
class RepresentativeSet:
    """One pseudorandom member ``S_i`` of the family, lazily materialized
    over an arbitrary ordered universe.
    """

    index: int
    size: int

    def materialize(self, universe: list[int]) -> list[int]:
        """The concrete subset of ``universe`` this index denotes.

        Selection is by seeded hash ranking: deterministic given
        ``(index, universe)``, uniform-looking, and requiring only the
        ``O(log n)``-bit ``index`` to communicate.
        """
        if not universe:
            return []
        k = min(self.size, len(universe))
        ranked = sorted(universe, key=lambda c: _mix(c * 0x9E3779B97F4A7C15 ^ self.index))
        return ranked[:k]


@dataclass(frozen=True)
class RepresentativeFamily:
    """A family of pseudorandom ``set_size``-subsets; Def. C.5 parameters
    ``(alpha, delta, nu)`` are met w.h.p. by random subsets (Lemma C.6's
    probabilistic argument), which tests check empirically.
    """

    set_size: int
    family_size: int

    def sample(self, rng: np.random.Generator) -> RepresentativeSet:
        """Uniform member of the family; costs ``O(log family_size)`` bits
        to announce.
        """
        return RepresentativeSet(
            index=int(rng.integers(0, self.family_size)), size=self.set_size
        )

    @staticmethod
    def for_multicolor_trial(gamma: float, n: int) -> "RepresentativeFamily":
        """The family Algorithm 16 uses: sets of size
        ``Theta(gamma^-1 log n)`` from a polynomial-size family.
        """
        import math

        log_n = max(2.0, math.log2(max(n, 2)))
        size = max(4, int(math.ceil(2.0 * log_n / max(gamma, 1e-6))))
        return RepresentativeFamily(set_size=size, family_size=max(n * n, 1 << 16))
