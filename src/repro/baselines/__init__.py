"""Comparator algorithms for Experiment E13 and the tests."""

from repro.baselines.greedy import greedy_color_count, greedy_coloring
from repro.baselines.luby import BaselineResult, luby_coloring
from repro.baselines.palette_sparsification import palette_sparsification_coloring
from repro.baselines.local_gather import local_gather_coloring

__all__ = [
    "BaselineResult",
    "greedy_color_count",
    "greedy_coloring",
    "luby_coloring",
    "palette_sparsification_coloring",
    "local_gather_coloring",
]
