"""Sequential greedy baseline.

The centralized floor: visits vertices in order and assigns the smallest
free color.  Always proper and total with ``Δ+1`` colors; ``n`` rounds by
construction.  Benchmarks use it for color-count and runtime floors, not as
a distributed competitor.
"""

from __future__ import annotations

import numpy as np

from repro.coloring.types import UNCOLORED


def greedy_coloring(graph, order: list[int] | None = None) -> np.ndarray:
    """Greedy (Δ+1)-coloring in the given (default: natural) vertex order."""
    n = graph.n_vertices
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    if order is None:
        order = list(range(n))
    for v in order:
        used = set(int(c) for c in colors[graph.neighbor_array(v)] if c != UNCOLORED)
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def greedy_color_count(graph, order: list[int] | None = None) -> int:
    """Number of distinct colors greedy uses (≤ Δ+1)."""
    colors = greedy_coloring(graph, order)
    return int(colors.max()) + 1
