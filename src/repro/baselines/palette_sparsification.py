"""Palette-sparsification baseline in the style of [FGH+24].

The prior state of the art for coloring cluster graphs: a Distributed
Palette Sparsification Theorem lets every vertex sample ``O(log^2 n)``
colors up front and find a proper coloring inside the sampled lists, in
``O(log^2 n)`` rounds with ``O(log n)``-bit messages (to ``O(log^4 n)``
neighbors per round).  [FGH+24] also proves algorithms of this type cannot
beat ``Ω(log n / loglog n)`` rounds -- the barrier Theorem 1.2's
aggregation-based approach bypasses.

Shape reproduced here: sampled lists of ``list_coeff * log^2 n`` colors,
random trials restricted to the list (list membership is local, so no
palette bitmaps cross links; each round costs ``O(1)`` H-rounds of
``O(log n)``-bit messages).  Vertices whose list is exhausted fall back and
are counted -- the theorem says w.h.p. none do.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.baselines.luby import BaselineResult
from repro.coloring.try_color import greedy_finish, try_color_round
from repro.coloring.types import PartialColoring, UNCOLORED
from repro.params import AlgorithmParameters, scaled


def sparsified_lists(
    rng: np.random.Generator, n_vertices: int, num_colors: int, list_size: int
) -> list[np.ndarray]:
    """Sample each vertex's ``O(log^2 n)`` color list (the theorem's only
    random object)."""
    lists = []
    size = min(list_size, num_colors)
    for _ in range(n_vertices):
        lists.append(rng.choice(num_colors, size=size, replace=False))
    return lists


def palette_sparsification_coloring(
    graph,
    *,
    params: AlgorithmParameters | None = None,
    seed: int = 0,
    list_coeff: float = 4.0,
    max_rounds: int | None = None,
) -> BaselineResult:
    """Run the [FGH+24]-shape baseline to completion."""
    params = params or scaled()
    rng = np.random.default_rng(seed)
    runtime = ClusterRuntime(graph=graph, params=params, rng=rng)
    num_colors = graph.max_degree + 1
    coloring = PartialColoring.empty(graph.n_vertices, num_colors)

    log_n = max(2.0, np.log2(max(runtime.n, 4)))
    list_size = max(8, int(np.ceil(list_coeff * log_n * log_n)))
    lists = sparsified_lists(rng, graph.n_vertices, num_colors, list_size)
    runtime.h_rounds("ps_list_announce", count=2, bits=runtime.id_bits)

    if max_rounds is None:
        max_rounds = int(np.ceil(log_n * log_n)) + 16

    def sampler(v: int) -> int | None:
        # sample within the list, skipping colors known-taken by neighbors
        lst = lists[v]
        ncols = coloring.colors[graph.neighbor_array(v)]
        used = set(int(c) for c in ncols if c != UNCOLORED)
        live = [int(c) for c in lst if int(c) not in used]
        if not live:
            return None
        return live[int(rng.integers(0, len(live)))]

    remaining = list(range(graph.n_vertices))
    for _ in range(max_rounds):
        if not remaining:
            break
        try_color_round(runtime, coloring, remaining, sampler, op="ps_trial")
        remaining = [v for v in remaining if not coloring.is_colored(v)]
    fallback = len(remaining)
    if remaining:
        greedy_finish(runtime, coloring, remaining, op="ps_greedy")
    from repro.verify.checker import is_proper

    return BaselineResult(
        name="palette_sparsification",
        colors=coloring.colors,
        rounds_h=runtime.ledger.rounds_h,
        rounds_g=runtime.ledger.rounds_g,
        total_message_bits=runtime.ledger.total_message_bits,
        proper=is_proper(graph, coloring.colors),
        fallback_vertices=fallback,
    )
