"""LOCAL-model information-gathering baseline.

In LOCAL, a vertex can collect its entire neighborhood's state each round
for free; the natural baseline is priority greedy: every round, vertices
that are local minima (by one-shot random priority) among uncolored
neighbors pick their smallest free color.  Rounds are ``O(log n)`` w.h.p.
on bounded-degree graphs.

On a cluster graph the same algorithm must ship palette bitmaps, charged
pipelined -- making visible, in Experiment E13, the gap between "free
locality" and ``O(log n)``-bit reality that motivates the paper.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.baselines.luby import BaselineResult
from repro.coloring.types import PartialColoring, UNCOLORED
from repro.params import AlgorithmParameters, scaled


def local_gather_coloring(
    graph,
    *,
    params: AlgorithmParameters | None = None,
    seed: int = 0,
    charge_palettes: bool = True,
    max_rounds: int | None = None,
) -> BaselineResult:
    """Random-priority local-minima greedy, to completion."""
    params = params or scaled()
    rng = np.random.default_rng(seed)
    runtime = ClusterRuntime(graph=graph, params=params, rng=rng)
    num_colors = graph.max_degree + 1
    coloring = PartialColoring.empty(graph.n_vertices, num_colors)
    priority = rng.permutation(graph.n_vertices)
    if max_rounds is None:
        max_rounds = graph.n_vertices + 1

    pending = set(range(graph.n_vertices))
    rounds = 0
    while pending and rounds < max_rounds:
        rounds += 1
        chosen: list[tuple[int, int]] = []
        for v in pending:
            if any(
                u in pending and priority[u] < priority[v]
                for u in graph.neighbors(v)
            ):
                continue
            used = set(
                int(c)
                for c in coloring.neighbor_colors(graph, v)
                if c != UNCOLORED
            )
            free = next((c for c in range(num_colors) if c not in used), None)
            if free is not None:
                chosen.append((v, free))
        for v, c in chosen:
            coloring.assign(v, c)
            pending.discard(v)
        if charge_palettes:
            runtime.wide_message("local_gather_palette", num_colors)
        runtime.h_rounds("local_gather", count=1, bits=runtime.color_bits)
    from repro.verify.checker import is_proper

    return BaselineResult(
        name="local_gather",
        colors=coloring.colors,
        rounds_h=runtime.ledger.rounds_h,
        rounds_g=runtime.ledger.rounds_g,
        total_message_bits=runtime.ledger.total_message_bits,
        proper=is_proper(graph, coloring.colors),
    )
