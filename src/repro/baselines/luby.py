"""Johansson/Luby-style random color trials -- the classic ``O(log n)``
baseline ([Joh99, Lub86], the complexity the Ω(log n / loglog n) lower
bound of [FGH+24] nearly matches for palette-limited algorithms).

Each round, every uncolored vertex tries a uniform color from its current
palette; conflicts resolve by smaller-ID priority.  On a *cluster graph*
the palette is not free information: each round must move a ``Δ+1``-bit
palette bitmap through the support trees, charged pipelined.  The
``congest_free_palettes`` flag removes that charge, modeling classic
CONGEST where ``H = G`` and palettes are maintained locally -- the two
variants bracket the baseline fairly in Experiment E13.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.try_color import greedy_finish, palette_sampler, try_color_round
from repro.coloring.types import PartialColoring
from repro.params import AlgorithmParameters, scaled


@dataclass
class BaselineResult:
    """Outcome of one baseline run (mirrors the pipeline's headline
    counters so Experiment E13 can tabulate them side by side)."""

    name: str
    colors: np.ndarray
    rounds_h: int
    rounds_g: int
    total_message_bits: int
    proper: bool
    fallback_vertices: int = 0


def luby_coloring(
    graph,
    *,
    params: AlgorithmParameters | None = None,
    seed: int = 0,
    congest_free_palettes: bool = False,
    max_rounds: int | None = None,
) -> BaselineResult:
    """Run the random-trials baseline to completion."""
    params = params or scaled()
    rng = np.random.default_rng(seed)
    runtime = ClusterRuntime(graph=graph, params=params, rng=rng)
    coloring = PartialColoring.empty(graph.n_vertices, graph.max_degree + 1)
    if max_rounds is None:
        max_rounds = 8 * int(np.ceil(np.log2(max(runtime.n, 4)))) + 16
    sampler = palette_sampler(runtime, coloring)
    remaining = list(range(graph.n_vertices))
    for _ in range(max_rounds):
        if not remaining:
            break
        if not congest_free_palettes:
            runtime.wide_message("luby_palette", coloring.num_colors)
        try_color_round(runtime, coloring, remaining, sampler, op="luby")
        remaining = [v for v in remaining if not coloring.is_colored(v)]
    fallback = len(remaining)
    if remaining:
        greedy_finish(runtime, coloring, remaining, op="luby_greedy")
    from repro.verify.checker import is_proper

    return BaselineResult(
        name="luby_congest" if congest_free_palettes else "luby_cluster",
        colors=coloring.colors,
        rounds_h=runtime.ledger.rounds_h,
        rounds_g=runtime.ledger.rounds_g,
        total_message_bits=runtime.ledger.total_message_bits,
        proper=is_proper(graph, coloring.colors),
        fallback_vertices=fallback,
    )
