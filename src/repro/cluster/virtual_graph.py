"""Virtual graphs (Appendix A): clusters that may overlap.

A virtual graph maps every H-vertex to a *support* -- a connected set of
machines -- with supports allowed to intersect.  Everything in the paper
translates to virtual graphs with an extra factor equal to the *edge
congestion* ``c`` (number of support trees sharing a link); dilation ``d``
keeps its meaning.

The flagship instance is **distance-2 coloring** (Corollary 1.3): on a
CONGEST network ``G``, vertex ``v``'s support is its closed neighborhood
``N_G[v]``; two vertices conflict iff they are within distance 2.  With the
natural star support trees the embedding has congestion 2 and dilation 2,
and Theorem 1.2 yields a ``Delta^2 + 1``-coloring of ``G^2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graphcore.csr import CSRAdjacency
from repro.network.commgraph import CommGraph


@dataclass
class VirtualGraph:
    """A conflict graph whose vertices are (possibly overlapping) supports.

    Exposes the same read interface as
    :class:`repro.cluster.cluster_graph.ClusterGraph` so the coloring
    pipeline can run on either; the extra :attr:`congestion` multiplies round
    costs in the ledger.
    """

    comm: CommGraph
    supports: list[list[int]]
    adj: list[list[int]]
    congestion: int
    dilation: int
    _neighbor_sets: list[frozenset[int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self._neighbor_sets:
            self._neighbor_sets = [frozenset(a) for a in self.adj]
        # CSR backbone for the batched kernels; rebuilt on replace/unpickle
        # rather than lazily cached (see ClusterGraph.csr).
        self.csr = CSRAdjacency.from_adj_lists(self.adj)

    # -- ClusterGraph-compatible interface ------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of virtual nodes."""
        return len(self.supports)

    @property
    def n_machines(self) -> int:
        """Number of machines of ``G`` (the ``n`` of w.h.p. bounds)."""
        return self.comm.n

    def neighbors(self, v: int) -> list[int]:
        """Conflict-graph neighbors of ``v``."""
        return self.adj[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        """Conflict-graph neighbors of ``v`` as a frozenset."""
        return self._neighbor_sets[v]

    def degree(self, v: int) -> int:
        """Degree of ``v`` in the conflict graph."""
        return len(self.adj[v])

    @property
    def max_degree(self) -> int:
        """Maximum conflict-graph degree."""
        return max((len(a) for a in self.adj), default=0)

    def are_adjacent(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` conflict."""
        return v in self._neighbor_sets[u]

    def anti_neighbors_within(self, v: int, vertex_set) -> list[int]:
        """Non-neighbors of ``v`` within ``vertex_set``."""
        nbrs = self._neighbor_sets[v]
        return [u for u in vertex_set if u != v and u not in nbrs]

    def cluster_size(self, v: int) -> int:
        """Support size of ``v``."""
        return len(self.supports[v])

    def iter_h_edges(self):
        """All conflict edges ``(u, v)`` with ``u < v``."""
        for u in range(self.n_vertices):
            for v in self.adj[u]:
                if u < v:
                    yield (u, v)

    def neighbor_array(self, v: int) -> np.ndarray:
        """Conflict-graph neighbors of ``v`` as an int64 array -- a
        zero-copy slice of the CSR backbone."""
        return self.csr.neighbors(v)

    def h_edge_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """All conflict edges as ``(u, v)`` int64 arrays with ``u < v``."""
        return self.csr.edge_arrays()


def distance2_virtual_graph(comm: CommGraph) -> VirtualGraph:
    """The distance-2 virtual graph of Corollary 1.3.

    Vertex ``v``'s support is ``N_G[v]`` (a star, dilation 2); ``u`` and
    ``v`` conflict iff ``dist_G(u, v) <= 2``.  Each link ``{u, w}`` belongs
    to exactly the support trees of ``u`` and ``w``, so congestion is 2.
    """
    n = comm.n
    supports = [[v, *comm.neighbors(v)] for v in range(n)]
    adj_sets: list[set[int]] = [set() for _ in range(n)]
    for v in range(n):
        for u in comm.neighbors(v):
            adj_sets[v].add(u)
            for w in comm.neighbors(u):
                if w != v:
                    adj_sets[v].add(w)
    adj = [sorted(s) for s in adj_sets]
    return VirtualGraph(
        comm=comm,
        supports=supports,
        adj=adj,
        congestion=2,
        dilation=2,
        _neighbor_sets=[frozenset(s) for s in adj_sets],
    )


def power_graph_degree_bound(comm: CommGraph) -> int:
    """``Delta_2 = max_v |N^2_G(v)|`` -- the color budget of Corollary 1.3
    is ``Delta_2 + 1``.
    """
    return distance2_virtual_graph(comm).max_degree
