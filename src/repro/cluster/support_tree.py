"""Support trees ``T(v)`` spanning each cluster (Section 3.2).

Each cluster elects a leader and computes a BFS tree of ``G`` restricted to
its machines.  The *dilation* ``d`` of a cluster graph is the maximum
diameter of a support tree; all round costs on ``G`` scale linearly with it
(Theorems 1.1/1.2 state the ``d`` factor explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.network.commgraph import CommGraph


@dataclass(frozen=True)
class SupportTree:
    """A rooted spanning tree of one cluster.

    Attributes
    ----------
    cluster_id:
        The H-vertex this tree supports.
    root:
        The leader machine.
    parent:
        ``parent[machine]`` is the parent machine, or ``None`` for the root.
        Only machines of this cluster appear as keys.
    depth_of:
        Distance (in tree hops) of each machine from the root.
    height:
        Maximum depth; one broadcast or convergecast costs ``height`` rounds
        on ``G`` (``>= 1`` so even singleton clusters cost a round).
    """

    cluster_id: int
    root: int
    parent: dict[int, int | None]
    depth_of: dict[int, int]
    height: int

    @classmethod
    def build_bfs(
        cls, comm: CommGraph, machines: Sequence[int], cluster_id: int, root: int | None = None
    ) -> "SupportTree":
        """BFS spanning tree of ``G[machines]`` rooted at ``root`` (default:
        the smallest machine id, a deterministic leader election).

        Raises
        ------
        ValueError
            If ``G[machines]`` is not connected (Definition 3.1 requires it).
        """
        if not machines:
            raise ValueError("cluster must contain at least one machine")
        member = set(machines)
        if root is None:
            root = min(machines)
        if root not in member:
            raise ValueError(f"root {root} not in cluster {cluster_id}")
        parent: dict[int, int | None] = {root: None}
        depth_of: dict[int, int] = {root: 0}
        frontier = [root]
        height = 0
        while frontier:
            nxt = []
            for u in frontier:
                for w in comm.neighbors(u):
                    if w in member and w not in parent:
                        parent[w] = u
                        depth_of[w] = depth_of[u] + 1
                        height = max(height, depth_of[w])
                        nxt.append(w)
            frontier = nxt
        if len(parent) != len(member):
            missing = sorted(member - parent.keys())[:5]
            raise ValueError(
                f"cluster {cluster_id} is not connected in G; "
                f"unreachable machines include {missing}"
            )
        return cls(
            cluster_id=cluster_id,
            root=root,
            parent=parent,
            depth_of=depth_of,
            height=max(1, height),
        )

    @property
    def machines(self) -> list[int]:
        """All machines of the cluster (tree vertices)."""
        return list(self.parent.keys())

    def children(self) -> dict[int, list[int]]:
        """Child lists per machine, in sorted (ordered-tree) order.

        The ordering makes the tree an *ordered tree* in the sense of
        Lemma 3.3, inducing a total order on its vertices.
        """
        kids: dict[int, list[int]] = {m: [] for m in self.parent}
        for machine, par in self.parent.items():
            if par is not None:
                kids[par].append(machine)
        for lst in kids.values():
            lst.sort()
        return kids

    def dfs_order(self) -> list[int]:
        """Vertices in the total order induced by the ordered tree
        (preorder: ancestors before descendants, children in sorted order).
        """
        kids = self.children()
        order: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            # push children reversed so the smallest is visited first
            for child in reversed(kids[node]):
                stack.append(child)
        return order
