"""Support trees ``T(v)`` spanning each cluster (Section 3.2).

Each cluster elects a leader and computes a BFS tree of ``G`` restricted to
its machines.  The *dilation* ``d`` of a cluster graph is the maximum
diameter of a support tree; all round costs on ``G`` scale linearly with it
(Theorems 1.1/1.2 state the ``d`` factor explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.network.commgraph import CommGraph


@dataclass(frozen=True)
class SupportTree:
    """A rooted spanning tree of one cluster.

    Attributes
    ----------
    cluster_id:
        The H-vertex this tree supports.
    root:
        The leader machine.
    parent:
        ``parent[machine]`` is the parent machine, or ``None`` for the root.
        Only machines of this cluster appear as keys.
    depth_of:
        Distance (in tree hops) of each machine from the root.
    height:
        Maximum depth; one broadcast or convergecast costs ``height`` rounds
        on ``G`` (``>= 1`` so even singleton clusters cost a round).
    """

    cluster_id: int
    root: int
    parent: dict[int, int | None]
    depth_of: dict[int, int]
    height: int

    @classmethod
    def build_bfs(
        cls, comm: CommGraph, machines: Sequence[int], cluster_id: int, root: int | None = None
    ) -> "SupportTree":
        """BFS spanning tree of ``G[machines]`` rooted at ``root`` (default:
        the smallest machine id, a deterministic leader election).

        Raises
        ------
        ValueError
            If ``G[machines]`` is not connected (Definition 3.1 requires it).
        """
        if not machines:
            raise ValueError("cluster must contain at least one machine")
        member = set(machines)
        if root is None:
            root = min(machines)
        if root not in member:
            raise ValueError(f"root {root} not in cluster {cluster_id}")
        parent: dict[int, int | None] = {root: None}
        depth_of: dict[int, int] = {root: 0}
        frontier = [root]
        height = 0
        while frontier:
            nxt = []
            for u in frontier:
                for w in comm.neighbors(u):
                    if w in member and w not in parent:
                        parent[w] = u
                        depth_of[w] = depth_of[u] + 1
                        height = max(height, depth_of[w])
                        nxt.append(w)
            frontier = nxt
        if len(parent) != len(member):
            missing = sorted(member - parent.keys())[:5]
            raise ValueError(
                f"cluster {cluster_id} is not connected in G; "
                f"unreachable machines include {missing}"
            )
        return cls(
            cluster_id=cluster_id,
            root=root,
            parent=parent,
            depth_of=depth_of,
            height=max(1, height),
        )

    @property
    def machines(self) -> list[int]:
        """All machines of the cluster (tree vertices, in BFS discovery
        order -- the root first)."""
        return list(self.parent.keys())

    def children(self) -> dict[int, list[int]]:
        """Child lists per machine, in sorted (ordered-tree) order.

        The ordering makes the tree an *ordered tree* in the sense of
        Lemma 3.3, inducing a total order on its vertices.
        """
        kids: dict[int, list[int]] = {m: [] for m in self.parent}
        for machine, par in self.parent.items():
            if par is not None:
                kids[par].append(machine)
        for lst in kids.values():
            lst.sort()
        return kids

    def dfs_order(self) -> list[int]:
        """Vertices in the total order induced by the ordered tree
        (preorder: ancestors before descendants, children in sorted order).
        """
        kids = self.children()
        order: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            # push children reversed so the smallest is visited first
            for child in reversed(kids[node]):
                stack.append(child)
        return order


def build_forest(
    comm: CommGraph, assignment: np.ndarray, clusters: Sequence[Sequence[int]]
) -> list[SupportTree]:
    """BFS support trees for *every* cluster of a partition at once.

    The vectorized counterpart of calling :meth:`SupportTree.build_bfs`
    per cluster: one multi-source frontier BFS over the machine CSR,
    restricted to intra-cluster links (clusters are vertex-disjoint, so
    all of them advance in the same frontier).  Per level, ties between
    several frontier machines reaching the same target resolve to the
    first writer in (frontier-order, neighbor-order) -- exactly the order
    the sequential BFS assigned parents in -- so every tree (roots,
    parents, depths, and the dict insertion order of ``parent`` /
    ``depth_of``) is identical to the per-cluster build.

    Parameters
    ----------
    comm:
        The communication network ``G``.
    assignment:
        int64 array mapping machine -> cluster id (dense in ``0..k-1``).
    clusters:
        ``clusters[v]``: sorted machine list of cluster ``v`` (the roots
        are the per-cluster minima, the deterministic leader election).

    Raises
    ------
    ValueError
        If some cluster is not connected in ``G`` (Definition 3.1); the
        offending cluster is the smallest-id one, as in the per-cluster
        loop.
    """
    from repro.graphcore import gather_neighborhoods

    n = comm.n
    n_clusters = len(clusters)
    if any(not members for members in clusters):
        raise ValueError("cluster must contain at least one machine")
    roots = np.fromiter(
        (members[0] for members in clusters), dtype=np.int64, count=n_clusters
    )
    csr = comm.csr
    parent = np.full(n, -1, dtype=np.int64)
    depth = np.full(n, -1, dtype=np.int64)
    depth[roots] = 0
    levels: list[np.ndarray] = [roots]
    frontier = roots
    while frontier.size:
        seg_ids, flat = gather_neighborhoods(csr, frontier)
        sources = frontier[seg_ids]
        candidate = (assignment[flat] == assignment[sources]) & (depth[flat] < 0)
        targets = flat[candidate]
        owners = sources[candidate]
        uniq, first_idx = np.unique(targets, return_index=True)
        parent[uniq] = owners[first_idx]
        depth[uniq] = depth[frontier[0]] + 1 if uniq.size else 0
        frontier = uniq[np.argsort(first_idx, kind="stable")]
        if frontier.size:
            levels.append(frontier)

    if (depth < 0).any():
        unreachable = np.flatnonzero(depth < 0)
        bad_cluster = int(assignment[unreachable].min())
        missing = sorted(
            int(m) for m in unreachable[assignment[unreachable] == bad_cluster]
        )[:5]
        raise ValueError(
            f"cluster {bad_cluster} is not connected in G; "
            f"unreachable machines include {missing}"
        )

    # Group the global discovery order by cluster (stable, so each
    # cluster's subsequence keeps its own BFS order), then cut it into
    # per-cluster slices.
    discovery = np.concatenate(levels)
    by_cluster = discovery[
        np.argsort(assignment[discovery], kind="stable")
    ]
    sizes = np.fromiter(
        (len(members) for members in clusters), dtype=np.int64, count=n_clusters
    )
    offsets = np.zeros(n_clusters + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    parent_of = parent[by_cluster]
    depth_of_all = depth[by_cluster]
    heights = np.zeros(n_clusters, dtype=np.int64)
    np.maximum.at(heights, assignment[discovery], depth[discovery])

    trees: list[SupportTree] = []
    for cid in range(n_clusters):
        lo, hi = int(offsets[cid]), int(offsets[cid + 1])
        machines = by_cluster[lo:hi].tolist()
        pars = parent_of[lo:hi].tolist()
        pars[0] = None  # the root (discovered first) has no parent
        trees.append(
            SupportTree(
                cluster_id=cid,
                root=machines[0],
                parent=dict(zip(machines, pars)),
                depth_of=dict(zip(machines, depth_of_all[lo:hi].tolist())),
                height=max(1, int(heights[cid])),
            )
        )
    return trees
