"""Cluster graphs (Definition 3.1).

A cluster graph ``H`` over a communication network ``G`` partitions the
machines into disjoint *connected* clusters; ``H`` has one node per cluster
and an edge between two nodes iff some ``G``-link joins their clusters.

The same pair of clusters may be joined by many links (Figure 1): this is
what makes degree computation and palette discovery non-trivial in the
model, so :class:`ClusterGraph` keeps the full multiset of realizing links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.network.commgraph import CommGraph
from repro.cluster.support_tree import SupportTree


@dataclass
class ClusterGraph:
    """The conflict graph ``H`` over network ``G``.

    Construct via :meth:`from_assignment` (validates Definition 3.1) or
    :meth:`identity` (the CONGEST special case ``H = G``).

    Attributes
    ----------
    comm:
        The underlying communication network ``G``.
    assignment:
        ``assignment[machine] -> vertex`` cluster identifiers, dense in
        ``0..n_vertices-1``.
    clusters:
        ``clusters[v]`` is the sorted machine list of cluster ``v``.
    trees:
        Support tree per cluster (leader = tree root).
    adj:
        ``adj[v]`` is the sorted list of H-neighbors of ``v``.
    links:
        ``links[(u, v)]`` with ``u < v`` lists the G-links realizing H-edge
        ``{u, v}``.
    """

    comm: CommGraph
    assignment: list[int]
    clusters: list[list[int]]
    trees: list[SupportTree]
    adj: list[list[int]]
    links: dict[tuple[int, int], list[tuple[int, int]]]
    _neighbor_sets: list[frozenset[int]] = field(default_factory=list, repr=False)

    # ---- construction --------------------------------------------------------

    @classmethod
    def from_assignment(
        cls, comm: CommGraph, assignment: Sequence[int]
    ) -> "ClusterGraph":
        """Build ``H`` from a machine-to-cluster assignment.

        Raises
        ------
        ValueError
            If the assignment is not a partition into connected clusters or
            cluster ids are not dense in ``0..k-1``.
        """
        if len(assignment) != comm.n:
            raise ValueError(
                f"assignment covers {len(assignment)} machines; G has {comm.n}"
            )
        n_vertices = max(assignment) + 1
        if min(assignment) < 0:
            raise ValueError("cluster ids must be non-negative")
        clusters: list[list[int]] = [[] for _ in range(n_vertices)]
        for machine, vertex in enumerate(assignment):
            clusters[vertex].append(machine)
        for vertex, machines in enumerate(clusters):
            if not machines:
                raise ValueError(f"cluster id {vertex} is unused (ids must be dense)")

        trees = [
            SupportTree.build_bfs(comm, machines, cluster_id=vertex)
            for vertex, machines in enumerate(clusters)
        ]

        adj_sets: list[set[int]] = [set() for _ in range(n_vertices)]
        links: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for mu, mv in comm.iter_links():
            cu, cv = assignment[mu], assignment[mv]
            if cu == cv:
                continue
            a, b = (cu, cv) if cu < cv else (cv, cu)
            adj_sets[a].add(b)
            adj_sets[b].add(a)
            key = (a, b)
            link = (mu, mv) if cu < cv else (mv, mu)
            links.setdefault(key, []).append(link)

        adj = [sorted(s) for s in adj_sets]
        return cls(
            comm=comm,
            assignment=list(assignment),
            clusters=clusters,
            trees=trees,
            adj=adj,
            links=links,
            _neighbor_sets=[frozenset(s) for s in adj_sets],
        )

    @classmethod
    def identity(cls, comm: CommGraph) -> "ClusterGraph":
        """The CONGEST special case: every machine is its own cluster."""
        return cls.from_assignment(comm, list(range(comm.n)))

    # ---- structure -----------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of H-nodes (clusters)."""
        return len(self.clusters)

    @property
    def n_machines(self) -> int:
        """Number of machines in ``G`` (the ``n`` of the theorems)."""
        return self.comm.n

    def degree(self, v: int) -> int:
        """True degree of ``v`` in ``H`` (links to the same cluster counted
        once -- the quantity that is *hard* to compute in the model).
        """
        return len(self.adj[v])

    def link_count(self, v: int) -> int:
        """Number of inter-cluster links incident to ``v`` -- the easy
        aggregate that can grossly overestimate :meth:`degree` (Section 1.1).
        """
        total = 0
        for u in self.adj[v]:
            key = (u, v) if u < v else (v, u)
            total += len(self.links[key])
        return total

    def neighbors(self, v: int) -> list[int]:
        """H-neighbors of ``v`` (sorted list)."""
        return self.adj[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        """H-neighbors of ``v`` as a frozenset (for intersection tests)."""
        return self._neighbor_sets[v]

    def are_adjacent(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an H-edge."""
        return v in self._neighbor_sets[u]

    @property
    def max_degree(self) -> int:
        """``Delta``, the maximum degree of ``H``."""
        return max((len(a) for a in self.adj), default=0)

    @property
    def dilation(self) -> int:
        """``d``: maximum support-tree height over all clusters."""
        return max((t.height for t in self.trees), default=1)

    def cluster_size(self, v: int) -> int:
        """Number of machines in cluster ``v``."""
        return len(self.clusters[v])

    def leader(self, v: int) -> int:
        """Leader machine of cluster ``v`` (support-tree root)."""
        return self.trees[v].root

    def iter_h_edges(self) -> Iterable[tuple[int, int]]:
        """All H-edges ``(u, v)`` with ``u < v``."""
        return self.links.keys()

    @property
    def n_h_edges(self) -> int:
        """Number of edges of ``H``."""
        return len(self.links)

    def anti_neighbors_within(self, v: int, vertex_set: Iterable[int]) -> list[int]:
        """Vertices of ``vertex_set`` that are NOT adjacent to ``v`` (and are
        not ``v``) -- anti-neighbors in the sense of Section 4.1.
        """
        nbrs = self._neighbor_sets[v]
        return [u for u in vertex_set if u != v and u not in nbrs]

    def neighbor_array(self, v: int):
        """H-neighbors of ``v`` as a cached numpy array (hot path for the
        coloring algorithms' conflict checks)."""
        import numpy as np

        cache = getattr(self, "_adj_arrays", None)
        if cache is None:
            cache = [None] * self.n_vertices
            self._adj_arrays = cache
        if cache[v] is None:
            cache[v] = np.asarray(self.adj[v], dtype=np.int64)
        return cache[v]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterGraph(vertices={self.n_vertices}, machines={self.n_machines}, "
            f"Delta={self.max_degree}, dilation={self.dilation})"
        )
