"""Cluster graphs (Definition 3.1).

A cluster graph ``H`` over a communication network ``G`` partitions the
machines into disjoint *connected* clusters; ``H`` has one node per cluster
and an edge between two nodes iff some ``G``-link joins their clusters.

The same pair of clusters may be joined by many links (Figure 1): this is
what makes degree computation and palette discovery non-trivial in the
model, so :class:`ClusterGraph` keeps the full multiset of realizing links.

The adjacency backbone is CSR (``indptr``/``indices`` int64 arrays) built
once at construction; the list/dict views (``adj``, ``links``,
``neighbor_set``) are thin accessors over it, materialized lazily where
they are not needed on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.graphcore.csr import CSRAdjacency
from repro.network.commgraph import CommGraph
from repro.cluster.support_tree import SupportTree, build_forest


@dataclass
class ClusterGraph:
    """The conflict graph ``H`` over network ``G``.

    Construct via :meth:`from_assignment` (validates Definition 3.1) or
    :meth:`identity` (the CONGEST special case ``H = G``).

    Attributes
    ----------
    comm:
        The underlying communication network ``G``.
    assignment:
        ``assignment[machine] -> vertex`` cluster identifiers, dense in
        ``0..n_vertices-1``.
    clusters:
        ``clusters[v]`` is the sorted machine list of cluster ``v``.
    trees:
        Support tree per cluster (leader = tree root).
    csr:
        CSR adjacency backbone -- the structure the batched coloring
        kernels (:mod:`repro.graphcore`) run on.  Passed directly by
        ``from_assignment`` (which lays it out vectorized) or derived in
        ``__post_init__`` from ``_adj`` when a test builds the dataclass
        by hand.  A real init field, so it survives ``dataclasses.replace``
        and unpickling in pool workers.
    adj:
        ``adj[v]``: the sorted list of H-neighbors of ``v``.  A *lazy
        property* over the CSR: materializing ``n`` Python lists used to
        box ``2m`` ints at construction (~0.4 s at 1.6M edges) that the
        vectorized hot paths never look at.
    links:
        ``links[(u, v)]`` with ``u < v`` lists the G-links realizing H-edge
        ``{u, v}`` (lazy property; diagnostics and the dedup machinery use
        it, the coloring hot paths never do).
    """

    comm: CommGraph
    assignment: list[int]
    clusters: list[list[int]]
    trees: list[SupportTree]
    #: hand-construction path (tests): neighbor lists to lay the CSR from
    #: when ``csr`` is not supplied.  Access through the ``adj`` property.
    #: compare=False: a lazily-materialized cache must not affect equality.
    _adj: list[list[int]] | None = field(default=None, repr=False, compare=False)
    _links: dict[tuple[int, int], list[tuple[int, int]]] | None = field(
        default=None, repr=False
    )
    _neighbor_sets: list[frozenset[int]] = field(default_factory=list, repr=False)
    csr: CSRAdjacency | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self._adj is not None:
            # neighbor lists are the source of truth when present: rebuild
            # the CSR from them so dataclasses.replace(h, _adj=...) can
            # never pair new lists with a stale carried-over backbone
            self.csr = CSRAdjacency.from_adj_lists(self._adj)
        elif self.csr is None:
            raise ValueError(
                "ClusterGraph needs a csr backbone or _adj neighbor lists"
            )

    # ---- construction --------------------------------------------------------

    @classmethod
    def from_assignment(
        cls, comm: CommGraph, assignment: Sequence[int]
    ) -> "ClusterGraph":
        """Build ``H`` from a machine-to-cluster assignment (vectorized).

        Raises
        ------
        ValueError
            If the assignment is not a partition into connected clusters or
            cluster ids are not dense in ``0..k-1``.
        """
        if len(assignment) != comm.n:
            raise ValueError(
                f"assignment covers {len(assignment)} machines; G has {comm.n}"
            )
        assign = np.asarray(assignment, dtype=np.int64)
        if assign.min() < 0:
            raise ValueError("cluster ids must be non-negative")
        n_vertices = int(assign.max()) + 1
        sizes = np.bincount(assign, minlength=n_vertices)
        if (sizes == 0).any():
            vertex = int(np.flatnonzero(sizes == 0)[0])
            raise ValueError(f"cluster id {vertex} is unused (ids must be dense)")
        member_order = np.argsort(assign, kind="stable")
        clusters = [
            part.tolist()
            for part in np.split(member_order, np.cumsum(sizes)[:-1])
        ]

        trees = build_forest(comm, assign, clusters)

        # H-adjacency: map every G-link to its cluster pair, drop
        # intra-cluster links, dedupe pairs, and lay both directions out as
        # CSR in one pass.
        mu, mv = comm.link_arrays()
        cu, cv = assign[mu], assign[mv]
        inter = cu != cv
        mu, mv, cu, cv = mu[inter], mv[inter], cu[inter], cv[inter]
        swap = cu > cv
        a = np.where(swap, cv, cu)
        b = np.where(swap, cu, cv)
        pair_codes = a * n_vertices + b
        uniq_codes = np.unique(pair_codes)
        ua, ub = uniq_codes // n_vertices, uniq_codes % n_vertices
        csr = CSRAdjacency.from_edge_arrays(ua, ub, n_vertices)

        graph = cls(
            comm=comm,
            assignment=[int(x) for x in assignment],
            clusters=clusters,
            trees=trees,
            csr=csr,
        )
        # raw material for the lazy `links` view: realizing G-links keyed by
        # H-edge code, kept as arrays until someone asks for the dict
        graph._link_raw = (pair_codes, mu, mv, cu)
        return graph

    @classmethod
    def identity(cls, comm: CommGraph) -> "ClusterGraph":
        """The CONGEST special case: every machine is its own cluster."""
        return cls.from_assignment(comm, list(range(comm.n)))

    # ---- lazy list/dict views ------------------------------------------------

    @property
    def adj(self) -> list[list[int]]:
        """``adj[v]``: sorted H-neighbor list of ``v``, materialized from
        the CSR on first access (the vectorized paths never need it)."""
        if self._adj is None:
            self._adj = [
                part.tolist()
                for part in np.split(self.csr.indices, self.csr.indptr[1:-1])
            ]
        return self._adj

    @property
    def links(self) -> dict[tuple[int, int], list[tuple[int, int]]]:
        """``links[(u, v)]`` with ``u < v``: the G-links realizing H-edge
        ``{u, v}``, oriented as ``(machine in V(u), machine in V(v))``.

        Materialized on first access (diagnostics/dedup only; hot paths use
        :attr:`csr`).
        """
        if self._links is None:
            links: dict[tuple[int, int], list[tuple[int, int]]] = {}
            raw = getattr(self, "_link_raw", None)
            if raw is not None:
                pair_codes, mu, mv, cu = raw
                n_vertices = self.n_vertices
                grouping = np.argsort(pair_codes, kind="stable")
                for idx in grouping.tolist():
                    code = int(pair_codes[idx])
                    key = (code // n_vertices, code % n_vertices)
                    link = (int(mu[idx]), int(mv[idx]))
                    if int(cu[idx]) != key[0]:
                        link = (link[1], link[0])
                    links.setdefault(key, []).append(link)
                self._link_raw = None  # free the raw arrays once materialized
            else:  # constructed directly (tests); derive from the network
                assign = self.assignment
                for gu, gv in self.comm.iter_links():
                    cu_, cv_ = assign[gu], assign[gv]
                    if cu_ == cv_:
                        continue
                    key = (cu_, cv_) if cu_ < cv_ else (cv_, cu_)
                    link = (gu, gv) if cu_ < cv_ else (gv, gu)
                    links.setdefault(key, []).append(link)
            self._links = links
        return self._links

    def _neighbor_set_list(self) -> list[frozenset[int]]:
        if not self._neighbor_sets:
            self._neighbor_sets = [frozenset(a) for a in self.adj]
        return self._neighbor_sets

    # ---- structure -----------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of H-nodes (clusters)."""
        return len(self.clusters)

    @property
    def n_machines(self) -> int:
        """Number of machines in ``G`` (the ``n`` of the theorems)."""
        return self.comm.n

    def degree(self, v: int) -> int:
        """True degree of ``v`` in ``H`` (links to the same cluster counted
        once -- the quantity that is *hard* to compute in the model).
        """
        return int(self.csr.indptr[v + 1] - self.csr.indptr[v])

    def link_count(self, v: int) -> int:
        """Number of inter-cluster links incident to ``v`` -- the easy
        aggregate that can grossly overestimate :meth:`degree` (Section 1.1).
        """
        total = 0
        for u in self.neighbors(v):
            key = (u, v) if u < v else (v, u)
            total += len(self.links[key])
        return total

    def neighbors(self, v: int) -> list[int]:
        """H-neighbors of ``v`` (sorted list; served from the materialized
        ``adj`` view when one exists, else a per-call CSR slice)."""
        if self._adj is not None:
            return self._adj[v]
        return self.csr.neighbors(v).tolist()

    def neighbor_set(self, v: int) -> frozenset[int]:
        """H-neighbors of ``v`` as a frozenset (for intersection tests)."""
        return self._neighbor_set_list()[v]

    def are_adjacent(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an H-edge.

        O(1) set membership when the frozenset views are already
        materialized; otherwise a binary search on the CSR (building all
        the sets costs O(m) and would dwarf a few probes).
        """
        if self._neighbor_sets:
            return v in self._neighbor_sets[u]
        nbrs = self.csr.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    @property
    def max_degree(self) -> int:
        """``Delta``, the maximum degree of ``H``."""
        degrees = self.csr.degrees
        return int(degrees.max()) if degrees.size else 0

    @property
    def dilation(self) -> int:
        """``d``: maximum support-tree height over all clusters."""
        return max((t.height for t in self.trees), default=1)

    def cluster_size(self, v: int) -> int:
        """Number of machines in cluster ``v``."""
        return len(self.clusters[v])

    def leader(self, v: int) -> int:
        """Leader machine of cluster ``v`` (support-tree root)."""
        return self.trees[v].root

    def iter_h_edges(self) -> Iterable[tuple[int, int]]:
        """All H-edges ``(u, v)`` with ``u < v`` (lexicographic)."""
        edge_u, edge_v = self.csr.edge_arrays()
        return zip(edge_u.tolist(), edge_v.tolist())

    def h_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All H-edges as ``(u, v)`` int64 arrays with ``u < v`` (the
        vectorized properness checker's input)."""
        return self.csr.edge_arrays()

    @property
    def n_h_edges(self) -> int:
        """Number of edges of ``H``."""
        return self.csr.n_directed_edges // 2

    def anti_neighbors_within(self, v: int, vertex_set: Iterable[int]) -> list[int]:
        """Vertices of ``vertex_set`` that are NOT adjacent to ``v`` (and are
        not ``v``) -- anti-neighbors in the sense of Section 4.1.
        """
        nbrs = self.neighbor_set(v)
        return [u for u in vertex_set if u != v and u not in nbrs]

    def neighbor_array(self, v: int) -> np.ndarray:
        """H-neighbors of ``v`` as an int64 array -- a zero-copy slice of
        the CSR backbone (hot path for the coloring conflict checks)."""
        return self.csr.neighbors(v)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterGraph(vertices={self.n_vertices}, machines={self.n_machines}, "
            f"Delta={self.max_degree}, dilation={self.dilation})"
        )
