"""Cluster-assignment builders: ways of obtaining ``H`` from ``G``.

Cluster graphs arise in practice when algorithms contract edges (maximum
flow), grow low-diameter clusters (network decomposition), or when the
conflict graph is planted and the network is synthesized around it.  This
module provides all three:

* :func:`contraction_clusters` -- contract a random forest of ``G``;
* :func:`voronoi_clusters` -- multi-source BFS regions (always connected);
* :func:`blowup` -- synthesize ``G`` around a *desired* ``H``, controlling
  cluster topology (hence dilation) and link multiplicity.  This is the
  workhorse of the experiments: it lets us plant almost-cliques, cabals and
  bridge pathologies with known ground truth.
"""

from __future__ import annotations

from typing import Literal, Sequence

import networkx as nx
import numpy as np

from repro.cluster.cluster_graph import ClusterGraph
from repro.network.commgraph import CommGraph

ClusterTopology = Literal["path", "star", "clique", "tree", "bridge"]


def voronoi_clusters(
    comm: CommGraph, n_clusters: int, rng: np.random.Generator
) -> ClusterGraph:
    """Partition ``G`` into ``n_clusters`` BFS (Voronoi) regions.

    Multi-source BFS regions are connected by construction, satisfying
    Definition 3.1.  ``G`` must be connected.
    """
    if n_clusters <= 0 or n_clusters > comm.n:
        raise ValueError(f"n_clusters={n_clusters} out of range for n={comm.n}")
    centers = rng.choice(comm.n, size=n_clusters, replace=False).astype(np.int64)
    assignment = np.full(comm.n, -1, dtype=np.int64)
    assignment[centers] = np.arange(n_clusters, dtype=np.int64)
    # vectorized multi-source BFS: one frontier gather per level.  Ties
    # (several frontier machines reaching the same target in one level) go
    # to the first writer in (frontier-order, neighbor-order) -- exactly
    # the order the per-vertex loop this replaces assigned in, so pinned
    # instances keep the identical partition.
    from repro.graphcore import gather_neighborhoods

    csr = comm.csr
    frontier = centers
    while frontier.size:
        seg_ids, flat = gather_neighborhoods(csr, frontier)
        unvisited = assignment[flat] < 0
        targets = flat[unvisited]
        owners = assignment[frontier[seg_ids[unvisited]]]
        uniq, first_idx = np.unique(targets, return_index=True)
        assignment[uniq] = owners[first_idx]
        frontier = uniq[np.argsort(first_idx, kind="stable")]
    if (assignment < 0).any():
        raise ValueError("communication graph is not connected")
    return ClusterGraph.from_assignment(comm, assignment.tolist())


def contraction_clusters(
    comm: CommGraph, contraction_fraction: float, rng: np.random.Generator
) -> ClusterGraph:
    """Contract a random sub-forest covering roughly ``contraction_fraction``
    of the machines, as edge-contracting algorithms do.

    Each contracted tree becomes one cluster; untouched machines stay
    singleton clusters (so the result is always a valid partition).
    """
    if not 0.0 <= contraction_fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    parent = list(range(comm.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    links = list(comm.iter_links())
    rng.shuffle(links)
    target_merges = int(contraction_fraction * comm.n)
    merges = 0
    for u, v in links:
        if merges >= target_merges:
            break
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            merges += 1
    root_to_id: dict[int, int] = {}
    assignment = []
    for machine in range(comm.n):
        root = find(machine)
        if root not in root_to_id:
            root_to_id[root] = len(root_to_id)
        assignment.append(root_to_id[root])
    return ClusterGraph.from_assignment(comm, assignment)


def _cluster_internal_edges(
    machines: Sequence[int], topology: ClusterTopology, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Internal wiring of one cluster; controls its support-tree height."""
    k = len(machines)
    if k == 1:
        return []
    if topology == "path":
        return [(machines[i], machines[i + 1]) for i in range(k - 1)]
    if topology == "star":
        return [(machines[0], machines[i]) for i in range(1, k)]
    if topology == "clique":
        return [
            (machines[i], machines[j]) for i in range(k) for j in range(i + 1, k)
        ]
    if topology == "tree":
        edges = []
        for i in range(1, k):
            j = int(rng.integers(0, i))
            edges.append((machines[j], machines[i]))
        return edges
    if topology == "bridge":
        # Two stars joined by a single bridge link (Figures 2/3): every path
        # between the halves crosses one O(log n)-bit link.
        half = k // 2
        left, right = machines[:half], machines[half:]
        edges = [(left[0], m) for m in left[1:]]
        edges += [(right[0], m) for m in right[1:]]
        edges.append((left[0], right[0]))
        return edges
    raise ValueError(f"unknown topology {topology!r}")


def blowup(
    conflict_graph: nx.Graph,
    rng: np.random.Generator,
    *,
    cluster_size: int = 1,
    topology: ClusterTopology = "star",
    link_multiplicity: int = 1,
    size_jitter: float = 0.0,
) -> ClusterGraph:
    """Synthesize a network ``G`` realizing a desired conflict graph ``H``.

    Each vertex of ``conflict_graph`` becomes a cluster of about
    ``cluster_size`` machines wired according to ``topology``; each H-edge is
    realized by ``link_multiplicity`` links between machines chosen uniformly
    in the two clusters (several links between the same cluster pair are the
    norm in real cluster graphs -- Figure 1).

    Returns a :class:`ClusterGraph` whose ``H`` equals ``conflict_graph`` (up
    to the integer relabeling of networkx nodes).
    """
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    if link_multiplicity < 1:
        raise ValueError("link_multiplicity must be >= 1")
    relabeled = nx.convert_node_labels_to_integers(conflict_graph, ordering="sorted")
    n_vertices = relabeled.number_of_nodes()

    machine_lists: list[list[int]] = []
    next_machine = 0
    for _v in range(n_vertices):
        size = cluster_size
        if size_jitter > 0:
            size = max(1, int(round(cluster_size * (1 + rng.uniform(-size_jitter, size_jitter)))))
        machine_lists.append(list(range(next_machine, next_machine + size)))
        next_machine += size

    internal: list[tuple[int, int]] = []
    for v, machines in enumerate(machine_lists):
        internal.extend(_cluster_internal_edges(machines, topology, rng))

    # Inter-cluster links, vectorized: clusters are contiguous machine
    # ranges, so a pick is start + offset.  The (edges, multiplicity, 2)
    # draw matrix consumes the rng in exactly the order the per-edge loop
    # did (C-order: edge, copy, endpoint), keeping pinned instances
    # bitwise identical.
    starts = np.fromiter(
        (m[0] for m in machine_lists), dtype=np.int64, count=n_vertices
    )
    sizes = np.fromiter(
        (len(m) for m in machine_lists), dtype=np.int64, count=n_vertices
    )
    edge_arr = np.asarray(list(relabeled.edges()), dtype=np.int64).reshape(-1, 2)
    parts: list[np.ndarray] = []
    if internal:
        parts.append(np.asarray(internal, dtype=np.int64))
    if edge_arr.size:
        highs = np.stack(
            [sizes[edge_arr[:, 0]], sizes[edge_arr[:, 1]]], axis=1
        )[:, None, :].repeat(link_multiplicity, axis=1)
        offsets = rng.integers(0, highs)
        inter = (
            np.stack(
                [starts[edge_arr[:, 0]], starts[edge_arr[:, 1]]], axis=1
            )[:, None, :]
            + offsets
        ).reshape(-1, 2)
        parts.append(inter)
    edges = (
        np.concatenate(parts)
        if parts
        else np.empty((0, 2), dtype=np.int64)
    )

    comm = CommGraph(next_machine, edges)
    assignment = np.repeat(
        np.arange(n_vertices, dtype=np.int64), sizes
    ).tolist()
    return ClusterGraph.from_assignment(comm, assignment)
