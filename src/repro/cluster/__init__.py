"""Cluster-graph formalism: Definition 3.1, support trees, builders, virtual graphs."""

from repro.cluster.cluster_graph import ClusterGraph
from repro.cluster.support_tree import SupportTree, build_forest
from repro.cluster.builders import blowup, contraction_clusters, voronoi_clusters
from repro.cluster.virtual_graph import (
    VirtualGraph,
    distance2_virtual_graph,
    power_graph_degree_bound,
)

__all__ = [
    "ClusterGraph",
    "SupportTree",
    "build_forest",
    "blowup",
    "contraction_clusters",
    "voronoi_clusters",
    "VirtualGraph",
    "distance2_virtual_graph",
    "power_graph_degree_bound",
]
