"""Put-aside sets (Lemma 4.18).

Each cabal deliberately leaves ``r`` inliers uncolored until the very end,
manufacturing temporary slack for everyone else.  Requirements:

1. ``|P_K| = r`` exactly;
2. no edge joins put-aside sets of different cabals (so Section 7 can
   recolor each cabal independently);
3. few vertices of ``K`` have any neighbor in other cabals' put-aside sets
   (the extra guarantee this paper adds over [HKNT22], needed by the donor
   search).

Construction (Algorithm 20's standard shape): sample ``3r`` candidates per
cabal, drop any candidate adjacent to a foreign candidate -- cabals have so
few external edges that w.h.p. at least ``r`` survive.
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.errors import StageFailure
from repro.coloring.types import PartialColoring


def compute_put_aside(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    eligible: dict[int, list[int]],
    r: int,
    *,
    op: str = "put_aside",
) -> dict[int, list[int]]:
    """Compute ``P_K`` for every cabal at once.

    Parameters
    ----------
    eligible:
        ``cabal_index -> uncolored inliers`` to draw from.
    r:
        Target size (the cabal-uniform ``r = 250 ℓ`` of Section 4.3,
        scaled preset's multiplier otherwise).

    Raises
    ------
    StageFailure
        If some cabal cannot field ``r`` conflict-free candidates (caller
        retries, then falls back for that cabal).
    """
    graph = runtime.graph
    candidates: dict[int, list[int]] = {}
    owner: dict[int, int] = {}
    for idx, pool_all in eligible.items():
        pool = [v for v in pool_all if not coloring.is_colored(v)]
        want = min(len(pool), 3 * r)
        picks = runtime.rng.permutation(len(pool))[:want]
        chosen = [pool[int(i)] for i in picks]
        candidates[idx] = chosen
        for v in chosen:
            owner[v] = idx
    runtime.h_rounds(op + "_sample", count=2)

    result: dict[int, list[int]] = {}
    for idx, chosen in candidates.items():
        survivors: list[int] = []
        for v in chosen:
            clash = False
            for u in graph.neighbors(v):
                if owner.get(u, idx) != idx:
                    clash = True
                    break
            if not clash:
                survivors.append(v)
        if len(survivors) < r:
            raise StageFailure(
                op,
                f"cabal {idx} fielded only {len(survivors)} of {r} put-aside "
                f"candidates",
                affected=eligible[idx],
            )
        result[idx] = survivors[:r]
    runtime.h_rounds(op + "_filter", count=2)
    return result
