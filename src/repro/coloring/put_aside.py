"""Put-aside sets (Lemma 4.18).

Each cabal deliberately leaves ``r`` inliers uncolored until the very end,
manufacturing temporary slack for everyone else.  Requirements:

1. ``|P_K| = r`` exactly;
2. no edge joins put-aside sets of different cabals (so Section 7 can
   recolor each cabal independently);
3. few vertices of ``K`` have any neighbor in other cabals' put-aside sets
   (the extra guarantee this paper adds over [HKNT22], needed by the donor
   search).

Construction (Algorithm 20's standard shape): sample ``3r`` candidates per
cabal, drop any candidate adjacent to a foreign candidate -- cabals have so
few external edges that w.h.p. at least ``r`` survive.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.errors import StageFailure
from repro.coloring.types import UNCOLORED, PartialColoring
from repro.graphcore import batch_label_mismatch_counts, csr_of


def compute_put_aside(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    eligible: dict[int, list[int]],
    r: int,
    *,
    op: str = "put_aside",
) -> dict[int, list[int]]:
    """Compute ``P_K`` for every cabal at once.

    Parameters
    ----------
    eligible:
        ``cabal_index -> uncolored inliers`` to draw from.
    r:
        Target size (the cabal-uniform ``r = 250 ℓ`` of Section 4.3,
        scaled preset's multiplier otherwise).

    Raises
    ------
    StageFailure
        If some cabal cannot field ``r`` conflict-free candidates (caller
        retries, then falls back for that cabal).
    """
    graph = runtime.graph
    uncolored = coloring.colors == UNCOLORED
    candidates: dict[int, list[int]] = {}
    owner = np.full(graph.n_vertices, -1, dtype=np.int64)
    for idx, pool_all in eligible.items():
        pool = [v for v in pool_all if uncolored[v]]
        want = min(len(pool), 3 * r)
        picks = runtime.rng.permutation(len(pool))[:want]
        chosen = [pool[int(i)] for i in picks]
        candidates[idx] = chosen
        owner[chosen] = idx
    runtime.h_rounds(op + "_sample", count=2)

    # A candidate survives iff no neighbor belongs to a *different* cabal's
    # candidate set: one batched foreign-owner gather over all candidates
    # replaces the per-candidate neighbor scans.
    flat = [v for chosen in candidates.values() for v in chosen]
    clash = (
        batch_label_mismatch_counts(
            csr_of(graph), owner, flat, ignore_label=-1
        )
        > 0
    )

    result: dict[int, list[int]] = {}
    cursor = 0
    for idx, chosen in candidates.items():
        clashes = clash[cursor : cursor + len(chosen)]
        cursor += len(chosen)
        survivors = [v for v, bad in zip(chosen, clashes) if not bad]
        if len(survivors) < r:
            raise StageFailure(
                op,
                f"cabal {idx} fielded only {len(survivors)} of {r} put-aside "
                f"candidates",
                affected=eligible[idx],
            )
        result[idx] = survivors[:r]
    runtime.h_rounds(op + "_filter", count=2)
    return result
