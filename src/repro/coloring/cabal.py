"""ColoringCabals (Algorithm 5 / Proposition 4.7).

Cabals -- almost-cliques with ``e~_K < ℓ`` -- are colored last, after
everything else, and with three extra moving parts:

1. the colorful matching falls back to the **fingerprint algorithm** of
   Section 6 when random trials find too few anti-edges (the coloring is
   *cancelled* first, exactly as the paper prescribes);
2. **put-aside sets** (Lemma 4.18) stay uncolored through the synchronized
   color trial and the reserved-color MultiColorTrial, manufacturing slack;
3. put-aside sets are finally colored by **donation** (Section 7).
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.clique_palette import palette_view
from repro.coloring.colorful_matching import colorful_matching
from repro.coloring.donors import CabalPlan, color_put_aside_sets
from repro.coloring.errors import StageFailure
from repro.coloring.fingerprint_matching import (
    color_anti_edge_matching,
    fingerprint_matching,
)
from repro.coloring.multicolor_trial import multicolor_trial
from repro.coloring.outliers import inliers_cabal
from repro.coloring.put_aside import compute_put_aside
from repro.coloring.slack import reserved_zone
from repro.coloring.synchronized_trial import SctPlan, synchronized_color_trial
from repro.coloring.try_color import try_color_until, uniform_range_sampler
from repro.coloring.types import PartialColoring
from repro.decomposition.acd import AlmostCliqueDecomposition


def matching_rerun_threshold(runtime: ClusterRuntime) -> int:
    """``M_K`` below this triggers the fingerprint rerun (the paper's
    ``Ω(C/eps · log n)`` test, scaled to the cabal threshold ``ℓ``)."""
    return max(2, runtime.params.ell(runtime.n) // 2)


def color_cabals(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    acd: AlmostCliqueDecomposition,
    *,
    stats=None,
    op: str = "cabals",
) -> None:
    """Run Algorithm 5 over every cabal.

    Raises :class:`StageFailure` (affected vertices attached) when a cabal
    cannot be finished; the pipeline's fallback completes those vertices.
    """
    params = runtime.params
    graph = runtime.graph
    indices = acd.cabal_indices()
    if not indices:
        return
    delta = graph.max_degree
    floor_zone = min(reserved_zone(params, delta), coloring.num_colors - 1)

    # ---- Step 1: colorful matching, with the Section 6 rerun -------------
    snapshot = coloring.copy()
    matching = colorful_matching(
        runtime,
        coloring,
        {idx: acd.cliques[idx] for idx in indices},
        reserved_floor=floor_zone,
        op=op + "_matching",
    )
    threshold = matching_rerun_threshold(runtime)
    rerun = [idx for idx in indices if matching[idx] < threshold]
    for idx in rerun:
        # cancel the trial-based matching in this cabal and use fingerprints
        for v in acd.cliques[idx]:
            if coloring.is_colored(v) and not snapshot.is_colored(v):
                coloring.uncolor(v)
        found = fingerprint_matching(runtime, idx, acd.cliques[idx], op=op + "_fpm")
        colored = color_anti_edge_matching(
            runtime,
            coloring,
            [found],
            reserved_floor=floor_zone,
            members_by_clique={idx: acd.cliques[idx]},
            op=op + "_fpm_color",
        )
        matching[idx] = colored[idx]
        if stats is not None:
            stats.notes.append(
                f"cabal {idx}: fingerprint matching of {found.size} anti-edges, "
                f"{colored[idx]} colored"
            )

    big_matching = {idx for idx in indices if matching[idx] >= 2 * params.eps * delta}
    worklist = [idx for idx in indices if idx not in big_matching]
    for idx in big_matching:
        sampler = uniform_range_sampler(runtime, coloring.num_colors, acd.reserved[idx])
        leftover = try_color_until(
            runtime, coloring, acd.cliques[idx], sampler, max_rounds=8, op=op + "_bigM"
        )
        if leftover:
            space = list(range(acd.reserved[idx], coloring.num_colors))
            multicolor_trial(
                runtime, coloring, leftover, lambda _v, s=space: s, op=op + "_bigM_mct"
            )

    # ---- Step 2: outliers ---------------------------------------------------
    split = {idx: inliers_cabal(acd, idx) for idx in worklist}
    all_outliers = [v for idx in worklist for v in split[idx][1]]
    if all_outliers:
        sampler = uniform_range_sampler(runtime, coloring.num_colors, floor_zone)
        leftover = try_color_until(
            runtime, coloring, all_outliers, sampler, max_rounds=8, op=op + "_outliers"
        )
        if leftover:
            space = list(range(floor_zone, coloring.num_colors))
            multicolor_trial(
                runtime, coloring, leftover, lambda _v, s=space: s,
                op=op + "_outliers_mct",
            )

    # ---- Step 3: put-aside sets ----------------------------------------------
    eligible = {
        idx: coloring.uncolored_vertices(split[idx][0]) for idx in worklist
    }
    # Put-aside size: the reserved-color count of the cabal, shrunk when the
    # cabal is too small to spare that many vertices (scaled regime guard).
    r_target = {
        idx: max(
            1,
            min(acd.reserved[idx], max(1, len(eligible[idx]) // 3)),
        )
        for idx in worklist
    }
    put_aside: dict[int, list[int]] = {}
    pending = list(worklist)
    for attempt in range(params.max_stage_retries):
        if not pending:
            break
        try:
            r_common = min(r_target[idx] for idx in pending)
            put_aside.update(
                compute_put_aside(
                    runtime,
                    coloring,
                    {idx: eligible[idx] for idx in pending},
                    r_common,
                    op=op + "_put_aside",
                )
            )
            pending = []
        except StageFailure:
            if stats is not None:
                stats.record_retry(op + "_put_aside")
            continue
    if pending:
        raise StageFailure(
            op + "_put_aside",
            f"cabals {pending} could not field put-aside sets",
            [v for idx in pending for v in eligible[idx]],
        )

    # ---- Step 4: synchronized color trial ------------------------------------
    plans: list[SctPlan] = []
    views = {}
    for idx in worklist:
        aside = set(put_aside.get(idx, ()))
        participants = [v for v in eligible[idx] if v not in aside]
        r_k = acd.reserved[idx]
        view = palette_view(runtime, coloring, acd.cliques[idx], op=op + "_palette")
        views[idx] = view
        capacity = int(view.free_above(r_k).size)
        participants = participants[: max(0, capacity)]
        if participants:
            plans.append(
                SctPlan(participants=participants, palette=view, reserved_floor=r_k)
            )
    if plans:
        synchronized_color_trial(runtime, coloring, plans, op=op + "_sct")

    # ---- Step 5: MultiColorTrial on reserved colors ---------------------------
    for idx in worklist:
        aside = set(put_aside.get(idx, ()))
        remaining = [
            v
            for v in coloring.uncolored_vertices(acd.cliques[idx])
            if v not in aside
        ]
        if not remaining:
            continue
        reserved_list = list(range(acd.reserved[idx]))
        leftover = multicolor_trial(
            runtime,
            coloring,
            remaining,
            lambda _v, s=reserved_list: s,
            op=op + "_mct_reserved",
            raise_on_leftover=False,
        )
        if leftover:
            raise StageFailure(
                op + "_mct", f"cabal {idx}: {len(leftover)} left before put-aside",
                leftover + list(aside),
            )

    # ---- Step 6: color put-aside sets by donation ------------------------------
    cabal_plans = [
        CabalPlan(
            clique_index=idx,
            members=acd.cliques[idx],
            put_aside=put_aside.get(idx, []),
            inliers=split[idx][0],
        )
        for idx in worklist
    ]
    leftover = color_put_aside_sets(runtime, coloring, cabal_plans, op=op + "_donation")
    for _ in range(params.max_stage_retries):
        if not leftover:
            break
        if stats is not None:
            stats.record_retry(op + "_donation")
        leftover = color_put_aside_sets(
            runtime,
            coloring,
            [p for p in cabal_plans if any(not coloring.is_colored(u) for u in p.put_aside)],
            op=op + "_donation",
        )
    final_leftover = [
        v for idx in indices for v in coloring.uncolored_vertices(acd.cliques[idx])
    ]
    if final_leftover:
        raise StageFailure(
            op, f"{len(final_leftover)} cabal vertices uncolored", final_leftover
        )
