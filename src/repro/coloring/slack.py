"""SlackGeneration (Algorithm 18 / Proposition 4.5).

One synchronized random color trial outside the cabals: each vertex of
``V \\ V_cabal`` activates with probability ``p_g`` and tries a uniform
color from ``[Δ+1] \\ [reserved-zone]``; a vertex keeps its color iff no
neighbor tried the same one (the symmetric rule -- slack generation wants
same-colored *pairs* in neighborhoods, so it never breaks ties).

Effects (Proposition 4.5): sparse vertices get ``Ω(Δ)`` slack; dense
vertices get ``Ω(e_v)`` *reuse* slack; only a small fraction of each clique
is colored.  Slack generation is brittle -- it must run before anything else
colors vertices -- which is why the pipeline calls it exactly once, right
after the ACD.
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import PartialColoring
from repro.coloring.try_color import resolve_proposals


def reserved_zone(params, delta: int) -> int:
    """Size of the globally excluded color prefix ``[300 eps Δ]`` (the
    union of every possible reserved set; Equation (2)'s cap).
    """
    return int(params.reserved_cap_mult * params.eps * delta)


def slack_generation(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    eligible: list[int],
    *,
    op: str = "slack_generation",
) -> list[int]:
    """Run Algorithm 18 over ``eligible`` (callers pass ``V \\ V_cabal``).

    Returns the vertices it colored.  Postconditions (Proposition 4.5) are
    statistical; the per-clique "at most 1/100 colored" property holds in
    expectation with the paper's ``p_g`` and proportionally with the scaled
    preset's (documented in :mod:`repro.params`).
    """
    params = runtime.params
    graph = runtime.graph
    floor = reserved_zone(params, graph.max_degree)
    num_colors = coloring.num_colors
    if floor >= num_colors:
        floor = max(0, num_colors - 1)
    proposals: dict[int, int] = {}
    for v in eligible:
        if coloring.is_colored(v):
            continue
        if runtime.rng.random() < params.slack_activation:
            proposals[v] = int(runtime.rng.integers(floor, num_colors))
    return resolve_proposals(
        runtime, coloring, proposals, op=op, symmetric=True
    )
