"""Low-degree cluster graphs (Section 9 / Theorem 1.1).

When ``Δ ≤ poly(log n)``, clusters can exchange whole palettes as
``O(Δ)``-bit bitmaps (pipelined), and the algorithm is the classic
shattering framework:

1. **Shattering** -- ``O(log log n)`` rounds of trying a uniform color from
   the *exact* current palette ([BEPS16]); the uncolored remainder shatters
   into ``poly log n``-sized components w.h.p.
2. **SmallInstanceColoring** -- each component finishes independently.
   Substitution (DESIGN.md 3.4): instead of the Ghaffari-Kuhn rounding of
   Lemma 9.1 we run local-minima greedy -- every round, each uncolored
   vertex that holds the smallest ID among its uncolored neighbors takes
   its smallest free color.  This is a *bona fide* distributed algorithm in
   the same model (one palette bitmap per round) whose measured round count
   on the shattered components is reported by Experiment E2 in place of the
   paper's ``O(log N log^6 log n)``.

The paper's poly-logarithmic regime (Algorithms 13-15) interpolates by
running the dense machinery first; our pipeline handles that by regime
dispatch in :mod:`repro.coloring.pipeline`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import PartialColoring
from repro.coloring.try_color import palette_sampler, try_color_round
from repro.graphcore import batch_used_color_masks, csr_of, gather_neighborhoods


def shattering(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: list[int],
    *,
    rounds: int | None = None,
    op: str = "shattering",
) -> list[int]:
    """Phase 1: ``O(log log n)`` exact-palette random trials.

    Each round costs one palette-bitmap exchange (``Δ+1`` bits, pipelined)
    plus the TryColor resolution; returns the uncolored remainder.
    """
    if rounds is None:
        loglog = math.log2(max(2.0, math.log2(max(runtime.n, 4))))
        rounds = max(4, int(math.ceil(2 * loglog)) + 2)
    sampler = palette_sampler(runtime, coloring)
    remaining = [v for v in vertices if not coloring.is_colored(v)]
    for _ in range(rounds):
        if not remaining:
            break
        runtime.wide_message(op + "_palette", coloring.num_colors)
        try_color_round(runtime, coloring, remaining, sampler, op=op)
        remaining = [v for v in remaining if not coloring.is_colored(v)]
    return remaining


def uncolored_components(graph, coloring: PartialColoring, vertices: list[int]) -> list[list[int]]:
    """Connected components of the subgraph induced by uncolored vertices --
    the shattered pieces whose size Experiment E2 reports."""
    pending = set(v for v in vertices if not coloring.is_colored(v))
    components: list[list[int]] = []
    while pending:
        start = next(iter(pending))
        comp = [start]
        pending.discard(start)
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for w in graph.neighbors(u):
                    if w in pending:
                        pending.discard(w)
                        comp.append(w)
                        nxt.append(w)
            frontier = nxt
        components.append(sorted(comp))
    return components


def small_instance_coloring(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    components: list[list[int]],
    *,
    op: str = "small_instances",
    max_rounds: int | None = None,
) -> list[int]:
    """Phase 2: finish each shattered component (Lemma 9.1 stand-in).

    Local-minima greedy: a vertex whose ID is smallest among its uncolored
    neighbors takes its smallest free color.  Components proceed in
    parallel; each round is one palette-bitmap exchange.  Terminates in at
    most ``max component size`` rounds (every round colors all local
    minima, of which each component has at least one).
    """
    graph = runtime.graph
    csr = csr_of(graph)
    pending = [v for comp in components for v in comp if not coloring.is_colored(v)]
    if max_rounds is None:
        max_rounds = max((len(c) for c in components), default=0) + 1
    for _ in range(max_rounds):
        if not pending:
            break
        pending_arr = np.asarray(pending, dtype=np.int64)
        pending_mask = np.zeros(graph.n_vertices, dtype=bool)
        pending_mask[pending_arr] = True
        # local minima: no smaller-ID uncolored neighbor (one CSR gather)
        seg_ids, flat = gather_neighborhoods(csr, pending_arr)
        smaller_active = pending_mask[flat] & (flat < pending_arr[seg_ids])
        has_smaller = (
            np.bincount(seg_ids[smaller_active], minlength=pending_arr.size) > 0
        )
        minima = pending_arr[~has_smaller]
        # each minimum takes its smallest free color (round-start state,
        # exactly the deferred-assignment semantics of the loop this
        # replaces: minima are pairwise non-adjacent)
        free_masks = ~batch_used_color_masks(
            csr, coloring.colors, minima, coloring.num_colors
        )
        has_free = free_masks.any(axis=1)
        first_free = np.argmax(free_masks, axis=1)
        for v, ok, c in zip(minima, has_free, first_free):
            if ok:
                coloring.assign(int(v), int(c))
        runtime.wide_message(op + "_palette", coloring.num_colors)
        runtime.h_rounds(op, count=1, bits=runtime.color_bits)
        pending = [v for v in pending if not coloring.is_colored(v)]
    return pending


def color_low_degree(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: list[int] | None = None,
    *,
    op: str = "low_degree",
) -> dict:
    """The full Section 9 path; returns shattering statistics
    (component count/sizes) for Experiment E2.
    """
    graph = runtime.graph
    if vertices is None:
        vertices = list(range(graph.n_vertices))
    remaining = shattering(runtime, coloring, vertices, op=op + "_shatter")
    components = uncolored_components(graph, coloring, remaining)
    stuck = small_instance_coloring(runtime, coloring, components, op=op + "_finish")
    return {
        "post_shattering_uncolored": len(remaining),
        "num_components": len(components),
        "max_component": max((len(c) for c in components), default=0),
        "stuck": stuck,
    }
