"""Relay assignment for anti-edges in the low-degree regime (Lemma 9.2).

When ``Δ`` is too small for per-trial random groups (the ``Δ ≫ k log n``
hierarchy of Section 6 fails), each matched anti-edge instead gets a
dedicated *relay*: a vertex adjacent to both endpoints that forwards their
coordination messages.  Lemma 9.2 obtains relays via a maximal matching in
the bipartite graph (anti-edges) x (sampled vertices); the paper plugs in
Fischer's deterministic CONGEST algorithm, we use the classic randomized
proposal rounds (Israeli-Itai style) -- same model, measured rounds.
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime


def eligible_relays(graph, members: list[int], pair: tuple[int, int]) -> list[int]:
    """Vertices of ``K`` adjacent to both endpoints of an anti-edge."""
    u, w = pair
    nu = graph.neighbor_set(u)
    nw = graph.neighbor_set(w)
    return [x for x in members if x != u and x != w and x in nu and x in nw]


def find_relays(
    runtime: ClusterRuntime,
    members: list[int],
    anti_edges: list[tuple[int, int]],
    *,
    sample_factor: float = 3.0,
    max_rounds: int = 64,
    op: str = "relays",
) -> dict[int, int]:
    """Assign a distinct relay to each anti-edge (Lemma 9.2).

    Vertices are sampled w.p. ``~ sample_factor * k / Δ``; unmatched
    anti-edges then propose to a uniform eligible sampled relay each round
    and every relay accepts its smallest proposer -- a randomized maximal
    matching that terminates in ``O(log)`` rounds w.h.p.

    Returns ``anti-edge index -> relay vertex``; anti-edges that cannot be
    matched (no eligible sampled relay) are simply absent, which is safe --
    a smaller anti-edge matching still yields a valid colorful matching.
    """
    graph = runtime.graph
    k = len(anti_edges)
    if k == 0:
        return {}
    delta = max(1, graph.max_degree)
    p = min(1.0, sample_factor * k / delta)
    sampled = {v for v in members if runtime.rng.random() < p}
    runtime.h_rounds(op + "_sample", count=1)

    candidates: dict[int, list[int]] = {}
    for i, pair in enumerate(anti_edges):
        pool = [x for x in eligible_relays(graph, members, pair) if x in sampled]
        if pool:
            candidates[i] = pool

    assignment: dict[int, int] = {}
    taken: set[int] = set()
    pending = sorted(candidates)
    rounds = 0
    while pending and rounds < max_rounds:
        rounds += 1
        proposals: dict[int, list[int]] = {}
        still: list[int] = []
        for i in pending:
            pool = [x for x in candidates[i] if x not in taken]
            if not pool:
                continue  # exhausted: drop this anti-edge
            choice = pool[int(runtime.rng.integers(0, len(pool)))]
            proposals.setdefault(choice, []).append(i)
        for relay, proposers in proposals.items():
            winner = min(proposers)
            assignment[winner] = relay
            taken.add(relay)
            for i in proposers:
                if i != winner:
                    still.append(i)
        pending = [i for i in still if i not in assignment]
        runtime.h_rounds(op + "_round", count=2, bits=runtime.id_bits)
    return assignment
