"""Clique-palette queries (Lemma 4.8).

A vertex of a cluster graph cannot learn its own palette (Figure 2), but the
clique palette ``L_φ(K) = [Δ+1] \\ φ(K)`` is queryable as a distributed data
structure: counting colors in a range, or fetching the ``i``-th color of the
range, each take ``O(1)`` rounds (binary search over prefix sums maintained
on a BFS tree of ``K``).

This module wraps :class:`repro.coloring.types.CliquePaletteView` with the
round charges of the lemma.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import CliquePaletteView, PartialColoring


def palette_view(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    members: list[int],
    *,
    op: str = "clique_palette",
) -> CliquePaletteView:
    """Snapshot ``L_φ(K)`` (one convergecast+broadcast pair over the clique's
    BFS tree; all cliques may do this in parallel since they are disjoint).
    """
    runtime.h_rounds(op, count=2)
    return CliquePaletteView.build(coloring, members)


def query_ith_free(
    runtime: ClusterRuntime,
    view: CliquePaletteView,
    i: int,
    *,
    floor: int = 0,
    op: str = "palette_query",
) -> int | None:
    """The ``i``-th color of ``L_φ(K) \\ [floor]`` or None if out of range
    (Lemma 4.8 case 2; ``O(1)`` rounds).
    """
    runtime.h_rounds(op, count=1)
    free = view.free_above(floor)
    if i < 0 or i >= free.size:
        return None
    return int(free[i])


def sample_free_colors(
    runtime: ClusterRuntime,
    view: CliquePaletteView,
    how_many: int,
    *,
    floor: int = 0,
    replace: bool = True,
    op: str = "palette_sample",
) -> np.ndarray:
    """Uniform colors from ``L_φ(K) \\ [floor]`` via index queries.

    Sampling an index is local randomness; resolving it to a color is one
    query (all resolved in one batched round here, message width
    ``O(how_many * log Δ)`` pipelined).
    """
    free = view.free_above(floor)
    if free.size == 0:
        return np.zeros(0, dtype=np.int64)
    idx = runtime.rng.integers(0, free.size, size=how_many) if replace else (
        runtime.rng.permutation(free.size)[: min(how_many, free.size)]
    )
    runtime.wide_message(op, bits=max(1, how_many) * runtime.color_bits)
    return free[idx]
