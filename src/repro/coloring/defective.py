"""Weighted defective coloring (Definition 9.5 / Lemma 9.6's tool).

A weighted ``δ``-relative ``q``-coloring lets every vertex keep at most a
``δ`` fraction of its incident edge weight monochromatic.  The
Ghaffari-Kuhn local rounding (Section 9.4) consumes such colorings to
serialize its label updates; we provide the classic local-search
construction: start from a random ``q``-coloring and let over-defective
vertices move to their least-loaded color class, a potential-function
argument making global monochromatic weight strictly decrease.

This is a real distributed algorithm in the model (each round exchanges
one color, ``O(log q)`` bits) and is exercised by the small-instance
finisher's tests; the full GK rounding is substituted per DESIGN.md §3.4.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.aggregation.runtime import ClusterRuntime


def weighted_defect(graph, colors: np.ndarray, weights: Mapping, v: int) -> float:
    """``sum of w(uv) over same-colored neighbors`` (Definition 9.5 LHS)."""
    total = 0.0
    for u in graph.neighbors(v):
        if colors[u] == colors[v]:
            total += weights.get((min(u, v), max(u, v)), 1.0)
    return total


def incident_weight(graph, weights: Mapping, v: int) -> float:
    """``sum of w(uv) over all neighbors`` (Definition 9.5 RHS)."""
    return sum(
        weights.get((min(u, v), max(u, v)), 1.0) for u in graph.neighbors(v)
    )


def weighted_defective_coloring(
    runtime: ClusterRuntime,
    q: int,
    delta_rel: float,
    weights: Mapping | None = None,
    *,
    max_rounds: int = 200,
    op: str = "defective",
) -> np.ndarray:
    """Compute a weighted ``delta_rel``-relative ``q``-coloring.

    Local search: every round, each vertex whose monochromatic weight
    exceeds ``delta_rel`` times its incident weight proposes to move to its
    least-loaded color class; moves commit by smaller-ID priority among
    adjacent movers (so the potential -- total monochromatic weight --
    strictly decreases).  Terminates when no vertex is over budget.

    Feasibility: with ``q >= 2/delta_rel`` every vertex's least-loaded class
    carries at most ``(1/q) <= delta_rel/2`` of its weight, so local search
    cannot get stuck; we assert the precondition.
    """
    if q < 2:
        raise ValueError("need at least 2 colors")
    if q * delta_rel < 1.0:
        raise ValueError(
            f"q={q} colors cannot achieve relative defect {delta_rel}: "
            f"need q >= 1/delta"
        )
    graph = runtime.graph
    n = graph.n_vertices
    weights = weights or {}
    colors = runtime.rng.integers(0, q, size=n)

    for _ in range(max_rounds):
        movers: list[tuple[int, int]] = []
        for v in range(n):
            incident = incident_weight(graph, weights, v)
            if incident == 0:
                continue
            if weighted_defect(graph, colors, weights, v) <= delta_rel * incident:
                continue
            load = np.zeros(q)
            for u in graph.neighbors(v):
                load[colors[u]] += weights.get((min(u, v), max(u, v)), 1.0)
            best = int(np.argmin(load))
            if best != colors[v] and load[best] < weighted_defect(
                graph, colors, weights, v
            ):
                movers.append((v, best))
        if not movers:
            break
        moving = {v for v, _c in movers}
        for v, c in movers:
            # smaller-ID priority among adjacent movers keeps the potential
            # argument intact under simultaneous moves
            if any(u in moving and u < v for u in graph.neighbors(v)):
                continue
            colors[v] = c
        runtime.h_rounds(op, count=2, bits=max(1, int(np.ceil(np.log2(q)))))
    return colors


def max_relative_defect(graph, colors: np.ndarray, weights: Mapping | None = None) -> float:
    """The worst ``defect/incident`` ratio over all vertices (validation)."""
    weights = weights or {}
    worst = 0.0
    for v in range(graph.n_vertices):
        incident = incident_weight(graph, weights, v)
        if incident == 0:
            continue
        worst = max(worst, weighted_defect(graph, colors, weights, v) / incident)
    return worst
