"""The (Δ+1)-coloring engine: Sections 4, 6, 7, 8, 9 of the paper."""

from repro.coloring.types import UNCOLORED, CliquePaletteView, PartialColoring
from repro.coloring.errors import StageFailure
from repro.coloring.stats import ColoringResult, ColoringStats
from repro.coloring.pipeline import color_cluster_graph, fallback_color
from repro.coloring.polylog import color_polylog
from repro.coloring.relays import find_relays
from repro.coloring.defective import weighted_defective_coloring

__all__ = [
    "UNCOLORED",
    "CliquePaletteView",
    "PartialColoring",
    "StageFailure",
    "ColoringResult",
    "ColoringStats",
    "color_cluster_graph",
    "fallback_color",
    "color_polylog",
    "find_relays",
    "weighted_defective_coloring",
]
