"""The (Δ+1)-coloring engine: Sections 4, 6, 7, 8, 9 of the paper.

The engine symbols (``color_cluster_graph`` and friends) are exported
lazily (PEP 562): the engine imports :mod:`repro.decomposition`, which in
turn reaches :mod:`repro.aggregation` and -- through the shared
``PartialColoring`` vocabulary in :mod:`repro.coloring.types` -- back into
this package.  Resolving the pipeline on first attribute access instead of
at package-import time keeps that cycle open: importing *any* ``repro.*``
package first (including ``repro.decomposition``) now works in isolation
(``tests/test_imports.py`` pins this).
"""

from repro.coloring.types import UNCOLORED, CliquePaletteView, PartialColoring
from repro.coloring.errors import StageFailure
from repro.coloring.stats import ColoringResult, ColoringStats

#: Engine symbols resolved on first access: name -> (module, attribute).
_LAZY_EXPORTS = {
    "color_cluster_graph": ("repro.coloring.pipeline", "color_cluster_graph"),
    "fallback_color": ("repro.coloring.pipeline", "fallback_color"),
    "color_polylog": ("repro.coloring.polylog", "color_polylog"),
    "find_relays": ("repro.coloring.relays", "find_relays"),
    "weighted_defective_coloring": (
        "repro.coloring.defective",
        "weighted_defective_coloring",
    ),
}

__all__ = [
    "UNCOLORED",
    "CliquePaletteView",
    "PartialColoring",
    "StageFailure",
    "ColoringResult",
    "ColoringStats",
    "color_cluster_graph",
    "fallback_color",
    "color_polylog",
    "find_relays",
    "weighted_defective_coloring",
]


def __getattr__(name: str):
    """Resolve an engine symbol on first access (PEP 562 lazy export)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: __getattr__ only fires on misses
    return value


def __dir__() -> list[str]:
    """Advertise lazy exports alongside the eagerly bound names."""
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
