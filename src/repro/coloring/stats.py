"""Execution statistics of a coloring run.

The theorems bound rounds; the experiments need those counts broken down by
stage, along with every fallback taken, so a run that silently degraded is
visible in benchmark output (DESIGN.md 3.3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.network.ledger import BandwidthLedger, LedgerSnapshot


@dataclass
class ColoringStats:
    """Round/bit counters per stage plus degradation bookkeeping."""

    stage_rounds: dict[str, int] = field(default_factory=dict)
    fallbacks: Counter = field(default_factory=Counter)
    retries: Counter = field(default_factory=Counter)
    regime: str = ""
    notes: list[str] = field(default_factory=list)

    def record_stage(
        self, name: str, before: LedgerSnapshot, ledger: BandwidthLedger
    ) -> None:
        """Attribute the rounds accumulated since ``before`` to ``name``."""
        diff = before.diff(ledger.snapshot())
        self.stage_rounds[name] = self.stage_rounds.get(name, 0) + diff.rounds_h

    def record_fallback(self, stage: str, count: int = 1) -> None:
        """A stage degraded to the fallback path ``count`` times."""
        self.fallbacks[stage] += count

    def record_retry(self, stage: str) -> None:
        """A stage retried after missing its postcondition."""
        self.retries[stage] += 1

    @property
    def total_rounds(self) -> int:
        """Sum of per-stage H-rounds."""
        return sum(self.stage_rounds.values())

    def summary(self) -> dict:
        """Plain-dict view for experiment records."""
        return {
            "stage_rounds": dict(self.stage_rounds),
            "total_rounds": self.total_rounds,
            "fallbacks": dict(self.fallbacks),
            "retries": dict(self.retries),
            "regime": self.regime,
        }


@dataclass
class ColoringResult:
    """The output of the end-to-end pipeline.

    ``backend_summary`` is ``None`` for serial executions; sharded runs
    carry the exchange-ledger totals of their cross-shard boundary traffic
    (see :meth:`repro.parallel.backend.ExecutionBackend.exchange_summary`).
    """

    colors: np.ndarray
    num_colors: int
    stats: ColoringStats
    ledger_summary: dict
    proper: bool
    seed: int
    params_name: str
    backend_summary: dict | None = None

    @property
    def rounds_h(self) -> int:
        """Headline round count (broadcast-and-aggregate units; the number
        Theorems 1.1/1.2 bound up to the hidden dilation factor)."""
        return int(self.ledger_summary.get("rounds_h", 0))

    @property
    def rounds_g(self) -> int:
        """Underlying network rounds (includes the dilation factor)."""
        return int(self.ledger_summary.get("rounds_g", 0))
