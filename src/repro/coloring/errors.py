"""Stage failures and the fallback discipline (DESIGN.md 3.3).

"W.h.p." events fail at finite scale.  A stage that cannot meet its
postcondition raises :class:`StageFailure`; the caller retries up to
``params.max_stage_retries`` times and then degrades to the always-correct
random-trial loop for the affected vertices, recording the event so
benchmark output shows any degradation instead of hiding it.
"""

from __future__ import annotations


class StageFailure(RuntimeError):
    """A pipeline stage missed its w.h.p. postcondition.

    Attributes
    ----------
    stage:
        Stage label (matches the ledger's op names).
    affected:
        Vertices the fallback must take over (may be empty).
    """

    def __init__(self, stage: str, message: str, affected: list[int] | None = None):
        super().__init__(f"{stage}: {message}")
        self.stage = stage
        self.affected = affected or []
