"""Coloring put-aside sets by color donation (Section 7, Algorithms 8-10).

Once everything but the put-aside sets is colored, a cabal's machines may be
connected to the outside world through a single ``O(log n)``-bit link
(Figure 3), so a put-aside vertex cannot *search* for a free color.  Instead
already-colored vertices donate:

    replacement color  ->  donor  ->  put-aside vertex

a three-way matching (Figure 4) built in four steps:

1. **TryFreeColors** -- if the clique palette still has ``>= ell_s`` free
   colors, put-aside vertices simply sample them (hash-compressed queries).
2. **FindCandidateDonors** (Algorithm 9) -- colored inliers holding a color
   unique in ``K``, with no (active or put-aside) foreign neighbors, so each
   cabal recolors independently.
3. **FindSafeDonors** (Algorithm 10) -- for each put-aside vertex ``u_i``, a
   replacement color ``c_i`` from the clique palette and a set ``S_i`` of
   candidate donors who (a) can themselves move to ``c_i`` and (b) hold
   colors from one contiguous *block* of the color space, so a handful of
   donations fits in one ``O(log n)``-bit message (block index + offsets).
4. **DonateColors** -- ``u_i`` samples ``k = Θ(log n/loglog n)`` donations
   from ``S_i`` and takes the first whose color no external neighbor uses;
   the donor moves to ``c_i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.clique_palette import palette_view
from repro.coloring.errors import StageFailure
from repro.coloring.types import CliquePaletteView, PartialColoring, UNCOLORED
from repro.graphcore import batch_conflict_mask, batch_label_mismatch_counts, csr_of
from repro.sketch.fingerprint import batch_count_estimates


@dataclass
class CabalPlan:
    """Inputs Section 7 needs for one cabal."""

    clique_index: int
    members: list[int]
    put_aside: list[int]
    inliers: list[int]


def _colors_in_clique(coloring: PartialColoring, members: list[int]) -> dict[int, int]:
    """Multiplicity of each color inside ``K`` (for uniqueness tests --
    implemented distributedly by random groups doing min-ID scans)."""
    cols = coloring.colors[np.asarray(members, dtype=np.int64)]
    used = cols[cols != UNCOLORED]
    values, counts = np.unique(used, return_counts=True)
    return dict(zip(values.tolist(), counts.tolist()))


def try_free_colors(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    plan: CabalPlan,
    view: CliquePaletteView,
    ell_s: int,
    *,
    op: str = "try_free_colors",
) -> list[int]:
    """Step 2 of Algorithm 8: the clique palette is rich, so put-aside
    vertices sample from its ``ell_s`` smallest colors (hash-compressed in
    the paper; the message is ``k * O(loglog n) = O(log n)`` bits).

    Returns vertices still uncolored (empty w.h.p.).
    """
    k = runtime.params.donation_samples(runtime.n)
    window = view.free[: min(ell_s, view.size)]
    taken: set[int] = set()
    leftover: list[int] = []
    for u in plan.put_aside:
        if coloring.is_colored(u):
            continue
        # one neighbor-color gather per put-aside vertex instead of one
        # per sampled color (no assignments happen between the k probes)
        ncols = coloring.neighbor_colors(runtime.graph, u)
        used = set(ncols[ncols != UNCOLORED].tolist())
        picks = runtime.rng.integers(0, max(1, window.size), size=k)
        chosen = None
        for i in picks:
            c = int(window[int(i)])
            if c in taken:
                continue
            if c not in used:
                chosen = c
                break
        if chosen is None:
            leftover.append(u)
        else:
            taken.add(chosen)
            coloring.assign(u, chosen)
    runtime.h_rounds(op, count=2, bits=runtime.id_bits)
    return leftover


def find_candidate_donors(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    plans: list[CabalPlan],
    *,
    op: str = "candidate_donors",
) -> dict[int, list[int]]:
    """Algorithm 9: candidate donor sets ``Q_K``, computed jointly so the
    cross-cabal independence filters see every cabal's choices.
    """
    graph = runtime.graph
    params = runtime.params
    csr = csr_of(graph)
    n_v = graph.n_vertices
    put_aside_owner = np.full(n_v, -1, dtype=np.int64)
    for plan in plans:
        put_aside_owner[plan.put_aside] = plan.clique_index

    # Step 1: colored inliers with no external neighbor in a foreign
    # put-aside set.  Step 2: independent activation.  The foreign-put
    # test is one batched owner-mismatch gather per plan; the activation
    # coins are drawn as one block, which consumes the RNG exactly as the
    # per-vertex coin loop did.
    active_owner = np.full(n_v, -1, dtype=np.int64)
    active_by_plan: dict[int, list[int]] = {}
    color_counts: dict[int, dict[int, int]] = {}
    for plan in plans:
        idx = plan.clique_index
        color_counts[idx] = _colors_in_clique(coloring, plan.members)
        inliers = np.asarray(plan.inliers, dtype=np.int64)
        eligible = coloring.colors[inliers] != UNCOLORED
        eligible &= put_aside_owner[inliers] != idx
        foreign_put = (
            batch_label_mismatch_counts(
                csr, put_aside_owner, inliers,
                ignore_label=-1, own_labels=idx,
            )
            > 0
        )
        pre = inliers[eligible & ~foreign_put].tolist()
        coins = runtime.rng.random(len(pre))
        active = [v for v, coin in zip(pre, coins) if coin < params.donor_activation]
        active_by_plan[idx] = active
        active_owner[active] = idx
    runtime.h_rounds(op + "_activate", count=2)

    # Step 3: keep active vertices whose color is unique in K and who have
    # no *active* external neighbor (again one batched gather per plan).
    result: dict[int, list[int]] = {}
    for plan in plans:
        idx = plan.clique_index
        counts = color_counts[idx]
        active = active_by_plan[idx]
        clash = (
            batch_label_mismatch_counts(
                csr, active_owner, active, ignore_label=-1, own_labels=idx
            )
            > 0
        )
        result[idx] = [
            v
            for v, clashes in zip(active, clash)
            if not clashes and counts.get(coloring.get(v), 0) == 1
        ]
    runtime.h_rounds(op + "_filter", count=2)
    return result


@dataclass
class SafeDonorAssignment:
    """Lemma 7.3's triplet for one put-aside vertex ``u_i``."""

    replacement_color: int
    block_index: int
    donors: list[int]


def find_safe_donors(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    plan: CabalPlan,
    donors_q: list[int],
    view: CliquePaletteView,
    *,
    op: str = "safe_donors",
) -> list[SafeDonorAssignment]:
    """Algorithm 10: replacement colors, blocks and safe-donor sets.

    Raises :class:`StageFailure` if fewer than ``|P_K|`` replacement colors
    reach the ``2 * quota`` estimated-population bar (Step 3's ``beta``).
    """
    graph = runtime.graph
    params = runtime.params
    r = len(plan.put_aside)
    quota = params.donor_quota(runtime.n)
    block = params.donor_block_size(runtime.n, graph.max_degree)

    # Step 1: every candidate donor samples a uniform clique-palette color
    # and keeps it only if it is in its own palette too.  One block draw
    # (RNG stream identical to per-donor draws) + one batched conflict
    # gather; the grouping loop only routes precomputed bits.
    sampled: dict[tuple[int, int], list[int]] = {}  # (color, block_j) -> donors
    if view.size > 0 and donors_q:
        picks = runtime.rng.integers(0, view.size, size=len(donors_q))
        colors_drawn = view.free[picks]
        blocked = batch_conflict_mask(
            csr_of(graph), coloring.colors, donors_q, colors_drawn
        )
        blocks = coloring.colors[np.asarray(donors_q, dtype=np.int64)] // block
        for v, c, j, is_blocked in zip(
            donors_q, colors_drawn.tolist(), blocks.tolist(), blocked
        ):
            if not is_blocked:
                sampled.setdefault((c, j), []).append(v)
    runtime.h_rounds(op + "_sample", count=2, bits=runtime.color_bits)

    # Step 2: random group (c, j) estimates its population by fingerprint
    # (one batched draw + estimate over the groups, in insertion order).
    trials = params.fingerprint_trials(runtime.n, 0.5)
    group_sizes = [len(vs) for vs in sampled.values()]
    estimates = batch_count_estimates(runtime.rng, group_sizes, trials)
    beta = dict(zip(sampled.keys(), estimates.tolist()))
    runtime.wide_message(op + "_beta", 2 * trials + 16)

    # Steps 3-4: per color, the smallest block whose estimate clears the
    # bar; take the first r such colors (prefix sums over a clique tree).
    block_of: dict[int, int] = {}
    for (c, j), estimate in sorted(beta.items()):
        if estimate > 2 * quota and c not in block_of:
            block_of[c] = j
    if len(block_of) < r:
        raise StageFailure(
            op,
            f"cabal {plan.clique_index}: only {len(block_of)} replacement "
            f"colors reached the 2x{quota} donor bar; need {r}",
            affected=plan.put_aside,
        )
    runtime.h_rounds(op + "_select", count=2)
    out: list[SafeDonorAssignment] = []
    for c in sorted(block_of)[:r]:
        j = block_of[c]
        out.append(
            SafeDonorAssignment(
                replacement_color=c, block_index=j, donors=sampled[(c, j)]
            )
        )
    return out


def donate_colors(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    plan: CabalPlan,
    assignments: list[SafeDonorAssignment],
    *,
    op: str = "donate",
) -> list[int]:
    """Step 6 of Algorithm 8: sample donations, commit the double recoloring
    ``φ_total`` of Section 7.1.  Returns put-aside vertices left uncolored
    (empty w.h.p.).

    The ``k`` donation offers fit one ``O(log Δ + k log b)``-bit message
    because all of ``S_i`` holds colors from block ``j_i`` (offsets only).
    """
    graph = runtime.graph
    csr = csr_of(graph)
    k = runtime.params.donation_samples(runtime.n)
    leftover: list[int] = []
    for u, assignment in zip(plan.put_aside, assignments):
        if coloring.is_colored(u):
            continue
        # one batched conflict gather over the candidate donors (the
        # coloring mutates between put-aside vertices, so the mask is
        # rebuilt per ``u`` -- but not per donor)
        donor_arr = np.asarray(assignment.donors, dtype=np.int64)
        donor_blocked = (
            batch_conflict_mask(
                csr,
                coloring.colors,
                donor_arr,
                np.full(donor_arr.size, assignment.replacement_color),
            )
            if donor_arr.size
            else np.empty(0, dtype=bool)
        )
        donors = [
            v
            for v, is_blocked in zip(assignment.donors, donor_blocked)
            if not is_blocked
        ]
        accepted = None
        if donors:
            picks = runtime.rng.integers(0, len(donors), size=k)
            for i in picks:
                v = donors[int(i)]
                c_don = coloring.get(v)
                # acceptable iff no neighbor of u except the donor itself
                # carries c_don (unique in K; externals are the real test)
                nbrs = graph.neighbor_array(u)
                clash = False
                for w in nbrs[coloring.colors[nbrs] == c_don]:
                    if int(w) != v:
                        clash = True
                        break
                if not clash:
                    accepted = (v, c_don)
                    break
        if accepted is None:
            leftover.append(u)
            continue
        v, c_don = accepted
        coloring.recolor(v, assignment.replacement_color)
        coloring.assign(u, c_don)
    runtime.h_rounds(op, count=3, bits=runtime.id_bits)
    return leftover


def color_put_aside_sets(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    plans: list[CabalPlan],
    *,
    op: str = "color_put_aside",
) -> list[int]:
    """ColorPutAsideSets (Algorithm 8) over all cabals; ``O(1)`` rounds.

    Returns the put-aside vertices that could not be colored (empty
    w.h.p.); the caller's fallback handles any leftover.
    """
    params = runtime.params
    ell_s = params.ell_s(runtime.n)
    rich: list[tuple[CabalPlan, CliquePaletteView]] = []
    poor: list[tuple[CabalPlan, CliquePaletteView]] = []
    for plan in plans:
        view = palette_view(runtime, coloring, plan.members, op=op + "_palette")
        if view.size >= ell_s:
            rich.append((plan, view))
        else:
            poor.append((plan, view))

    leftover: list[int] = []
    for plan, view in rich:
        leftover.extend(try_free_colors(runtime, coloring, plan, view, ell_s, op=op))

    if poor:
        donor_sets = find_candidate_donors(
            runtime, coloring, [plan for plan, _ in poor], op=op + "_candidates"
        )
        for plan, view in poor:
            try:
                assignments = find_safe_donors(
                    runtime,
                    coloring,
                    plan,
                    donor_sets.get(plan.clique_index, []),
                    view,
                    op=op + "_safe",
                )
            except StageFailure:
                # Donor populations too thin (possible when |K| is barely
                # above r at laptop scale): degrade to the free-colors path
                # on whatever the clique palette still offers.
                leftover.extend(
                    try_free_colors(
                        runtime, coloring, plan, view, ell_s, op=op + "_free_fb"
                    )
                )
                continue
            leftover.extend(
                donate_colors(runtime, coloring, plan, assignments, op=op + "_donate")
            )
    return leftover
