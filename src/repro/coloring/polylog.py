"""The poly-logarithmic regime (Section 9.2, Algorithms 13-15).

When ``log n ≲ Δ ≤ Δ_low`` the high-degree machinery is overkill (its
w.h.p. events need more headroom than Δ offers) but the structure of
Algorithm 3 still pays: compute the ACD, generate slack outside cabals,
then color **sparse → non-cabal dense → cabal dense**, each group by the
same three-step template (Algorithm 15):

1. *degree reduction* -- ``O(log log n)`` random color trials, sampling
   from the group's natural color space (full palette for sparse/outliers,
   the clique palette for inliers -- queried, never learned);
2. *shattering* -- exact-palette trials (palette bitmaps are affordable,
   ``Δ = poly log n``), leaving polylog-sized components;
3. *small-instance finishing* (the Lemma 9.1 stand-in).

Differences from the ``Δ ≥ Δ_low`` pipeline, as the paper prescribes:
cabals use the ``ℓ = Θ(log n)`` threshold, there are **no put-aside sets**
(slack comes from learning the small clique palette instead), and no
reserved colors.
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.clique_palette import palette_view
from repro.coloring.colorful_matching import colorful_matching
from repro.coloring.low_degree import small_instance_coloring, uncolored_components
from repro.coloring.outliers import inliers_cabal, inliers_noncabal
from repro.coloring.slack import slack_generation
from repro.coloring.stats import ColoringStats
from repro.coloring.try_color import try_color_round, uniform_range_sampler
from repro.coloring.types import PartialColoring, UNCOLORED
from repro.decomposition.acd import AlmostCliqueDecomposition, compute_acd
from repro.decomposition.cabals import annotate_with_cabals


def _degree_reduction_rounds(runtime: ClusterRuntime) -> int:
    """``O(log log n)`` trial rounds (Algorithm 15 step 1)."""
    import math

    loglog = math.log2(max(2.0, math.log2(max(runtime.n, 4))))
    return max(3, int(math.ceil(2 * loglog)))


def _finish_group(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: list[int],
    sampler,
    *,
    op: str,
) -> None:
    """The Algorithm 15 template applied to one vertex group."""
    rounds = _degree_reduction_rounds(runtime)
    remaining = [v for v in vertices if not coloring.is_colored(v)]
    # Step 1: degree reduction with the group's color space.
    for _ in range(rounds):
        if not remaining:
            return
        try_color_round(runtime, coloring, remaining, sampler, op=op + "_reduce")
        remaining = [v for v in remaining if not coloring.is_colored(v)]
    # Step 2: shattering with exact palettes (bitmaps are cheap here).
    from repro.coloring.try_color import palette_sampler

    exact = palette_sampler(runtime, coloring)
    for _ in range(rounds):
        if not remaining:
            return
        runtime.wide_message(op + "_palette", coloring.num_colors)
        try_color_round(runtime, coloring, remaining, exact, op=op + "_shatter")
        remaining = [v for v in remaining if not coloring.is_colored(v)]
    # Step 3: finish the shattered components.
    components = uncolored_components(runtime.graph, coloring, remaining)
    small_instance_coloring(runtime, coloring, components, op=op + "_finish")


def _clique_palette_sampler(runtime, coloring, members):
    """Sample uniformly from ``L_φ(K)`` via Lemma 4.8 queries -- the inlier
    color space of Algorithm 14 (never the full per-vertex palette).

    The distributed structure refreshes once per trial round (all samples of
    a round see the same snapshot); the cache keys on the colored count,
    which only moves between rounds.
    """
    cache: dict = {"count": -1, "view": None}

    def sample(_v: int):
        count = coloring.colored_count()
        if count != cache["count"]:
            cache["count"] = count
            cache["view"] = palette_view(
                runtime, coloring, members, op="polylog_palette"
            )
        view = cache["view"]
        if view.size == 0:
            return None
        return int(view.free[int(runtime.rng.integers(0, view.size))])

    return sample


def color_polylog(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    stats: ColoringStats,
    *,
    op: str = "polylog",
) -> AlmostCliqueDecomposition:
    """Algorithm 13: the full poly-logarithmic-regime pipeline.

    Returns the decomposition (for stats/tests).  Any vertex left uncolored
    is the caller's fallback problem, as in the other regimes.
    """
    graph = runtime.graph
    ledger = runtime.ledger

    before = ledger.snapshot()
    acd = annotate_with_cabals(runtime, compute_acd(runtime))
    stats.record_stage(op + "_acd", before, ledger)

    before = ledger.snapshot()
    non_cabal = [v for v in range(graph.n_vertices) if not acd.is_cabal_vertex(v)]
    slack_generation(runtime, coloring, non_cabal, op=op + "_slack")
    stats.record_stage(op + "_slack", before, ledger)

    # --- sparse vertices -----------------------------------------------------
    before = ledger.snapshot()
    full = uniform_range_sampler(runtime, coloring.num_colors, 0)
    _finish_group(runtime, coloring, acd.sparse, full, op=op + "_sparse")
    stats.record_stage(op + "_sparse", before, ledger)

    # --- dense vertices: non-cabals first, then cabals (Algorithm 13) --------
    gamma = runtime.params.mct_slack_coeff
    for cabal_pass in (False, True):
        label = "_cabals" if cabal_pass else "_noncabals"
        before = ledger.snapshot()
        indices = acd.cabal_indices() if cabal_pass else acd.non_cabal_indices()
        if not indices:
            stats.record_stage(op + label, before, ledger)
            continue
        matching = colorful_matching(
            runtime,
            coloring,
            {idx: acd.cliques[idx] for idx in indices},
            reserved_floor=0,  # no reserved colors in this regime
            rounds=max(4, int(round(1.0 / runtime.params.eps))),
            op=op + label + "_matching",
        )
        for idx in indices:
            members = acd.cliques[idx]
            if cabal_pass:
                inliers, outliers = inliers_cabal(acd, idx)
            else:
                inliers, outliers = inliers_noncabal(
                    acd, graph, idx, matching[idx], gamma
                )
            _finish_group(
                runtime, coloring, outliers, full, op=op + label + "_outliers"
            )
            sampler = _clique_palette_sampler(runtime, coloring, members)
            _finish_group(
                runtime, coloring, inliers, sampler, op=op + label + "_inliers"
            )
        stats.record_stage(op + label, before, ledger)
    return acd
