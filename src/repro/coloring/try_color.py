"""Random color trials: TryColor (Algorithm 17 / Lemma D.3).

One round: active vertices announce a candidate color to their neighbors
(one ``O(log Δ)``-bit H-round), then adopt it unless a *colored* neighbor
already holds it or a *smaller-ID* active neighbor announced the same color
(the paper's tie-break, Algorithm 17 step 4).

Lemma D.3 guarantees a constant-factor drop in uncolored degree per round
whenever palettes retain a ``γ`` fraction of the sampled space; callers loop
:func:`try_color_round` accordingly.  :func:`greedy_finish` is the last-resort
sequential completion used only by the fallback path (and counted as such).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import PartialColoring
from repro.graphcore import csr_of

ColorSampler = Callable[[int], int | None]


def resolve_proposals(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    proposals: dict[int, int],
    *,
    op: str = "try_color",
    symmetric: bool = False,
) -> list[int]:
    """Resolve one round of simultaneous color proposals.

    ``symmetric=True`` uses SlackGeneration's rule (both endpoints of a
    same-color proposal drop); the default is Algorithm 17's smaller-ID-wins
    rule.  Returns the vertices that adopted their proposal.

    Cost: 2 H-rounds (announce, learn outcome), ``O(log Δ)``-bit messages.
    """
    graph = runtime.graph
    adopted: list[int] = []
    if proposals:
        verts = np.fromiter(proposals.keys(), dtype=np.int64, count=len(proposals))
        cands = np.fromiter(proposals.values(), dtype=np.int64, count=len(proposals))
        proposal_arr = np.full(graph.n_vertices, -2, dtype=np.int64)
        proposal_arr[verts] = cands
        blocked = runtime.backend.conflict_mask(
            csr_of(graph),
            coloring.colors,
            verts,
            cands,
            proposal_map=proposal_arr,
            symmetric=symmetric,
        )
        adopted = [int(v) for v in verts[~blocked]]
    for v in adopted:
        coloring.assign(v, proposals[v])
    runtime.h_rounds(op, count=2, bits=runtime.color_bits)
    return adopted


def try_color_round(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: Iterable[int],
    sampler: ColorSampler,
    *,
    activation: float = 1.0,
    op: str = "try_color",
) -> list[int]:
    """One TryColor round (Algorithm 17) over the uncolored members of
    ``vertices``; ``sampler(v)`` draws from ``C(v)``.
    """
    proposals: dict[int, int] = {}
    sample_batch = getattr(sampler, "sample_batch", None)
    if sample_batch is not None and activation >= 1.0:
        # batch samplers draw per vertex in the same order as the loop
        # below would, so the RNG stream (and hence the coloring) is
        # bitwise-identical -- only palette discovery is batched.
        proposals = sample_batch(
            [v for v in vertices if not coloring.is_colored(v)]
        )
    else:
        for v in vertices:
            if coloring.is_colored(v):
                continue
            if activation < 1.0 and runtime.rng.random() >= activation:
                continue
            c = sampler(v)
            if c is not None:
                proposals[v] = int(c)
    if not proposals:
        runtime.h_rounds(op, count=1, bits=runtime.color_bits)
        return []
    return resolve_proposals(runtime, coloring, proposals, op=op)


def uniform_range_sampler(
    runtime: ClusterRuntime, num_colors: int, floor: int = 0
) -> ColorSampler:
    """Sampler for ``C(v) = [q] \\ [floor]`` (uniform non-reserved color)."""

    def sample(_v: int) -> int | None:
        if floor >= num_colors:
            return None
        return int(runtime.rng.integers(floor, num_colors))

    return sample


def palette_sampler(
    runtime: ClusterRuntime, coloring: PartialColoring
) -> ColorSampler:
    """Sampler for ``C(v) = L_φ(v)`` -- only legitimate in the low-degree
    regime, where palettes fit in ``O(log n)``-bit bitmaps (Section 9.1);
    callers there charge the bitmap exchange.

    The returned sampler also carries a ``sample_batch`` attribute:
    :func:`try_color_round` uses it (at full activation) to discover every
    palette in one backend used-color-mask evaluation instead of a
    per-vertex CSR gather, then draws per vertex in the same order the
    per-vertex path would -- same RNG stream, same proposals, just batched
    (and shardable) palette discovery.
    """

    def sample(v: int) -> int | None:
        free = coloring.palette_array(runtime.graph, v)
        if not free.size:
            return None
        return int(free[int(runtime.rng.integers(0, free.size))])

    def sample_batch(vertices: list[int]) -> dict[int, int]:
        if not vertices:
            return {}
        verts = np.asarray(vertices, dtype=np.int64)
        used = runtime.backend.used_color_masks(
            csr_of(runtime.graph), coloring.colors, verts, coloring.num_colors
        )
        proposals: dict[int, int] = {}
        for v, row in zip(vertices, used):
            free = np.flatnonzero(~row)
            if free.size:
                proposals[int(v)] = int(
                    free[int(runtime.rng.integers(0, free.size))]
                )
        return proposals

    sample.sample_batch = sample_batch
    return sample


def try_color_until(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: list[int],
    sampler: ColorSampler,
    *,
    max_rounds: int,
    activation: float = 1.0,
    op: str = "try_color",
) -> list[int]:
    """Loop TryColor rounds until all of ``vertices`` are colored or the
    round budget runs out; returns the still-uncolored leftover.
    """
    remaining = [v for v in vertices if not coloring.is_colored(v)]
    for _ in range(max_rounds):
        if not remaining:
            break
        try_color_round(
            runtime, coloring, remaining, sampler, activation=activation, op=op
        )
        remaining = [v for v in remaining if not coloring.is_colored(v)]
    return remaining


def greedy_finish(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: list[int],
    *,
    op: str = "greedy_finish",
) -> list[int]:
    """Sequential greedy completion -- the fallback of last resort.

    Always succeeds when palettes are ``deg+1``-sized (they are, with
    ``q = Δ+1``).  Charged one H-round per vertex: this is what "give up on
    parallelism" costs, and it shows up in the stats as such.
    """
    stuck: list[int] = []
    for v in vertices:
        if coloring.is_colored(v):
            continue
        free = coloring.palette_array(runtime.graph, v)
        if not free.size:
            stuck.append(v)
            continue
        coloring.assign(v, int(free[0]))
        runtime.h_rounds(op, count=1, bits=runtime.color_bits)
    return stuck
