"""Colorful matching in the densest cabals via fingerprints (Section 6).

When a cabal has ``a_K = O(log n)`` anti-edges on average, random color
trials cannot find them, and no routing scheme can ship palettes through the
cabal's few external links.  Algorithm 7 (FingerprintMatching) instead runs
``k = Θ(log n)`` parallel geometric trials:

* if trial ``i``'s maximum is unique, attained at ``u_i``, then every vertex
  whose neighborhood maximum differs from the cabal maximum is an
  *anti-neighbor* of ``u_i`` -- anti-edges reveal themselves through a
  2-bit-per-trial aggregate;
* a min-wise hash (Definition C.1) run by trial ``i``'s random group samples
  a near-uniform anti-neighbor ``w_i``;
* trials are de-duplicated so ``{(u_i, w_i)}`` forms a matching
  (Lemma 6.2: size ``≥ τ â_K/(4ε)`` w.h.p.).

Algorithm 6 then colors each anti-edge pair with a common non-reserved
color, assisted by random groups (MultiColorTrial semantics on anti-edge
super-vertices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aggregation.groups import random_groups
from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import PartialColoring
from repro.sketch.fingerprint import FingerprintTable
from repro.sketch.minwise import MinwiseHash, sample_minwise


@dataclass
class AntiEdgeMatching:
    """The matching Algorithm 7 discovers in one cabal."""

    clique_index: int
    pairs: list[tuple[int, int]]  # (u_i, w_i) anti-edges

    @property
    def size(self) -> int:
        """Number of matched anti-edges."""
        return len(self.pairs)


def matching_trial_count(runtime: ClusterRuntime, clique_size: int) -> int:
    """Number of parallel trials ``k``.

    Paper: ``k = 6 C log n/(ε τ)`` with ``Δ ≫ k log n``.  At laptop scale
    ``k`` is additionally capped at ``|K|/3`` so the per-trial random groups
    (Lemma 4.4) still exist; the success analysis only needs
    ``k ≥ Θ(â_K / (ε τ))`` matched-pair opportunities, which planted cabals
    meet comfortably under the cap.
    """
    params = runtime.params
    base = max(2.0, np.log2(max(runtime.n, 2)))
    raw = int(np.ceil(3.0 * base / params.eps))
    return max(4, min(raw, clique_size // 3))


def fingerprint_matching(
    runtime: ClusterRuntime,
    clique_index: int,
    members: list[int],
    *,
    op: str = "fingerprint_matching",
) -> AntiEdgeMatching:
    """Algorithm 7: find a matching of anti-edges inside one cabal.

    Cost: ``O(1/eps^2)`` rounds -- ``k``-trial fingerprints are pipelined
    with the Lemma 5.6 encoding, and every filtering step is a ``k``-bitmap
    aggregation over a BFS tree of ``K``.
    """
    graph = runtime.graph
    k = matching_trial_count(runtime, len(members))
    member_arr = list(members)
    index_of = {v: i for i, v in enumerate(member_arr)}

    # Step 2: per-vertex geometric variables and the clique-wide maxima.
    table = FingerprintTable(len(member_arr), k, runtime.rng)
    values, argmax_local, unique = table.argmax_per_trial(range(len(member_arr)))
    runtime.wide_message(op + "_fingerprints", 2 * k + 16)
    # Step 3: local identifiers via prefix sums (charged as one tree pass).
    runtime.h_rounds(op + "_local_ids", count=2)

    # Step 4: eligible trials.  With a unique maximum at u_i, the detected
    # anti-neighbor set A_i = K \ (N(u_i) ∪ {u_i}) -- exactly the vertices
    # whose neighborhood maximum differs from the clique maximum.
    member_set = set(member_arr)
    used_as_max: set[int] = set()
    eligible: list[tuple[int, int, list[int]]] = []  # (trial, u_i, A_i)
    for i in range(k):
        if not unique[i]:
            continue
        u_i = member_arr[int(argmax_local[i])]
        if u_i in used_as_max:
            continue
        anti = graph.anti_neighbors_within(u_i, member_set)
        if not anti:
            continue
        used_as_max.add(u_i)
        eligible.append((i, u_i, anti))
    runtime.wide_message(op + "_trial_filter", k)

    # Steps 5-9: random groups relay min-wise sampling per trial.
    if eligible:
        random_groups(runtime, member_arr, max(1, k), verify=False, op=op + "_groups")
    chosen: list[tuple[int, int, int]] = []  # (trial, u_i, w_i)
    for i, u_i, anti in eligible:
        h: MinwiseHash = sample_minwise(runtime.rng)
        w_i = h.argmin(index_of[w] for w in anti)
        chosen.append((i, u_i, member_arr[int(w_i)]))
    runtime.wide_message(op + "_minwise", k)

    # Step 10: drop trials whose maximum was sampled as an anti-neighbor
    # elsewhere; Step 11: each w keeps one trial.
    sampled_ws = {w for (_i, _u, w) in chosen}
    first_by_w: dict[int, tuple[int, int]] = {}
    for i, u, w in chosen:
        if u in sampled_ws:
            continue
        if w not in first_by_w:
            first_by_w[w] = (i, u)
    runtime.wide_message(op + "_dedup", k)
    pairs = [(u, w) for w, (_i, u) in sorted(first_by_w.items(), key=lambda kv: kv[1][0])]
    return AntiEdgeMatching(clique_index=clique_index, pairs=pairs)


def color_anti_edge_matching(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    matchings: list[AntiEdgeMatching],
    *,
    reserved_floor: int,
    max_rounds: int = 24,
    members_by_clique: dict[int, list[int]] | None = None,
    op: str = "matching_color",
) -> dict[int, int]:
    """Algorithm 6, coloring step: give each matched anti-edge a common
    non-reserved color (random trials on anti-edge super-vertices, relayed
    by random groups; ``O(1) + O(log* n)`` rounds).

    Returns ``clique_index -> M_K`` (pairs actually colored).  Pairs that
    fail to color within the budget are dropped -- a smaller matching is
    always safe.
    """
    graph = runtime.graph
    num_colors = coloring.num_colors
    colored: dict[int, int] = {m.clique_index: 0 for m in matchings}
    pending: list[tuple[int, int, int]] = [
        (m.clique_index, u, w)
        for m in matchings
        for (u, w) in m.pairs
        if not coloring.is_colored(u) and not coloring.is_colored(w)
    ]
    # Low-degree regime (Section 9.3): random groups need Delta >> k log n;
    # below that, each anti-edge coordinates through a dedicated relay
    # (Lemma 9.2).  Unrelayable pairs are dropped -- smaller matchings are
    # always safe.
    import math

    k_total = len(pending)
    if k_total and graph.max_degree < k_total * math.log2(max(runtime.n, 4)):
        from repro.coloring.relays import find_relays

        kept: list[tuple[int, int, int]] = []
        for m in matchings:
            pairs = [(u, w) for (idx, u, w) in pending if idx == m.clique_index]
            if not pairs:
                continue
            if members_by_clique and m.clique_index in members_by_clique:
                members = members_by_clique[m.clique_index]
            else:
                # relays sit in both endpoints' neighborhoods; the union of
                # the endpoints' neighborhoods over-approximates K safely
                members = sorted(
                    set().union(
                        *(set(graph.neighbors(u)) | {u} for u, _ in pairs)
                    )
                )
            relays = find_relays(runtime, members, pairs, op=op + "_relays")
            for j, (u, w) in enumerate(pairs):
                if j in relays:
                    kept.append((m.clique_index, u, w))
        pending = kept
    for _ in range(max_rounds):
        if not pending:
            break
        proposals: list[tuple[int, int, int, int]] = []
        for idx, u, w in pending:
            c = int(runtime.rng.integers(reserved_floor, num_colors))
            proposals.append((idx, u, w, c))
        runtime.h_rounds(op, count=2, bits=runtime.color_bits)
        taken: dict[int, list[int]] = {}  # color -> endpoint vertices committed
        next_pending: list[tuple[int, int, int]] = []
        for idx, u, w, c in proposals:
            ok = coloring.is_free_for(graph, u, c) and coloring.is_free_for(
                graph, w, c
            )
            if ok:
                for x in taken.get(c, ()):
                    if graph.are_adjacent(x, u) or graph.are_adjacent(x, w):
                        ok = False
                        break
            if ok:
                coloring.assign(u, c)
                coloring.assign(w, c)
                taken.setdefault(c, []).extend((u, w))
                colored[idx] += 1
            else:
                next_pending.append((idx, u, w))
        pending = next_pending
    return colored
