"""Inlier/outlier classification (Equation (4), Lemmas 4.10 and 4.16).

Outliers -- vertices whose external or (proxied) anti-degree is far above
their clique's average -- may lack the slack later stages rely on, so they
are colored early, while uncolored inliers still provide ``Ω(Δ)`` temporary
slack.

Cluster graphs cannot approximate anti-degrees, so non-cabals use the proxy
``x_v = |K| - (Δ+1) + e~_v`` (Equation (3)) against the colorful-matching
size: ``I_K = {v : e~_v ≤ 20 e~_K and x_v ≤ M_K/2 + (γ/8) e~_K}``.
Cabals only filter on external degree (Lemma 4.16), since put-aside sets
manufacture the slack the proxy would certify.
"""

from __future__ import annotations

from repro.decomposition.acd import AlmostCliqueDecomposition

EXTERNAL_MULT = 20.0  # the "20 e~_K" of Equation (4)


def inliers_noncabal(
    acd: AlmostCliqueDecomposition,
    graph,
    clique_index: int,
    matching_size: int,
    gamma: float,
) -> tuple[list[int], list[int]]:
    """Split a non-cabal into (inliers, outliers) per Equation (4)."""
    members = acd.cliques[clique_index]
    e_avg = acd.e_tilde_clique[clique_index]
    k_size = len(members)
    delta = graph.max_degree
    threshold_x = matching_size / 2.0 + (gamma / 8.0) * e_avg
    inliers: list[int] = []
    outliers: list[int] = []
    for v in members:
        e_v = acd.e_tilde[v]
        x_v = k_size - (delta + 1) + e_v
        if e_v <= EXTERNAL_MULT * max(e_avg, 1e-9) and x_v <= threshold_x:
            inliers.append(v)
        else:
            outliers.append(v)
    return inliers, outliers


def inliers_cabal(
    acd: AlmostCliqueDecomposition, clique_index: int
) -> tuple[list[int], list[int]]:
    """Split a cabal into (inliers, outliers): external degree only
    (Lemma 4.16 gives ``|I_K| ≥ 0.9 Δ`` by Markov)."""
    members = acd.cliques[clique_index]
    e_avg = acd.e_tilde_clique[clique_index]
    inliers: list[int] = []
    outliers: list[int] = []
    for v in members:
        if acd.e_tilde[v] <= EXTERNAL_MULT * max(e_avg, 1.0):
            inliers.append(v)
        else:
            outliers.append(v)
    return inliers, outliers
