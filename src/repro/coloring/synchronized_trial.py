"""SynchronizedColorTrial (Lemma 4.13).

Within each almost-clique, uncolored participants are matched one-to-one
with the free colors of the clique palette above the reserved prefix, via a
(pseudo)random permutation sampled by the leader.  Trials inside a clique
are conflict-free by construction; only *external* neighbors can clash, and
Lemma 4.13 bounds the survivors by ``(24/α) max(e_K, ℓ)`` -- even under
adversarial randomness outside the clique.

All cliques run simultaneously; the global conflict resolution is one
TryColor-style round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import CliquePaletteView, PartialColoring
from repro.coloring.try_color import resolve_proposals


@dataclass
class SctPlan:
    """One clique's participation in the synchronized trial.

    ``participants`` must number at most ``|L_φ(K)| - reserved_floor`` free
    colors (the caller sizes ``S_K`` per Proposition 4.6's proof).
    """

    participants: list[int]
    palette: CliquePaletteView
    reserved_floor: int


def synchronized_color_trial(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    plans: list[SctPlan],
    *,
    op: str = "sct",
) -> list[int]:
    """Run the SCT in every planned clique at once; returns the vertices
    that remain uncolored among all participants.

    Cost: ``O(1)`` rounds -- permutation-seed broadcast, local-id prefix
    sums (charged as one tree pass), and one global resolution round.
    """
    proposals: dict[int, int] = {}
    all_participants: list[int] = []
    for plan in plans:
        free = plan.palette.free_above(plan.reserved_floor)
        members = [v for v in plan.participants if not coloring.is_colored(v)]
        if not members:
            continue
        usable = min(len(members), int(free.size))
        members = members[:usable]
        all_participants.extend(plan.participants)
        perm = runtime.rng.permutation(int(free.size))[:usable]
        for vertex, color_idx in zip(members, perm):
            proposals[vertex] = int(free[int(color_idx)])
    # permutation seed + local ids: one broadcast + one prefix-sum pass
    runtime.h_rounds(op + "_setup", count=2, bits=2 * runtime.id_bits)
    if proposals:
        resolve_proposals(runtime, coloring, proposals, op=op)
    return [v for v in all_participants if not coloring.is_colored(v)]
