"""MultiColorTrial (Lemma D.1, via TryPseudorandomColors -- Algorithm 16).

Vertices with slack proportional to their color space get fully colored in
``O(log* n)`` rounds by trying exponentially growing numbers of colors.  A
vertex cannot *list* the colors it tries in one message, so it announces the
index of a pseudorandom *representative set* (Definition C.5) plus how many
of its elements it tries -- ``O(log n)`` bits regardless of the trial size.

Adoption rule (Algorithm 16, step 3): ``v`` takes a color ``c`` from its
trial set if no colored neighbor holds ``c`` and no active neighbor's trial
set contains ``c``.
"""

from __future__ import annotations

from typing import Callable

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.errors import StageFailure
from repro.coloring.types import PartialColoring
from repro.graphcore import csr_of
from repro.params import log_star
from repro.sketch.representative import RepresentativeFamily

ColorSpace = Callable[[int], list[int]]


def _trial_schedule(gamma: float, n: int, max_iters: int) -> list[int]:
    """Exponentially growing trial sizes: 1, 2, 5, 26, ... capped at the
    representative-set size ``Θ(γ^{-1} log n)`` -- the growth that yields
    ``O(log* n)`` iterations (Lemma D.1's analysis).
    """
    cap = RepresentativeFamily.for_multicolor_trial(gamma, n).set_size
    sizes = []
    x = 1
    for _ in range(max_iters):
        sizes.append(min(x, cap))
        x = min(cap, x * x + 1)
    return sizes


def multicolor_trial(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: list[int],
    color_space: ColorSpace,
    *,
    gamma: float | None = None,
    max_iters: int | None = None,
    op: str = "mct",
    raise_on_leftover: bool = True,
) -> list[int]:
    """Color all of ``vertices`` in ``O(log* n)`` rounds, given slack.

    ``color_space(v)`` returns the (current) list ``C(v) ∩ L(v)``-superset
    the vertex samples from; it is re-evaluated each iteration so callers
    can pass live clique-palette views.

    Raises :class:`StageFailure` listing the leftover if the schedule ends
    with uncolored vertices (the caller's fallback takes over), unless
    ``raise_on_leftover`` is False.
    """
    params = runtime.params
    n = runtime.n
    if gamma is None:
        gamma = params.mct_slack_coeff
    if max_iters is None:
        max_iters = 2 * log_star(n) + 10
    family = RepresentativeFamily.for_multicolor_trial(gamma, n)
    graph = runtime.graph
    remaining = [v for v in vertices if not coloring.is_colored(v)]

    for trial_round, x in enumerate(_trial_schedule(gamma, n, max_iters)):
        if not remaining:
            break
        # Each pass gets its own (neutral) tracer span: active frontier in,
        # colored count out, ledger rounds/bits attributed to the pass.
        with runtime.tracer.span(op + ".pass", round=trial_round, trial_size=x) as span:
            span.counter("active", len(remaining))
            trial_sets: dict[int, list[int]] = {}
            tried_by: dict[int, list[int]] = {}
            for v in remaining:
                space = color_space(v)
                if not space:
                    continue
                rep = family.sample(runtime.rng).materialize(list(space))
                trial = rep[: min(x, len(rep))]
                trial_sets[v] = trial
                for c in trial:
                    tried_by.setdefault(c, []).append(v)
            # Announce: (set index, x) per vertex -- O(log n) bits.
            runtime.h_rounds(op, count=2, bits=2 * runtime.id_bits)

            # Pass 1 (Algorithm 16's rule): adopt a trial color no active
            # neighbor even *tried*.  Used-color lookups come from one batched
            # CSR gather over every active vertex; the contention scan stays
            # per-vertex (expected O(1) contenders per color).
            newly: list[tuple[int, int]] = []
            blocked_vertices: list[int] = []
            active = list(trial_sets)
            used_masks = runtime.backend.used_color_masks(
                csr_of(graph), coloring.colors, active, coloring.num_colors
            )
            for row, (v, trial) in zip(used_masks, trial_sets.items()):
                choice = None
                for c in trial:
                    if row[c]:
                        continue
                    blocked = False
                    for u in tried_by.get(c, ()):  # expected O(1) contenders
                        if u != v and graph.are_adjacent(u, v):
                            blocked = True
                            break
                    if not blocked:
                        choice = c
                        break
                if choice is not None:
                    newly.append((v, choice))
                else:
                    blocked_vertices.append(v)
            for v, c in newly:
                coloring.assign(v, c)
            # Pass 2 (smaller-ID priority, Algorithm 17-style): when trial sets
            # saturate the palette the symmetric rule deadlocks; letting the
            # smallest contender win costs one more round and only adds
            # progress, preserving Lemma D.1's guarantee.
            chosen_now: dict[int, list[int]] = {}
            contenders = sorted(blocked_vertices)
            # snapshot used-colors once (post pass-1): colors taken *during*
            # pass 2 are exactly the chosen_now entries, checked by adjacency.
            pass2_masks = runtime.backend.used_color_masks(
                csr_of(graph), coloring.colors, contenders, coloring.num_colors
            )
            for row, v in zip(pass2_masks, contenders):
                if coloring.is_colored(v):
                    continue
                for c in trial_sets[v]:
                    if row[c]:
                        continue
                    if any(
                        graph.are_adjacent(u, v) for u in chosen_now.get(c, ())
                    ):
                        continue
                    coloring.assign(v, c)
                    chosen_now.setdefault(c, []).append(v)
                    break
            runtime.h_rounds(op + "_priority", count=1, bits=runtime.color_bits)
            still = [v for v in remaining if not coloring.is_colored(v)]
            span.counter("colored", len(remaining) - len(still))
            remaining = still

    if remaining and raise_on_leftover:
        raise StageFailure(
            op, f"{len(remaining)} vertices uncolored after trial schedule", remaining
        )
    return remaining
