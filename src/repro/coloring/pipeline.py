"""The end-to-end (Δ+1)-coloring pipeline (Algorithm 3, Theorems 1.1/1.2).

Regime dispatch mirrors the paper: when ``Δ ≥ Δ_low`` the high-degree
``O(log* n)``-round machinery of Section 4 runs; otherwise the shattering
path of Section 9.  Every stage checks its postcondition; a miss triggers
the fallback ladder (retry, then per-component random-trial completion,
then sequential greedy), all recorded in the returned stats so degradation
is visible, never silent (DESIGN.md 3.3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.cabal import color_cabals
from repro.coloring.errors import StageFailure
from repro.coloring.low_degree import color_low_degree
from repro.coloring.multicolor_trial import multicolor_trial
from repro.coloring.noncabal import color_noncabals
from repro.coloring.slack import slack_generation
from repro.coloring.stats import ColoringResult, ColoringStats
from repro.coloring.try_color import (
    greedy_finish,
    palette_sampler,
    try_color_round,
    try_color_until,
    uniform_range_sampler,
)
from repro.coloring.types import PartialColoring
from repro.decomposition.acd import compute_acd
from repro.decomposition.cabals import annotate_with_cabals
from repro.parallel.backend import ExecutionBackend, make_backend
from repro.params import AlgorithmParameters, scaled
from repro.verify.checker import is_proper


def fallback_color(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    vertices: list[int],
    stats: ColoringStats,
    stage: str,
) -> None:
    """The always-correct completion ladder for ``vertices``.

    Palette discovery on a cluster graph is *not* free (Figure 2): each
    round charges a pipelined ``Δ+1``-bit palette bitmap before sampling
    from the exact palette.  Ends with sequential greedy, which cannot fail
    with a ``Δ+1`` palette.
    """
    remaining = [v for v in vertices if not coloring.is_colored(v)]
    if not remaining:
        return
    stats.record_fallback(stage, len(remaining))
    sampler = palette_sampler(runtime, coloring)
    budget = 2 * int(math.ceil(math.log2(max(runtime.n, 4)))) + 8
    for _ in range(budget):
        if not remaining:
            break
        runtime.wide_message(stage + "_fallback_palette", coloring.num_colors)
        try_color_round(runtime, coloring, remaining, sampler, op=stage + "_fallback")
        remaining = [v for v in remaining if not coloring.is_colored(v)]
    if remaining:
        greedy_finish(runtime, coloring, remaining, op=stage + "_greedy")


def _color_sparse(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    sparse: list[int],
    stats: ColoringStats,
) -> None:
    """ColoringSparse: ``O(1)`` TryColor rounds then MultiColorTrial with
    the full color space (sparse vertices have ``Ω(Δ)`` slack from slack
    generation and/or degree slack)."""
    if not sparse:
        return
    sampler = uniform_range_sampler(runtime, coloring.num_colors, 0)
    leftover = try_color_until(
        runtime, coloring, sparse, sampler, max_rounds=8, op="sparse_trycolor"
    )
    if leftover:
        space = list(range(coloring.num_colors))
        try:
            multicolor_trial(
                runtime, coloring, leftover, lambda _v, s=space: s, op="sparse_mct"
            )
        except StageFailure as failure:
            fallback_color(runtime, coloring, failure.affected, stats, "sparse")


def color_cluster_graph(
    graph,
    *,
    params: AlgorithmParameters | None = None,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    regime: str = "auto",
    verify: bool = True,
    tracer=None,
    backend: str | ExecutionBackend | None = None,
    shards: int | None = None,
    netmodel=None,
) -> ColoringResult:
    """(Δ+1)-color a cluster (or virtual) graph.

    Parameters
    ----------
    graph:
        A :class:`~repro.cluster.cluster_graph.ClusterGraph` or
        :class:`~repro.cluster.virtual_graph.VirtualGraph`.
    params:
        Constants preset (default: :func:`repro.params.scaled`).
    seed / rng:
        Randomness (``rng`` wins if both given).
    regime:
        ``"auto"`` (threshold on ``Δ_low``), ``"high_degree"``, or
        ``"low_degree"``.
    verify:
        Check properness before returning (ground-truth validation).
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer`.  Each pipeline
        stage runs inside a top-level span (named exactly like its
        ``stats.stage_rounds`` key), so the spans partition the run: their
        wall/round/bit sums reproduce the ledger totals.  Tracing never
        touches the RNG or the ledger -- traced runs are bitwise-identical
        to untraced ones.
    backend / shards:
        Where the batched kernels run: ``"serial"`` (default),
        ``"sharded"`` (``shards`` vertex shards, see docs/PARALLEL.md), or
        a pre-built :class:`~repro.parallel.backend.ExecutionBackend`.
        Backends are value-identical by contract -- colorings, RNG
        stream, and simulated ledger charges do not depend on this choice;
        a sharded run additionally reports its cross-shard boundary
        traffic in ``ColoringResult.backend_summary``.
    netmodel:
        Optional :class:`~repro.network.hetnet.HetNetModel`: converts the
        ledger's round charges into a simulated-clock makespan
        (``ledger_summary["makespan_ms"]``).  Bitwise-invisible to the
        coloring, counters, and RNG stream -- same contract as ``tracer``.

    Returns a :class:`~repro.coloring.stats.ColoringResult`.
    """
    params = params or scaled()
    rng = rng if rng is not None else np.random.default_rng(seed)
    owns_backend = not isinstance(backend, ExecutionBackend) and (
        backend is not None or shards is not None
    )
    if backend is None and shards is not None:
        backend = "sharded"
    exec_backend = make_backend(backend, shards=shards) if (
        backend is not None
    ) else None
    runtime = ClusterRuntime(
        graph=graph, params=params, rng=rng, tracer=tracer,
        backend=exec_backend, netmodel=netmodel,
    )
    tracer = runtime.tracer
    ledger = runtime.ledger
    stats = ColoringStats()
    num_colors = graph.max_degree + 1
    coloring = PartialColoring.empty(graph.n_vertices, num_colors)

    if regime == "auto":
        delta = graph.max_degree
        if delta >= params.delta_low(runtime.n):
            regime = "high_degree"
        elif delta > 3 * math.log2(max(runtime.n, 4)):
            regime = "polylog"
        else:
            regime = "low_degree"
    stats.regime = regime

    if regime == "polylog":
        from repro.coloring.polylog import color_polylog

        before = ledger.snapshot()
        with tracer.span("polylog"):
            color_polylog(runtime, coloring, stats)
        stats.record_stage("polylog", before, ledger)
    elif regime == "low_degree":
        before = ledger.snapshot()
        with tracer.span("low_degree") as span:
            shatter_info = color_low_degree(runtime, coloring)
            span.counter(
                "post_shattering_uncolored",
                shatter_info["post_shattering_uncolored"],
            )
            span.counter("components", shatter_info["num_components"])
            if shatter_info["stuck"]:
                fallback_color(
                    runtime, coloring, shatter_info["stuck"], stats, "low_degree"
                )
        stats.record_stage("low_degree", before, ledger)
        stats.notes.append(
            f"shattering left {shatter_info['post_shattering_uncolored']} vertices "
            f"in {shatter_info['num_components']} components "
            f"(max {shatter_info['max_component']})"
        )
    else:
        # ---- Algorithm 3 ----------------------------------------------------
        before = ledger.snapshot()
        with tracer.span("acd") as span:
            acd = annotate_with_cabals(runtime, compute_acd(runtime))
            span.counter("cliques", acd.num_cliques)
            span.counter("sparse_vertices", len(acd.sparse))
            span.counter("repaired_components", acd.repaired_components)
        stats.record_stage("acd", before, ledger)
        if acd.repaired_components:
            stats.notes.append(f"ACD repaired {acd.repaired_components} components")

        before = ledger.snapshot()
        non_cabal_vertices = [
            v
            for v in range(graph.n_vertices)
            if not acd.is_cabal_vertex(v)
        ]
        with tracer.span("slack_generation") as span:
            span.counter("vertices", len(non_cabal_vertices))
            slack_generation(runtime, coloring, non_cabal_vertices)
        stats.record_stage("slack_generation", before, ledger)

        before = ledger.snapshot()
        with tracer.span("sparse") as span:
            span.counter("vertices", len(acd.sparse))
            _color_sparse(runtime, coloring, acd.sparse, stats)
        stats.record_stage("sparse", before, ledger)

        before = ledger.snapshot()
        with tracer.span("noncabals"):
            try:
                color_noncabals(runtime, coloring, acd)
            except StageFailure as failure:
                fallback_color(runtime, coloring, failure.affected, stats, "noncabals")
        stats.record_stage("noncabals", before, ledger)

        before = ledger.snapshot()
        with tracer.span("cabals"):
            try:
                color_cabals(runtime, coloring, acd, stats=stats)
            except StageFailure as failure:
                fallback_color(runtime, coloring, failure.affected, stats, "cabals")
        stats.record_stage("cabals", before, ledger)

    # ---- safety net: nothing may remain uncolored -----------------------------
    leftover = coloring.uncolored_vertices()
    if leftover:
        before = ledger.snapshot()
        with tracer.span("pipeline_fallback") as span:
            span.counter("vertices", len(leftover))
            fallback_color(runtime, coloring, leftover, stats, "pipeline")
        stats.record_stage("pipeline_fallback", before, ledger)

    proper = is_proper(graph, coloring.colors) if verify else True
    backend_summary = runtime.backend.exchange_summary()
    if owns_backend:
        runtime.backend.close()
    return ColoringResult(
        colors=coloring.colors,
        num_colors=num_colors,
        stats=stats,
        ledger_summary=ledger.summary(),
        proper=proper,
        seed=seed,
        params_name=params.name,
        backend_summary=backend_summary,
    )
