"""Colorful matching by random color trials (Lemma 4.9, after [ACK19]).

A *colorful matching* in an almost-clique ``K`` uses each of ``M_K`` colors
on (at least) two non-adjacent vertices of ``K``, creating the reuse slack
that lets the clique palette survive cliques larger than ``Δ+1``.

When the average anti-degree is ``Ω(log n)`` (or merely positive, at our
scale), a constant number of synchronized random color trials finds enough
same-colored anti-edge pairs w.h.p.  The densest cabals, where this fails,
use the fingerprint algorithm of Section 6 instead
(:mod:`repro.coloring.fingerprint_matching`).
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.types import UNCOLORED, PartialColoring
from repro.graphcore import batch_conflict_mask, csr_of


def colorful_matching(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    cliques: dict[int, list[int]],
    *,
    reserved_floor: int,
    rounds: int | None = None,
    op: str = "colorful_matching",
) -> dict[int, int]:
    """Grow a colorful matching in every given clique simultaneously.

    Parameters
    ----------
    cliques:
        ``clique_index -> member list`` of the cliques to process.
    reserved_floor:
        Colors below this index are reserved and never used (Lemma 4.9's
        ``φ_cm(V) ∩ [300 eps Δ] = ∅``).
    rounds:
        Number of trial rounds; default ``O(1/eps)``.

    Returns ``clique_index -> M_K`` (colors used at least twice by the
    matching).  Only vertices that *provide reuse slack* get colored, per
    the lemma.
    """
    params = runtime.params
    graph = runtime.graph
    num_colors = coloring.num_colors
    if rounds is None:
        rounds = max(4, int(round(1.0 / params.eps)))
    matching_size: dict[int, int] = {idx: 0 for idx in cliques}
    if reserved_floor >= num_colors:
        return matching_size

    csr = csr_of(graph)
    for _ in range(rounds):
        # Every uncolored clique member flips a coin and samples a uniform
        # non-reserved color; same-colored anti-edge pairs commit together.
        # The draw loop stays scalar -- its coin/color interleaving is the
        # pinned RNG stream -- but the membership test reads one snapshot
        # array instead of per-vertex coloring queries.
        uncolored = coloring.colors == UNCOLORED
        groups: dict[tuple[int, int], list[int]] = {}
        for idx, members in cliques.items():
            for v in members:
                if not uncolored[v]:
                    continue
                if runtime.rng.random() < 0.5:
                    c = int(runtime.rng.integers(reserved_floor, num_colors))
                    groups.setdefault((idx, c), []).append(v)
        runtime.h_rounds(op, count=2, bits=runtime.color_bits)

        # Conflict discovery for every candidate in one batched gather
        # against the pre-commit snapshot.  Mid-round commits can only
        # block a candidate through a same-colored neighbor committed this
        # round -- exactly the ``committed_this_round`` adjacency test
        # below -- so the snapshot mask plus that test reproduces the
        # sequential per-vertex ``is_free_for`` decisions.
        flat_verts = [v for cand in groups.values() for v in cand]
        flat_cands = [key[1] for key, cand in groups.items() for _ in cand]
        blocked = (
            batch_conflict_mask(csr, coloring.colors, flat_verts, flat_cands)
            if flat_verts
            else np.empty(0, dtype=bool)
        )

        committed_this_round: dict[int, list[int]] = {}  # color -> vertices
        cursor = 0
        for (idx, c), candidates in groups.items():
            cand_blocked = blocked[cursor : cursor + len(candidates)]
            cursor += len(candidates)
            if len(candidates) < 2:
                continue
            # keep candidates for which c is free (no colored neighbor uses
            # it) and which do not conflict with commits elsewhere this round
            selected: list[int] = []
            for v, is_blocked in zip(candidates, cand_blocked):
                if is_blocked:
                    continue
                if any(graph.are_adjacent(v, u) for u in selected):
                    continue
                if any(
                    graph.are_adjacent(v, w)
                    for w in committed_this_round.get(c, ())
                ):
                    continue
                selected.append(v)
            if len(selected) >= 2:
                for v in selected:
                    coloring.assign(v, c)
                committed_this_round.setdefault(c, []).extend(selected)
                matching_size[idx] += 1
    return matching_size
