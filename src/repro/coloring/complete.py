"""Finishing non-cabals: Preparing MultiColorTrial (Section 8, Algorithm 11).

After the synchronized color trial, uncolored inliers must be funneled into
MultiColorTrial on the *reserved* colors ``[r_K]``.  The obstruction: a
vertex cannot tell whether it has slack among reserved colors.  Section 8's
device is the computable proxy ``z_v`` (Equation (14)),

    z_v = (Δ+1-r_v) - #(K colored > r_v) - #(E_v colored > r_v)
          + γ e_K + 40 a_K + x_v,

which *lower-bounds* the non-reserved palette (Lemma 8.1) while ``-z_v``
bounds the reserved palette from below (Lemma 8.2).  Vertices with large
``z̃_v`` keep trying non-reserved clique-palette colors (Phase I); everyone
left finishes with MCT on the untouched reserved prefix (Phase II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.clique_palette import palette_view
from repro.coloring.errors import StageFailure
from repro.coloring.multicolor_trial import multicolor_trial
from repro.coloring.try_color import resolve_proposals
from repro.coloring.types import PartialColoring, UNCOLORED
from repro.decomposition.acd import AlmostCliqueDecomposition
from repro.sketch.fingerprint import direct_count_fingerprint

PHASE_ONE_ITERATIONS = 3


@dataclass
class CliqueFinishPlan:
    """One non-cabal's inputs to Algorithm 11."""

    clique_index: int
    inliers: list[int]
    matching_size: int


def z_proxy(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    acd: AlmostCliqueDecomposition,
    plan: CliqueFinishPlan,
    v: int,
    gamma: float,
    in_clique: int | None = None,
) -> float:
    """Compute ``z̃_v`` (Equation (14) with ``40 a_K`` replaced by its
    algorithm-visible surrogate ``M_K/2``, exactly as the Phase I gate uses
    it).  The in-clique count is exact (one tree aggregation shared by the
    whole clique; pass it via ``in_clique`` to avoid recomputation) while
    the external count carries fingerprint noise (Claim 8.3).
    """
    graph = runtime.graph
    idx = plan.clique_index
    members = acd.cliques[idx]
    member_set = set(members)
    r_v = acd.reserved[idx]
    delta = graph.max_degree
    if in_clique is None:
        in_clique = sum(
            1
            for u in members
            if coloring.get(u) != UNCOLORED and coloring.get(u) >= r_v
        )
    true_external = sum(
        1
        for u in graph.neighbors(v)
        if u not in member_set
        and coloring.get(u) != UNCOLORED
        and coloring.get(u) >= r_v
    )
    trials = runtime.params.fingerprint_trials(runtime.n, 0.25)
    est_external = direct_count_fingerprint(
        runtime.rng, true_external, trials
    ).estimate()
    e_avg = acd.e_tilde_clique[idx]
    x_v = len(members) - (delta + 1) + acd.e_tilde[v]
    return (
        (delta + 1 - r_v)
        - in_clique
        - est_external
        + gamma * e_avg
        + plan.matching_size / 2.0
        + x_v
    )


def complete_noncabals(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    acd: AlmostCliqueDecomposition,
    plans: list[CliqueFinishPlan],
    *,
    gamma: float | None = None,
    op: str = "complete",
) -> None:
    """Algorithm 11 over all planned cliques.

    Raises :class:`StageFailure` (with the affected vertices) if Phase II's
    MultiColorTrial cannot finish -- the caller falls back.
    """
    params = runtime.params
    if gamma is None:
        gamma = params.mct_slack_coeff
    graph = runtime.graph

    # ---- Phase I: non-reserved clique-palette trials, gated by z~_v -------
    for _ in range(PHASE_ONE_ITERATIONS):
        views = {
            plan.clique_index: palette_view(
                runtime, coloring, acd.cliques[plan.clique_index], op=op + "_palette"
            )
            for plan in plans
        }
        proposals: dict[int, int] = {}
        for plan in plans:
            idx = plan.clique_index
            r_v = acd.reserved[idx]
            free = views[idx].free_above(r_v)
            if free.size == 0:
                continue
            e_avg = acd.e_tilde_clique[idx]
            threshold = 0.25 * gamma * max(e_avg, 1.0)
            members = acd.cliques[idx]
            in_clique = sum(
                1
                for u in members
                if coloring.get(u) != UNCOLORED and coloring.get(u) >= r_v
            )
            for v in plan.inliers:
                if coloring.is_colored(v):
                    continue
                z = z_proxy(runtime, coloring, acd, plan, v, gamma, in_clique)
                if z >= threshold:
                    proposals[v] = int(free[int(runtime.rng.integers(0, free.size))])
        runtime.wide_message(
            op + "_z", 2 * params.fingerprint_trials(runtime.n, 0.25) + 16
        )
        if proposals:
            resolve_proposals(runtime, coloring, proposals, op=op + "_phase1")

    # ---- Phase II: MultiColorTrial on the untouched reserved prefix -------
    leftover_all: list[int] = []
    for plan in plans:
        idx = plan.clique_index
        r_v = acd.reserved[idx]
        remaining = coloring.uncolored_vertices(plan.inliers)
        if not remaining:
            continue
        reserved_list = list(range(r_v))
        leftover = multicolor_trial(
            runtime,
            coloring,
            remaining,
            lambda _v, colors=reserved_list: colors,
            gamma=gamma,
            op=op + "_mct_reserved",
            raise_on_leftover=False,
        )
        leftover_all.extend(leftover)
    if leftover_all:
        raise StageFailure(
            op, f"{len(leftover_all)} inliers uncolored after Phase II", leftover_all
        )
