"""ColoringNonCabals (Algorithm 4 / Proposition 4.6).

Order of operations inside every non-cabal almost-clique:

1. **ColorfulMatching** (Lemma 4.9) -- create reuse slack; if the matching
   is enormous (``M_K ≥ 2 eps Δ``) the whole clique already has ``Ω(eps Δ)``
   slack and is colored wholesale.
2. **ColoringOutliers** -- high-external/anti-degree vertices go first,
   against non-reserved colors, while uncolored inliers give them
   temporary slack.
3. **SynchronizedColorTrial** (Lemma 4.13) -- one shot that leaves only
   ``O(max(e_K, ℓ))`` inliers uncolored.
4. **Complete** (Section 8) -- Phase I clique-palette trials gated by the
   ``z̃`` proxy, then MultiColorTrial on reserved colors.
"""

from __future__ import annotations

from repro.aggregation.runtime import ClusterRuntime
from repro.coloring.clique_palette import palette_view
from repro.coloring.colorful_matching import colorful_matching
from repro.coloring.complete import CliqueFinishPlan, complete_noncabals
from repro.coloring.errors import StageFailure
from repro.coloring.multicolor_trial import multicolor_trial
from repro.coloring.outliers import inliers_noncabal
from repro.coloring.slack import reserved_zone
from repro.coloring.synchronized_trial import SctPlan, synchronized_color_trial
from repro.coloring.try_color import try_color_until, uniform_range_sampler
from repro.coloring.types import PartialColoring
from repro.decomposition.acd import AlmostCliqueDecomposition


def _color_whole_clique(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    members: list[int],
    floor: int,
    *,
    op: str,
) -> None:
    """The ``M_K ≥ 2 eps Δ`` shortcut: everyone has ``Ω(eps Δ)`` slack, so a
    constant number of TryColor rounds plus MCT finishes the clique."""
    num_colors = coloring.num_colors
    sampler = uniform_range_sampler(runtime, num_colors, floor)
    leftover = try_color_until(
        runtime, coloring, list(members), sampler, max_rounds=8, op=op + "_trycolor"
    )
    if leftover:
        space = list(range(floor, num_colors))
        multicolor_trial(
            runtime,
            coloring,
            leftover,
            lambda _v, s=space: s,
            op=op + "_mct",
        )


def color_noncabals(
    runtime: ClusterRuntime,
    coloring: PartialColoring,
    acd: AlmostCliqueDecomposition,
    *,
    op: str = "noncabals",
) -> None:
    """Run Algorithm 4 over every non-cabal almost-clique.

    Raises :class:`StageFailure` with the affected vertices when a step
    misses its postcondition; the pipeline's fallback completes them.
    """
    params = runtime.params
    graph = runtime.graph
    indices = acd.non_cabal_indices()
    if not indices:
        return
    delta = graph.max_degree
    floor_zone = reserved_zone(params, delta)
    gamma = params.mct_slack_coeff

    # Step 1: colorful matching in every non-cabal simultaneously.
    matching = colorful_matching(
        runtime,
        coloring,
        {idx: acd.cliques[idx] for idx in indices},
        reserved_floor=min(floor_zone, coloring.num_colors - 1),
        op=op + "_matching",
    )

    big_matching = [idx for idx in indices if matching[idx] >= 2 * params.eps * delta]
    for idx in big_matching:
        _color_whole_clique(
            runtime,
            coloring,
            acd.cliques[idx],
            acd.reserved[idx],
            op=op + "_bigM",
        )
    worklist = [idx for idx in indices if idx not in set(big_matching)]

    # Step 2: outliers first, on non-reserved colors.
    split = {
        idx: inliers_noncabal(acd, graph, idx, matching[idx], gamma)
        for idx in worklist
    }
    all_outliers = [v for idx in worklist for v in split[idx][1]]
    if all_outliers:
        sampler = uniform_range_sampler(runtime, coloring.num_colors, floor_zone)
        leftover = try_color_until(
            runtime, coloring, all_outliers, sampler, max_rounds=8, op=op + "_outliers"
        )
        if leftover:
            space = list(range(floor_zone, coloring.num_colors))
            multicolor_trial(
                runtime,
                coloring,
                leftover,
                lambda _v, s=space: s,
                op=op + "_outliers_mct",
            )

    # Step 3: synchronized color trial, all cliques at once.
    plans: list[SctPlan] = []
    for idx in worklist:
        inliers = split[idx][0]
        uncolored = coloring.uncolored_vertices(inliers)
        r_k = acd.reserved[idx]
        view = palette_view(runtime, coloring, acd.cliques[idx], op=op + "_palette")
        capacity = int(view.free_above(r_k).size)
        take = min(max(0, len(uncolored) - r_k), capacity)
        if take <= 0:
            continue
        order = runtime.rng.permutation(len(uncolored))[:take]
        participants = [uncolored[int(i)] for i in order]
        plans.append(SctPlan(participants=participants, palette=view, reserved_floor=r_k))
    if plans:
        synchronized_color_trial(runtime, coloring, plans, op=op + "_sct")

    # Step 4: Section 8's Complete.
    finish = [
        CliqueFinishPlan(
            clique_index=idx, inliers=split[idx][0], matching_size=matching[idx]
        )
        for idx in worklist
    ]
    complete_noncabals(runtime, coloring, acd, finish, gamma=gamma, op=op + "_complete")

    leftover = [
        v
        for idx in indices
        for v in coloring.uncolored_vertices(acd.cliques[idx])
    ]
    if leftover:
        raise StageFailure(op, f"{len(leftover)} non-cabal vertices uncolored", leftover)
