"""Partial colorings, palettes, and slack (Section 3.1 notation).

Colors are ``0..q-1`` (the paper's ``[q] = {1..q}`` shifted to 0-based);
``UNCOLORED = -1`` is the paper's ``⊥``.  The coloring object is simulation
state; algorithms may only *act* on information they paid rounds to learn --
cost charging lives in the algorithm modules, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

UNCOLORED = -1


@dataclass
class PartialColoring:
    """A partial ``q``-coloring of the conflict graph's vertices.

    Attributes
    ----------
    num_colors:
        Palette size ``q`` (``Delta + 1`` for the main theorem).
    colors:
        Array over vertices; ``UNCOLORED`` means ``⊥``.
    """

    num_colors: int
    colors: np.ndarray

    @classmethod
    def empty(cls, n_vertices: int, num_colors: int) -> "PartialColoring":
        """The all-``⊥`` coloring."""
        return cls(
            num_colors=num_colors,
            colors=np.full(n_vertices, UNCOLORED, dtype=np.int64),
        )

    # ---- basic state ---------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return int(self.colors.size)

    def is_colored(self, v: int) -> bool:
        """Whether ``v ∈ dom φ``."""
        return self.colors[v] != UNCOLORED

    def get(self, v: int) -> int:
        """Color of ``v`` (``UNCOLORED`` if none)."""
        return int(self.colors[v])

    def assign(self, v: int, color: int) -> None:
        """Color ``v``; refuses to silently overwrite (recoloring is an
        explicit, deliberate operation -- see :meth:`recolor`)."""
        if not 0 <= color < self.num_colors:
            raise ValueError(f"color {color} outside [0, {self.num_colors})")
        if self.colors[v] != UNCOLORED:
            raise ValueError(f"vertex {v} already colored {self.colors[v]}")
        self.colors[v] = color

    def recolor(self, v: int, color: int) -> None:
        """Replace the color of an already-colored vertex (the donation step
        of Section 7 is the only caller)."""
        if not 0 <= color < self.num_colors:
            raise ValueError(f"color {color} outside [0, {self.num_colors})")
        if self.colors[v] == UNCOLORED:
            raise ValueError(f"vertex {v} is uncolored; use assign")
        self.colors[v] = color

    def uncolor(self, v: int) -> None:
        """Return ``v`` to ``⊥`` (used when a stage cancels its work, e.g.
        the colorful-matching restart in cabals)."""
        self.colors[v] = UNCOLORED

    def colored_count(self) -> int:
        """``|dom φ|``."""
        return int((self.colors != UNCOLORED).sum())

    def uncolored_vertices(self, among: Iterable[int] | None = None) -> list[int]:
        """Vertices outside ``dom φ`` (optionally restricted to a set)."""
        if among is None:
            return [int(v) for v in np.flatnonzero(self.colors == UNCOLORED)]
        return [v for v in among if self.colors[v] == UNCOLORED]

    def is_total(self) -> bool:
        """Whether every vertex is colored."""
        return bool((self.colors != UNCOLORED).all())

    # ---- neighborhood-derived quantities (simulation-side) -------------------

    def neighbor_colors(self, graph, v: int) -> np.ndarray:
        """Colors used by ``v``'s neighbors (may contain ``UNCOLORED``)."""
        return self.colors[graph.neighbor_array(v)]

    def palette_array(self, graph, v: int) -> np.ndarray:
        """``L_φ(v)`` as a sorted int64 array (allocation-light hot-path
        form of :meth:`palette`)."""
        ncols = self.neighbor_colors(graph, v)
        free_mask = np.ones(self.num_colors, dtype=bool)
        used = ncols[(ncols >= 0) & (ncols < self.num_colors)]
        free_mask[used] = False
        return np.flatnonzero(free_mask)

    def palette(self, graph, v: int) -> set[int]:
        """``L_φ(v) = [q] \\ φ(N(v))`` -- the information a cluster-graph
        vertex *cannot* cheaply learn (Figure 2); algorithms must charge for
        any use of it."""
        return {int(c) for c in self.palette_array(graph, v)}

    def slacks(
        self, graph, vertices, among: set[int] | None = None, *, backend=None
    ) -> np.ndarray:
        """``s_φ(v)`` for a whole vertex array at once (batched form of
        :meth:`slack`, one CSR gather instead of per-vertex loops).

        ``backend`` optionally routes the evaluation through an
        :class:`~repro.parallel.backend.ExecutionBackend` (callers holding
        a runtime pass ``runtime.backend``); the default evaluates the
        kernel in-process, value-identically.
        """
        from repro.graphcore import batch_slack_counts, csr_of

        active_mask = None
        if among is not None:
            active_mask = np.zeros(self.n_vertices, dtype=bool)
            active_mask[list(among)] = True
        if backend is not None:
            return backend.slack_counts(
                csr_of(graph),
                self.colors,
                vertices,
                self.num_colors,
                active_mask=active_mask,
            )
        return batch_slack_counts(
            csr_of(graph),
            self.colors,
            vertices,
            self.num_colors,
            active_mask=active_mask,
        )

    def is_free_for(self, graph, v: int, color: int) -> bool:
        """Whether no colored neighbor of ``v`` uses ``color``."""
        return not bool((self.neighbor_colors(graph, v) == color).any())

    def uncolored_degree(self, graph, v: int, among: set[int] | None = None) -> int:
        """``deg_φ(v)``, optionally against an active subgraph ``H'``."""
        nbrs = graph.neighbor_array(v)
        mask = self.colors[nbrs] == UNCOLORED
        if among is None:
            return int(mask.sum())
        return sum(1 for u in nbrs[mask] if int(u) in among)

    def slack(self, graph, v: int, among: set[int] | None = None) -> int:
        """``s_φ(v) = |L_φ(v)| - deg_φ(v; H')`` (Section 3.1)."""
        return len(self.palette(graph, v)) - self.uncolored_degree(graph, v, among)

    def copy(self) -> "PartialColoring":
        """Deep copy (stages that may cancel work snapshot first)."""
        return PartialColoring(num_colors=self.num_colors, colors=self.colors.copy())


@dataclass
class CliquePaletteView:
    """The clique palette ``L_φ(K)`` as a distributed data structure
    (Lemma 4.8): supports counting and i-th-color queries in ``O(1)`` rounds.

    Build one per (clique, coloring-state) moment; it snapshots ``φ(K)``.
    """

    members: list[int]
    free: np.ndarray  # sorted colors of [q] not used in K
    used_count: int  # |{v in K : colored}|
    distinct_used: int  # |φ(K)|

    @classmethod
    def build(cls, coloring: PartialColoring, members: list[int]) -> "CliquePaletteView":
        """Snapshot ``L_φ(K)`` for clique ``K`` (one aggregation, charged by
        callers via :func:`repro.coloring.clique_palette.palette_view`)."""
        cols = coloring.colors[np.asarray(members, dtype=np.int64)]
        used = cols[cols != UNCOLORED]
        distinct = np.unique(used)
        all_colors = np.arange(coloring.num_colors, dtype=np.int64)
        free_mask = np.ones(coloring.num_colors, dtype=bool)
        free_mask[distinct] = False
        return cls(
            members=list(members),
            free=all_colors[free_mask],
            used_count=int(used.size),
            distinct_used=int(distinct.size),
        )

    @property
    def size(self) -> int:
        """``|L_φ(K)|``."""
        return int(self.free.size)

    @property
    def repeated_colors(self) -> int:
        """``M_K``-style reuse count: ``|K ∩ dom φ| - |φ(K)|``."""
        return self.used_count - self.distinct_used

    def ith_free(self, i: int) -> int:
        """The ``i``-th color of ``L_φ(K)`` (0-based; Lemma 4.8 query)."""
        return int(self.free[i])

    def free_above(self, floor: int) -> np.ndarray:
        """``L_φ(K) \\ [floor]``: free colors excluding the reserved prefix."""
        return self.free[self.free >= floor]

    def count_in_range(self, lo: int, hi: int) -> int:
        """``|L_φ(K) ∩ [lo, hi)|`` (Lemma 4.8 query)."""
        return int(np.searchsorted(self.free, hi) - np.searchsorted(self.free, lo))
