"""Deterministic CSR vertex sharding with halo (ghost-neighbor) indices.

The sharded execution backend (:mod:`repro.parallel.sharded`) partitions a
graph's CSR into ``k`` contiguous vertex ranges, balanced by flat adjacency
size, and runs the batched kernels per shard.  Each shard owns its vertex
range outright (every vertex lives in exactly one shard) and additionally
carries a *halo*: the sorted global ids of out-of-shard vertices referenced
by its rows.  A worker holding one shard can evaluate any neighborhood
kernel over its owned rows from ``owned + halo`` state alone -- the halo is
exactly the boundary data a real machine would have to receive each round,
which is what the backend's exchange ledger charges for.

Everything here is deterministic in ``(csr, k)``: identical inputs produce
identical shard bounds, halos, and local layouts, which keeps the sharded
merge order (shard 0, 1, ..., k-1) reproducible across runs and worker
counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphcore.csr import CSRAdjacency


@dataclass(frozen=True)
class CSRShard:
    """One shard of a CSR partition.

    Attributes
    ----------
    index:
        Position of this shard in the plan's deterministic merge order.
    lo, hi:
        Owned global vertex range ``[lo, hi)``; ownership is exclusive and
        the ranges of a plan tile ``[0, n)``.
    halo:
        Sorted int64 array of *global* vertex ids outside ``[lo, hi)`` that
        appear in some owned row -- the ghost neighbors whose colors must be
        imported before a kernel over this shard can run.
    local_to_global:
        int64 array mapping local ids back to global ids: positions
        ``[0, hi - lo)`` are the owned vertices in order, positions from
        ``hi - lo`` onward are the halo.
    csr:
        Local CSR over the owned rows only (``hi - lo`` rows); its
        ``indices`` are *local* ids into ``local_to_global``.
    """

    index: int
    lo: int
    hi: int
    halo: np.ndarray
    local_to_global: np.ndarray
    csr: CSRAdjacency

    @property
    def n_owned(self) -> int:
        """Number of vertices this shard owns."""
        return self.hi - self.lo

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Map global vertex ids (owned or halo) to this shard's local ids.

        Owned ids translate by offset; halo ids by binary search.  Ids that
        are neither owned nor in the halo are a caller bug (the result would
        index the wrong row) and raise.
        """
        g = np.asarray(global_ids, dtype=np.int64)
        inside = (g >= self.lo) & (g < self.hi)
        local = np.empty(g.shape, dtype=np.int64)
        local[inside] = g[inside] - self.lo
        outside = ~inside
        if bool(outside.any()):
            if self.halo.size == 0:
                raise ValueError("global id outside shard ownership and halo")
            pos = np.searchsorted(self.halo, g[outside])
            bad = (pos >= self.halo.size) | (
                self.halo[np.minimum(pos, self.halo.size - 1)] != g[outside]
            )
            if bool(bad.any()):
                raise ValueError("global id outside shard ownership and halo")
            local[outside] = (self.hi - self.lo) + pos
        return local

    def gather_local(self, values: np.ndarray) -> np.ndarray:
        """Assemble the shard-local view of a global per-vertex array.

        ``values`` is any n-sized global array (colors, proposal maps,
        fingerprint rows).  The result is indexed by local ids: owned rows
        first, halo rows after -- the in-simulation analogue of receiving
        the boundary payload from neighboring shards.
        """
        return values[self.local_to_global]


@dataclass(frozen=True)
class ShardPlan:
    """A full deterministic partition of one CSR into shards.

    ``bounds`` has ``k + 1`` entries; shard ``i`` owns
    ``[bounds[i], bounds[i+1])``.  ``owner_of`` maps vertices to shards via
    binary search on those bounds.
    """

    shards: tuple[CSRShard, ...]
    bounds: np.ndarray
    n_vertices: int

    @property
    def k(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Shard index owning each of ``vertices`` (vectorized)."""
        v = np.asarray(vertices, dtype=np.int64)
        return np.searchsorted(self.bounds, v, side="right") - 1

    @property
    def boundary_size(self) -> int:
        """Total halo entries across shards -- the per-exchange upper bound
        on boundary payload size (in colors, not bits)."""
        return int(sum(s.halo.size for s in self.shards))


def shard_csr(csr: CSRAdjacency, k: int) -> ShardPlan:
    """Partition ``csr`` into ``k`` contiguous vertex shards with halos.

    The split balances ``degree + 1`` mass (so isolated vertices still
    spread) by binary-searching the cumulative mass at the ``k`` uniform
    quantiles -- deterministic, and stable under re-runs.  Guarantees:

    * every vertex belongs to exactly one shard (``bounds`` tile ``[0, n)``);
    * each shard's local CSR reproduces the full-CSR neighborhoods of its
      owned rows exactly, after mapping local indices through
      ``local_to_global``;
    * ``k`` is clamped to ``[1, max(n, 1)]`` so no shard is empty (except
      the single shard of an empty graph).
    """
    n = csr.n_vertices
    if k < 1:
        raise ValueError(f"shard count must be >= 1, got {k}")
    k = max(1, min(k, max(n, 1)))
    mass = np.cumsum(csr.degrees + 1)
    total = int(mass[-1]) if n else 0
    cut_list = [0]
    for i in range(1, k):
        target = int(np.searchsorted(mass, total * i / k, side="left"))
        # clamp into the window that keeps every shard non-empty and the
        # sequence strictly increasing (degenerate mass distributions can
        # collapse consecutive quantiles onto one vertex)
        cut_list.append(min(max(target, cut_list[-1] + 1), n - (k - i)))
    cut_list.append(n)
    bounds = np.asarray(cut_list, dtype=np.int64)

    shards = []
    for i in range(k):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        flat = csr.indices[csr.indptr[lo] : csr.indptr[hi]]
        outside = flat[(flat < lo) | (flat >= hi)]
        halo = np.unique(outside)
        local_to_global = np.concatenate(
            [np.arange(lo, hi, dtype=np.int64), halo]
        )
        inside = (flat >= lo) & (flat < hi)
        local_indices = np.empty(flat.shape, dtype=np.int64)
        local_indices[inside] = flat[inside] - lo
        local_indices[~inside] = (hi - lo) + np.searchsorted(halo, flat[~inside])
        local_indptr = (csr.indptr[lo : hi + 1] - csr.indptr[lo]).copy()
        shards.append(
            CSRShard(
                index=i,
                lo=lo,
                hi=hi,
                halo=halo,
                local_to_global=local_to_global,
                csr=CSRAdjacency(indptr=local_indptr, indices=local_indices),
            )
        )
    return ShardPlan(shards=tuple(shards), bounds=bounds, n_vertices=n)
