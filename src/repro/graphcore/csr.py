"""Compressed sparse row adjacency for conflict graphs.

The layout is the classic ``indptr``/``indices`` pair (both int64):
``indices[indptr[v]:indptr[v+1]]`` is the sorted neighbor list of ``v``.
Both conflict-graph classes build one at construction; the batched kernels
in :mod:`repro.graphcore.kernels` consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Sequence

import numpy as np


@dataclass
class CSRAdjacency:
    """Immutable CSR view of an undirected graph's adjacency.

    Attributes
    ----------
    indptr:
        int64 array of shape ``(n + 1,)``; neighbor slice boundaries.
    indices:
        int64 array of shape ``(2m,)``; concatenated neighbor lists.
    """

    indptr: np.ndarray
    indices: np.ndarray
    _edge_arrays: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_edge_arrays(
        cls,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        n_vertices: int,
        *,
        dedupe: bool = False,
    ) -> "CSRAdjacency":
        """Build from an undirected edge list given as parallel arrays.

        Each edge appears once, in either orientation; both directions are
        laid out (mirror, lexsort, bincount/cumsum) in one vectorized pass.
        This is the single home of the CSR-layout block that used to be
        repeated in ``CommGraph.__init__`` and
        ``ClusterGraph.from_assignment``, and it is what the dynamic
        subsystem's delta-buffer compaction rebuilds through.

        ``dedupe=True`` collapses duplicate edges (and accepts both
        orientations of the same pair) before laying out; the default trusts
        the caller to pass a duplicate-free list.
        """
        eu = np.asarray(edge_u, dtype=np.int64).reshape(-1)
        ev = np.asarray(edge_v, dtype=np.int64).reshape(-1)
        if eu.size != ev.size:
            raise ValueError(
                f"edge arrays differ in length ({eu.size} vs {ev.size})"
            )
        if dedupe and eu.size:
            lo = np.minimum(eu, ev)
            hi = np.maximum(eu, ev)
            codes = np.unique(lo * n_vertices + hi)
            eu, ev = codes // n_vertices, codes % n_vertices
        src = np.concatenate([eu, ev])
        dst = np.concatenate([ev, eu])
        order = np.lexsort((dst, src))
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n_vertices), out=indptr[1:])
        return cls(indptr=indptr, indices=dst[order])

    @classmethod
    def from_adj_lists(cls, adj: Sequence[Sequence[int]]) -> "CSRAdjacency":
        """Build from per-vertex neighbor lists (one pass, no copies kept)."""
        n = len(adj)
        degrees = np.fromiter((len(a) for a in adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.fromiter(
            chain.from_iterable(adj), dtype=np.int64, count=total
        )
        return cls(indptr=indptr, indices=indices)

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return int(self.indptr.size - 1)

    @property
    def n_directed_edges(self) -> int:
        """Size of ``indices`` (twice the undirected edge count)."""
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (a view-free diff of ``indptr``)."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor array of ``v`` -- a zero-copy slice of ``indices``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected edge list as ``(u, v)`` arrays with ``u < v``
        (derived once from the CSR and cached; the vectorized properness
        checker iterates this instead of a Python edge loop)."""
        if self._edge_arrays is None:
            sources = np.repeat(
                np.arange(self.n_vertices, dtype=np.int64), self.degrees
            )
            keep = sources < self.indices
            self._edge_arrays = (sources[keep], self.indices[keep].copy())
        return self._edge_arrays


def csr_of(graph) -> CSRAdjacency:
    """The graph's CSR backbone, or an ad-hoc one for duck-typed stand-ins.

    Real conflict graphs expose ``.csr`` (built in ``__post_init__``); test
    doubles that only implement ``neighbors()`` get a throwaway build so
    every kernel call site can stay branch-free.
    """
    csr = getattr(graph, "csr", None)
    if csr is not None:
        return csr
    return CSRAdjacency.from_adj_lists(
        [graph.neighbors(v) for v in range(graph.n_vertices)]
    )
