"""Batched numpy kernels over CSR adjacencies.

Each kernel answers, for a whole array of query vertices at once, a question
the coloring layer used to ask one vertex at a time: which colors do my
neighbors hold, does my proposal conflict, how much slack do I have.  The
shared workhorse is :func:`gather_neighborhoods`, which flattens the CSR
neighbor segments of the query vertices into one pair of aligned arrays
(segment id, neighbor id) so every downstream question becomes a masked
``bincount``.

Kernels are deterministic and side-effect free: no RNG, no ledger charges,
no mutation of ``colors``.  They therefore change *nothing* about what the
simulated algorithms compute -- only how fast the simulation computes it.
"""

from __future__ import annotations

import numpy as np

from repro.graphcore.csr import CSRAdjacency

# Kept in sync with repro.coloring.types.UNCOLORED (a one-line protocol
# constant, duplicated to keep this layer free of import cycles).
UNCOLORED = -1


def _as_vertex_array(vertices) -> np.ndarray:
    arr = np.asarray(vertices, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


def gather_neighborhoods(
    csr: CSRAdjacency, vertices
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the neighbor segments of ``vertices``.

    Returns ``(seg_ids, flat_neighbors)``: aligned int64 arrays where
    ``flat_neighbors[k]`` is a neighbor of ``vertices[seg_ids[k]]``.
    Segments appear in query order; within a segment, neighbors keep their
    CSR (sorted) order.
    """
    verts = _as_vertex_array(vertices)
    starts = csr.indptr[verts]
    counts = csr.indptr[verts + 1] - starts
    total = int(counts.sum())
    seg_ids = np.repeat(np.arange(verts.size, dtype=np.int64), counts)
    if total == 0:
        return seg_ids, np.empty(0, dtype=np.int64)
    seg_starts = np.cumsum(counts) - counts  # segment offsets in the flat view
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - seg_starts, counts
    )
    return seg_ids, csr.indices[positions]


def batch_neighbor_colors(
    csr: CSRAdjacency, colors: np.ndarray, vertices
) -> tuple[np.ndarray, np.ndarray]:
    """Colors held by the neighbors of each query vertex.

    Returns ``(seg_ids, flat_colors)`` aligned as in
    :func:`gather_neighborhoods`; ``flat_colors`` may contain ``UNCOLORED``.
    """
    seg_ids, flat = gather_neighborhoods(csr, vertices)
    return seg_ids, colors[flat]


def batch_conflict_mask(
    csr: CSRAdjacency,
    colors: np.ndarray,
    vertices,
    candidates,
    *,
    proposal_map: np.ndarray | None = None,
    symmetric: bool = False,
) -> np.ndarray:
    """Whether each vertex's candidate color is blocked (Algorithm 17 step 4).

    ``vertices[i]`` proposes ``candidates[i]``.  A proposal is blocked when a
    neighbor already *holds* the color, or -- if ``proposal_map`` is given
    (an n-sized array mapping vertex -> proposed color, with a non-color
    sentinel elsewhere) -- when a neighbor *proposes* the same color: any
    such neighbor under the symmetric rule, only smaller-ID neighbors under
    the default smaller-ID-wins rule.

    Returns a boolean array over the query vertices.
    """
    verts = _as_vertex_array(vertices)
    cands = _as_vertex_array(candidates)
    seg_ids, flat = gather_neighborhoods(csr, verts)
    return conflict_mask_from_flat(
        seg_ids,
        flat,
        colors,
        verts,
        cands,
        proposal_map=proposal_map,
        symmetric=symmetric,
    )


def conflict_mask_from_flat(
    seg_ids: np.ndarray,
    flat_neighbors: np.ndarray,
    colors: np.ndarray,
    vertices: np.ndarray,
    candidates: np.ndarray,
    *,
    proposal_map: np.ndarray | None = None,
    symmetric: bool = False,
) -> np.ndarray:
    """:func:`batch_conflict_mask` over a pre-gathered neighborhood view.

    Callers that maintain adjacency outside a single CSR (the dynamic
    subsystem's delta-buffered graphs) produce ``(seg_ids, flat_neighbors)``
    themselves and share this resolution step with the static path.
    """
    verts = _as_vertex_array(vertices)
    cands = _as_vertex_array(candidates)
    flat_cand = cands[seg_ids]
    conflict = colors[flat_neighbors] == flat_cand
    if proposal_map is not None:
        same_proposal = proposal_map[flat_neighbors] == flat_cand
        if not symmetric:
            same_proposal &= flat_neighbors < verts[seg_ids]
        conflict |= same_proposal
    return np.bincount(seg_ids[conflict], minlength=verts.size) > 0


def used_color_masks_from_flat(
    seg_ids: np.ndarray, flat_colors: np.ndarray, n_rows: int, num_colors: int
) -> np.ndarray:
    """Shared mask builder: row ``i`` marks the colors appearing among the
    gathered neighbor colors of query vertex ``i`` (``UNCOLORED`` and
    out-of-palette values ignored).  Public so delta-buffered adjacencies
    (the dynamic subsystem) can feed their own gathers through it."""
    mask = np.zeros((n_rows, num_colors), dtype=bool)
    valid = (flat_colors >= 0) & (flat_colors < num_colors)
    mask[seg_ids[valid], flat_colors[valid]] = True
    return mask


#: Backwards-compatible private alias (pre-dynamic-subsystem name).
_used_mask_from_flat = used_color_masks_from_flat


def batch_used_color_masks(
    csr: CSRAdjacency, colors: np.ndarray, vertices, num_colors: int
) -> np.ndarray:
    """Boolean matrix ``(len(vertices), num_colors)``: entry ``[i, c]`` is
    True iff some neighbor of ``vertices[i]`` holds color ``c``.

    One gather replaces per-vertex ``set(neighbor colors)`` construction;
    rows double as palette complements (``~row`` = free colors).
    """
    verts = _as_vertex_array(vertices)
    seg_ids, flat_colors = batch_neighbor_colors(csr, colors, verts)
    return _used_mask_from_flat(seg_ids, flat_colors, verts.size, num_colors)


def batch_slack_counts(
    csr: CSRAdjacency,
    colors: np.ndarray,
    vertices,
    num_colors: int,
    *,
    active_mask: np.ndarray | None = None,
) -> np.ndarray:
    """``s_φ(v) = |L_φ(v)| - deg_φ(v; H')`` for every query vertex
    (Section 3.1), in one pass.

    ``active_mask`` optionally restricts the uncolored-degree term to an
    active subgraph ``H'`` (an n-sized boolean array), mirroring the
    ``among`` parameter of ``PartialColoring.slack``.
    """
    verts = _as_vertex_array(vertices)
    seg_ids, flat = gather_neighborhoods(csr, verts)
    flat_colors = colors[flat]
    used_mask = _used_mask_from_flat(seg_ids, flat_colors, verts.size, num_colors)
    free_counts = num_colors - used_mask.sum(axis=1)
    uncolored = flat_colors == UNCOLORED
    if active_mask is not None:
        uncolored &= active_mask[flat]
    uncolored_deg = np.bincount(seg_ids[uncolored], minlength=verts.size)
    return free_counts - uncolored_deg


def batch_label_mismatch_counts(
    csr: CSRAdjacency,
    labels: np.ndarray,
    vertices,
    *,
    ignore_label: int | None = None,
    own_labels: np.ndarray | int | None = None,
) -> np.ndarray:
    """For each query vertex, how many neighbors carry a *different* label.

    ``labels`` is an n-sized int array (cluster ids, cabal ownership marks,
    ...).  A neighbor ``u`` of query vertex ``v`` counts iff
    ``labels[u] != own`` and (when ``ignore_label`` is given)
    ``labels[u] != ignore_label``, where ``own`` defaults to ``labels[v]``
    and can be overridden per query (or as one shared scalar) via
    ``own_labels`` -- the cabal filters compare neighbors against the
    *cabal index* of the query, which is not stored in ``labels``.

    This is the shared gather behind the decomposition's external-degree
    pass (label = clique id, count neighbors outside the clique) and the
    cabal machinery's cross-cabal independence filters (label = owning
    cabal with ``ignore_label`` marking unowned vertices) -- one CSR gather
    plus a ``bincount`` instead of a per-vertex Python scan.

    Returns an int64 count array aligned with ``vertices``; ``counts > 0``
    is the "has a foreign neighbor" predicate.
    """
    verts = _as_vertex_array(vertices)
    seg_ids, flat = gather_neighborhoods(csr, verts)
    nbr_labels = labels[flat]
    if own_labels is None:
        own = labels[verts][seg_ids]
    elif np.isscalar(own_labels):
        own = own_labels
    else:
        own = np.asarray(own_labels, dtype=np.int64)[seg_ids]
    mismatch = nbr_labels != own
    if ignore_label is not None:
        mismatch &= nbr_labels != ignore_label
    return np.bincount(seg_ids[mismatch], minlength=verts.size)


def label_components(
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    n_vertices: int,
    active_mask: np.ndarray,
) -> np.ndarray:
    """Connected components of the subgraph induced by ``active_mask`` over
    an explicit undirected edge list, as min-vertex-id labels.

    Iterated min-label propagation: each pass scatters the coordinate-wise
    minimum across surviving edges (both directions) until a fixpoint.  The
    pass count is bounded by the component diameter -- the ACD's dense
    components have diameter 2 ([ACK19, Lemma 4.8]), so this replaces the
    per-vertex BFS of ComputeACD step 3 with ``O(1)`` numpy sweeps.

    Returns an int64 array with ``labels[v] = min vertex id of v's
    component`` for active vertices and ``-1`` elsewhere.
    """
    labels = np.full(n_vertices, -1, dtype=np.int64)
    active = np.flatnonzero(active_mask)
    labels[active] = active
    eu = np.asarray(edge_u, dtype=np.int64).reshape(-1)
    ev = np.asarray(edge_v, dtype=np.int64).reshape(-1)
    if eu.size:
        keep = active_mask[eu] & active_mask[ev]
        eu, ev = eu[keep], ev[keep]
        for _ in range(max(1, n_vertices)):
            prev = labels.copy()
            np.minimum.at(labels, eu, labels[ev])
            np.minimum.at(labels, ev, labels[eu])
            if np.array_equal(prev, labels):
                break
    return labels


def neighborhood_max_rows(
    csr: CSRAdjacency,
    rows: np.ndarray,
    *,
    empty_value: int,
    flat_chunk: int = 1 << 22,
) -> np.ndarray:
    """``out[v] = max over u in N(v) of rows[u]`` for every vertex at once.

    The fingerprint workhorse (Lemma 5.8 / buddy predicate).  Two
    execution strategies, chosen by row width (both exact, so the choice is
    invisible to callers -- max is associative and order-free):

    * wide rows (``t >= 96``, the fingerprint regime): per-segment
      ``gather.max(axis=0)`` -- each reduction runs numpy's SIMD maximum
      over a contiguous ``(degree, t)`` block, ~5x faster than
      ``maximum.reduceat``'s scalar inner loop at these widths;
    * narrow rows: segmented ``maximum.reduceat`` over the CSR layout,
      gathered in flat chunks of at most ``flat_chunk`` entries split on
      segment boundaries, which amortizes per-segment call overhead when
      thousands of segments fit one chunk.

    Neither path materializes the full ``(2m, trials)`` gather.  Vertices
    with empty neighborhoods get ``empty_value`` rows.
    """
    n = csr.n_vertices
    t = int(rows.shape[1])
    out = np.full((n, t), empty_value, dtype=rows.dtype)
    if csr.indices.size == 0 or t == 0:
        return out
    if t >= 96:
        indptr, indices = csr.indptr, csr.indices
        for v in range(n):
            start, stop = indptr[v], indptr[v + 1]
            if stop > start:
                rows[indices[start:stop]].max(axis=0, out=out[v])
        return out
    row_budget = max(1, flat_chunk // max(1, t))
    lo = 0
    while lo < n:
        # grow the vertex block until its flat neighbor count hits budget
        hi = int(
            np.searchsorted(csr.indptr, csr.indptr[lo] + row_budget, side="left")
        )
        hi = max(hi, lo + 1)
        hi = min(hi, n)
        flat = csr.indices[csr.indptr[lo] : csr.indptr[hi]]
        if flat.size:
            counts = np.diff(csr.indptr[lo : hi + 1])
            nonempty = counts > 0
            starts = (csr.indptr[lo:hi] - csr.indptr[lo])[nonempty]
            reduced = np.maximum.reduceat(rows[flat], starts, axis=0)
            out[lo:hi][nonempty] = reduced
        lo = hi
    return out


def is_proper_edges(
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    colors: np.ndarray,
    *,
    allow_partial: bool = False,
) -> bool:
    """Vectorized properness check over an explicit edge list."""
    cu = colors[edge_u]
    cv = colors[edge_v]
    has_uncolored = (cu == UNCOLORED) | (cv == UNCOLORED)
    if not allow_partial and bool(has_uncolored.any()):
        return False
    return not bool(((cu == cv) & ~has_uncolored).any())


def violations_edges(
    edge_u: np.ndarray, edge_v: np.ndarray, colors: np.ndarray
) -> list[tuple[int, int]]:
    """All monochromatic edges of an explicit edge list, as int pairs."""
    cu = colors[edge_u]
    bad = (cu != UNCOLORED) & (cu == colors[edge_v])
    return [
        (int(u), int(v)) for u, v in zip(edge_u[bad], edge_v[bad])
    ]
