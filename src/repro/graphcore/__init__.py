"""Vectorized CSR graph core.

The conflict graphs (:class:`~repro.cluster.cluster_graph.ClusterGraph`,
:class:`~repro.cluster.virtual_graph.VirtualGraph`) build a compressed
sparse row (CSR) adjacency once at construction; the batched numpy kernels
here run the coloring layer's hot paths -- conflict checks, used-color
discovery, slack counting, properness checking -- over whole vertex sets at
once instead of per-vertex Python loops.

Kernels are pure functions of ``(csr, colors, vertices)``; they draw no
randomness and charge no ledger costs, so swapping them in for the legacy
per-vertex loops preserves RNG draw order, ledger accounting, and the exact
colorings of pinned seeds (property-tested in ``tests/test_graphcore.py``).
"""

from repro.graphcore.csr import CSRAdjacency, csr_of
from repro.graphcore.shard import CSRShard, ShardPlan, shard_csr
from repro.graphcore.kernels import (
    batch_conflict_mask,
    batch_label_mismatch_counts,
    batch_neighbor_colors,
    batch_slack_counts,
    batch_used_color_masks,
    conflict_mask_from_flat,
    gather_neighborhoods,
    is_proper_edges,
    label_components,
    neighborhood_max_rows,
    used_color_masks_from_flat,
    violations_edges,
)

__all__ = [
    "CSRAdjacency",
    "CSRShard",
    "ShardPlan",
    "csr_of",
    "shard_csr",
    "batch_conflict_mask",
    "batch_label_mismatch_counts",
    "batch_neighbor_colors",
    "batch_slack_counts",
    "batch_used_color_masks",
    "conflict_mask_from_flat",
    "gather_neighborhoods",
    "is_proper_edges",
    "label_components",
    "neighborhood_max_rows",
    "used_color_masks_from_flat",
    "violations_edges",
]
