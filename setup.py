"""Thin setup.py shim.

The execution environment has no ``wheel`` package (and no network), so
PEP-517 editable installs fail at ``bdist_wheel``; this shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
