"""TryColor (Algorithm 17 / Lemma D.3) and SlackGeneration (Algorithm 18)."""

import networkx as nx
import numpy as np
import pytest

from repro.cluster import blowup
from repro.coloring.slack import reserved_zone, slack_generation
from repro.coloring.try_color import (
    greedy_finish,
    resolve_proposals,
    try_color_round,
    try_color_until,
    uniform_range_sampler,
)
from repro.coloring.types import PartialColoring
from repro.verify import is_proper
from tests.conftest import make_runtime


def _runtime_and_coloring(graph_seed=0, n=30, p=0.3, seed=5):
    g = blowup(
        nx.gnp_random_graph(n, p, seed=graph_seed), np.random.default_rng(0),
        cluster_size=2,
    )
    runtime = make_runtime(g, seed)
    coloring = PartialColoring.empty(g.n_vertices, g.max_degree + 1)
    return runtime, coloring


class TestResolveProposals:
    def test_smaller_id_wins(self):
        g = blowup(nx.path_graph(2), np.random.default_rng(0), cluster_size=1)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(2, 2)
        adopted = resolve_proposals(runtime, coloring, {0: 1, 1: 1})
        assert adopted == [0]
        assert coloring.get(0) == 1 and not coloring.is_colored(1)

    def test_symmetric_rule_drops_both(self):
        g = blowup(nx.path_graph(2), np.random.default_rng(0), cluster_size=1)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(2, 2)
        adopted = resolve_proposals(
            runtime, coloring, {0: 1, 1: 1}, symmetric=True
        )
        assert adopted == []

    def test_colored_neighbor_blocks(self):
        g = blowup(nx.path_graph(2), np.random.default_rng(0), cluster_size=1)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(2, 2)
        coloring.assign(0, 1)
        assert resolve_proposals(runtime, coloring, {1: 1}) == []
        assert resolve_proposals(runtime, coloring, {1: 0}) == [1]

    def test_non_conflicting_proposals_all_adopted(self):
        g = blowup(nx.path_graph(3), np.random.default_rng(0), cluster_size=1)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(3, 3)
        adopted = resolve_proposals(runtime, coloring, {0: 0, 1: 1, 2: 2})
        assert sorted(adopted) == [0, 1, 2]

    def test_charges_rounds(self):
        runtime, coloring = _runtime_and_coloring()
        before = runtime.ledger.rounds_h
        resolve_proposals(runtime, coloring, {0: 0})
        assert runtime.ledger.rounds_h == before + 2


class TestTryColorLoop:
    def test_always_proper(self):
        runtime, coloring = _runtime_and_coloring()
        sampler = uniform_range_sampler(runtime, coloring.num_colors)
        for _ in range(15):
            try_color_round(
                runtime, coloring, range(coloring.n_vertices), sampler
            )
            assert is_proper(runtime.graph, coloring.colors, allow_partial=True)

    def test_degree_reduction(self):
        """Lemma D.3's qualitative content: uncolored count drops fast."""
        runtime, coloring = _runtime_and_coloring(n=80, p=0.1)
        sampler = uniform_range_sampler(runtime, coloring.num_colors)
        total = coloring.n_vertices
        leftover = try_color_until(
            runtime, coloring, list(range(total)), sampler, max_rounds=6
        )
        assert len(leftover) < total / 3

    def test_until_returns_only_uncolored(self):
        runtime, coloring = _runtime_and_coloring()
        sampler = uniform_range_sampler(runtime, coloring.num_colors)
        leftover = try_color_until(
            runtime, coloring, list(range(coloring.n_vertices)), sampler,
            max_rounds=40,
        )
        for v in leftover:
            assert not coloring.is_colored(v)
        for v in range(coloring.n_vertices):
            if v not in leftover:
                assert coloring.is_colored(v)

    def test_activation_probability_throttles(self):
        runtime, coloring = _runtime_and_coloring()
        adopted = try_color_round(
            runtime,
            coloring,
            range(coloring.n_vertices),
            uniform_range_sampler(runtime, coloring.num_colors),
            activation=0.0,
        )
        assert adopted == []

    def test_sampler_none_skips(self):
        runtime, coloring = _runtime_and_coloring()
        adopted = try_color_round(
            runtime, coloring, range(coloring.n_vertices), lambda v: None
        )
        assert adopted == []


class TestGreedyFinish:
    def test_completes_any_residue(self):
        runtime, coloring = _runtime_and_coloring()
        stuck = greedy_finish(
            runtime, coloring, list(range(coloring.n_vertices))
        )
        assert stuck == []
        assert coloring.is_total()
        assert is_proper(runtime.graph, coloring.colors)

    def test_respects_existing_colors(self):
        runtime, coloring = _runtime_and_coloring()
        coloring.assign(0, 0)
        greedy_finish(runtime, coloring, list(range(coloring.n_vertices)))
        assert coloring.get(0) == 0
        assert is_proper(runtime.graph, coloring.colors)


class TestSlackGeneration:
    def _dense_runtime(self):
        g = blowup(
            nx.gnp_random_graph(80, 0.5, seed=3), np.random.default_rng(1),
            cluster_size=2,
        )
        runtime = make_runtime(g)
        return runtime, PartialColoring.empty(g.n_vertices, g.max_degree + 1)

    def test_no_reserved_colors_used(self):
        runtime, coloring = self._dense_runtime()
        colored = slack_generation(
            runtime, coloring, list(range(coloring.n_vertices))
        )
        floor = reserved_zone(runtime.params, runtime.graph.max_degree)
        for v in colored:
            assert coloring.get(v) >= floor

    def test_result_proper(self):
        runtime, coloring = self._dense_runtime()
        slack_generation(runtime, coloring, list(range(coloring.n_vertices)))
        assert is_proper(runtime.graph, coloring.colors, allow_partial=True)

    def test_excluded_vertices_untouched(self):
        runtime, coloring = self._dense_runtime()
        eligible = list(range(0, coloring.n_vertices, 2))
        slack_generation(runtime, coloring, eligible)
        for v in range(1, coloring.n_vertices, 2):
            assert not coloring.is_colored(v)

    def test_generates_reuse_slack_in_dense_graph(self):
        """Proposition 4.5's effect: same-colored pairs appear across the
        graph (statistically -- dense random graph, many trials)."""
        reuse_total = 0
        for seed in range(5):
            g = blowup(
                nx.gnp_random_graph(80, 0.5, seed=seed),
                np.random.default_rng(1),
                cluster_size=1,
            )
            runtime = make_runtime(g, seed)
            coloring = PartialColoring.empty(g.n_vertices, g.max_degree + 1)
            colored = slack_generation(
                runtime, coloring, list(range(g.n_vertices))
            )
            distinct = len({coloring.get(v) for v in colored})
            reuse_total += len(colored) - distinct
        assert reuse_total > 0
