"""The execution-backend contract (docs/PARALLEL.md) and its machinery.

Three layers under test:

* :func:`repro.graphcore.shard_csr` -- the deterministic partitioner
  (exact cover, halo completeness, stable merge order), via hypothesis;
* the backends -- :class:`SerialBackend` bitwise against the default
  path (pinned digests), :class:`ShardedBackend` value-identical to
  serial for every shard count and mode, with real boundary traffic
  surfacing in the exchange summary and ``shard.exchange`` spans;
* the shared pool (:mod:`repro.parallel.pool`) -- scatter, the persistent
  shard workers, and crash discipline.
"""

import hashlib
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import color_cluster_graph
from repro.cluster import ClusterGraph
from repro.dynamic import run_stream
from repro.experiments.runner import run_cell
from repro.experiments.spec import Cell
from repro.graphcore import csr_of, gather_neighborhoods, shard_csr
from repro.network import CommGraph
from repro.observe.tracer import Tracer
from repro.parallel import (
    SerialBackend,
    ShardedBackend,
    ShardWorkerPool,
    WatchdogTimeout,
    WorkerCrash,
    alarm_available,
    make_backend,
    scatter,
)
from repro.parallel.backend import SERIAL_BACKEND
from repro.parallel.pool import arm_alarm, disarm_alarm
from repro.workloads import GENERATORS

# ---- partitioner properties -------------------------------------------------


def random_csr(seed: int, n: int, density: float):
    rng = np.random.default_rng(seed)
    m = int(density * n * (n - 1) / 2)
    if m:
        pairs = rng.integers(0, n, size=(m, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    return csr_of(ClusterGraph.identity(CommGraph(n, pairs)))


shard_params = {
    "seed": st.integers(0, 2**31 - 1),
    "n": st.integers(1, 60),
    "density": st.floats(0.0, 1.0),
    "k": st.integers(1, 9),
}


class TestShardCSR:
    @given(**shard_params)
    @settings(max_examples=60)
    def test_exact_cover(self, seed, n, density, k):
        """Owned ranges are contiguous, disjoint, and cover [0, n)."""
        plan = shard_csr(random_csr(seed, n, density), k)
        assert plan.n_vertices == n
        assert plan.bounds[0] == 0 and plan.bounds[-1] == n
        assert (np.diff(plan.bounds) >= 1).all()  # no empty shard
        covered = np.concatenate(
            [np.arange(s.lo, s.hi) for s in plan.shards]
        )
        assert np.array_equal(covered, np.arange(n))
        owners = plan.owner_of(np.arange(n, dtype=np.int64))
        for s in plan.shards:
            assert (owners[s.lo : s.hi] == s.index).all()

    @given(**shard_params)
    @settings(max_examples=60)
    def test_halo_rows_reproduce_full_neighborhoods(self, seed, n, density, k):
        """Every owned row, read through local_to_global, is exactly the
        full-CSR neighborhood -- the property that makes per-shard kernel
        evaluation value-identical."""
        csr = random_csr(seed, n, density)
        plan = shard_csr(csr, k)
        for shard in plan.shards:
            verts_local = np.arange(shard.n_owned, dtype=np.int64)
            seg_ids, flat_local = gather_neighborhoods(shard.csr, verts_local)
            flat_global = shard.local_to_global[flat_local]
            full_seg, full_flat = gather_neighborhoods(
                csr, np.arange(shard.lo, shard.hi, dtype=np.int64)
            )
            assert np.array_equal(seg_ids, full_seg)
            assert np.array_equal(flat_global, full_flat)
            # halo is sorted, unique, and disjoint from the owned range
            assert np.array_equal(shard.halo, np.unique(shard.halo))
            assert not (
                (shard.halo >= shard.lo) & (shard.halo < shard.hi)
            ).any()

    @given(**shard_params)
    @settings(max_examples=30)
    def test_deterministic(self, seed, n, density, k):
        """Identical input produces an identical plan (stable merge order)."""
        csr = random_csr(seed, n, density)
        a, b = shard_csr(csr, k), shard_csr(csr, k)
        assert np.array_equal(a.bounds, b.bounds)
        for sa, sb in zip(a.shards, b.shards):
            assert np.array_equal(sa.halo, sb.halo)
            assert np.array_equal(sa.local_to_global, sb.local_to_global)

    def test_to_local_rejects_foreign_vertices(self):
        csr = random_csr(0, 20, 0.3)
        plan = shard_csr(csr, 4)
        shard = plan.shards[0]
        outside = np.setdiff1d(
            np.arange(20), np.concatenate([np.arange(shard.lo, shard.hi), shard.halo])
        )
        if outside.size:
            with pytest.raises(ValueError):
                shard.to_local(outside[:1])


# ---- backend value identity -------------------------------------------------

#: Pinned colorings (sha256 of the colors buffer, first 16 hex chars) for
#: seed-0 runs: the SerialBackend bitwise gate AND the target every
#: ShardedBackend configuration must reproduce exactly.
PINNED = {
    "figure1": "7b0a91667ad8d58a",
    "low_degree": "04d969a44989e875",  # shattering regime
    "high_degree": "1f757a107a73fad2",  # Algorithm 3 regime
}


def _digest(colors: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(colors).tobytes()).hexdigest()[:16]


class TestBackendIdentity:
    @pytest.mark.parametrize("workload", sorted(PINNED))
    def test_serial_backend_is_bitwise_default(self, workload):
        w = GENERATORS[workload](np.random.default_rng(0))
        default = color_cluster_graph(w.graph, seed=0)
        explicit = color_cluster_graph(w.graph, seed=0, backend=SerialBackend())
        assert _digest(default.colors) == PINNED[workload]
        assert np.array_equal(default.colors, explicit.colors)
        assert default.ledger_summary == explicit.ledger_summary
        assert explicit.backend_summary is None

    @pytest.mark.parametrize("workload", sorted(PINNED))
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_sharded_matches_pinned_serial(self, workload, k):
        """Cross-regime value identity: same colors (hence same color
        count), same rounds, same simulated bits, for every shard count."""
        w = GENERATORS[workload](np.random.default_rng(0))
        backend = ShardedBackend(shards=k, mode="inline")
        result = color_cluster_graph(w.graph, seed=0, backend=backend)
        try:
            assert _digest(result.colors) == PINNED[workload]
            assert result.proper
            summary = result.backend_summary
            assert summary["shards"] == k
            assert summary["exchanges"] > 0
            if k == 1:
                assert summary["total_message_bits"] == 0
            else:
                assert summary["total_message_bits"] > 0
        finally:
            backend.close()

    @pytest.mark.skipif(
        not ShardWorkerPool.available(), reason="fork start method unavailable"
    )
    def test_fork_mode_matches_inline(self):
        w = GENERATORS["low_degree"](np.random.default_rng(0))
        fork = ShardedBackend(shards=3, mode="fork")
        try:
            result = color_cluster_graph(w.graph, seed=0, backend=fork)
        finally:
            fork.close()
        assert _digest(result.colors) == PINNED["low_degree"]
        assert result.backend_summary["mode"] == "fork"
        assert result.backend_summary["total_message_bits"] > 0

    def test_shards_kwarg_implies_sharded(self):
        w = GENERATORS["figure1"](np.random.default_rng(0))
        result = color_cluster_graph(w.graph, seed=0, shards=2)
        assert _digest(result.colors) == PINNED["figure1"]
        assert result.backend_summary["shards"] == 2

    def test_traced_sharded_run_has_exchange_spans(self):
        w = GENERATORS["low_degree"](np.random.default_rng(0))
        tracer = Tracer()
        backend = ShardedBackend(shards=2, mode="inline")
        try:
            result = color_cluster_graph(
                w.graph, seed=0, backend=backend, tracer=tracer
            )
        finally:
            backend.close()
        assert _digest(result.colors) == PINNED["low_degree"]
        spans = [
            s
            for top in tracer.spans
            for s in top.walk()
            if s.name == "shard.exchange"
        ]
        assert spans, "sharded traced run must contain shard.exchange spans"
        traced_bits = sum(s.counters.get("boundary_bits", 0) for s in spans)
        assert traced_bits == result.backend_summary["total_message_bits"]
        # nested exchange spans charge nothing to the simulation ledger
        assert all(s.rounds_h == 0 and s.message_bits == 0 for s in spans)

    def test_stream_engine_backend_identity(self):
        maker = GENERATORS["sliding_window"]
        serial = run_stream(maker(np.random.default_rng(0)), seed=0)[2]
        sharded = run_stream(
            maker(np.random.default_rng(0)), seed=0, backend="sharded", shards=2
        )[2]
        for key in ("rounds_h", "total_message_bits", "colors_used", "proper"):
            assert serial[key] == sharded[key]
        assert "boundary_bits" not in serial
        assert sharded["boundary_bits"] > 0
        assert sharded["backend_shards"] == 2


# ---- make_backend resolution ------------------------------------------------


class TestMakeBackend:
    def test_defaults_to_serial_singleton(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert make_backend(None) is SERIAL_BACKEND
        assert make_backend("serial") is SERIAL_BACKEND

    def test_instance_passthrough(self):
        backend = ShardedBackend(shards=2, mode="inline")
        assert make_backend(backend) is backend
        backend.close()

    def test_spec_with_embedded_shards(self):
        backend = make_backend("sharded:5", mode="inline")
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 5
        backend.close()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sharded")
        monkeypatch.setenv("REPRO_SHARDS", "3")
        backend = make_backend(None, mode="inline")
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 3
        backend.close()

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            make_backend("threads")

    def test_bad_shard_count_raises(self):
        with pytest.raises(ValueError):
            ShardedBackend(shards=0)


# ---- runner integration -----------------------------------------------------


def _tiny_cell() -> Cell:
    return Cell(
        suite="test",
        workload="figure1",
        workload_kwargs=(),
        params="scaled",
        regime="auto",
        algorithm="paper",
        seed=0,
        instance_seed=0,
    )


class TestRunnerBackend:
    def test_run_cell_sharded_adds_boundary_metrics(self):
        serial = run_cell(_tiny_cell().to_dict(), 0)
        sharded = run_cell(_tiny_cell().to_dict(), 0, False, "sharded", 2)
        assert sharded["status"] == "ok"
        for key in ("rounds_h", "total_message_bits", "colors_used"):
            assert serial["metrics"][key] == sharded["metrics"][key]
        assert "boundary_bits" not in serial["metrics"]
        assert sharded["metrics"]["backend"] == "sharded"
        assert sharded["metrics"]["boundary_exchanges"] > 0

    def test_env_backend_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sharded")
        monkeypatch.setenv("REPRO_SHARDS", "2")
        record = run_cell(_tiny_cell().to_dict(), 0)
        assert record["status"] == "ok"
        assert record["metrics"]["backend"] == "sharded"
        assert record["metrics"]["backend_shards"] == 2


# ---- pool machinery ---------------------------------------------------------


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class TestScatter:
    def test_results_cover_all_payloads(self):
        got = dict()
        for index, result, error in scatter(
            _square, [(i,) for i in range(6)], jobs=2
        ):
            assert error is None
            got[index] = result
        assert got == {i: i * i for i in range(6)}

    def test_errors_are_captured_not_raised(self):
        triples = list(scatter(_boom, [(1,)], jobs=1))
        assert len(triples) == 1
        index, result, error = triples[0]
        assert index == 0 and result is None
        assert "boom 1" in error


@pytest.mark.skipif(
    not ShardWorkerPool.available(), reason="fork start method unavailable"
)
class TestShardWorkerPool:
    def test_map_preserves_worker_order(self):
        pool = ShardWorkerPool([
            (lambda r, i=i: (i, r * 10)) for i in range(3)
        ])
        try:
            assert pool.map([1, 2, 3]) == [(0, 10), (1, 20), (2, 30)]
            assert pool.size == 3
        finally:
            pool.close()

    def test_handler_exception_surfaces_as_worker_crash(self):
        def bad(_request):
            raise ValueError("shard handler exploded")

        pool = ShardWorkerPool([bad])
        try:
            pool.submit(0, "req")
            with pytest.raises(WorkerCrash, match="shard handler exploded"):
                pool.result(0)
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = ShardWorkerPool([lambda r: r])
        pool.close()
        pool.close()
        assert pool.size == 0


class TestWatchdog:
    def test_alarm_available_on_main_thread(self):
        assert alarm_available() == hasattr(signal, "SIGALRM")

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"), reason="no SIGALRM")
    def test_arm_alarm_interrupts(self):
        previous = arm_alarm(0.05)
        try:
            with pytest.raises(WatchdogTimeout):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pass
        finally:
            disarm_alarm()
            signal.signal(signal.SIGALRM, previous)
