"""Neighbor-dedup primitives (Section 1.1) and weighted defective coloring
(Definition 9.5)."""

import networkx as nx
import numpy as np
import pytest

from repro.aggregation.dedup import (
    binary_search_round_budget,
    dedup_elected_links,
    exact_degree,
    find_free_color_binary_search,
)
from repro.cluster import blowup
from repro.coloring.defective import (
    max_relative_defect,
    weighted_defective_coloring,
)
from repro.coloring.types import PartialColoring
from repro.workloads import figure1_example
from tests.conftest import make_runtime


class TestDedup:
    def test_elected_links_one_per_neighbor(self, figure1_workload):
        g = figure1_workload.graph
        # cluster 1 (B) has a doubled link to cluster 2 (C)
        elected = dedup_elected_links(g, 1)
        assert set(elected) == set(g.neighbors(1))
        for u, (mu, mv) in elected.items():
            assert g.assignment[mu] == u
            assert g.assignment[mv] == 1

    def test_exact_degree_beats_link_count(self, figure1_workload):
        g = figure1_workload.graph
        runtime = make_runtime(g)
        assert exact_degree(runtime, 1) == 2
        assert g.link_count(1) == 3  # the naive aggregate is wrong

    def test_exact_degree_matches_truth_on_random_graphs(self, rng):
        g = blowup(
            nx.gnp_random_graph(25, 0.3, seed=5), rng, cluster_size=3,
            link_multiplicity=3,
        )
        runtime = make_runtime(g)
        for v in range(g.n_vertices):
            assert exact_degree(runtime, v) == g.degree(v)


class TestBinarySearchFreeColor:
    def test_finds_a_free_color(self, rng):
        g = blowup(nx.complete_graph(10), rng, cluster_size=2)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(10, 10)
        for v in range(9):
            coloring.assign(v, v)
        free = find_free_color_binary_search(runtime, coloring, 9)
        assert free == 9  # the only color unused by the 9 colored neighbors

    def test_returns_smallest_free(self, rng):
        g = blowup(nx.star_graph(4), rng, cluster_size=1)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(5, 5)
        coloring.assign(1, 0)
        coloring.assign(2, 1)
        assert find_free_color_binary_search(runtime, coloring, 0) == 2

    def test_none_when_palette_exhausted(self, rng):
        g = blowup(nx.complete_graph(3), rng, cluster_size=1)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(3, 2)
        coloring.assign(0, 0)
        coloring.assign(1, 1)
        assert find_free_color_binary_search(runtime, coloring, 2) is None

    def test_round_cost_logarithmic(self, rng):
        g = blowup(nx.complete_graph(60), rng, cluster_size=1)
        runtime = make_runtime(g)
        coloring = PartialColoring.empty(60, 60)
        for v in range(59):
            coloring.assign(v, v)
        before = runtime.ledger.rounds_h
        find_free_color_binary_search(runtime, coloring, 59)
        probes = runtime.ledger.rounds_h - before
        assert probes <= 2 * binary_search_round_budget(60)


class TestDefectiveColoring:
    def test_meets_relative_defect(self, rng):
        g = blowup(nx.random_regular_graph(8, 40, seed=3), rng, cluster_size=1)
        runtime = make_runtime(g)
        colors = weighted_defective_coloring(runtime, q=6, delta_rel=0.5)
        assert max_relative_defect(g, colors) <= 0.5
        assert set(np.unique(colors)) <= set(range(6))

    def test_weighted_edges_respected(self, rng):
        g = blowup(nx.complete_graph(12), rng, cluster_size=1)
        runtime = make_runtime(g)
        weights = {
            (u, v): (10.0 if (u + v) % 3 == 0 else 1.0)
            for u, v in g.iter_h_edges()
        }
        colors = weighted_defective_coloring(
            runtime, q=8, delta_rel=0.4, weights=weights
        )
        assert max_relative_defect(g, colors, weights) <= 0.4

    def test_infeasible_parameters_rejected(self, rng):
        g = blowup(nx.path_graph(4), rng, cluster_size=1)
        runtime = make_runtime(g)
        with pytest.raises(ValueError, match="cannot achieve"):
            weighted_defective_coloring(runtime, q=2, delta_rel=0.1)
        with pytest.raises(ValueError, match="at least 2"):
            weighted_defective_coloring(runtime, q=1, delta_rel=1.0)

    def test_zero_defect_needs_proper_coloring_worth_of_colors(self, rng):
        """delta_rel ~ 1/q boundary: on a clique with q = n colors, local
        search reaches a proper (defect-0) coloring."""
        g = blowup(nx.complete_graph(8), rng, cluster_size=1)
        runtime = make_runtime(g)
        colors = weighted_defective_coloring(runtime, q=8, delta_rel=1.0 / 8)
        # relative defect <= 1/8 of 7 incident edges means 0 edges
        assert max_relative_defect(g, colors) == 0.0


class TestAudit:
    def test_clean_run_passes(self, rng):
        from repro import color_cluster_graph
        from repro.params import scaled
        from repro.verify.audit import audit_run
        from repro.workloads import planted_acd_instance

        w = planted_acd_instance(np.random.default_rng(9))
        result = color_cluster_graph(w.graph, seed=4)
        report = audit_run(
            w.graph, result,
            bandwidth_cap=scaled().bandwidth_bits(w.graph.n_machines),
        )
        assert report.ok
        assert report.problems == []

    def test_defects_reported(self, rng):
        from repro import color_cluster_graph
        from repro.verify.audit import audit_run
        from repro.workloads import figure1_example

        w = figure1_example()
        result = color_cluster_graph(w.graph, seed=1)
        result.colors[0] = result.colors[1] = 0  # sabotage
        report = audit_run(w.graph, result)
        assert not report.ok
        assert report.monochromatic_edges >= 1
        assert any("monochromatic" in p for p in report.problems)
