"""Approximate counting (Lemma 5.7), min-wise hashing (App. C),
representative sets (Def. C.5)."""

import numpy as np
import pytest

from repro.cluster import ClusterGraph
from repro.network import CommGraph
from repro.sketch import (
    FingerprintTable,
    MinwiseHash,
    RepresentativeFamily,
    approximate_counts_direct,
    approximate_counts_shared,
    approximate_degrees,
    neighborhood_fingerprints,
    sample_minwise,
)
from tests.conftest import make_runtime


def _clique_runtime(n=40, seed=3):
    comm = CommGraph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
    return make_runtime(ClusterGraph.identity(comm), seed)


class TestApproximateCounting:
    def test_direct_counts_accurate(self):
        runtime = _clique_runtime()
        truth = {0: 10, 1: 200, 2: 3000}
        estimates = approximate_counts_direct(runtime, truth, trials=2048)
        for v, d in truth.items():
            assert estimates[v] == pytest.approx(d, rel=0.2)

    def test_shared_counts_with_predicate(self):
        runtime = _clique_runtime(n=30)
        table = FingerprintTable(30, 1024, runtime.rng)
        eligible = {0: list(range(1, 20)), 1: list(range(25, 30))}
        estimates = approximate_counts_shared(runtime, table, eligible)
        assert estimates[0] == pytest.approx(19, rel=0.35)
        assert estimates[1] == pytest.approx(5, rel=0.6)

    def test_degree_estimation_all_vertices(self):
        runtime = _clique_runtime(n=50)
        estimates = approximate_degrees(runtime, xi=0.25)
        values = np.array(list(estimates.values()))
        # individual estimates are noisy (sd ~ 15% at this t); the
        # population must center on the truth with few far outliers
        assert values.mean() == pytest.approx(49, rel=0.15)
        assert np.quantile(np.abs(values - 49) / 49, 0.9) < 0.5

    def test_neighborhood_fingerprints_mergeable(self):
        runtime = _clique_runtime(n=20)
        table = FingerprintTable(20, 256, runtime.rng)
        fps = neighborhood_fingerprints(runtime, table, [0, 1])
        merged = fps[0].merge(fps[1])
        whole = table.set_fingerprint(range(20))
        assert (merged.maxima == whole.maxima).all()

    def test_counting_charges_rounds(self):
        runtime = _clique_runtime(n=10)
        before = runtime.ledger.rounds_h
        approximate_counts_direct(runtime, {0: 5}, trials=512)
        assert runtime.ledger.rounds_h > before


class TestMinwise:
    def test_deterministic_given_seed(self):
        h1, h2 = MinwiseHash(42), MinwiseHash(42)
        assert h1.value(123) == h2.value(123)
        assert MinwiseHash(43).value(123) != h1.value(123)

    def test_argmin_member(self, rng):
        h = sample_minwise(rng)
        xs = [3, 17, 99, 4]
        assert h.argmin(xs) in xs

    def test_argmin_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_minwise(rng).argmin([])

    def test_near_uniform_argmin(self, rng):
        """Definition C.1's property: each element wins ~1/|X| of the time
        over random functions."""
        xs = list(range(10))
        wins = np.zeros(10)
        for _ in range(5000):
            h = sample_minwise(rng)
            wins[h.argmin(xs)] += 1
        freqs = wins / wins.sum()
        assert np.allclose(freqs, 0.1, atol=0.03)

    def test_descriptor_bits_formula(self):
        bits = MinwiseHash.descriptor_bits(1024, 0.25)
        assert bits == 10 * 2  # log2(1024) * log2(4)


class TestRepresentativeSets:
    def test_materialize_deterministic_subset(self):
        family = RepresentativeFamily(set_size=5, family_size=100)
        member = family.sample(np.random.default_rng(0))
        universe = list(range(40))
        s1 = member.materialize(universe)
        s2 = member.materialize(universe)
        assert s1 == s2
        assert len(s1) == 5
        assert set(s1) <= set(universe)

    def test_small_universe_truncates(self):
        family = RepresentativeFamily(set_size=10, family_size=100)
        member = family.sample(np.random.default_rng(1))
        assert len(member.materialize([1, 2, 3])) == 3
        assert member.materialize([]) == []

    def test_definition_c5_hit_rate(self, rng):
        """Random members intersect a delta-fraction target proportionally
        (Def. C.5 Equation (22), alpha = 1/2 tolerance)."""
        family = RepresentativeFamily.for_multicolor_trial(gamma=0.25, n=1024)
        universe = list(range(200))
        target = set(range(0, 100))  # half the universe
        hits = []
        for _ in range(400):
            member = family.sample(rng)
            s = member.materialize(universe)
            hits.append(len(target & set(s)) / len(s))
        assert np.mean(hits) == pytest.approx(0.5, abs=0.05)

    def test_mct_family_size_scales_with_gamma(self):
        loose = RepresentativeFamily.for_multicolor_trial(0.5, 1024)
        tight = RepresentativeFamily.for_multicolor_trial(0.05, 1024)
        assert tight.set_size > loose.set_size
