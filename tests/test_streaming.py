"""The fused streaming estimator's contract (docs/ESTIMATORS.md).

Three layers of guarantees, each pinned here:

* **integer layer** -- ``(K*, Z)`` from the fused top-k, the bit-plane
  union probe, and any block-partitioned accumulation order are *exactly*
  the integers the naive sort-based definition produces;
* **estimate layer** -- within one final-math form the streaming/fused
  paths are bitwise-identical to the batched estimators
  (``batch_estimate`` for the ``log1p`` form, ``batch_estimate_exact`` ==
  per-row ``estimate_cardinality`` for the exact form);
* **cross-form tolerance** -- the two forms differ by at most the
  documented one-ulp slip, never enough to move a well-separated
  threshold comparison.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import (
    EMPTY_MAX,
    StreamingUnionEstimator,
    UnionPlanes,
    batch_estimate,
    batch_estimate_exact,
    estimate_cardinality,
    estimates_from_counts,
    fused_topk_counts,
    threshold_index,
)


def reference_topk(maxima: np.ndarray, q: int):
    """(K*, Z) straight from the Lemma 5.2 definition via a full sort."""
    srt = np.sort(maxima, axis=1)
    k_star = srt[:, q - 1].astype(np.int64) + 1
    z = (maxima < k_star[:, None]).sum(axis=1).astype(np.int64)
    return k_star, z


@st.composite
def maxima_matrices(draw):
    """Small fingerprint-like matrices: geometric-flavored values with
    occasional EMPTY_MAX rows and heavy ties."""
    rows = draw(st.integers(1, 12))
    trials = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    mat = (rng.geometric(0.5, size=(rows, trials)) - 1).astype(np.int16)
    for r in range(rows):
        if rng.random() < 0.2:
            mat[r] = EMPTY_MAX
        elif rng.random() < 0.3:
            mat[r, rng.random(trials) < 0.3] = EMPTY_MAX
    return mat


class TestFusedTopK:
    @given(maxima_matrices())
    @settings(max_examples=150)
    def test_matches_sort_definition(self, mat):
        q = threshold_index(mat.shape[1])
        k_fused, z_fused = fused_topk_counts(mat, q)
        k_ref, z_ref = reference_topk(mat, q)
        assert np.array_equal(k_fused, k_ref)
        assert np.array_equal(z_fused, z_ref)

    @given(maxima_matrices())
    @settings(max_examples=100)
    def test_estimates_bitwise_vs_batched(self, mat):
        """Both final-math forms reproduce their batched counterpart
        bit-for-bit from the fused integers."""
        t = mat.shape[1]
        k, z = fused_topk_counts(mat, threshold_index(t))
        empty = np.all(mat == EMPTY_MAX, axis=1)
        log1p_form = estimates_from_counts(k, z, t, empty_rows=empty)
        exact_form = estimates_from_counts(k, z, t, exact=True, empty_rows=empty)
        assert np.array_equal(log1p_form, batch_estimate(mat))
        assert np.array_equal(exact_form, batch_estimate_exact(mat))
        scalar = np.array([estimate_cardinality(r) for r in mat])
        assert np.array_equal(exact_form, scalar)

    @given(maxima_matrices())
    @settings(max_examples=100)
    def test_cross_form_tolerance_contract(self, mat):
        """The documented divergence between the two forms: at most a few
        ulp of relative slip, nothing more (docs/ESTIMATORS.md)."""
        exact = batch_estimate_exact(mat)
        vectorized = batch_estimate(mat)
        np.testing.assert_allclose(vectorized, exact, rtol=1e-12, atol=0.0)


class TestStreamingAccumulation:
    @given(maxima_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=150)
    def test_random_block_partition_bitwise(self, mat, seed):
        """Absorbing any random partition of the element stream -- including
        repeated row ids within a block -- lands on the same estimates as
        one batched pass over the materialized maxima."""
        rng = np.random.default_rng(seed)
        rows, t = mat.shape
        # element stream: (row, fingerprint) pairs in shuffled order,
        # one pair per "set element"; the final state is the row-wise max
        n_elems = int(rng.integers(0, 4 * rows + 1))
        ids = rng.integers(0, rows, n_elems).astype(np.int64)
        values = (rng.geometric(0.5, size=(n_elems, t)) - 1).astype(np.int16)
        reference = np.full((rows, t), EMPTY_MAX, dtype=np.int16)
        np.maximum.at(reference, ids, values)

        est = StreamingUnionEstimator(rows, t, dtype=np.int16)
        cursor = 0
        while cursor < n_elems:
            block = int(rng.integers(1, n_elems - cursor + 1))
            est.absorb(ids[cursor : cursor + block], values[cursor : cursor + block])
            cursor += block
        assert np.array_equal(est.state, reference)
        assert np.array_equal(est.estimates(), batch_estimate(reference))
        assert np.array_equal(
            est.estimates(exact=True), batch_estimate_exact(reference)
        )

    @given(maxima_matrices())
    @settings(max_examples=60)
    def test_single_block_equals_batched(self, mat):
        """The degenerate single-block stream is exactly the batched path."""
        rows, t = mat.shape
        est = StreamingUnionEstimator(rows, t, dtype=mat.dtype)
        est.absorb_block(0, mat)
        assert np.array_equal(est.state, mat)
        assert np.array_equal(est.estimates(), batch_estimate(mat))


class TestUnionPlanes:
    @given(maxima_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=150)
    def test_union_estimates_bitwise_vs_materialized(self, mat, seed):
        """Bit-plane union queries == batch_estimate over the materialized
        (pairs, trials) union matrix, to the last bit, for both forms."""
        rng = np.random.default_rng(seed)
        rows = mat.shape[0]
        m = int(rng.integers(1, 30))
        left = rng.integers(0, rows, m).astype(np.int64)
        right = rng.integers(0, rows, m).astype(np.int64)
        union = np.maximum(mat[left], mat[right])

        planes = UnionPlanes(mat)
        got = planes.union_estimates(left, right)
        assert np.array_equal(got, batch_estimate(union))
        got_exact = planes.union_estimates(left, right, exact=True)
        assert np.array_equal(got_exact, batch_estimate_exact(union))

    @given(maxima_matrices())
    @settings(max_examples=60)
    def test_row_estimates_bitwise(self, mat):
        planes = UnionPlanes(mat)
        assert np.array_equal(planes.row_estimates(), batch_estimate(mat))
        assert np.array_equal(
            planes.row_estimates(exact=True), batch_estimate_exact(mat)
        )

    def test_chunking_invariant(self):
        rng = np.random.default_rng(3)
        mat = (rng.geometric(0.5, size=(40, 64)) - 1).astype(np.int16)
        left = rng.integers(0, 40, 500)
        right = rng.integers(0, 40, 500)
        planes = UnionPlanes(mat)
        whole = planes.union_estimates(left, right)
        tiny = planes.union_estimates(left, right, chunk_rows=7)
        assert np.array_equal(whole, tiny)

    def test_empty_pair_array(self):
        mat = np.full((3, 8), EMPTY_MAX, dtype=np.int16)
        planes = UnionPlanes(mat)
        out = planes.union_estimates(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert out.size == 0

    def test_all_empty_rows_estimate_zero(self):
        mat = np.full((4, 16), EMPTY_MAX, dtype=np.int16)
        planes = UnionPlanes(mat)
        out = planes.union_estimates(np.array([0, 1]), np.array([2, 3]))
        assert np.array_equal(out, np.zeros(2))


class TestPinnedBuddyDigest:
    """The buddy predicate on a dense cell, pinned bit-for-bit.

    The digest was captured from the pre-fusion implementation (per-chunk
    ``np.maximum`` union matrices + ``batch_estimate``); the bit-plane
    rewire must reproduce the YES edges, the degree estimates, the shared
    fingerprint rows, and the post-call RNG position exactly.
    """

    PINNED = "186268d810ecc765dc7f92e7d39be81b"

    def test_dense_cell_digest(self):
        from repro.decomposition import buddy_predicate
        from repro.workloads import high_degree_instance
        from tests.conftest import make_runtime

        w = high_degree_instance(
            np.random.default_rng(42),
            n_vertices=500,
            degree_fraction=0.85,
            cluster_size=1,
        )
        runtime = make_runtime(w.graph, seed=7)
        result = buddy_predicate(runtime, xi=0.25)
        yes_u, yes_v = result.yes_edge_arrays()
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(yes_u).tobytes())
        digest.update(np.ascontiguousarray(yes_v).tobytes())
        digest.update(np.ascontiguousarray(result.degree_estimates).tobytes())
        digest.update(
            np.ascontiguousarray(result.neighborhood_rows, dtype=np.int64).tobytes()
        )
        digest.update(np.int64(result.trials).tobytes())
        digest.update(np.float64(runtime.rng.random()).tobytes())
        assert digest.hexdigest()[:32] == self.PINNED
        assert len(result.yes_edges) > 0  # the pin covers a non-trivial cell
