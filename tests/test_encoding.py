"""Deviation encoding of maxima (Lemmas 5.5 and 5.6), with property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import (
    best_baseline,
    decode_maxima,
    encode_maxima,
    encoded_size_bits,
    sample_max_of_geometrics,
)


class TestRoundTrip:
    def test_simple(self):
        values = np.array([5, 6, 5, 4, 9], dtype=np.int64)
        assert (decode_maxima(encode_maxima(values)) == values).all()

    def test_constant_vector_is_compact(self):
        values = np.full(100, 7, dtype=np.int64)
        bits = encode_maxima(values)
        # 2 bits per value (sign + separator) + header
        assert len(bits) == encoded_size_bits(values) == 1 + 16 + 2 * 100

    @given(
        st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=80)
    )
    @settings(max_examples=80)
    def test_round_trip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        encoded = encode_maxima(arr)
        assert (decode_maxima(encoded) == arr).all()
        assert len(encoded) == encoded_size_bits(arr)

    def test_explicit_baseline(self):
        arr = np.array([10, 20], dtype=np.int64)
        encoded = encode_maxima(arr, baseline=15)
        assert (decode_maxima(encoded) == arr).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            encode_maxima(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            encoded_size_bits(np.zeros(0, dtype=np.int64))

    def test_truncated_input_rejected(self):
        with pytest.raises(ValueError):
            decode_maxima("010")


class TestBaseline:
    def test_median_minimizes_l1(self):
        values = np.array([1, 2, 2, 3, 50], dtype=np.int64)
        k = best_baseline(values)
        cost = np.abs(values - k).sum()
        for other in range(0, 60):
            assert cost <= np.abs(values - other).sum()


class TestLemma55SizeBound:
    def test_real_fingerprints_encode_in_o_t_bits(self, rng):
        """Lemma 5.5: total deviation from the baseline is O(t) w.h.p., so
        the encoding is O(t + loglog d) bits.  Check the measured constant
        is modest for a wide range of d."""
        t = 400
        for d in (4, 100, 10_000, 10**7):
            values = sample_max_of_geometrics(rng, d, t)
            bits = encoded_size_bits(values)
            per_trial = (bits - 17) / t
            assert per_trial < 6.0, f"d={d}: {per_trial:.2f} bits/trial"

    def test_size_grows_linearly_in_t(self, rng):
        d = 1000
        sizes = {}
        for t in (100, 200, 400):
            sizes[t] = np.mean(
                [
                    encoded_size_bits(sample_max_of_geometrics(rng, d, t))
                    for _ in range(20)
                ]
            )
        ratio = sizes[400] / sizes[100]
        assert 3.0 < ratio < 5.0  # ~linear

    def test_beats_naive_encoding_at_large_t(self, rng):
        """The point of Lemma 5.6: deviation coding beats the naive
        O(t loglog n) representation."""
        d, t = 10**6, 600
        values = sample_max_of_geometrics(rng, d, t)
        naive_bits = t * int(np.ceil(np.log2(values.max() + 2)))
        assert encoded_size_bits(values) < naive_bits
