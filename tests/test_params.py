"""Parameter formulas (Equation (1), Equation (2), derived quantities)."""

import math

import pytest

from repro.params import AlgorithmParameters, log2ceil, log_star, paper, scaled


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_tower_bound(self):
        # 2^65536 would be log* = 5; any practical n is <= 5
        assert log_star(1e9) == 5
        assert log_star(1e18) == 5

    def test_monotone(self):
        values = [log_star(n) for n in [1, 3, 10, 100, 10**6, 10**12]]
        assert values == sorted(values)


class TestLog2Ceil:
    def test_exact_powers(self):
        assert log2ceil(1) == 1
        assert log2ceil(2) == 1
        assert log2ceil(4) == 2
        assert log2ceil(1024) == 10

    def test_between_powers(self):
        assert log2ceil(5) == 3
        assert log2ceil(1000) == 10


class TestPresets:
    def test_paper_constants_match_equation_1(self):
        p = paper()
        assert p.eps == pytest.approx(1 / 2000)
        assert p.reserved_multiplier == 250
        assert p.reserved_cap_mult == 300
        assert p.ell_exp == pytest.approx(1.1)
        assert p.delta_low_exp == 21

    def test_paper_delta_low_is_astronomical(self):
        # log^21 n at n = 10^6 -- the reason a scaled preset exists
        p = paper()
        assert p.delta_low(10**6) > 10**25

    def test_scaled_regimes_reachable(self):
        s = scaled()
        # a few-hundred-machine instance can clear the high-degree bar
        assert s.delta_low(660) < 100

    def test_tau_is_4_eps(self):
        for preset in (paper(), scaled()):
            assert preset.tau() == pytest.approx(4 * preset.eps)


class TestReservedColors:
    def test_multiplier_applied(self):
        s = scaled()
        n, delta = 1000, 10_000  # huge Delta so the cap is inactive
        ell = s.ell(n)
        assert s.reserved_colors(0.0, n, delta) == int(s.reserved_multiplier * ell)

    def test_cap_at_eps_delta(self):
        s = scaled()
        n, delta = 1000, 20
        cap = s.reserved_cap_mult * s.eps * delta
        assert s.reserved_colors(1e9, n, delta) <= cap

    def test_at_least_one(self):
        assert scaled().reserved_colors(0.0, 4, 1) >= 1

    def test_grows_with_external_degree(self):
        s = scaled()
        low = s.reserved_colors(1.0, 1000, 10**6)
        high = s.reserved_colors(1000.0, 1000, 10**6)
        assert high > low


class TestDerivedSizes:
    def test_ell_monotone_in_n(self):
        s = scaled()
        values = [s.ell(n) for n in [10, 100, 1000, 10**5]]
        assert values == sorted(values)

    def test_fingerprint_trials_cap(self):
        s = scaled()
        assert s.fingerprint_trials(10**6, xi=1e-6) == s.trials_cap

    def test_fingerprint_trials_xi_floor(self):
        s = scaled()
        # below the floor, tighter xi must not increase the trial count
        assert s.fingerprint_trials(1000, xi=0.01) == s.fingerprint_trials(
            1000, xi=s.xi_floor
        )

    def test_bandwidth_is_theta_log_n(self):
        s = scaled()
        assert s.bandwidth_bits(2**10) == s.bandwidth_coeff * 10

    def test_block_size_clamped_to_palette(self):
        s = scaled()
        assert s.donor_block_size(1000, delta=50) <= 51

    def test_block_count_cap(self):
        s = scaled()
        b = s.donor_block_size(1000, delta=1000)
        assert math.ceil(1001 / b) <= s.donor_max_blocks

    def test_donation_samples_reasonable(self):
        s = scaled()
        k = s.donation_samples(10**6)
        assert 4 <= k <= 32

    def test_overrides(self):
        s = scaled().with_overrides(eps=0.33)
        assert s.eps == pytest.approx(0.33)
        assert s.name == "scaled"
