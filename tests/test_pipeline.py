"""End-to-end integration: the pipeline on every workload family."""

import numpy as np
import pytest

from repro import color_cluster_graph
from repro.cluster import distance2_virtual_graph, power_graph_degree_bound
from repro.network import CommGraph
from repro.params import scaled
from repro.verify import is_proper
from repro.workloads import (
    bridge_pathology,
    cabal_instance,
    congest_instance,
    contraction_instance,
    figure1_example,
    high_degree_instance,
    low_degree_instance,
    planted_acd_instance,
    voronoi_instance,
)

FAMILIES = [
    ("planted_acd", planted_acd_instance, {}),
    ("planted_noncabal", planted_acd_instance, {"external_degree": 12, "n_sparse": 120}),
    ("cabal", cabal_instance, {}),
    ("congest", congest_instance, {}),
    ("contraction", contraction_instance, {"n": 300}),
    ("voronoi", voronoi_instance, {"n": 300, "n_clusters": 80}),
    ("bridge", bridge_pathology, {}),
    ("low_degree", low_degree_instance, {"n_vertices": 200}),
]


class TestAllFamilies:
    @pytest.mark.parametrize("name,maker,kw", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_proper_total_coloring(self, name, maker, kw):
        w = maker(np.random.default_rng(99), **kw)
        result = color_cluster_graph(w.graph, seed=1)
        assert result.proper, f"{name}: improper coloring"
        assert (result.colors >= 0).all()
        assert result.colors.max() < result.num_colors

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds_planted(self, seed):
        w = planted_acd_instance(np.random.default_rng(seed + 200))
        result = color_cluster_graph(w.graph, seed=seed)
        assert result.proper

    def test_deterministic_given_seed(self):
        w = planted_acd_instance(np.random.default_rng(7))
        a = color_cluster_graph(w.graph, seed=13)
        b = color_cluster_graph(w.graph, seed=13)
        assert (a.colors == b.colors).all()
        assert a.rounds_h == b.rounds_h

    def test_different_seeds_differ(self):
        w = planted_acd_instance(np.random.default_rng(7))
        a = color_cluster_graph(w.graph, seed=1)
        b = color_cluster_graph(w.graph, seed=2)
        assert (a.colors != b.colors).any()


class TestRegimeDispatch:
    def test_auto_picks_high_degree(self):
        w = high_degree_instance(np.random.default_rng(3), n_vertices=250)
        result = color_cluster_graph(w.graph, seed=0)
        assert result.stats.regime == "high_degree"
        assert result.proper

    def test_auto_picks_low_degree(self):
        w = low_degree_instance(np.random.default_rng(3))
        result = color_cluster_graph(w.graph, seed=0)
        assert result.stats.regime == "low_degree"
        assert result.proper

    def test_forced_regime(self):
        w = planted_acd_instance(np.random.default_rng(3))
        result = color_cluster_graph(w.graph, seed=0, regime="low_degree")
        assert result.stats.regime == "low_degree"
        assert result.proper


class TestStatsAndLedger:
    def test_stage_breakdown_present(self):
        w = planted_acd_instance(np.random.default_rng(4))
        result = color_cluster_graph(w.graph, seed=2)
        stages = result.stats.stage_rounds
        assert result.stats.regime == "high_degree"
        for expected in ("acd", "slack_generation", "sparse", "noncabals", "cabals"):
            assert expected in stages
        assert result.stats.total_rounds == sum(stages.values())

    def test_ledger_counts_consistent(self):
        w = cabal_instance(np.random.default_rng(5))
        result = color_cluster_graph(w.graph, seed=3)
        summary = result.ledger_summary
        assert summary["rounds_g"] >= summary["rounds_h"]
        assert summary["max_message_bits"] <= scaled().bandwidth_bits(
            w.graph.n_machines
        )

    def test_dilation_multiplies_g_rounds(self):
        """Theorem 1.1/1.2's d-factor: same conflict graph, deeper clusters
        => more G-rounds for comparable H-rounds."""
        import networkx as nx
        from repro.cluster import blowup

        target = nx.gnp_random_graph(120, 0.25, seed=6)
        flat = blowup(target, np.random.default_rng(0), cluster_size=2, topology="star")
        deep = blowup(target, np.random.default_rng(0), cluster_size=12, topology="path")
        r_flat = color_cluster_graph(flat, seed=4)
        r_deep = color_cluster_graph(deep, seed=4)
        assert r_deep.rounds_g / max(1, r_deep.rounds_h) > r_flat.rounds_g / max(
            1, r_flat.rounds_h
        )


class TestVirtualGraphs:
    def test_distance2_coloring_corollary_1_3(self):
        """Corollary 1.3: Δ₂+1 coloring of G² via the virtual-graph view."""
        w = low_degree_instance(np.random.default_rng(8), n_vertices=150, target_degree=4)
        comm = w.graph.comm
        vg = distance2_virtual_graph(comm)
        result = color_cluster_graph(vg, seed=5)
        assert result.proper
        assert result.num_colors == power_graph_degree_bound(comm) + 1
        # distance-2 semantics on G: any two machines at distance <= 2 differ
        colors = result.colors
        for u in range(comm.n):
            for v in comm.neighbors(u):
                assert colors[u] != colors[v]
                for x in comm.neighbors(v):
                    if x != u:
                        assert colors[u] != colors[x]


class TestEdgeCases:
    def test_single_edge(self):
        comm = CommGraph(2, [(0, 1)])
        from repro.cluster import ClusterGraph

        result = color_cluster_graph(ClusterGraph.identity(comm), seed=0)
        assert result.proper

    def test_figure1(self):
        w = figure1_example()
        result = color_cluster_graph(w.graph, seed=0)
        assert result.proper

    def test_star_conflict_graph(self):
        import networkx as nx
        from repro.cluster import blowup

        g = blowup(nx.star_graph(30), np.random.default_rng(0), cluster_size=2)
        result = color_cluster_graph(g, seed=0)
        assert result.proper
