"""Tests for the heterogeneous network model (repro.network.hetnet).

The load-bearing properties, mirroring docs/NETWORK.md:

* **Determinism** -- identical (graph, spec, seed) always samples the
  identical fabric; the fabric RNG is spawned off the workload RNG, so
  the sampled *graph* is bit-identical with or without the net knobs.
* **Monotonicity** -- slowing any single link (less bandwidth or more
  latency) never decreases the simulated makespan of a charge sequence.
* **Degeneracy** -- a skew-1 fabric is uniform: makespan is exactly
  ``effective rounds x round_time`` per width, a constant multiple.
* **Merge/absorb consistency** -- split accounting over a shared model
  sums to exactly the unsplit total.
* **Invisibility** -- attaching a model changes no coloring, counter, or
  RNG draw; it only adds ``makespan_ms`` / ``critical_link`` reporting.
  (The full bitwise-neutrality runs live in tests/test_observe.py next
  to the tracer contract they share.)
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import color_cluster_graph
from repro.dynamic.harness import run_stream
from repro.network import HetNetModel, HetNetSpec
from repro.network.ledger import BandwidthLedger
from repro.workloads import GENERATORS, PARAM_SPECS, STREAMS
from repro.workloads.specs import NET_PARAM_NAMES

SLOW = settings(
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)

#: One small cluster graph shared by the fabric-level tests (identity
#: clusters: every support tree is a single machine, so the envelope is
#: exactly the slowest designated H-link's ``latency + w/bandwidth``).
GRAPH = GENERATORS["congest"](np.random.default_rng(7), n=40).graph

#: A clustered graph (multi-machine support trees) for root-path lines.
TREE_GRAPH = GENERATORS["low_degree"](
    np.random.default_rng(7), n_vertices=60, target_degree=5, cluster_size=3
).graph


def sample_model(graph=GRAPH, *, skew=10.0, fill=0.2, seed=5, **kw):
    spec = HetNetSpec(skew=skew, fill=fill, **kw)
    return HetNetModel.sample(graph, spec, np.random.default_rng(seed))


class TestSpecValidation:
    def test_skew_below_one_rejected(self):
        with pytest.raises(ValueError, match="skew"):
            HetNetSpec(skew=0.5)

    @pytest.mark.parametrize("fill", [-0.1, 1.5])
    def test_fill_out_of_range_rejected(self, fill):
        with pytest.raises(ValueError, match="fill"):
            HetNetSpec(fill=fill)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            HetNetSpec(base_bandwidth_mbps=0.0)

    def test_machine_types_apply_skew(self):
        standard, slow = HetNetSpec(skew=10.0, base_bandwidth_mbps=100.0).machine_types()
        assert standard.bandwidth_mbps == 100.0
        assert slow.bandwidth_mbps == pytest.approx(10.0)
        # latency_skew defaults to the bandwidth skew
        assert slow.latency_ms == pytest.approx(standard.latency_ms * 10.0)

    def test_to_dict_resolves_latency_skew(self):
        d = HetNetSpec(skew=4.0).to_dict()
        assert d["latency_skew"] == 4.0
        assert set(d) == {
            "skew", "fill", "base_bandwidth_mbps", "base_latency_ms",
            "latency_skew", "jitter",
        }


class TestSampling:
    def test_same_seed_same_fabric(self):
        a = sample_model(seed=11)
        b = sample_model(seed=11)
        assert np.array_equal(a.machine_type, b.machine_type)
        assert np.array_equal(a.link_bandwidth_mbps, b.link_bandwidth_mbps)
        assert np.array_equal(a.link_latency_ms, b.link_latency_ms)
        assert a.element_names == b.element_names

    def test_fill_zero_is_all_standard(self):
        model = sample_model(fill=0.0)
        assert model.n_slow_machines == 0
        assert np.all(model.link_bandwidth_mbps == 100.0)

    def test_fill_one_is_all_slow(self):
        model = sample_model(fill=1.0, skew=8.0)
        assert model.n_slow_machines == GRAPH.comm.n
        assert np.allclose(model.link_bandwidth_mbps, 100.0 / 8.0)

    def test_link_slow_iff_either_endpoint_slow(self):
        model = sample_model(fill=0.3, skew=10.0)
        link_u, link_v = GRAPH.comm.link_arrays()
        slow = model.machine_type[link_u] | model.machine_type[link_v]
        assert np.array_equal(
            np.isclose(model.link_bandwidth_mbps, 10.0), slow.astype(bool)
        )

    def test_from_links_rejects_wrong_shapes(self):
        m = GRAPH.comm.num_links
        with pytest.raises(ValueError, match="links"):
            HetNetModel.from_links(GRAPH, np.ones(m - 1), np.zeros(m - 1))
        with pytest.raises(ValueError, match="bandwidth"):
            HetNetModel.from_links(GRAPH, np.zeros(m), np.zeros(m))


class TestSimulatedClock:
    def test_zero_rounds_advance_no_time(self):
        model = sample_model()
        assert model.account(64, 0) == 0.0
        assert model.element_time_ms.sum() == 0.0

    def test_uniform_fabric_degenerates_to_rounds(self):
        # skew 1: every link identical, so makespan == rounds x constant
        model = sample_model(skew=1.0, fill=0.5)
        spec = model.spec
        per_round = model.round_time_ms(32)
        expected = spec.base_latency_ms + 32 / (spec.base_bandwidth_mbps * 1e3)
        assert per_round == pytest.approx(expected)
        assert model.account(32, 7) == pytest.approx(7 * per_round)

    def test_account_accumulates_critical_element(self):
        model = sample_model(skew=100.0, fill=0.3)
        model.account(64, 3)
        model.account(8, 1)
        name, ms = model.critical_element()
        assert ms == pytest.approx(model.element_time_ms.max())
        assert name in model.element_names
        tops = model.element_times(top=3)
        assert tops and tops[0] == (name, pytest.approx(ms))
        assert all(a[1] >= b[1] for a, b in zip(tops, tops[1:]))

    def test_tree_graph_has_root_path_elements(self):
        model = sample_model(TREE_GRAPH)
        assert any(n.startswith("tree[") for n in model.element_names)
        assert any(n.startswith("link[") for n in model.element_names)

    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        idx_frac=st.floats(0.0, 1.0),
        bw_factor=st.floats(1.0, 100.0),
        lat_add=st.floats(0.0, 5.0),
    )
    def test_slowing_any_link_never_decreases_makespan(
        self, seed, idx_frac, bw_factor, lat_add
    ):
        m = TREE_GRAPH.comm.num_links
        rng = np.random.default_rng(seed)
        bw = rng.uniform(1.0, 200.0, m)
        lat = rng.uniform(0.0, 2.0, m)
        idx = min(m - 1, int(idx_frac * m))
        charges = [(8, 3), (64, 1), (32, 5), (1, 2)]

        def total(bandwidth, latency):
            model = HetNetModel.from_links(TREE_GRAPH, bandwidth, latency)
            return sum(model.account(w, r) for w, r in charges)

        base = total(bw, lat)
        slower_bw = bw.copy()
        slower_bw[idx] /= bw_factor
        assert total(slower_bw, lat) >= base - 1e-9
        later = lat.copy()
        later[idx] += lat_add
        assert total(bw, later) >= base - 1e-9

    @SLOW
    @given(width=st.integers(1, 512), rounds=st.integers(1, 50))
    def test_account_is_rounds_times_envelope(self, width, rounds):
        model = sample_model(TREE_GRAPH, skew=25.0, fill=0.4)
        assert model.account(width, rounds) == pytest.approx(
            rounds * model.round_time_ms(width)
        )


class TestLedgerIntegration:
    def charge_seq(self, ledger, tag=""):
        ledger.charge(f"a{tag}", 8, rounds_h=2)
        ledger.charge(f"b{tag}", 60, rounds_h=1)
        ledger.charge(f"c{tag}", 1, rounds_h=4)

    def test_attach_on_used_ledger_raises(self):
        ledger = BandwidthLedger(bandwidth_bits=64)
        ledger.charge("op", 8)
        with pytest.raises(RuntimeError, match="already"):
            ledger.attach_netmodel(sample_model())

    def test_summary_emits_makespan_only_with_model(self):
        plain = BandwidthLedger(bandwidth_bits=64)
        self.charge_seq(plain)
        assert "makespan_ms" not in plain.summary()
        modeled = BandwidthLedger(bandwidth_bits=64)
        modeled.attach_netmodel(sample_model())
        self.charge_seq(modeled)
        assert modeled.summary()["makespan_ms"] > 0

    def test_snapshot_diff_carries_makespan(self):
        ledger = BandwidthLedger(bandwidth_bits=64)
        ledger.attach_netmodel(sample_model())
        before = ledger.snapshot()
        self.charge_seq(ledger)
        window = before.diff(ledger.snapshot())
        assert window.makespan_ms == pytest.approx(ledger.makespan_ms)

    def test_zero_round_charge_advances_no_clock(self):
        ledger = BandwidthLedger(bandwidth_bits=64)
        ledger.attach_netmodel(sample_model())
        ledger.charge("piggyback", 32, rounds_h=0)
        assert ledger.makespan_ms == 0.0

    def test_absorb_matches_unsplit_accounting(self):
        # split: two ledgers share one model, then A absorbs B's summary
        shared = sample_model(seed=3)
        a = BandwidthLedger(bandwidth_bits=64)
        a.attach_netmodel(shared)
        b = BandwidthLedger(bandwidth_bits=64)
        b.attach_netmodel(shared)
        self.charge_seq(a, "1")
        self.charge_seq(b, "2")
        a.absorb(b.summary(), op="scratch")
        # unsplit: one ledger, one fresh but identically-sampled model
        single = BandwidthLedger(bandwidth_bits=64)
        single.attach_netmodel(sample_model(seed=3))
        self.charge_seq(single, "1")
        self.charge_seq(single, "2")
        assert a.makespan_ms == pytest.approx(single.makespan_ms, abs=1e-5)
        assert a.rounds_h == single.rounds_h
        assert a.total_message_bits == single.total_message_bits


class TestGeneratorKnobs:
    def test_every_generator_registers_net_knobs(self):
        for name, specs in PARAM_SPECS.items():
            for knob in NET_PARAM_NAMES:
                assert knob in specs, f"{name} misses {knob}"
                assert specs[knob].allow_none, f"{name}.{knob} must default off"
                assert specs[knob].default is None
                assert specs[knob].fuzz, f"{name}.{knob} not fuzzable"

    def test_knobs_attach_model_without_touching_graph(self):
        plain = GENERATORS["congest"](np.random.default_rng(3), n=40)
        knobbed = GENERATORS["congest"](
            np.random.default_rng(3), n=40, net_skew=10.0, net_fill=0.2
        )
        assert plain.netmodel is None and plain.hetnet is None
        assert isinstance(knobbed.netmodel, HetNetModel)
        assert knobbed.hetnet.skew == 10.0
        assert knobbed.hetnet.fill == 0.2
        # the fabric RNG is spawned, not drawn: identical sampled graph
        assert np.array_equal(
            np.array(plain.graph.comm.link_arrays()),
            np.array(knobbed.graph.comm.link_arrays()),
        )
        assert plain.graph.clusters == knobbed.graph.clusters

    def test_partial_knobs_fill_defaults(self):
        w = GENERATORS["congest"](np.random.default_rng(3), n=40, net_skew=5.0)
        assert w.hetnet.skew == 5.0 and w.hetnet.fill == 0.1
        w = GENERATORS["congest"](np.random.default_rng(3), n=40, net_fill=0.3)
        assert w.hetnet.skew == 1.0 and w.hetnet.fill == 0.3

    def test_stream_workload_reports_makespan(self):
        kw = dict(n_vertices=120, avg_degree=5.0, batches=3)
        hot = STREAMS["sliding_window"](
            np.random.default_rng(2), net_skew=10.0, net_fill=0.2, **kw
        )
        _, _, metrics = run_stream(hot, seed=4)
        assert metrics["makespan_ms"] > 0
        assert isinstance(metrics["critical_link"], str)
        cold = STREAMS["sliding_window"](np.random.default_rng(2), **kw)
        _, _, cold_metrics = run_stream(cold, seed=4)
        assert "makespan_ms" not in cold_metrics
        assert "critical_link" not in cold_metrics


class TestPipelineIntegration:
    def run(self, netmodel):
        return color_cluster_graph(
            GRAPH, rng=np.random.default_rng(1234), netmodel=netmodel
        )

    def test_homogeneous_run_reports_no_makespan(self):
        result = self.run(None)
        assert result.proper
        assert "makespan_ms" not in result.ledger_summary

    def test_skew_raises_makespan_not_colorings(self):
        base = self.run(sample_model(skew=1.0, fill=0.1, seed=9))
        skewed = self.run(sample_model(skew=100.0, fill=0.1, seed=9))
        assert base.colors.tolist() == skewed.colors.tolist()
        assert base.rounds_h == skewed.rounds_h
        assert (
            skewed.ledger_summary["makespan_ms"]
            > base.ledger_summary["makespan_ms"] > 0
        )


class TestSuitesAndRunner:
    def test_hetnet_suites_cover_the_grid(self):
        from repro.experiments.spec import HETNET_FILLS, HETNET_SKEWS, SUITES

        for name, n_members in (("hetnet_smoke", 2), ("hetnet", 4)):
            cells = SUITES[name].cells()
            assert len(cells) == n_members * len(HETNET_SKEWS) * len(HETNET_FILLS)
            for cell in cells:
                kwargs = dict(cell.workload_kwargs)
                assert kwargs["net_skew"] in HETNET_SKEWS
                assert kwargs["net_fill"] in HETNET_FILLS

    def test_run_cell_reports_makespan_and_critical_link(self):
        from repro.experiments.runner import run_cell
        from repro.experiments.spec import SUITES

        cell = next(
            c for c in SUITES["hetnet_smoke"].cells()
            if c.workload == "congest"
            and dict(c.workload_kwargs)["net_skew"] == 100.0
        )
        record = run_cell(cell.to_dict())
        assert record["status"] == "ok", record["error"]
        assert record["metrics"]["makespan_ms"] > 0
        assert record["metrics"]["critical_link"]

    def test_makespan_objective_scores_records(self):
        from repro.fuzz import get_objective, score_record

        objective = get_objective("makespan")
        assert objective.deterministic
        assert objective.metric == "makespan_ms"
        record = {"status": "ok", "metrics": {"makespan_ms": 12.5}}
        assert score_record(objective, record) == 12.5
        homogeneous = {"status": "ok", "metrics": {}}
        assert score_record(objective, homogeneous) is None


class TestNetsimCLI:
    def test_netsim_names_critical_stage_and_link(self, capsys):
        from repro.cli import main

        rc = main([
            "netsim", "figure1", "--skew", "100", "--fill", "0.5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "critical stage:" in out
        assert "critical link:" in out
        assert "makespan=" in out

    def test_netsim_json(self, capsys):
        from repro.cli import main

        rc = main([
            "netsim", "figure1", "--skew", "10", "--fill", "0.5", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["proper"] is True
        assert payload["makespan_ms"] > 0
        assert payload["critical_link"]
        assert payload["critical_stage"]
