"""The repo's small CI tools keep working (docs lint, timing annotation)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import lint_docstrings  # noqa: E402
import print_cell_times  # noqa: E402


class TestLintDocstrings:
    def test_default_targets_are_clean(self):
        """The packages the architecture contract covers stay fully
        docstringed (CI's docs job gates on this)."""
        assert lint_docstrings.main([]) == 0

    def test_detects_missing_docstring(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('"""mod."""\n\ndef public():\n    pass\n')
        assert lint_docstrings.main([str(bad)]) == 1

    def test_covers_sketch_and_decomposition(self):
        targets = " ".join(lint_docstrings.DEFAULT_TARGETS)
        assert "src/repro/sketch" in targets
        assert "src/repro/decomposition" in targets

    def test_covers_observe_and_experiments(self):
        targets = " ".join(lint_docstrings.DEFAULT_TARGETS)
        assert "src/repro/observe" in targets
        assert "src/repro/experiments" in targets


class TestPrintCellTimes:
    def _artifact(self, tmp_path) -> Path:
        path = tmp_path / "sweep.jsonl"
        lines = [
            {"kind": "header", "suite": "scale_smoke", "schema_version": 1},
            {
                "kind": "cell",
                "status": "ok",
                "wall_time_s": 1.25,
                "cell": {
                    "workload": "high_degree",
                    "workload_kwargs": {"n_vertices": 600},
                    "regime": "auto",
                    "seed": 0,
                },
            },
            {
                "kind": "cell",
                "status": "error",
                "wall_time_s": None,
                "cell": {"workload": "voronoi", "regime": "polylog", "seed": 3},
            },
        ]
        path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
        return path

    def test_prints_slowest_first_with_total(self, tmp_path, capsys):
        path = self._artifact(tmp_path)
        assert print_cell_times.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "scale_smoke" in out
        assert "1.25s" in out and "high_degree(n_vertices=600)" in out
        assert "[error]" in out and "regime=polylog" in out

    def test_missing_artifact_is_an_error(self, tmp_path):
        assert print_cell_times.main([str(tmp_path / "nope.jsonl")]) == 2

    def test_shim_reexports_observe_cells(self):
        """The script is now a shim over repro.observe.cells; the CI
        invocation and the `repro cells` command must share one
        implementation."""
        from repro.observe import cells

        assert print_cell_times.main is cells.main
        assert print_cell_times.print_timings is cells.print_timings
        assert print_cell_times.cell_label is cells.cell_label
