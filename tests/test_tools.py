"""The repo's small CI tools keep working (docs lint, timing annotation)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_hetnet_makespan  # noqa: E402
import lint_docstrings  # noqa: E402
import print_cell_times  # noqa: E402


class TestLintDocstrings:
    def test_default_targets_are_clean(self):
        """The packages the architecture contract covers stay fully
        docstringed (CI's docs job gates on this)."""
        assert lint_docstrings.main([]) == 0

    def test_detects_missing_docstring(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('"""mod."""\n\ndef public():\n    pass\n')
        assert lint_docstrings.main([str(bad)]) == 1

    def test_covers_sketch_and_decomposition(self):
        targets = " ".join(lint_docstrings.DEFAULT_TARGETS)
        assert "src/repro/sketch" in targets
        assert "src/repro/decomposition" in targets

    def test_covers_observe_and_experiments(self):
        targets = " ".join(lint_docstrings.DEFAULT_TARGETS)
        assert "src/repro/observe" in targets
        assert "src/repro/experiments" in targets


class TestPrintCellTimes:
    def _artifact(self, tmp_path) -> Path:
        path = tmp_path / "sweep.jsonl"
        lines = [
            {"kind": "header", "suite": "scale_smoke", "schema_version": 1},
            {
                "kind": "cell",
                "status": "ok",
                "wall_time_s": 1.25,
                "cell": {
                    "workload": "high_degree",
                    "workload_kwargs": {"n_vertices": 600},
                    "regime": "auto",
                    "seed": 0,
                },
            },
            {
                "kind": "cell",
                "status": "error",
                "wall_time_s": None,
                "cell": {"workload": "voronoi", "regime": "polylog", "seed": 3},
            },
        ]
        path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
        return path

    def test_prints_slowest_first_with_total(self, tmp_path, capsys):
        path = self._artifact(tmp_path)
        assert print_cell_times.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "scale_smoke" in out
        assert "1.25s" in out and "high_degree(n_vertices=600)" in out
        assert "[error]" in out and "regime=polylog" in out

    def test_missing_artifact_is_an_error(self, tmp_path):
        assert print_cell_times.main([str(tmp_path / "nope.jsonl")]) == 2

    def test_shim_reexports_observe_cells(self):
        """The script is now a shim over repro.observe.cells; the CI
        invocation and the `repro cells` command must share one
        implementation."""
        from repro.observe import cells

        assert print_cell_times.main is cells.main
        assert print_cell_times.print_timings is cells.print_timings
        assert print_cell_times.cell_label is cells.cell_label


class TestCheckHetnetMakespan:
    """The hetnet CI gate: invisibility + sensitivity on sweep records."""

    def _record(self, skew, fill, *, digest="d0", rounds=10, bits=500,
                makespan=None, status="ok", workload="congest"):
        metrics = {
            "coloring_digest": digest,
            "rounds_h": rounds,
            "total_message_bits": bits,
        }
        if makespan is not None:
            metrics["makespan_ms"] = makespan
        return {
            "kind": "cell",
            "status": status,
            "cell": {
                "workload": workload,
                "workload_kwargs": {"n": 40, "net_skew": skew, "net_fill": fill},
                "params": "scaled",
                "regime": "auto",
                "algorithm": "paper",
                "seed": 0,
                "instance_seed": 0,
            },
            "metrics": metrics,
        }

    def _grid(self, makespan_of):
        return [
            self._record(skew, fill, makespan=makespan_of(skew, fill))
            for skew in (1.0, 10.0, 100.0)
            for fill in (0.01, 0.1)
        ]

    def test_clean_grid_passes(self):
        records = self._grid(lambda skew, fill: skew * fill * 100.0)
        assert check_hetnet_makespan.check(records) == []

    def test_net_knobs_are_stripped_from_the_group_key(self):
        records = self._grid(lambda skew, fill: skew)
        keys = {check_hetnet_makespan.group_key(r) for r in records}
        assert len(keys) == 1
        assert "net_skew" not in next(iter(keys))

    def test_varying_digest_is_an_invisibility_violation(self):
        records = self._grid(lambda skew, fill: skew)
        records[-1]["metrics"]["coloring_digest"] = "different"
        errors = check_hetnet_makespan.check(records)
        assert any("coloring_digest varies" in e for e in errors)

    def test_flat_makespan_is_a_sensitivity_violation(self):
        records = self._grid(lambda skew, fill: 42.0)
        errors = check_hetnet_makespan.check(records)
        assert any("not strictly above" in e for e in errors)

    def test_failed_cell_is_reported(self):
        records = self._grid(lambda skew, fill: skew)
        records.append(self._record(1.0, 0.1, status="timeout"))
        errors = check_hetnet_makespan.check(records)
        assert any("cell not ok" in e for e in errors)

    def test_missing_skewed_cell_is_reported(self):
        records = [self._record(1.0, 0.1, makespan=1.0)]
        errors = check_hetnet_makespan.check(records)
        assert any("no skewed cell" in e for e in errors)

    def test_main_gates_via_exit_code(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        good.write_text(
            "\n".join(
                json.dumps(r) for r in self._grid(lambda s, f: s * (1 + f))
            )
            + "\n"
        )
        assert check_hetnet_makespan.main([str(good)]) == 0
        assert "hetnet contract holds" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            "\n".join(json.dumps(r) for r in self._grid(lambda s, f: 1.0))
            + "\n"
        )
        assert check_hetnet_makespan.main([str(bad)]) == 1
        assert "HETNET VIOLATION" in capsys.readouterr().out
