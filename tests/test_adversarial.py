"""Adversarial scenarios the lemmas explicitly guard against.

Lemma 4.13 holds "even if random bits outside K are adversarial"; the
bridge pathology of Figures 2/3 starves information flow; colorings chosen
by an adversary before a stage runs must not break it.
"""

import networkx as nx
import numpy as np
import pytest

from repro import color_cluster_graph
from repro.cluster import blowup
from repro.coloring.clique_palette import palette_view
from repro.coloring.synchronized_trial import SctPlan, synchronized_color_trial
from repro.coloring.types import PartialColoring
from repro.verify import is_proper
from repro.workloads import bridge_pathology
from tests.conftest import make_runtime


class TestAdversarialSct:
    def test_adversarial_external_colors(self):
        """An adversary pre-colors every external neighbor of K to the
        colors the SCT is about to hand out.  Lemma 4.13: the damage is
        bounded by the external degree, and the trial stays proper."""
        size, externals = 80, 12
        h = nx.Graph()
        clique = list(range(size))
        outside = list(range(size, size + externals))
        h.add_edges_from(
            (clique[i], clique[j]) for i in range(size) for j in range(i + 1, size)
        )
        # each external vertex attaches to three clique members
        for i, x in enumerate(outside):
            for j in range(3):
                h.add_edge(x, clique[(7 * i + j * 13) % size])
        graph = blowup(h, np.random.default_rng(0), cluster_size=1)
        runtime = make_runtime(graph, 3)
        coloring = PartialColoring.empty(graph.n_vertices, graph.max_degree + 1)
        # adversary: externals grab the first colors of the clique palette
        # (exactly the ones the permutation will assign first)
        for i, x in enumerate(outside):
            coloring.assign(x, i)
        view = palette_view(runtime, coloring, clique)
        plan = SctPlan(participants=clique, palette=view, reserved_floor=0)
        leftover = synchronized_color_trial(runtime, coloring, [plan])
        assert is_proper(graph, coloring.colors, allow_partial=True)
        # at most one knock-out per external adjacency (3 per external)
        assert len(leftover) <= 3 * externals

    def test_adversarial_precoloring_of_half_the_clique(self):
        """The SCT must respect an arbitrary adversarial partial coloring
        of K itself (the palette view already excludes used colors)."""
        size = 60
        graph = blowup(
            nx.complete_graph(size), np.random.default_rng(1), cluster_size=1
        )
        runtime = make_runtime(graph, 4)
        coloring = PartialColoring.empty(size, graph.max_degree + 1)
        rng = np.random.default_rng(2)
        colors = rng.permutation(graph.max_degree + 1)[: size // 2]
        for v, c in zip(range(size // 2), colors):
            coloring.assign(v, int(c))
        members = list(range(size))
        view = palette_view(runtime, coloring, members)
        plan = SctPlan(
            participants=[v for v in members if not coloring.is_colored(v)],
            palette=view,
            reserved_floor=0,
        )
        leftover = synchronized_color_trial(runtime, coloring, [plan])
        assert leftover == []
        assert is_proper(graph, coloring.colors, allow_partial=True)


class TestBridgePathology:
    def test_figure2_instance_colors_correctly(self):
        """The Figure 2/3 hazard: all palette information must cross one
        O(log n)-bit link.  The pipeline must stay correct and model-
        compliant (the ledger enforces the cap)."""
        w = bridge_pathology(np.random.default_rng(3), half_size=24,
                             external_per_side=15)
        result = color_cluster_graph(w.graph, seed=5)
        assert result.proper
        from repro.params import scaled

        assert result.ledger_summary["max_message_bits"] <= scaled().bandwidth_bits(
            w.graph.n_machines
        )

    def test_deep_path_clusters(self):
        """Extreme dilation: path clusters of 30 machines.  Correctness and
        the d-factor in G-rounds must both survive."""
        conflict = nx.gnp_random_graph(40, 0.3, seed=6)
        comps = list(nx.connected_components(conflict))
        for i in range(len(comps) - 1):
            conflict.add_edge(next(iter(comps[i])), next(iter(comps[i + 1])))
        graph = blowup(
            conflict, np.random.default_rng(7), cluster_size=30, topology="path"
        )
        assert graph.dilation >= 29
        result = color_cluster_graph(graph, seed=6)
        assert result.proper
        assert result.rounds_g >= 29 * result.rounds_h // 2


class TestStressSweep:
    @pytest.mark.parametrize("seed", range(10))
    def test_auto_regime_ten_seeds(self, seed):
        """Ten fresh instances across the regime spectrum; auto dispatch
        must always produce a proper total coloring."""
        rng = np.random.default_rng(1000 + seed)
        kind = seed % 3
        if kind == 0:
            from repro.workloads import planted_acd_instance

            w = planted_acd_instance(rng, n_cliques=2 + seed % 3)
        elif kind == 1:
            from repro.workloads import low_degree_instance

            w = low_degree_instance(rng, n_vertices=150 + 40 * seed)
        else:
            from repro.workloads import congest_instance

            w = congest_instance(rng, n=150 + 30 * seed)
        result = color_cluster_graph(w.graph, seed=seed)
        assert result.proper, f"seed {seed} ({w.name}) failed"
