"""Pinned pathology regression suite.

Every JSON entry committed under ``benchmarks/pathologies/`` was
discovered by ``repro fuzz``, greedily minimized, and promoted; each
pins the exact score and coloring digest observed at promotion time.
These tests replay every committed entry and demand a bitwise match --
any drift in the pipeline's cost or output on these adversarial
instances fails here before it can silently land.
"""

import pytest

from repro.experiments.spec import PATHOLOGY_DIR, SUITES
from repro.fuzz import load_entries, replay_entry

ENTRIES = [entry for _path, entry in load_entries(PATHOLOGY_DIR)]


def _ids():
    return [e["id"] for e in ENTRIES]


class TestCommittedPathologies:
    def test_suite_is_seeded(self):
        # the repo ships at least two minimized pathological instances
        assert len(ENTRIES) >= 2

    def test_pathology_suite_registered(self):
        spec = SUITES["pathology"]
        cells = spec.cells()
        assert len(cells) == len(ENTRIES)
        assert all(c.to_dict()["suite"] == "pathology" for c in cells)

    @pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
    def test_entry_is_deterministic_and_pinned(self, entry):
        # only deterministic objectives may be promoted: a pinned score
        # must be bitwise reproducible, which wall-clock never is
        assert entry["deterministic"] is True
        assert entry["cell"]["suite"] == "pathology"
        assert entry["metrics"].get("coloring_digest")

    @pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
    def test_replay_reproduces_score_and_digest(self, entry):
        result = replay_entry(entry, timeout_s=120.0)
        assert result["status"] == "ok"
        assert result["score_ok"], (
            f"{entry['id']}: score drifted "
            f"{entry['score']} -> {result['score']}"
        )
        assert result["digest_ok"], (
            f"{entry['id']}: coloring digest drifted from "
            f"{entry['metrics']['coloring_digest']}"
        )
        assert result["ok"]
