"""Fingerprints and the Lemma 5.2 estimator."""

import numpy as np
import pytest

from repro.sketch import (
    EMPTY_MAX,
    Fingerprint,
    FingerprintTable,
    batch_estimate,
    direct_count_fingerprint,
    estimate_cardinality,
    failure_probability_bound,
    neighborhood_maxima,
    trials_for,
)


class TestEstimator:
    @pytest.mark.parametrize("d", [1, 5, 37, 256, 4096])
    def test_unbiased_within_lemma_bound(self, rng, d):
        """Lemma 5.2 with xi = 0.5 and t = 800: failure prob ~ 6e^-1 is
        weak, so we check the *average* over repetitions instead."""
        t = 800
        estimates = [
            direct_count_fingerprint(rng, d, t).estimate() for _ in range(40)
        ]
        assert np.mean(estimates) == pytest.approx(d, rel=0.12)

    def test_error_shrinks_with_trials(self, rng):
        d = 500
        errors = {}
        for t in (100, 400, 1600):
            ests = [direct_count_fingerprint(rng, d, t).estimate() for _ in range(40)]
            errors[t] = np.std(ests) / d
        assert errors[1600] < errors[400] < errors[100]

    def test_empty_set_estimates_zero(self):
        fp = Fingerprint.empty(64)
        assert fp.estimate() == 0.0

    def test_singleton(self, rng):
        ests = [direct_count_fingerprint(rng, 1, 800).estimate() for _ in range(30)]
        assert np.mean(ests) == pytest.approx(1.0, abs=0.25)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            estimate_cardinality(np.zeros(0, dtype=np.int64))

    def test_failure_bound_formula(self):
        assert failure_probability_bound(1.0, 200) == pytest.approx(
            6 * np.exp(-1.0)
        )

    def test_trials_for_inverts_bound(self):
        t = trials_for(0.5, 0.01)
        assert failure_probability_bound(0.5, t) <= 0.01


class TestBatchEstimate:
    def test_matches_scalar_estimator(self, rng):
        rows = np.stack(
            [direct_count_fingerprint(rng, d, 256).maxima for d in (3, 50, 700)]
        )
        batch = batch_estimate(rows)
        scalar = [estimate_cardinality(r) for r in rows]
        assert np.allclose(batch, scalar, rtol=1e-9)

    def test_empty_rows_zero(self):
        rows = np.full((2, 64), EMPTY_MAX, dtype=np.int64)
        assert (batch_estimate(rows) == 0).all()

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            batch_estimate(np.zeros(10, dtype=np.int64))


class TestFingerprintObject:
    def test_merge_is_union_semantics(self, rng):
        """merge(fp(A), fp(B)) == fp(A ∪ B) when built from shared
        variables -- the property that defeats double counting."""
        table = FingerprintTable(100, 128, rng)
        a = table.set_fingerprint(range(0, 60))
        b = table.set_fingerprint(range(40, 100))  # overlaps A
        union = table.set_fingerprint(range(0, 100))
        merged = a.merge(b)
        assert (merged.maxima == union.maxima).all()

    def test_merge_with_empty(self, rng):
        table = FingerprintTable(10, 32, rng)
        a = table.set_fingerprint(range(10))
        assert (a.merge(Fingerprint.empty(32)).maxima == a.maxima).all()

    def test_encoded_bits_positive_and_linear_ish(self, rng):
        table = FingerprintTable(500, 256, rng)
        fp = table.set_fingerprint(range(500))
        bits = fp.encoded_bits()
        # Lemma 5.6: O(t + loglog d); generous envelope check
        assert 2 * 256 <= bits <= 20 * 256


class TestArgmaxPerTrial:
    def test_consistency_with_rows(self, rng):
        table = FingerprintTable(50, 64, rng)
        values, argmax, unique = table.argmax_per_trial(range(50))
        block = table.rows[:50].astype(np.int64)
        assert (values == block.max(axis=0)).all()
        for i in range(64):
            attained = np.flatnonzero(block[:, i] == values[i])
            assert argmax[i] == attained[0]
            assert unique[i] == (len(attained) == 1)

    def test_empty_vertex_set(self, rng):
        table = FingerprintTable(10, 16, rng)
        values, argmax, unique = table.argmax_per_trial([])
        assert (values == EMPTY_MAX).all()
        assert (argmax == -1).all()
        assert not unique.any()


class TestNeighborhoodMaxima:
    def test_matches_bruteforce(self, rng):
        import networkx as nx

        g = nx.gnp_random_graph(40, 0.2, seed=9)
        table = FingerprintTable(40, 32, rng)
        src, dst = [], []
        for u, v in g.edges():
            src += [u, v]
            dst += [v, u]
        out = neighborhood_maxima(
            table.rows, np.array(src), np.array(dst), 40
        )
        for v in range(40):
            nbrs = list(g.neighbors(v))
            if not nbrs:
                assert (out[v] == EMPTY_MAX).all()
            else:
                expected = table.rows[nbrs].max(axis=0)
                assert (out[v] == expected).all()


class TestBatchSampling:
    """The batched direct-count path must replay the per-vertex loop's RNG
    stream and estimates bitwise -- the decomposition vectorization's
    contract."""

    def test_batch_maxima_replay_loop_bitwise(self, rng):
        from repro.sketch import sample_max_of_geometrics, sample_max_of_geometrics_batch

        counts = np.random.default_rng(0).integers(0, 300, size=120)
        state = rng.bit_generator.state
        loop = np.stack(
            [sample_max_of_geometrics(rng, int(d), 33) for d in counts]
        )
        rng2 = np.random.default_rng()
        rng2.bit_generator.state = state
        batch = sample_max_of_geometrics_batch(rng2, counts, 33)
        assert np.array_equal(loop, batch)
        # both generators must land on the same stream position too
        assert rng.bit_generator.state == rng2.bit_generator.state

    def test_batch_estimate_exact_is_bitwise(self, rng):
        from repro.sketch import batch_estimate_exact

        counts = np.random.default_rng(1).integers(0, 5000, size=400)
        rows = np.stack(
            [direct_count_fingerprint(rng, int(d), 64).maxima for d in counts]
        )
        exact = batch_estimate_exact(rows)
        scalar = np.array([estimate_cardinality(r) for r in rows])
        # array_equal, not allclose: the exact variant promises the last bit
        assert np.array_equal(exact, scalar)

    def test_batch_count_estimates_replays_loop(self, rng):
        from repro.sketch import batch_count_estimates

        counts = np.random.default_rng(2).integers(0, 200, size=80)
        state = rng.bit_generator.state
        loop = np.array(
            [direct_count_fingerprint(rng, int(d), 41).estimate() for d in counts]
        )
        rng2 = np.random.default_rng()
        rng2.bit_generator.state = state
        batch = batch_count_estimates(rng2, counts, 41)
        assert np.array_equal(loop, batch)

    def test_negative_counts_rejected(self, rng):
        from repro.sketch import sample_max_of_geometrics_batch

        with pytest.raises(ValueError):
            sample_max_of_geometrics_batch(rng, np.array([3, -1]), 8)

    def test_zero_counts_draw_nothing(self, rng):
        from repro.sketch import sample_max_of_geometrics_batch

        state = rng.bit_generator.state
        out = sample_max_of_geometrics_batch(rng, np.zeros(5, dtype=np.int64), 16)
        assert (out == EMPTY_MAX).all()
        assert rng.bit_generator.state == state  # untouched stream
