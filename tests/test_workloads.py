"""Workload generators: planted structure, determinism, connectivity."""

import numpy as np
import pytest

from repro.workloads import (
    bridge_pathology,
    cabal_instance,
    congest_instance,
    contraction_instance,
    figure1_example,
    high_degree_instance,
    low_degree_instance,
    planted_acd_instance,
    voronoi_instance,
)

ALL_GENERATORS = [
    planted_acd_instance,
    cabal_instance,
    congest_instance,
    contraction_instance,
    voronoi_instance,
    bridge_pathology,
    high_degree_instance,
    low_degree_instance,
]


class TestAllGenerators:
    @pytest.mark.parametrize("maker", ALL_GENERATORS)
    def test_valid_cluster_graph(self, maker):
        w = maker(np.random.default_rng(1))
        g = w.graph
        assert g.n_vertices > 0
        assert g.max_degree >= 1
        # partition covers all machines with connected clusters (validated
        # at construction); sanity-check the totals anyway
        assert sum(g.cluster_size(v) for v in range(g.n_vertices)) == g.n_machines

    @pytest.mark.parametrize("maker", ALL_GENERATORS)
    def test_deterministic_given_seed(self, maker):
        a = maker(np.random.default_rng(9))
        b = maker(np.random.default_rng(9))
        assert a.graph.n_vertices == b.graph.n_vertices
        assert sorted(a.graph.iter_h_edges()) == sorted(b.graph.iter_h_edges())


class TestPlantedAcd:
    def test_planted_cliques_are_cliques_minus_anti_edges(self, rng):
        w = planted_acd_instance(rng, anti_degree=1)
        g = w.graph
        for members in w.planted_cliques:
            for v in members:
                non_nbrs = [
                    u for u in members if u != v and not g.are_adjacent(u, v)
                ]
                assert len(non_nbrs) <= 1  # anti-degree budget respected

    def test_sparse_part_is_sparse(self, rng):
        w = planted_acd_instance(rng)
        g = w.graph
        clique_size = len(w.planted_cliques[0])
        degrees = [g.degree(v) for v in w.planted_sparse]
        # on average well below clique degree (individual outliers allowed)
        assert np.mean(degrees) < 0.8 * clique_size

    def test_external_degree_knob(self, rng):
        low = planted_acd_instance(np.random.default_rng(3), external_degree=1)
        high = planted_acd_instance(np.random.default_rng(3), external_degree=10)
        def avg_external(w):
            g = w.graph
            total = 0
            count = 0
            for members in w.planted_cliques:
                mset = set(members)
                for v in members:
                    total += len(g.neighbor_set(v) - mset)
                    count += 1
            return total / count
        assert avg_external(high) > avg_external(low) + 5


class TestCabalInstance:
    def test_anti_degree_knob(self):
        w = cabal_instance(np.random.default_rng(4), anti_degree=3)
        g = w.graph
        anti = []
        for members in w.planted_cliques:
            for v in members:
                anti.append(
                    sum(1 for u in members if u != v and not g.are_adjacent(u, v))
                )
        assert 1.0 <= np.mean(anti) <= 3.0

    def test_tiny_external_degree(self):
        w = cabal_instance(np.random.default_rng(5))
        g = w.graph
        for members in w.planted_cliques:
            mset = set(members)
            externals = [len(g.neighbor_set(v) - mset) for v in members]
            assert np.mean(externals) < 1.0

    def test_single_cabal(self):
        w = cabal_instance(np.random.default_rng(6), n_cabals=1)
        assert len(w.planted_cliques) == 1


class TestSpecials:
    def test_figure1_is_connected_4_vertex(self):
        w = figure1_example()
        assert w.graph.n_vertices == 4
        assert w.graph.n_machines == 9

    def test_bridge_has_bridge_dilation(self, rng):
        w = bridge_pathology(rng)
        assert w.graph.dilation >= 2  # two stars joined by a bridge

    def test_high_degree_clears_scaled_threshold(self):
        from repro.params import scaled

        w = high_degree_instance(np.random.default_rng(7), n_vertices=300)
        assert w.graph.max_degree >= scaled().delta_low(w.graph.n_machines)

    def test_low_degree_is_regular(self):
        w = low_degree_instance(np.random.default_rng(8), target_degree=6)
        degrees = {w.graph.degree(v) for v in range(w.graph.n_vertices)}
        assert degrees == {6}


class TestStreamGenerators:
    """Churn streams: registry exposure, determinism, and batch validity
    (validity is proven by driving the engine over every emitted batch)."""

    def test_streams_registered_uniformly(self):
        from repro.workloads import GENERATORS, STREAMS

        for name in STREAMS:
            assert name in GENERATORS
            assert GENERATORS[name] is STREAMS[name]

    @pytest.mark.parametrize("name", ["sliding_window", "hotspot_churn",
                                      "cluster_churn"])
    def test_stream_is_workload_with_batches(self, name):
        from repro.workloads import STREAMS, StreamWorkload, Workload

        w = STREAMS[name](np.random.default_rng(0))
        assert isinstance(w, StreamWorkload)
        assert isinstance(w, Workload)  # uniform listing/coloring surface
        assert w.graph.n_vertices > 0
        assert len(w.batches) > 0
        assert w.total_updates == sum(len(b) for b in w.batches)

    @pytest.mark.parametrize("name", ["sliding_window", "hotspot_churn",
                                      "cluster_churn"])
    def test_deterministic_given_seed(self, name):
        from repro.workloads import STREAMS

        a = STREAMS[name](np.random.default_rng(5))
        b = STREAMS[name](np.random.default_rng(5))
        assert sorted(a.graph.iter_h_edges()) == sorted(b.graph.iter_h_edges())
        assert [ba.updates for ba in a.batches] == [bb.updates for bb in b.batches]

    @pytest.mark.parametrize("name", ["sliding_window", "hotspot_churn",
                                      "cluster_churn"])
    def test_every_batch_is_applicable(self, name):
        from repro.dynamic import DynamicColoring
        from repro.workloads import STREAMS

        w = STREAMS[name](np.random.default_rng(11))
        engine = DynamicColoring(w.graph, seed=2)
        result = engine.run(w.batches)  # engine raises on any invalid event
        assert result.batches == len(w.batches)
        assert result.all_proper

    def test_cluster_churn_needs_splittable_clusters(self):
        from repro.workloads import cluster_churn_stream

        with pytest.raises(ValueError, match="cluster_size"):
            cluster_churn_stream(np.random.default_rng(0), cluster_size=1)


class TestParamValidation:
    """Call-time validation through the PARAM_SPECS registry."""

    def test_every_generator_has_specs(self):
        from repro.workloads import GENERATORS, PARAM_SPECS

        assert set(PARAM_SPECS) == set(GENERATORS)

    def test_unknown_parameter_rejected_upfront(self):
        from repro.workloads import GENERATORS

        with pytest.raises(ValueError, match="no parameter 'bogus'"):
            GENERATORS["planted_acd"](np.random.default_rng(0), bogus=1)

    def test_out_of_bounds_rejected_with_bound_in_message(self):
        from repro.workloads import GENERATORS

        with pytest.raises(ValueError, match="must be >= 2"):
            GENERATORS["cabal"](np.random.default_rng(0), clique_size=1)
        with pytest.raises(ValueError, match="must be <= 1"):
            GENERATORS["congest"](np.random.default_rng(0), p=1.5)

    def test_wrong_type_rejected(self):
        from repro.workloads import GENERATORS

        with pytest.raises(ValueError, match="must be an integer"):
            GENERATORS["congest"](np.random.default_rng(0), n=200.5)
        with pytest.raises(ValueError, match="must be an integer"):
            GENERATORS["congest"](np.random.default_rng(0), n=True)

    def test_bad_choice_rejected(self):
        from repro.workloads import GENERATORS

        with pytest.raises(ValueError, match="must be one of"):
            GENERATORS["high_degree"](
                np.random.default_rng(0), topology="moebius"
            )

    def test_none_only_where_allowed(self):
        from repro.workloads import GENERATORS

        # congest's p is generator-computed when None
        GENERATORS["congest"](np.random.default_rng(0), n=60, p=None)
        with pytest.raises(ValueError, match="does not accept None"):
            GENERATORS["congest"](np.random.default_rng(0), n=None)

    def test_spec_defaults_are_valid(self):
        from repro.workloads import PARAM_SPECS
        from repro.workloads.specs import validate_params

        for name, specs in PARAM_SPECS.items():
            defaults = {
                k: s.default for k, s in specs.items() if s.default is not None
            }
            validate_params(name, defaults)

    def test_fuzz_boxes_inside_hard_bounds(self):
        from repro.workloads import PARAM_SPECS

        for name, specs in PARAM_SPECS.items():
            for pname, spec in specs.items():
                if not spec.fuzz or spec.kind == "choice":
                    continue
                lo, hi = spec.box
                assert lo <= hi, f"{name}.{pname}"
                if spec.low is not None:
                    assert lo >= spec.low, f"{name}.{pname}"
                if spec.high is not None:
                    assert hi <= spec.high, f"{name}.{pname}"

    def test_clamp_params_output_validates(self):
        from repro.workloads.specs import clamp_params, validate_params

        wild = {"n": 10**9, "p": 5.0, "n_clusters": 10**9}
        cleaned = clamp_params("voronoi", wild)
        validate_params("voronoi", cleaned)
        assert cleaned["n_clusters"] <= cleaned["n"]
