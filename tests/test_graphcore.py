"""Property tests: the batched CSR kernels must agree with the legacy
per-vertex reference implementations on randomized instances.

The contract under test is exact agreement -- the kernels replaced Python
loops on hot paths with the promise that nothing observable changes (RNG
draw order, ledger charges, and colorings are all preserved because the
kernels are pure, deterministic functions).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterGraph
from repro.coloring.types import UNCOLORED, PartialColoring
from repro.graphcore import (
    CSRAdjacency,
    batch_conflict_mask,
    batch_label_mismatch_counts,
    batch_neighbor_colors,
    batch_slack_counts,
    batch_used_color_masks,
    csr_of,
    gather_neighborhoods,
    is_proper_edges,
    label_components,
    neighborhood_max_rows,
    violations_edges,
)
from repro.network import CommGraph
from repro.sketch.fingerprint import neighborhood_maxima
from repro.sketch.geometric import EMPTY_MAX
from repro.verify.checker import is_proper, violations


def random_graph(seed: int, n: int, density: float) -> ClusterGraph:
    """A random identity-cluster graph (isolated vertices allowed)."""
    rng = np.random.default_rng(seed)
    m = int(density * n * (n - 1) / 2)
    if m:
        pairs = rng.integers(0, n, size=(m, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    return ClusterGraph.identity(CommGraph(n, pairs))


def random_coloring(
    rng: np.random.Generator, n: int, num_colors: int
) -> PartialColoring:
    colors = rng.integers(-1, num_colors, size=n)
    return PartialColoring(num_colors=num_colors, colors=colors.astype(np.int64))


graph_params = {
    "seed": st.integers(0, 2**31 - 1),
    "n": st.integers(1, 40),
    "density": st.floats(0.0, 1.0),
}


class TestCSRStructure:
    @given(**graph_params)
    @settings(max_examples=60)
    def test_csr_matches_adj_lists(self, seed, n, density):
        g = random_graph(seed, n, density)
        assert g.csr.n_vertices == g.n_vertices
        for v in range(g.n_vertices):
            assert g.csr.neighbors(v).tolist() == sorted(g.adj[v])
            assert g.neighbor_array(v).tolist() == g.adj[v]

    @given(**graph_params)
    @settings(max_examples=60)
    def test_edge_arrays_match_iter_h_edges(self, seed, n, density):
        g = random_graph(seed, n, density)
        eu, ev = g.h_edge_arrays()
        assert (eu < ev).all()
        assert set(zip(eu.tolist(), ev.tolist())) == set(g.iter_h_edges())
        assert eu.size == g.n_h_edges

    def test_csr_of_duck_typed_graph(self):
        class Stub:
            n_vertices = 3

            def neighbors(self, v):
                return {0: [1], 1: [0, 2], 2: [1]}[v]

        csr = csr_of(Stub())
        assert csr.neighbors(1).tolist() == [0, 2]

    @given(**graph_params)
    @settings(max_examples=30)
    def test_gather_neighborhoods_segments(self, seed, n, density):
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 1)
        verts = rng.permutation(n)[: max(1, n // 2)]
        seg_ids, flat = gather_neighborhoods(g.csr, verts)
        for i, v in enumerate(verts):
            assert flat[seg_ids == i].tolist() == g.adj[int(v)]


class TestKernelAgreement:
    @given(**graph_params)
    @settings(max_examples=60)
    def test_batch_neighbor_colors(self, seed, n, density):
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 2)
        coloring = random_coloring(rng, n, num_colors=max(2, g.max_degree + 1))
        verts = np.arange(n)
        seg_ids, flat_colors = batch_neighbor_colors(g.csr, coloring.colors, verts)
        for v in range(n):
            expected = coloring.neighbor_colors(g, v).tolist()
            assert flat_colors[seg_ids == v].tolist() == expected

    @given(symmetric=st.booleans(), **graph_params)
    @settings(max_examples=80)
    def test_batch_conflict_mask_vs_per_vertex_rule(
        self, symmetric, seed, n, density
    ):
        """Algorithm 17 step 4, per-vertex reference vs batched kernel."""
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 3)
        q = max(2, g.max_degree + 1)
        coloring = random_coloring(rng, n, q)
        proposers = [v for v in range(n) if rng.random() < 0.6]
        proposals = {v: int(rng.integers(0, q)) for v in proposers}
        if not proposals:
            return
        proposal_arr = np.full(n, -2, dtype=np.int64)
        for v, c in proposals.items():
            proposal_arr[v] = c

        def blocked_reference(v: int, c: int) -> bool:
            nbrs = np.asarray(g.adj[v], dtype=np.int64)
            if not nbrs.size:
                return False
            if (coloring.colors[nbrs] == c).any():
                return True
            same = proposal_arr[nbrs] == c
            if symmetric:
                return bool(same.any())
            return bool((same & (nbrs < v)).any())

        verts = np.fromiter(proposals.keys(), dtype=np.int64)
        cands = np.fromiter(proposals.values(), dtype=np.int64)
        got = batch_conflict_mask(
            g.csr,
            coloring.colors,
            verts,
            cands,
            proposal_map=proposal_arr,
            symmetric=symmetric,
        )
        expected = [blocked_reference(int(v), int(c)) for v, c in proposals.items()]
        assert got.tolist() == expected

    @given(**graph_params)
    @settings(max_examples=60)
    def test_batch_used_color_masks(self, seed, n, density):
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 4)
        q = max(2, g.max_degree + 1)
        coloring = random_coloring(rng, n, q)
        verts = np.arange(n)
        masks = batch_used_color_masks(g.csr, coloring.colors, verts, q)
        for v in range(n):
            used = {
                int(c)
                for c in coloring.neighbor_colors(g, v)
                if c != UNCOLORED
            }
            assert set(np.flatnonzero(masks[v]).tolist()) == used

    @given(among_half=st.booleans(), **graph_params)
    @settings(max_examples=60)
    def test_batch_slack_counts_vs_scalar_slack(
        self, among_half, seed, n, density
    ):
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 5)
        q = max(2, g.max_degree + 1)
        coloring = random_coloring(rng, n, q)
        among = set(range(0, n, 2)) if among_half else None
        verts = np.arange(n)
        got = coloring.slacks(g, verts, among=among)
        expected = [coloring.slack(g, v, among=among) for v in range(n)]
        assert got.tolist() == expected

    @given(**graph_params)
    @settings(max_examples=60)
    def test_is_proper_and_violations_vs_loop_reference(self, seed, n, density):
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 6)
        q = max(2, g.max_degree + 1)
        # bias toward collisions so the proper/improper branch both fire
        colors = rng.integers(-1, min(q, 3), size=n).astype(np.int64)

        def reference(allow_partial: bool) -> bool:
            for u, v in g.iter_h_edges():
                cu, cv = int(colors[u]), int(colors[v])
                if cu == UNCOLORED or cv == UNCOLORED:
                    if not allow_partial:
                        return False
                    continue
                if cu == cv:
                    return False
            return True

        for allow_partial in (False, True):
            assert is_proper(g, colors, allow_partial=allow_partial) == reference(
                allow_partial
            )
        expected_bad = {
            (u, v)
            for u, v in g.iter_h_edges()
            if colors[u] != UNCOLORED and colors[u] == colors[v]
        }
        assert set(violations(g, colors)) == expected_bad
        eu, ev = g.h_edge_arrays()
        assert is_proper_edges(eu, ev, colors) == reference(False)
        assert set(violations_edges(eu, ev, colors)) == expected_bad

    @given(
        trials=st.integers(1, 8),
        **graph_params,
    )
    @settings(max_examples=40)
    def test_neighborhood_max_rows_vs_scatter_reference(
        self, trials, seed, n, density
    ):
        """The segmented reduceat must equal the legacy np.maximum.at
        scatter (kept in repro.sketch.fingerprint as the reference)."""
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 7)
        rows = rng.integers(0, 100, size=(n, trials)).astype(np.int16)
        eu, ev = g.h_edge_arrays()
        src = np.concatenate([eu, ev])
        dst = np.concatenate([ev, eu])
        expected = neighborhood_maxima(rows, src, dst, n)
        got = neighborhood_max_rows(g.csr, rows, empty_value=EMPTY_MAX)
        assert np.array_equal(got, expected)

    @given(
        trials=st.integers(1, 4),
        chunk=st.integers(1, 64),
        **graph_params,
    )
    @settings(max_examples=30)
    def test_neighborhood_max_rows_chunking_invariant(
        self, trials, chunk, seed, n, density
    ):
        """Chunk boundaries are an implementation detail: any flat_chunk
        must give the same answer."""
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 8)
        rows = rng.integers(0, 50, size=(n, trials)).astype(np.int16)
        full = neighborhood_max_rows(g.csr, rows, empty_value=EMPTY_MAX)
        chunked = neighborhood_max_rows(
            g.csr, rows, empty_value=EMPTY_MAX, flat_chunk=chunk
        )
        assert np.array_equal(full, chunked)


class TestCSRFromAdjLists:
    def test_empty_graph(self):
        csr = CSRAdjacency.from_adj_lists([])
        assert csr.n_vertices == 0
        assert csr.n_directed_edges == 0
        eu, ev = csr.edge_arrays()
        assert eu.size == 0 and ev.size == 0

    def test_isolated_vertices(self):
        csr = CSRAdjacency.from_adj_lists([[], [2], [1], []])
        assert csr.neighbors(0).size == 0
        assert csr.neighbors(1).tolist() == [2]
        assert csr.degrees.tolist() == [0, 1, 1, 0]


class TestLabelKernels:
    """The decomposition/cabal vectorization kernels vs naive references."""

    @given(**graph_params)
    @settings(max_examples=60)
    def test_label_mismatch_counts_match_scan(self, seed, n, density):
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 3)
        labels = rng.integers(-1, 4, size=n)
        verts = rng.permutation(n)[: max(1, n // 2)]
        counts = batch_label_mismatch_counts(g.csr, labels, verts)
        ignored = batch_label_mismatch_counts(
            g.csr, labels, verts, ignore_label=-1
        )
        overridden = batch_label_mismatch_counts(
            g.csr, labels, verts, ignore_label=-1, own_labels=2
        )
        for i, v in enumerate(verts):
            nbrs = g.adj[int(v)]
            assert counts[i] == sum(
                1 for u in nbrs if labels[u] != labels[v]
            )
            assert ignored[i] == sum(
                1 for u in nbrs if labels[u] != labels[v] and labels[u] != -1
            )
            assert overridden[i] == sum(
                1 for u in nbrs if labels[u] != 2 and labels[u] != -1
            )

    @given(**graph_params)
    @settings(max_examples=60)
    def test_label_components_match_bfs(self, seed, n, density):
        """Min-id propagation equals an explicit BFS over the active
        subgraph -- the ComputeACD step 3 contract."""
        g = random_graph(seed, n, density)
        rng = np.random.default_rng(seed + 4)
        active = rng.random(n) < 0.6
        eu, ev = g.h_edge_arrays()
        labels = label_components(eu, ev, n, active)
        # reference: per-vertex BFS restricted to active vertices
        adj = {v: [] for v in range(n) if active[v]}
        for u, v in zip(eu.tolist(), ev.tolist()):
            if active[u] and active[v]:
                adj[u].append(v)
                adj[v].append(u)
        expected = np.full(n, -1, dtype=np.int64)
        for start in sorted(adj):
            if expected[start] >= 0:
                continue
            comp, frontier = [start], [start]
            expected[start] = start
            while frontier:
                nxt = []
                for x in frontier:
                    for y in adj[x]:
                        if expected[y] < 0:
                            expected[y] = start
                            nxt.append(y)
                frontier = nxt
        assert np.array_equal(labels, expected)
