"""MultiColorTrial (Lemma D.1) and SynchronizedColorTrial (Lemma 4.13)."""

import networkx as nx
import numpy as np
import pytest

from repro.cluster import blowup
from repro.coloring.clique_palette import palette_view
from repro.coloring.errors import StageFailure
from repro.coloring.multicolor_trial import _trial_schedule, multicolor_trial
from repro.coloring.synchronized_trial import SctPlan, synchronized_color_trial
from repro.coloring.types import PartialColoring
from repro.verify import is_proper
from tests.conftest import make_runtime


class TestTrialSchedule:
    def test_grows_doubly_fast_then_caps(self):
        sizes = _trial_schedule(gamma=0.25, n=10**6, max_iters=10)
        assert sizes[0] == 1
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))
        # reaches the cap in O(log*) steps
        assert sizes[5] == sizes[-1]


class TestMultiColorTrial:
    def _setup(self, n=60, p=0.25, seed=2):
        g = blowup(
            nx.gnp_random_graph(n, p, seed=seed), np.random.default_rng(0),
            cluster_size=1,
        )
        runtime = make_runtime(g, seed)
        coloring = PartialColoring.empty(g.n_vertices, g.max_degree + 1)
        return runtime, coloring

    def test_colors_everything_with_full_space(self):
        runtime, coloring = self._setup()
        space = list(range(coloring.num_colors))
        leftover = multicolor_trial(
            runtime, coloring, list(range(coloring.n_vertices)),
            lambda v: space,
        )
        assert leftover == []
        assert coloring.is_total()
        assert is_proper(runtime.graph, coloring.colors)

    def test_raises_on_impossible_space(self):
        runtime, coloring = self._setup()
        # two adjacent vertices, one usable color: someone must fail
        with pytest.raises(StageFailure) as info:
            multicolor_trial(
                runtime, coloring, list(range(coloring.n_vertices)),
                lambda v: [0], max_iters=4,
            )
        assert info.value.affected  # leftover reported for fallback

    def test_leftover_return_mode(self):
        runtime, coloring = self._setup()
        leftover = multicolor_trial(
            runtime, coloring, list(range(coloring.n_vertices)),
            lambda v: [0], max_iters=4, raise_on_leftover=False,
        )
        assert len(leftover) > 0
        assert is_proper(runtime.graph, coloring.colors, allow_partial=True)

    def test_respects_color_space(self):
        runtime, coloring = self._setup(n=20, p=0.05)
        space = list(range(5, coloring.num_colors))
        multicolor_trial(
            runtime, coloring, list(range(coloring.n_vertices)),
            lambda v: space, raise_on_leftover=False,
        )
        for v in range(coloring.n_vertices):
            if coloring.is_colored(v):
                assert coloring.get(v) >= 5

    def test_log_star_round_shape(self):
        """The round count must stay near-constant as n grows (the
        O(log* n) claim, measured in MCT iterations via ledger rounds)."""
        costs = {}
        for n in (40, 160):
            runtime, coloring = self._setup(n=n, p=0.2)
            before = runtime.ledger.rounds_h
            space = list(range(coloring.num_colors))
            multicolor_trial(
                runtime, coloring, list(range(coloring.n_vertices)),
                lambda v: space,
            )
            costs[n] = runtime.ledger.rounds_h - before
        assert costs[160] <= costs[40] + 8


class TestSynchronizedColorTrial:
    def _clique_setup(self, size=40, seed=4):
        g = blowup(
            nx.complete_graph(size), np.random.default_rng(1), cluster_size=1
        )
        runtime = make_runtime(g, seed)
        coloring = PartialColoring.empty(size, g.max_degree + 1)
        return runtime, coloring

    def test_isolated_clique_fully_colored(self):
        """With no external neighbors, the SCT colors every participant
        (trials are conflict-free inside a clique by construction)."""
        runtime, coloring = self._clique_setup()
        members = list(range(40))
        view = palette_view(runtime, coloring, members)
        plan = SctPlan(participants=members, palette=view, reserved_floor=0)
        leftover = synchronized_color_trial(runtime, coloring, [plan])
        assert leftover == []
        assert is_proper(runtime.graph, coloring.colors, allow_partial=True)

    def test_reserved_floor_respected(self):
        runtime, coloring = self._clique_setup()
        members = list(range(40))
        view = palette_view(runtime, coloring, members)
        floor = 3
        plan = SctPlan(participants=members[:30], palette=view, reserved_floor=floor)
        synchronized_color_trial(runtime, coloring, [plan])
        for v in members[:30]:
            if coloring.is_colored(v):
                assert coloring.get(v) >= floor

    def test_two_joined_cliques_external_conflicts_bounded(self):
        """Lemma 4.13's content: only external neighbors can knock a
        participant out, so leftovers are O(e_K), not O(|K|)."""
        h = nx.Graph()
        a = list(range(30))
        b = list(range(30, 60))
        for group in (a, b):
            h.add_edges_from(
                (group[i], group[j])
                for i in range(30)
                for j in range(i + 1, 30)
            )
        # e_K = 3 cross edges
        h.add_edges_from([(0, 30), (1, 31), (2, 32)])
        g = blowup(h, np.random.default_rng(2), cluster_size=1)
        runtime = make_runtime(g, 7)
        coloring = PartialColoring.empty(60, g.max_degree + 1)
        plans = []
        for group in (a, b):
            view = palette_view(runtime, coloring, group)
            plans.append(
                SctPlan(participants=list(group), palette=view, reserved_floor=0)
            )
        leftover = synchronized_color_trial(runtime, coloring, plans)
        assert len(leftover) <= 6  # at most both endpoints of each cross edge
        assert is_proper(runtime.graph, coloring.colors, allow_partial=True)

    def test_participants_capped_by_palette(self):
        runtime, coloring = self._clique_setup(size=10)
        members = list(range(10))
        # pre-color 8 members' worth of colors from outside the clique? --
        # instead shrink the palette by coloring 6 members first
        for v, c in zip(range(6), range(6)):
            coloring.assign(v, c)
        view = palette_view(runtime, coloring, members)
        plan = SctPlan(
            participants=[v for v in members if not coloring.is_colored(v)],
            palette=view,
            reserved_floor=0,
        )
        leftover = synchronized_color_trial(runtime, coloring, [plan])
        assert leftover == []
        assert is_proper(runtime.graph, coloring.colors, allow_partial=True)
