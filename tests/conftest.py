"""Shared fixtures: deterministic rngs and session-cached workloads.

Also registers the shared hypothesis profile: the deadline is disabled
suite-wide (per-example wall clocks flake under CI load and parallel
sweeps; our properties assert values, not latency) and ``print_blob`` is
on so a failing example prints its reproduction blob for an exact
``@reproduce_failure`` re-run.  Per-file ``@settings`` now only override
``max_examples`` and health checks, never the deadline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile(
    "repro", deadline=None, print_blob=True
)
hypothesis_settings.load_profile("repro")

from repro.aggregation import ClusterRuntime
from repro.params import scaled
from repro.workloads import (
    cabal_instance,
    congest_instance,
    figure1_example,
    planted_acd_instance,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def planted_workload():
    """A planted-ACD instance shared across the session (read-only)."""
    return planted_acd_instance(np.random.default_rng(777))


@pytest.fixture(scope="session")
def cabal_workload():
    """A cabal-heavy instance shared across the session (read-only)."""
    return cabal_instance(np.random.default_rng(778))


@pytest.fixture(scope="session")
def congest_workload():
    """An identity-cluster instance shared across the session (read-only)."""
    return congest_instance(np.random.default_rng(779))


@pytest.fixture(scope="session")
def figure1_workload():
    """The hand-built Figure 1 example."""
    return figure1_example()


def make_runtime(graph, seed: int = 5) -> ClusterRuntime:
    """Fresh runtime bound to a graph (helper, not a fixture, so tests can
    spawn several against one session-scoped graph)."""
    return ClusterRuntime(
        graph=graph, params=scaled(), rng=np.random.default_rng(seed)
    )
