"""Property-based tests (hypothesis) over the core invariants.

These go beyond the fixed-instance unit tests: random graphs, random
seeds, random coloring states -- the invariants must hold on all of them.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import color_cluster_graph
from repro.cluster import ClusterGraph, blowup
from repro.coloring.types import CliquePaletteView, PartialColoring
from repro.network import CommGraph
from repro.sketch import estimate_cardinality, sample_max_of_geometrics
from repro.verify import is_proper

SLOW = settings(
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_conflict_graph(draw):
    """A small random connected conflict graph."""
    n = draw(st.integers(min_value=2, max_value=40))
    p = draw(st.floats(min_value=0.05, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    g = nx.gnp_random_graph(n, p, seed=seed)
    comps = list(nx.connected_components(g))
    for i in range(len(comps) - 1):
        g.add_edge(next(iter(comps[i])), next(iter(comps[i + 1])))
    return g


class TestPipelineProperties:
    @given(graph=random_conflict_graph(), seed=st.integers(0, 1000))
    @SLOW
    def test_always_proper_total_delta_plus_one(self, graph, seed):
        h = blowup(graph, np.random.default_rng(0), cluster_size=2)
        result = color_cluster_graph(h, seed=seed)
        assert result.proper
        assert (result.colors >= 0).all()
        assert result.colors.max() <= h.max_degree

    @given(
        graph=random_conflict_graph(),
        cluster_size=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    @SLOW
    def test_cluster_topology_never_affects_correctness(
        self, graph, cluster_size, seed
    ):
        h = blowup(
            graph, np.random.default_rng(1), cluster_size=cluster_size,
            topology="path",
        )
        result = color_cluster_graph(h, seed=seed)
        assert result.proper


class TestPaletteViewProperties:
    @given(
        n=st.integers(2, 30),
        q=st.integers(2, 40),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50)
    def test_partition_into_free_and_used(self, n, q, seed):
        rng = np.random.default_rng(seed)
        coloring = PartialColoring.empty(n, q)
        for v in range(n):
            if rng.random() < 0.6:
                coloring.assign(v, int(rng.integers(0, q)))
        members = list(range(n))
        view = CliquePaletteView.build(coloring, members)
        used = {coloring.get(v) for v in members if coloring.is_colored(v)}
        assert set(view.free.tolist()) == set(range(q)) - used
        assert view.repeated_colors == sum(
            1 for v in members if coloring.is_colored(v)
        ) - len(used)
        # range queries consistent with the free array
        lo = int(rng.integers(0, q))
        hi = int(rng.integers(lo, q + 1))
        assert view.count_in_range(lo, hi) == sum(
            1 for c in view.free.tolist() if lo <= c < hi
        )


class TestEstimatorProperties:
    @given(
        d=st.integers(1, 10**6),
        t=st.integers(64, 512),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=60)
    def test_estimate_positive_and_finite(self, d, t, seed):
        rng = np.random.default_rng(seed)
        maxima = sample_max_of_geometrics(rng, d, t)
        estimate = estimate_cardinality(maxima)
        assert np.isfinite(estimate)
        assert estimate > 0

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_merge_monotone(self, seed):
        """Estimates of supersets (via merge) never collapse below a
        constant fraction of the subset estimate."""
        rng = np.random.default_rng(seed)
        from repro.sketch import FingerprintTable

        table = FingerprintTable(60, 256, rng)
        small = table.set_fingerprint(range(20))
        large = small.merge(table.set_fingerprint(range(20, 60)))
        # maxima only grow under merge
        assert (large.maxima >= small.maxima).all()


class TestClusterGraphProperties:
    @given(
        n=st.integers(3, 30),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=40)
    def test_identity_degree_equals_link_count(self, n, seed):
        g = nx.gnp_random_graph(n, 0.4, seed=seed)
        comps = list(nx.connected_components(g))
        for i in range(len(comps) - 1):
            g.add_edge(next(iter(comps[i])), next(iter(comps[i + 1])))
        comm = CommGraph.from_networkx(g)
        h = ClusterGraph.identity(comm)
        # with singleton clusters the overcounting hazard vanishes
        for v in range(h.n_vertices):
            assert h.degree(v) == h.link_count(v)

    @given(
        n=st.integers(2, 25),
        cluster_size=st.integers(1, 4),
        mult=st.integers(1, 3),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=40)
    def test_blowup_preserves_conflict_graph(self, n, cluster_size, mult, seed):
        g = nx.gnp_random_graph(n, 0.5, seed=seed)
        h = blowup(
            g, np.random.default_rng(seed), cluster_size=cluster_size,
            link_multiplicity=mult,
        )
        assert h.n_h_edges == g.number_of_edges()
        for u, v in g.edges():
            assert h.are_adjacent(u, v)
