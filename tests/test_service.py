"""Tests for the always-on coloring service (repro.serve).

The load-bearing property mirrors the tracer's: serving a workload
through the open-loop driver -- registry bound, arrivals attached --
must be *bitwise-invisible* relative to pushing the same stream through
``run_stream`` bare: same colors, same per-op ledger, same RNG end
state, same deterministic metrics.  The rest covers the virtual-clock
queueing model, arrival-schedule generation, the SLO algebra, and the
service fields' round trip through runner -> artifact -> compare ->
history.
"""

import numpy as np
import pytest

from repro.dynamic.harness import run_stream
from repro.observe import MetricsRegistry, Tracer
from repro.observe.metrics import exact_percentiles
from repro.serve import (
    ColoringService,
    DEFAULT_SLOS,
    SLOTarget,
    evaluate_slos,
    parse_slo,
    render_dashboard,
    render_slo_report,
    run_service,
)
from repro.workloads.streams import (
    ARRIVAL_PROFILES,
    arrival_offsets,
    sliding_window_stream,
)


def small_workload(profile=None, rate=500.0, batches=6, seed=3):
    return sliding_window_stream(
        np.random.default_rng(seed),
        n_vertices=150,
        batches=batches,
        arrival_profile=profile,
        arrival_rate=rate,
    )


class TestArrivalOffsets:
    def test_offsets_nondecreasing_and_deterministic(self):
        updates = [40, 40, 40, 40]
        for profile in ARRIVAL_PROFILES:
            a = arrival_offsets(
                np.random.default_rng(1), updates, profile=profile
            )
            b = arrival_offsets(
                np.random.default_rng(1), updates, profile=profile
            )
            assert a == b
            assert all(x <= y for x, y in zip(a, a[1:]))
            assert len(a) == len(updates)

    def test_constant_profile_is_pure_rate(self):
        a = arrival_offsets(
            np.random.default_rng(0), [100, 50], profile="constant",
            updates_per_sec=100.0,
        )
        assert a == pytest.approx([1.0, 1.5])

    def test_diurnal_modulates_but_spends_no_rng(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        a = arrival_offsets(
            rng, [10] * 8, profile="diurnal", updates_per_sec=100.0
        )
        assert rng.bit_generator.state == before  # only spiky draws
        gaps = np.diff([0.0] + a)
        assert gaps.min() < gaps.max()  # rate actually varies

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown arrival profile"):
            arrival_offsets(np.random.default_rng(0), [1], profile="square")
        with pytest.raises(ValueError, match="updates_per_sec"):
            arrival_offsets(
                np.random.default_rng(0), [1], updates_per_sec=0.0
            )

    def test_profile_none_leaves_workload_bitwise_unchanged(self):
        bare = small_workload(profile=None)
        shaped = small_workload(profile="diurnal")
        assert bare.arrivals is None
        assert shaped.arrivals is not None
        # batches must be identical event-for-event: arrivals are computed
        # after generation, from a rng the batch path never touched
        assert len(bare.batches) == len(shaped.batches)
        for b1, b2 in zip(bare.batches, shaped.batches):
            assert [
                (u.kind, u.u, u.v) for u in b1.in_application_order()
            ] == [(u.kind, u.u, u.v) for u in b2.in_application_order()]


class TestServiceLifecycle:
    def test_requires_stream_workload(self):
        class Fake:
            name = "static"

        with pytest.raises(ValueError, match="no update stream"):
            ColoringService(Fake())

    def test_step_before_start_and_double_start(self):
        service = ColoringService(small_workload())
        with pytest.raises(RuntimeError, match="not started"):
            service.step()
        service.start()
        with pytest.raises(RuntimeError, match="already started"):
            service.start()
        service.stop()
        with pytest.raises(RuntimeError, match="already consumed"):
            service.start()

    def test_run_serves_whole_trace(self):
        service = ColoringService(small_workload(profile="diurnal"))
        entries = service.run()
        assert len(entries) == 6
        assert service.remaining == 0
        assert not service.running
        with pytest.raises(RuntimeError, match="exhausted"):
            service._running = True
            service.step()

    def test_collect_before_start_raises(self):
        service = ColoringService(small_workload())
        with pytest.raises(RuntimeError, match="nothing to collect"):
            service.collect()

    def test_recent_entries_window(self):
        service = ColoringService(small_workload(profile="constant", rate=50.0))
        service.run()
        horizon = service.entries[-1].completion_s
        recent = service.recent_entries(duration_s=1.0)
        assert recent
        assert all(e.completion_s >= horizon - 1.0 for e in recent)
        assert service.recent_entries(duration_s=1e9) == service.entries


class TestVirtualClock:
    def test_backtoback_arrivals_queue_behind_service(self):
        # no arrival schedule: every batch arrives at t=0, so batch i
        # queues for exactly the total service time of batches 0..i-1
        service = ColoringService(small_workload(profile=None))
        service.run()
        elapsed = 0.0
        for entry in service.entries:
            assert entry.arrival_s == 0.0
            assert entry.start_s == pytest.approx(elapsed)
            assert entry.queue_s == pytest.approx(elapsed)
            assert entry.latency_s == pytest.approx(elapsed + entry.service_s)
            elapsed += entry.service_s

    def test_sparse_arrivals_never_queue(self):
        workload = small_workload(profile="constant", rate=0.5)  # minutes apart
        service = ColoringService(workload)
        service.run()
        for entry in service.entries:
            assert entry.queue_s == 0.0
            assert entry.start_s == entry.arrival_s
        metrics = service.collect()
        assert metrics["queue_ms_p99"] == 0.0
        # trace-clock throughput counts the idle gaps
        assert metrics["updates_per_sec"] == pytest.approx(
            metrics["stream_updates"] / service.entries[-1].completion_s,
            rel=0.05,
        )

    def test_arrival_length_mismatch_rejected(self):
        workload = small_workload(profile="diurnal")
        workload.arrivals = workload.arrivals[:-1]
        with pytest.raises(ValueError, match="arrival schedule covers"):
            ColoringService(workload)


class TestBitwiseInvisibility:
    def test_service_matches_bare_run_stream(self):
        seed = 11
        bare = small_workload(profile=None, seed=7)
        engine, result, metrics = run_stream(bare, seed=seed)

        shaped = small_workload(profile="spiky", seed=7)
        tracer = Tracer()
        service, service_metrics = run_service(
            shaped, seed=seed, tracer=tracer, metrics=MetricsRegistry()
        )

        assert (engine.colors == service.engine.colors).all()
        assert (
            engine.rng.bit_generator.state
            == service.engine.rng.bit_generator.state
        )
        assert engine.ledger.summary() == service.engine.ledger.summary()
        wall_like = (
            "wall",
            "_ms_",
            "per_sec",
            "duration",
            "batch_wall_times_s",
        )
        skip = ("slo", "slo_pass", "slo_failed", "arrival_profile",
                "arrival_rate")
        det = lambda d: {  # noqa: E731
            k: v
            for k, v in d.items()
            if not any(w in k for w in wall_like) and k not in skip
        }
        assert det(metrics) == det(service_metrics)

    def test_instrumented_run_stream_matches_bare(self):
        seed = 4
        bare_engine, _, bare_metrics = run_stream(
            small_workload(seed=9), seed=seed
        )
        registry = MetricsRegistry()
        inst_engine, _, inst_metrics = run_stream(
            small_workload(seed=9), seed=seed, metrics=registry
        )
        assert (bare_engine.colors == inst_engine.colors).all()
        assert (
            bare_engine.rng.bit_generator.state
            == inst_engine.rng.bit_generator.state
        )
        # the registry actually saw the stream
        assert registry.counter("stream.batches").value == len(
            inst_engine.reports
        )
        assert registry.histograms["stream.repair_ms"].count == len(
            inst_engine.reports
        )

    def test_percentiles_share_one_source_of_truth(self):
        _, result, metrics = run_stream(small_workload(), seed=0)
        walls_ms = [t * 1000.0 for t in metrics["batch_wall_times_s"]]
        assert len(walls_ms) == metrics["batches"]
        pcts = exact_percentiles(walls_ms)
        assert metrics["repair_ms_p99"] == pytest.approx(
            pcts["p99"], abs=1e-3
        )
        assert metrics["repair_ms_p50"] == pytest.approx(
            pcts["p50"], abs=1e-3
        )


class TestSLO:
    def test_parse_slo(self):
        t = parse_slo("repair_ms_p99<=250")
        assert t == SLOTarget("repair_ms_p99", "max", 250.0)
        t = parse_slo("updates_per_sec >= 10")
        assert t.bound == "min" and t.threshold == 10.0
        for bad in ("nonsense", "<=5", "x<=y"):
            with pytest.raises(ValueError):
                parse_slo(bad)

    def test_evaluate_and_render(self):
        metrics = {"repair_ms_p99": 100.0, "violation_batches": 0}
        report = evaluate_slos(metrics, DEFAULT_SLOS)
        # updates_per_sec is absent from the metrics -> counted as a miss
        assert not report.passed
        missing = [r for r in report.results if r.observed is None]
        assert len(missing) == 1 and not missing[0].ok
        text = render_slo_report(report)
        assert "MISSED" in text and "repair_ms_p99" in text

    def test_bound_direction(self):
        assert SLOTarget("x", "max", 5.0).check(5.0)
        assert not SLOTarget("x", "max", 5.0).check(5.1)
        assert SLOTarget("x", "min", 5.0).check(5.0)
        assert not SLOTarget("x", "min", 5.0).check(4.9)
        with pytest.raises(ValueError, match="bound"):
            SLOTarget("x", "between", 5.0)

    def test_service_slo_round_trip(self):
        _, metrics = run_service(
            small_workload(profile="constant"),
            slos=(SLOTarget("violation_batches", "max", 0.0),),
        )
        assert metrics["slo_pass"] is True
        assert metrics["slo_failed"] == 0
        assert metrics["slo"]["targets"][0]["ok"] is True

    def test_dashboard_renders_midtrace(self):
        service = ColoringService(small_workload(profile="diurnal"))
        service.start()
        service.step()
        text = render_dashboard(service)
        assert "1/6 batches" in text
        assert "stream.repair_ms" in text


class TestExperimentIntegration:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        from repro.experiments.runner import run_sweep
        from repro.experiments.spec import ScenarioSpec, WorkloadSpec
        from repro.experiments.artifacts import read_artifact

        spec = ScenarioSpec(
            name="service_test",
            workloads=(
                WorkloadSpec.of(
                    "sliding_window",
                    n_vertices=150,
                    batches=5,
                    arrival_profile="constant",
                    arrival_rate=400.0,
                ),
            ),
            algorithms=("service",),
        )
        path, records = run_sweep(
            spec, out_path=tmp_path_factory.mktemp("art") / "a.jsonl",
            trace=True,
        )
        return read_artifact(path)

    def test_service_cell_metrics(self, artifact):
        (record,) = artifact.ok_records()
        m = record["metrics"]
        assert m["proper"] is True
        assert m["violation_batches"] == 0
        for key in (
            "repair_ms_p50", "repair_ms_p95", "repair_ms_p99",
            "queue_ms_p99", "latency_ms_p99", "updates_per_sec",
            "slo_pass", "trace_duration_s",
        ):
            assert key in m, key
        span_names = {s["name"] for s in record["trace"]["spans"]}
        assert "service.batch" in span_names
        assert "service.collect" in span_names

    def test_compare_gates_violation_batches(self, artifact):
        import copy

        from repro.experiments.compare import compare_artifacts

        same = compare_artifacts(artifact, artifact)
        assert same.exit_code == 0
        broken = copy.deepcopy(artifact)
        broken.records[0]["metrics"]["violation_batches"] = 2
        report = compare_artifacts(artifact, broken)
        assert report.exit_code == 1
        assert any(
            d.metric == "violation_batches" for d in report.regressions
        )

    def test_history_service_sub_dict_and_drift(self, artifact, tmp_path):
        import copy

        from repro.observe import (
            append_entry,
            detect_service_drift,
            entry_from_artifact,
            load_history,
            render_history,
            service_trend_rows,
        )

        entry = entry_from_artifact(artifact)
        (cell,) = entry["cells"]
        assert cell["service"]["repair_ms_p99"] > 0
        assert cell["service"]["slo_pass"] is True
        append_entry(entry, tmp_path)
        regressed = copy.deepcopy(entry)
        regressed["cells"][0]["service"]["repair_ms_p99"] *= 10.0
        regressed["cells"][0]["service"]["updates_per_sec"] /= 10.0
        append_entry(regressed, tmp_path)
        entries = load_history("service_test", tmp_path)
        rows = service_trend_rows(entries)
        assert len(rows) == 1 and rows[0]["slo"] == "ok"
        drifts = detect_service_drift(entries)
        assert {d.metric for d in drifts} == {
            "repair_ms_p99", "updates_per_sec"
        }
        assert all(d.relative > 0 for d in drifts)
        text = render_history(entries)
        assert "SERVICE DRIFT" in text
        assert "service trend" in text

    def test_pre_service_history_entries_still_render(self, artifact, tmp_path):
        from repro.observe import (
            append_entry,
            entry_from_artifact,
            load_history,
            render_history,
            service_trend_rows,
        )

        entry = entry_from_artifact(artifact)
        for cell in entry["cells"]:  # simulate a version-1 pre-service entry
            cell.pop("service", None)
        append_entry(entry, tmp_path)
        entries = load_history("service_test", tmp_path)
        assert service_trend_rows(entries) == []
        assert "service trend" not in render_history(entries)
