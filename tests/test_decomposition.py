"""Sparsity, buddy predicate, ACD (Prop. 4.3), cabal classification."""

import networkx as nx
import numpy as np
import pytest

from repro.cluster import blowup
from repro.decomposition import (
    AlmostCliqueDecomposition,
    annotate_with_cabals,
    anti_degree_proxy,
    buddy_predicate,
    compute_acd,
    exact_acd_reference,
    friendly_edges,
    is_valid_almost_clique,
    all_sparsities,
    sparsity,
)
from repro.params import scaled
from repro.verify import check_acd
from repro.workloads import cabal_instance, planted_acd_instance
from tests.conftest import make_runtime


class TestSparsity:
    def test_clique_vertex_has_zero_sparsity(self, rng):
        h = blowup(nx.complete_graph(20), rng, cluster_size=1)
        # every neighbor pair is adjacent -> no missing edges
        assert sparsity(h, 0) == pytest.approx(0.0)

    def test_star_center_is_maximally_sparse(self, rng):
        h = blowup(nx.star_graph(20), rng, cluster_size=1)
        # center's neighborhood has no internal edges at all
        delta = h.max_degree
        assert sparsity(h, 0) == pytest.approx(delta * (delta - 1) / 2 / delta)

    def test_all_sparsities_matches_scalar(self, rng):
        h = blowup(nx.gnp_random_graph(30, 0.3, seed=4), rng, cluster_size=1)
        vec = all_sparsities(h)
        for v in range(h.n_vertices):
            assert vec[v] == pytest.approx(sparsity(h, v), abs=1e-6)


class TestValidity:
    def test_planted_clique_is_valid(self, planted_workload):
        g = planted_workload.graph
        for members in planted_workload.planted_cliques:
            assert is_valid_almost_clique(g, members, scaled().eps)

    def test_fragment_can_be_invalid(self, planted_workload):
        g = planted_workload.graph
        clique = planted_workload.planted_cliques[0]
        oversized = clique + planted_workload.planted_sparse[:40]
        assert not is_valid_almost_clique(g, oversized, scaled().eps)

    def test_empty_invalid(self, planted_workload):
        assert not is_valid_almost_clique(planted_workload.graph, [], 0.1)


class TestBuddyPredicate:
    def test_separates_planted_structure(self, planted_workload):
        g = planted_workload.graph
        runtime = make_runtime(g)
        result = buddy_predicate(runtime, xi=0.25)
        planted = {
            frozenset((u, v))
            for members in planted_workload.planted_cliques
            for i, u in enumerate(members)
            for v in members[i + 1 :]
            if g.are_adjacent(u, v)
        }
        yes = {frozenset(e) for e in result.yes_edges}
        # nearly all intra-clique edges detected, nearly nothing else
        recall = len(yes & planted) / len(planted)
        precision = len(yes & planted) / max(1, len(yes))
        assert recall > 0.95
        assert precision > 0.95

    def test_exact_friendly_edges_reference(self, planted_workload):
        g = planted_workload.graph
        exact = friendly_edges(g, xi=0.25)
        for u, v in exact:
            common = len(g.neighbor_set(u) & g.neighbor_set(v))
            assert common >= (1 - 0.25) * g.max_degree


class TestComputeAcd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovers_planted_cliques(self, seed):
        w = planted_acd_instance(np.random.default_rng(seed))
        runtime = make_runtime(w.graph, seed=seed + 100)
        acd = compute_acd(runtime)
        found = sorted(tuple(c) for c in acd.cliques)
        assert found == sorted(tuple(c) for c in w.planted_cliques)
        assert sorted(acd.sparse) == sorted(w.planted_sparse)

    def test_result_satisfies_definition_4_2(self, planted_workload):
        runtime = make_runtime(planted_workload.graph)
        acd = compute_acd(runtime)
        assert check_acd(planted_workload.graph, acd, scaled().eps) == []

    def test_sparse_only_graph(self, rng):
        h = blowup(nx.random_regular_graph(8, 50, seed=7), rng, cluster_size=1)
        runtime = make_runtime(h)
        acd = compute_acd(runtime)
        assert acd.cliques == []
        assert len(acd.sparse) == 50

    def test_matches_exact_reference(self, planted_workload):
        g = planted_workload.graph
        runtime = make_runtime(g)
        acd = compute_acd(runtime)
        _sparse_ref, cliques_ref = exact_acd_reference(g, scaled().eps, xi=0.25)
        assert sorted(tuple(c) for c in acd.cliques) == sorted(
            tuple(c) for c in cliques_ref
        )


class TestCabalClassification:
    def test_low_external_degree_cliques_are_cabals(self, cabal_workload):
        runtime = make_runtime(cabal_workload.graph)
        acd = annotate_with_cabals(runtime, compute_acd(runtime))
        assert len(acd.cliques) == len(cabal_workload.planted_cliques)
        assert all(acd.cabal_flags)

    def test_high_external_degree_cliques_are_not(self):
        w = planted_acd_instance(
            np.random.default_rng(5), external_degree=25, n_sparse=120
        )
        runtime = make_runtime(w.graph)
        acd = annotate_with_cabals(runtime, compute_acd(runtime))
        assert acd.num_cliques > 0
        assert not any(acd.cabal_flags)

    def test_external_degree_estimates_close(self, planted_workload):
        g = planted_workload.graph
        runtime = make_runtime(g)
        acd = annotate_with_cabals(runtime, compute_acd(runtime))
        errors = []
        for members in acd.cliques:
            for v in members:
                true = acd.external_degree_true(g, v)
                errors.append(abs(acd.e_tilde[v] - true))
        assert np.mean(errors) < 2.0

    def test_reserved_colors_positive_and_capped(self, planted_workload):
        runtime = make_runtime(planted_workload.graph)
        acd = annotate_with_cabals(runtime, compute_acd(runtime))
        delta = planted_workload.graph.max_degree
        params = scaled()
        for r in acd.reserved:
            assert 1 <= r <= params.reserved_cap_mult * params.eps * delta

    def test_anti_degree_proxy_error_bound(self, planted_workload):
        """Equation (3): x_v in a_v - (Delta - deg(v)) ± delta*e_v, modulo
        the e~_v estimation noise."""
        g = planted_workload.graph
        runtime = make_runtime(g)
        acd = annotate_with_cabals(runtime, compute_acd(runtime))
        delta = g.max_degree
        for members in acd.cliques:
            for v in members[:10]:
                x_v = anti_degree_proxy(acd, g, v)
                a_v = acd.anti_degree_true(g, v)
                e_v = acd.external_degree_true(g, v)
                center = a_v - (delta - g.degree(v))
                noise = abs(acd.e_tilde[v] - e_v)
                assert abs(x_v - center) <= scaled().delta * e_v + noise + 1e-9

    def test_proxy_rejects_sparse_vertices(self, planted_workload):
        runtime = make_runtime(planted_workload.graph)
        acd = annotate_with_cabals(runtime, compute_acd(runtime))
        with pytest.raises(ValueError):
            anti_degree_proxy(acd, planted_workload.graph, acd.sparse[0])


class TestGroundTruthHelpers:
    def test_external_and_anti_degree(self, planted_workload):
        g = planted_workload.graph
        runtime = make_runtime(g)
        acd = compute_acd(runtime)
        members = acd.cliques[0]
        mset = set(members)
        v = members[0]
        nbrs = g.neighbor_set(v)
        assert acd.external_degree_true(g, v) == len(nbrs - mset)
        assert acd.anti_degree_true(g, v) == len(mset - nbrs) - 1


class TestPinnedBitwiseDecomposition:
    """The PR-4 vectorization (batched fingerprints, label-propagation
    components, gather-based external degrees) promised *bitwise* identical
    decompositions.  These digests were captured from the per-vertex
    implementation; any RNG-order or numeric drift changes them."""

    PINNED = {
        "planted_acd": "9aebc203a1a5e005289c4d95ac2ebd65",
        "cabal": "dc8965c02c38e588a730ee8beb2ad09e",
    }

    @pytest.mark.parametrize("family", sorted(PINNED))
    def test_decomposition_digest(self, family):
        import hashlib
        import json

        maker = {"planted_acd": planted_acd_instance, "cabal": cabal_instance}[
            family
        ]
        w = maker(np.random.default_rng(42))
        runtime = make_runtime(w.graph, seed=7)
        acd = annotate_with_cabals(runtime, compute_acd(runtime))
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(acd.clique_of).tobytes())
        digest.update(json.dumps(acd.cliques).encode())
        digest.update(json.dumps(sorted(acd.e_tilde.items())).encode())
        digest.update(json.dumps(acd.e_tilde_clique).encode())
        digest.update(json.dumps(acd.cabal_flags).encode())
        digest.update(json.dumps(acd.reserved).encode())
        # the post-decomposition RNG position is part of the contract: a
        # stage that draws a different number of variates shifts everything
        # downstream even if its own output matches
        digest.update(np.float64(runtime.rng.random()).tobytes())
        assert digest.hexdigest()[:32] == self.PINNED[family]
