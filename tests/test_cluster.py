"""Cluster graphs (Definition 3.1), support trees, builders, virtual graphs."""

import networkx as nx
import numpy as np
import pytest

from repro.cluster import (
    ClusterGraph,
    SupportTree,
    blowup,
    contraction_clusters,
    distance2_virtual_graph,
    power_graph_degree_bound,
    voronoi_clusters,
)
from repro.network import CommGraph
from repro.workloads import figure1_example


class TestSupportTree:
    def test_bfs_tree_spans_cluster(self):
        g = CommGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        tree = SupportTree.build_bfs(g, [1, 2, 3], cluster_id=0)
        assert tree.root == 1
        assert set(tree.machines) == {1, 2, 3}
        assert tree.height == 2
        assert tree.parent[1] is None
        assert tree.parent[3] == 2

    def test_disconnected_cluster_rejected(self):
        g = CommGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="not connected"):
            SupportTree.build_bfs(g, [0, 1, 2], cluster_id=0)

    def test_singleton_height_one(self):
        g = CommGraph(2, [(0, 1)])
        tree = SupportTree.build_bfs(g, [0], cluster_id=0)
        assert tree.height == 1  # even singletons cost a round

    def test_custom_root(self):
        g = CommGraph(3, [(0, 1), (1, 2)])
        tree = SupportTree.build_bfs(g, [0, 1, 2], cluster_id=0, root=2)
        assert tree.root == 2
        assert tree.depth_of[0] == 2

    def test_dfs_order_is_preorder(self):
        g = CommGraph(4, [(0, 1), (0, 2), (2, 3)])
        tree = SupportTree.build_bfs(g, [0, 1, 2, 3], cluster_id=0)
        order = tree.dfs_order()
        assert order[0] == 0
        assert order.index(2) < order.index(3)  # ancestors first
        assert sorted(order) == [0, 1, 2, 3]


class TestClusterGraph:
    def test_figure1_semantics(self):
        """Figure 1's key feature: two clusters joined by several links form
        ONE H-edge; link counting overestimates the true degree."""
        w = figure1_example()
        g = w.graph
        assert g.n_vertices == 4
        # clusters B (1) and C (2) are joined by two links
        assert len(g.links[(1, 2)]) == 2
        assert g.degree(1) == g.degree(2) == 2
        # the cheap aggregate (incident links) overcounts the true degree
        assert g.link_count(1) == 3 > g.degree(1)
        assert g.link_count(2) == 3 > g.degree(2)

    def test_identity_is_congest(self):
        comm = CommGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        h = ClusterGraph.identity(comm)
        assert h.n_vertices == comm.n
        assert h.dilation == 1
        assert sorted(h.iter_h_edges()) == sorted(comm.iter_links())

    def test_assignment_validation(self):
        comm = CommGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="not connected"):
            ClusterGraph.from_assignment(comm, [0, 1, 0, 1])
        with pytest.raises(ValueError, match="dense"):
            ClusterGraph.from_assignment(CommGraph(2, [(0, 1)]), [0, 2])
        with pytest.raises(ValueError, match="covers"):
            ClusterGraph.from_assignment(CommGraph(2, [(0, 1)]), [0])

    def test_intra_cluster_links_not_h_edges(self):
        comm = CommGraph(4, [(0, 1), (1, 2), (2, 3)])
        h = ClusterGraph.from_assignment(comm, [0, 0, 1, 1])
        assert h.n_h_edges == 1
        assert h.are_adjacent(0, 1)

    def test_anti_neighbors(self):
        comm = CommGraph(4, [(0, 1), (1, 2), (2, 3)])
        h = ClusterGraph.identity(comm)
        assert h.anti_neighbors_within(0, [0, 1, 2, 3]) == [2, 3]

    def test_neighbor_array_is_csr_view(self):
        comm = CommGraph(3, [(0, 1), (1, 2)])
        h = ClusterGraph.identity(comm)
        a1 = h.neighbor_array(1)
        assert list(a1) == [0, 2]
        # zero-copy: slices share the CSR indices buffer, no per-call allocs
        assert a1.base is h.csr.indices or a1 is h.csr.indices

    def test_csr_survives_replace_and_pickle(self):
        """The lazy ``_adj_arrays`` cache of the pre-CSR design silently
        vanished under dataclasses.replace and never reached pool workers;
        the CSR backbone is a real init field, so both paths carry it (the
        immutable structure is shared, not rebuilt)."""
        import dataclasses
        import pickle

        comm = CommGraph(3, [(0, 1), (1, 2)])
        h = ClusterGraph.identity(comm)
        replaced = dataclasses.replace(h)
        assert list(replaced.neighbor_array(1)) == [0, 2]
        assert replaced.csr is h.csr
        revived = pickle.loads(pickle.dumps(h))
        assert list(revived.neighbor_array(1)) == [0, 2]
        assert list(revived.csr.indptr) == list(h.csr.indptr)

    def test_adj_view_is_lazy_and_consistent(self):
        """``adj`` materializes from the CSR on first access only; until
        then construction boxes no per-edge Python ints."""
        comm = CommGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        h = ClusterGraph.identity(comm)
        assert h._adj is None  # nothing materialized at construction
        assert h.degree(1) == 2  # degree served straight from the CSR
        assert h.neighbors(1) == [0, 2]  # per-call CSR slice
        assert h._adj is None
        view = h.adj
        assert view[1] == [0, 2]
        assert h._adj is view  # cached after first access
        assert h.neighbors(1) is view[1]  # served from the cache now


class TestBuilders:
    def test_voronoi_partition_valid(self, rng):
        g = CommGraph.from_networkx(nx.connected_watts_strogatz_graph(60, 4, 0.2, seed=1))
        h = voronoi_clusters(g, 12, rng)
        assert h.n_vertices == 12
        assert sum(h.cluster_size(v) for v in range(12)) == 60

    def test_contraction_partition_valid(self, rng):
        g = CommGraph.from_networkx(nx.connected_watts_strogatz_graph(60, 4, 0.2, seed=2))
        h = contraction_clusters(g, 0.5, rng)
        assert sum(h.cluster_size(v) for v in range(h.n_vertices)) == 60
        assert h.n_vertices < 60  # something actually contracted

    def test_contraction_zero_fraction_is_identity(self, rng):
        g = CommGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        h = contraction_clusters(g, 0.0, rng)
        assert h.n_vertices == 5

    def test_blowup_realizes_conflict_graph(self, rng):
        target = nx.petersen_graph()
        h = blowup(target, rng, cluster_size=3, topology="path", link_multiplicity=2)
        assert h.n_vertices == 10
        got = nx.Graph(list(h.iter_h_edges()))
        assert nx.is_isomorphic(got, target)

    def test_blowup_topology_controls_dilation(self, rng):
        target = nx.cycle_graph(6)
        star = blowup(target, rng, cluster_size=9, topology="star")
        path = blowup(target, rng, cluster_size=9, topology="path")
        assert star.dilation == 1
        assert path.dilation == 8

    def test_blowup_bridge_topology(self, rng):
        target = nx.path_graph(3)
        h = blowup(target, rng, cluster_size=6, topology="bridge")
        assert h.n_vertices == 3
        # bridge topology: two stars + 1 link -> height <= 3
        assert h.dilation <= 3

    def test_blowup_invalid_args(self, rng):
        with pytest.raises(ValueError):
            blowup(nx.path_graph(2), rng, cluster_size=0)
        with pytest.raises(ValueError):
            blowup(nx.path_graph(2), rng, link_multiplicity=0)


class TestVirtualGraph:
    def test_distance2_matches_networkx_square(self):
        g = nx.random_regular_graph(3, 14, seed=3)
        comm = CommGraph.from_networkx(g)
        vg = distance2_virtual_graph(comm)
        square = nx.power(nx.convert_node_labels_to_integers(g), 2)
        for u, v in square.edges():
            assert vg.are_adjacent(u, v)
        assert vg.max_degree == max(dict(square.degree()).values())

    def test_distance2_congestion_dilation(self):
        comm = CommGraph(4, [(0, 1), (1, 2), (2, 3)])
        vg = distance2_virtual_graph(comm)
        assert vg.congestion == 2
        assert vg.dilation == 2

    def test_supports_are_closed_neighborhoods(self):
        comm = CommGraph(4, [(0, 1), (1, 2), (2, 3)])
        vg = distance2_virtual_graph(comm)
        assert sorted(vg.supports[1]) == [0, 1, 2]

    def test_power_degree_bound(self):
        comm = CommGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert power_graph_degree_bound(comm) == 4  # middle vertex sees all


class TestBuildForest:
    """The vectorized all-clusters BFS must reproduce the per-cluster
    sequential build exactly: roots, parents, depths, heights, and even
    the dict insertion (discovery) order."""

    @pytest.mark.parametrize("trial", range(12))
    def test_matches_sequential_build(self, trial):
        from repro.cluster import build_forest

        rng = np.random.default_rng(trial)
        n = int(rng.integers(5, 150))
        edges = [(i, int(rng.integers(0, i))) for i in range(1, n)]
        extra = rng.integers(0, n, size=(2 * n, 2))
        edges += [(int(a), int(b)) for a, b in extra if a != b]
        comm = CommGraph(n, edges)
        k = int(rng.integers(1, n + 1))
        cg = voronoi_clusters(comm, k, np.random.default_rng(trial + 100))
        assign = np.asarray(cg.assignment, dtype=np.int64)
        forest = build_forest(comm, assign, cg.clusters)
        for cid, members in enumerate(cg.clusters):
            ref = SupportTree.build_bfs(comm, members, cluster_id=cid)
            got = forest[cid]
            assert got.root == ref.root
            assert got.parent == ref.parent
            assert list(got.parent) == list(ref.parent)  # discovery order
            assert got.depth_of == ref.depth_of
            assert got.height == ref.height

    def test_disconnected_cluster_reported_like_sequential(self):
        from repro.cluster import build_forest

        comm = CommGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="cluster 0 is not connected"):
            build_forest(
                comm,
                np.array([0, 0, 0, 1], dtype=np.int64),
                [[0, 1, 2], [3]],
            )
