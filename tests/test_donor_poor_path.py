"""The Section 7 donor machinery on its *intended* terrain: a big cabal
whose clique palette is nearly exhausted (|L(K)| < ell_s), where put-aside
vertices genuinely cannot find free colors and must receive donations.

The generic pipeline tests exercise the rich-palette path; these tests
construct the poor-palette state explicitly and drive Algorithms 9/10 and
the donation step through their success path.
"""

import numpy as np
import pytest

from repro.coloring.clique_palette import palette_view
from repro.coloring.donors import (
    CabalPlan,
    color_put_aside_sets,
    donate_colors,
    find_candidate_donors,
    find_safe_donors,
)
from repro.coloring.types import PartialColoring
from repro.decomposition import annotate_with_cabals, compute_acd
from repro.params import scaled
from repro.verify import is_proper
from repro.workloads import cabal_instance
from tests.conftest import make_runtime


@pytest.fixture(scope="module")
def poor_palette_state():
    """One 400-vertex cabal, colored so that |L(K)| < ell_s: every color
    0..|K|-r-1 used exactly once inside K (unique colors everywhere), the
    last r inliers uncolored as the put-aside set."""
    w = cabal_instance(
        np.random.default_rng(404), n_cabals=1, clique_size=400,
        anti_degree=1, cluster_size=1,
    )
    runtime = make_runtime(w.graph, 11)
    acd = annotate_with_cabals(runtime, compute_acd(runtime))
    assert acd.num_cliques == 1
    members = acd.cliques[0]
    coloring = PartialColoring.empty(w.graph.n_vertices, w.graph.max_degree + 1)
    r = 8
    put_aside = members[-r:]
    # color everyone else with a distinct color; skip colors conflicting
    # with the (rare) external edges
    next_color = 0
    for v in members[:-r]:
        while not coloring.is_free_for(w.graph, v, next_color):
            next_color += 1
        coloring.assign(v, next_color)
        next_color += 1
    # color any vertex outside the cabal greedily
    from repro.coloring.try_color import greedy_finish

    others = [v for v in range(w.graph.n_vertices) if v not in set(members)]
    greedy_finish(runtime, coloring, others)
    view = palette_view(runtime, coloring, members)
    assert view.size < scaled().ell_s(runtime.n), "state must be palette-poor"
    plan = CabalPlan(
        clique_index=0, members=members, put_aside=put_aside, inliers=members
    )
    return w, runtime, acd, coloring, plan, view


class TestPoorPath:
    def test_candidate_donors_plentiful(self, poor_palette_state):
        w, runtime, acd, coloring, plan, view = poor_palette_state
        donors = find_candidate_donors(runtime, coloring.copy(), [plan])
        # activation 0.5 over ~390 unique-colored inliers
        assert len(donors[0]) > 100

    def test_safe_donors_satisfy_lemma_7_3(self, poor_palette_state):
        w, runtime, acd, coloring, plan, view = poor_palette_state
        work = coloring.copy()
        donors = find_candidate_donors(runtime, work, [plan])
        assignments = find_safe_donors(runtime, work, plan, donors[0], view)
        assert len(assignments) == len(plan.put_aside)
        seen_colors = set()
        seen_donors: set[int] = set()
        block = scaled().donor_block_size(runtime.n, w.graph.max_degree)
        for a in assignments:
            # property 1: distinct replacement colors, disjoint donor sets
            assert a.replacement_color not in seen_colors
            seen_colors.add(a.replacement_color)
            assert not (set(a.donors) & seen_donors)
            seen_donors.update(a.donors)
            # replacement comes from the clique palette
            assert a.replacement_color in set(view.free.tolist())
            for v in a.donors:
                # property 2: replacement is in the donor's own palette
                assert work.is_free_for(w.graph, v, a.replacement_color)
                # property 3: donors hold colors from the assigned block
                assert work.get(v) // block == a.block_index

    def test_donation_completes_and_stays_proper(self, poor_palette_state):
        w, runtime, acd, coloring, plan, view = poor_palette_state
        work = coloring.copy()
        donors = find_candidate_donors(runtime, work, [plan])
        assignments = find_safe_donors(runtime, work, plan, donors[0], view)
        leftover = donate_colors(runtime, work, plan, assignments)
        assert leftover == []
        assert work.is_total()
        assert is_proper(w.graph, work.colors)

    def test_donation_actually_recolors_donors(self, poor_palette_state):
        """The three-way matching is real: some donor must have moved to a
        replacement color (i.e. this was not the free-colors path)."""
        w, runtime, acd, coloring, plan, view = poor_palette_state
        work = coloring.copy()
        donors = find_candidate_donors(runtime, work, [plan])
        assignments = find_safe_donors(runtime, work, plan, donors[0], view)
        before = {v: work.get(v) for a in assignments for v in a.donors}
        donate_colors(runtime, work, plan, assignments)
        moved = [v for v, c in before.items() if work.get(v) != c]
        assert len(moved) == len(plan.put_aside)
        # each put-aside vertex now wears a donated (previously-used) color
        for u in plan.put_aside:
            assert work.is_colored(u)

    def test_full_entry_point_uses_poor_path(self, poor_palette_state):
        w, runtime, acd, coloring, plan, view = poor_palette_state
        work = coloring.copy()
        leftover = color_put_aside_sets(runtime, work, [plan])
        assert leftover == []
        assert work.is_total()
        assert is_proper(w.graph, work.colors)
