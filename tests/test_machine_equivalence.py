"""Cluster-level accounting vs faithful machine-level execution
(DESIGN.md 3.1): the charged primitives must be realizable on the wire."""

import numpy as np
import pytest

from repro.aggregation import bfs_forest
from repro.cluster import ClusterGraph
from repro.network import CommGraph, MachineSimulator
from tests.conftest import make_runtime


def _small_cluster_graph():
    """Three clusters on an 8-machine network with a doubled link."""
    edges = [
        (0, 1), (1, 2),        # cluster 0 internal (path)
        (3, 4),                # cluster 1 internal
        (5, 6), (6, 7),        # cluster 2 internal
        (2, 3),                # 0-1
        (4, 5), (4, 7),        # 1-2 doubled
        (0, 5),                # 0-2
    ]
    comm = CommGraph(8, edges)
    return ClusterGraph.from_assignment(comm, [0, 0, 0, 1, 1, 2, 2, 2])


class TestMaxAggregationOnWire:
    def test_flooded_max_equals_cluster_max(self):
        """One fingerprint coordinate: every machine floods the max value it
        has seen along its support tree + inter-cluster links restricted to
        one hop; after (dilation + 1 + dilation) rounds every cluster leader
        knows max over the cluster's H-neighborhood -- must equal the
        centrally computed neighborhood max."""
        h = _small_cluster_graph()
        comm = h.comm
        rng = np.random.default_rng(0)
        machine_value = {v: int(rng.integers(0, 1000)) for v in range(h.n_vertices)}

        # machine state: best value per *cluster of origin* seen so far
        known = [dict() for _ in range(comm.n)]
        for m in range(comm.n):
            known[m][h.assignment[m]] = machine_value[h.assignment[m]]

        sim = MachineSimulator(comm, bandwidth_bits=64)

        def step(machine, rnd, inbox):
            for msg in inbox:
                src_cluster, value = msg.payload
                if value > known[machine].get(src_cluster, -1):
                    known[machine][src_cluster] = value
            out = []
            for nbr in comm.neighbors(machine):
                best = max(known[machine].values())
                origin = max(known[machine], key=lambda c: known[machine][c])
                out.append((nbr, (origin, best), 32))
            return out

        rounds = 2 * h.dilation + 2
        sim.run(step, rounds=rounds)

        for v in range(h.n_vertices):
            leader = h.leader(v)
            wire_max = max(known[leader].values())
            central_max = max(
                machine_value[u] for u in list(h.neighbors(v)) + [v]
            )
            assert wire_max == central_max

    def test_wire_rounds_within_charged_budget(self):
        """The cluster-level BFS charge (O(depth) H-rounds, each worth
        O(dilation) G-rounds) must cover a real flooding execution."""
        h = _small_cluster_graph()
        runtime = make_runtime(h)
        before_g = runtime.ledger.rounds_g
        (tree,) = bfs_forest(runtime, [(0, [0, 1, 2])])
        charged_g = runtime.ledger.rounds_g - before_g
        # actual BFS depth on H is 2 (0 -> 1 -> 2 or 0 -> 2 direct = 1);
        # wire cost <= depth * dilation; the charge must be >= 1 H-round
        # worth of G-rounds and cover depth * dilation
        assert charged_g >= tree.height * 1
        assert charged_g >= h.dilation


class TestBatchedTryColorOnWire:
    def test_batched_resolution_matches_wire_execution(self):
        """One TryColor round (Algorithm 17), executed faithfully on the
        wire: every cluster floods its proposal and current color along
        support trees + one inter-cluster hop; each leader then applies the
        step-4 rule from what reached it.  The set of adopters must equal
        what the batched CSR kernel (resolve_proposals) computes."""
        from repro.coloring.try_color import resolve_proposals
        from repro.coloring.types import UNCOLORED, PartialColoring
        from tests.conftest import make_runtime

        h = _small_cluster_graph()
        comm = h.comm
        rng = np.random.default_rng(3)
        num_colors = h.max_degree + 1
        coloring = PartialColoring.empty(h.n_vertices, num_colors)
        coloring.assign(0, 1)  # one pre-colored cluster constrains the rest
        proposals = {1: 1, 2: int(rng.integers(0, num_colors))}

        # wire state: per machine, what it knows per origin cluster:
        # (proposal or None, current color or UNCOLORED)
        known = [dict() for _ in range(comm.n)]
        for m in range(comm.n):
            c = h.assignment[m]
            known[m][c] = (proposals.get(c), int(coloring.colors[c]))

        # one message per link per round: bundle the per-origin knowledge
        # (a pipelined O(vertices * log) payload, like the palette bitmaps)
        sim = MachineSimulator(comm, bandwidth_bits=32 * h.n_vertices)

        def step(machine, rnd, inbox):
            for msg in inbox:
                for origin, payload in msg.payload:
                    known[machine].setdefault(origin, payload)
            bundle = tuple(known[machine].items())
            return [
                (int(nbr), bundle, 32 * len(bundle))
                for nbr in comm.neighbors(machine)
            ]

        sim.run(step, rounds=2 * h.dilation + 2)

        wire_adopted = []
        for v, c in proposals.items():
            leader = h.leader(v)
            blocked = False
            for u in h.neighbors(v):
                u_proposal, u_color = known[leader][u]
                if u_color != UNCOLORED and u_color == c:
                    blocked = True
                elif u_proposal == c and u < v:
                    blocked = True
            if not blocked:
                wire_adopted.append(v)

        runtime = make_runtime(h)
        batched = resolve_proposals(runtime, coloring, dict(proposals))
        assert batched == wire_adopted
        for v in batched:
            assert int(coloring.colors[v]) == proposals[v]

    def test_batched_matches_legacy_per_vertex_loop(self):
        """The batched kernel path must reproduce the legacy per-vertex
        resolution exactly (both rules) on random states."""
        from repro.coloring.try_color import resolve_proposals
        from repro.coloring.types import UNCOLORED, PartialColoring
        from tests.conftest import make_runtime

        h = _small_cluster_graph()
        for seed in range(25):
            rng = np.random.default_rng(seed)
            for symmetric in (False, True):
                num_colors = h.max_degree + 1
                colors = rng.integers(-1, num_colors, size=h.n_vertices)
                proposals = {
                    v: int(rng.integers(0, num_colors))
                    for v in range(h.n_vertices)
                    if colors[v] == UNCOLORED and rng.random() < 0.7
                }
                proposal_arr = np.full(h.n_vertices, -2, dtype=np.int64)
                for v, c in proposals.items():
                    proposal_arr[v] = c
                legacy = []
                for v, c in proposals.items():
                    nbrs = np.asarray(h.adj[v], dtype=np.int64)
                    if nbrs.size:
                        if (colors[nbrs] == c).any():
                            continue
                        same = proposal_arr[nbrs] == c
                        if symmetric and same.any():
                            continue
                        if not symmetric and (same & (nbrs < v)).any():
                            continue
                    legacy.append(v)
                coloring = PartialColoring(
                    num_colors=num_colors, colors=colors.astype(np.int64).copy()
                )
                runtime = make_runtime(h)
                got = resolve_proposals(
                    runtime, coloring, dict(proposals), symmetric=symmetric
                )
                assert got == legacy


class TestBandwidthRealism:
    def test_charged_widths_fit_on_wire(self):
        """Any message the ledger accepted un-pipelined must transmit in one
        machine-level round."""
        h = _small_cluster_graph()
        runtime = make_runtime(h)
        runtime.h_rounds("probe", count=1)
        cap = runtime.ledger.bandwidth_bits
        sim = MachineSimulator(h.comm, bandwidth_bits=cap)
        # a cap-width message crosses any single link fine
        sim.run_round(
            lambda m, r, i: [(h.comm.neighbors(m)[0], "payload", cap)]
            if m == 0
            else []
        )
        assert runtime.ledger.max_message_bits <= cap
