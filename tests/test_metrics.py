"""Tests for the live metrics layer (repro.observe.metrics).

The load-bearing property is the LogHistogram accuracy contract: every
extracted quantile is within relative error ``sqrt(growth) - 1`` of the
true nearest-rank percentile, pinned here against ``numpy.percentile``
over hypothesis-generated samples.  Merge must be associative and
commutative (per-shard histograms roll up losslessly), and the registry
must enforce layout identity.  Edge cases -- empty, single-sample, zero
and sub-``min_value`` samples -- are covered explicitly because the
quantile walk special-cases all three.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe.metrics import (
    Counter,
    DEFAULT_GROWTH,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    WindowedSeries,
    exact_percentiles,
)

#: The documented accuracy bound for the default layout, with a hair of
#: float headroom.
REL_ERR = math.sqrt(DEFAULT_GROWTH) - 1 + 1e-9

samples = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=400,
)


def nearest_rank(values, q):
    """True nearest-rank percentile (the quantity the histogram bounds)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestLogHistogram:
    @given(samples)
    @settings(max_examples=200)
    def test_quantiles_within_documented_relative_error(self, values):
        hist = LogHistogram()
        hist.record_many(values)
        for q in (50, 95, 99):
            got = hist.quantile(q)
            truth = nearest_rank(values, q)
            assert got is not None
            if truth == 0:
                assert got == 0
            else:
                assert abs(got - truth) / truth <= REL_ERR, (
                    f"p{q}: {got} vs true {truth}"
                )

    @given(samples)
    @settings(max_examples=100)
    def test_quantiles_clamped_to_observed_range(self, values):
        hist = LogHistogram()
        hist.record_many(values)
        for q in (0, 50, 100):
            got = hist.quantile(q)
            assert min(values) <= got <= max(values)

    @given(samples, samples, samples)
    @settings(max_examples=100)
    def test_merge_associative_and_commutative(self, a, b, c):
        def hist(values):
            h = LogHistogram()
            h.record_many(values)
            return h

        left = hist(a)
        left.merge(hist(b))
        left.merge(hist(c))

        bc = hist(b)
        bc.merge(hist(c))
        right = hist(a)
        right.merge(bc)

        swapped = hist(c)
        swapped.merge(hist(b))
        swapped.merge(hist(a))

        for other in (right, swapped):
            assert left.buckets == other.buckets
            assert left.count == other.count
            assert left.zero_count == other.zero_count
            assert left.min == other.min and left.max == other.max
            assert left.total == pytest.approx(other.total)

    @given(samples, samples)
    @settings(max_examples=100)
    def test_merge_equals_recording_concatenation(self, a, b):
        merged = LogHistogram()
        merged.record_many(a)
        other = LogHistogram()
        other.record_many(b)
        merged.merge(other)

        direct = LogHistogram()
        direct.record_many(a + b)
        assert merged.buckets == direct.buckets
        assert merged.count == direct.count
        for q in (50, 95, 99):
            assert merged.quantile(q) == direct.quantile(q)

    def test_empty_histogram(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(99) is None
        assert hist.percentiles() == {"p50": None, "p95": None, "p99": None}
        assert hist.to_dict() == {"count": 0}

    def test_single_sample_is_every_quantile(self):
        hist = LogHistogram()
        hist.record(42.0)
        for q in (0, 50, 99, 100):
            assert hist.quantile(q) == pytest.approx(42.0, rel=REL_ERR)
        assert hist.mean == 42.0
        assert hist.min == hist.max == 42.0

    def test_zero_and_negative_samples_counted_as_smallest(self):
        hist = LogHistogram()
        hist.record_many([0.0, -1.0, 10.0, 10.0])
        assert hist.count == 4
        assert hist.zero_count == 2
        # p50 rank lands in the underflow bucket -> clamped to >= 0
        assert hist.quantile(50) == 0.0
        assert hist.quantile(100) == pytest.approx(10.0, rel=REL_ERR)

    def test_below_min_value_clamps_into_bucket_zero(self):
        hist = LogHistogram(min_value=1.0)
        hist.record(1e-6)
        assert hist.buckets == {0: 1}
        assert hist.quantile(50) == pytest.approx(1e-6)  # clamped to observed min

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)
        a, b = LogHistogram(growth=2.0), LogHistogram(growth=4.0)
        with pytest.raises(ValueError, match="layout"):
            a.merge(b)

    def test_quantile_rejects_out_of_range_rank(self):
        hist = LogHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.quantile(101)


class TestExactPercentiles:
    @given(samples)
    @settings(max_examples=100)
    def test_matches_numpy(self, values):
        pcts = exact_percentiles(values)
        for q in (50, 95, 99):
            assert pcts[f"p{q}"] == float(np.percentile(values, q))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            exact_percentiles([])

    def test_single_sample(self):
        assert exact_percentiles([7.0]) == {"p50": 7.0, "p95": 7.0, "p99": 7.0}


class TestCounterGauge:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_merge_keeps_latest_writer(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(2.0)
        b.set(3.0)
        a.merge(b)
        assert a.value == 3.0
        stale = Gauge()
        stale.set(99.0)
        # a has 1 own write + b's 2; a single-write gauge must not override
        a.merge(stale)
        assert a.value == 3.0


class TestWindowedSeries:
    def test_points_aggregate_per_window(self):
        s = WindowedSeries(window_s=1.0)
        s.record(0.1, 10.0)
        s.record(0.9, 30.0)
        s.record(2.5, 5.0)
        points = s.points()
        assert [p["t"] for p in points] == [0.0, 2.0]
        assert points[0] == {
            "t": 0.0, "count": 2.0, "sum": 40.0, "min": 10.0, "max": 30.0,
            "mean": 20.0, "rate": 40.0,
        }

    def test_merge_adds_windows(self):
        a, b = WindowedSeries(1.0), WindowedSeries(1.0)
        a.record(0.5, 1.0)
        b.record(0.6, 3.0)
        b.record(5.0, 7.0)
        a.merge(b)
        assert [p["sum"] for p in a.points()] == [4.0, 7.0]
        with pytest.raises(ValueError):
            a.merge(WindowedSeries(2.0))


class TestMetricsRegistry:
    def test_get_or_create_and_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        assert reg.counter("a").value == 2  # same instance returned
        reg.gauge("g").set(5)
        reg.histogram("h").record(1.5)
        reg.windowed("w").record(0.2, 1.0)
        snap = reg.to_dict()
        assert snap["counters"]["a"] == {"value": 2}
        assert snap["gauges"]["g"] == {"value": 5.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["series"]["w"]["points"][0]["count"] == 1.0

    def test_layout_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", min_value=1.0)
        with pytest.raises(ValueError, match="layout"):
            reg.histogram("h", min_value=2.0)
        reg.windowed("w", window_s=1.0)
        with pytest.raises(ValueError, match="window_s"):
            reg.windowed("w", window_s=2.0)

    def test_merge_rolls_up_every_kind(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only_b").inc(4)
        a.histogram("h").record(1.0)
        b.histogram("h").record(100.0)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.counter("only_b").value == 4
        assert a.histogram("h").count == 2
        assert a.gauge("g").value == 9
