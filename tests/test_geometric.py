"""Geometric variables and maxima (Claim 5.1, Lemmas 5.3/5.4)."""

import numpy as np
import pytest

from repro.sketch import (
    EMPTY_MAX,
    argmax_with_uniqueness,
    merge_maxima,
    non_unique_max_bound,
    prob_max_below,
    sample_geometric,
    sample_max_of_geometrics,
)


class TestGeometricSampling:
    def test_support_starts_at_zero(self, rng):
        xs = sample_geometric(rng, 10_000)
        assert xs.min() == 0

    def test_mean_matches_lambda_half(self, rng):
        # E[X] = lam/(1-lam) = 1 at lam = 1/2
        xs = sample_geometric(rng, 50_000)
        assert np.mean(xs) == pytest.approx(1.0, abs=0.05)

    def test_tail_halves(self, rng):
        xs = sample_geometric(rng, 100_000)
        p1 = np.mean(xs >= 1)
        p2 = np.mean(xs >= 2)
        assert p1 == pytest.approx(0.5, abs=0.02)
        assert p2 == pytest.approx(0.25, abs=0.02)

    def test_invalid_lambda(self, rng):
        with pytest.raises(ValueError):
            sample_geometric(rng, 4, lam=1.5)


class TestMaxDistribution:
    def test_cdf_formula_claim_5_1(self):
        # P(Y < k) = (1 - 2^-k)^d
        assert prob_max_below(3, 4) == pytest.approx((1 - 2**-3) ** 4)
        assert prob_max_below(0, 7) == 0.0
        assert prob_max_below(5, 0) == 1.0

    def test_direct_sampler_matches_cdf(self, rng):
        d = 64
        ys = sample_max_of_geometrics(rng, d, 40_000)
        for k in [4, 6, 8, 10]:
            empirical = np.mean(ys < k)
            assert empirical == pytest.approx(prob_max_below(k, d), abs=0.02)

    def test_direct_sampler_matches_elementwise_max(self, rng):
        """The O(1) direct sampler and the max of d explicit variables must
        agree in distribution (two-sample mean/var comparison)."""
        d, t = 32, 20_000
        direct = sample_max_of_geometrics(rng, d, t)
        explicit = sample_geometric(rng, (t, d)).max(axis=1)
        assert np.mean(direct) == pytest.approx(np.mean(explicit), abs=0.1)
        assert np.std(direct) == pytest.approx(np.std(explicit), abs=0.15)

    def test_empty_set_sentinel(self, rng):
        ys = sample_max_of_geometrics(rng, 0, 5)
        assert (ys == EMPTY_MAX).all()

    def test_huge_d_stable(self, rng):
        ys = sample_max_of_geometrics(rng, 10**12, 100)
        assert np.isfinite(ys).all()
        # maximum concentrates near log2(d) = ~40
        assert 30 < np.mean(ys) < 50


class TestUniqueMaximum:
    def test_lemma_5_3_bound(self, rng):
        """P(non-unique max) <= (1-lam)/(1+lam) = 1/3, for any d."""
        assert non_unique_max_bound(0.5) == pytest.approx(1 / 3)
        for d in [2, 8, 64, 512]:
            xs = sample_geometric(rng, (4000, d))
            non_unique = 0
            for row in xs:
                _idx, unique = argmax_with_uniqueness(row)
                non_unique += not unique
            assert non_unique / 4000 <= 1 / 3 + 0.03, f"failed at d={d}"

    def test_lemma_5_4_uniform_argmax(self, rng):
        """Conditioned on uniqueness, the argmax is uniform over [d]."""
        d, reps = 8, 12_000
        xs = sample_geometric(rng, (reps, d))
        counts = np.zeros(d)
        total = 0
        for row in xs:
            idx, unique = argmax_with_uniqueness(row)
            if unique:
                counts[idx] += 1
                total += 1
        frequencies = counts / total
        assert np.allclose(frequencies, 1 / d, atol=0.02)

    def test_argmax_ignores_sentinels(self):
        row = np.array([EMPTY_MAX, 3, EMPTY_MAX, 3])
        idx, unique = argmax_with_uniqueness(row)
        assert idx == 1 and not unique
        row2 = np.array([EMPTY_MAX, EMPTY_MAX])
        assert argmax_with_uniqueness(row2) == (-1, False)


class TestMergeSemantics:
    def test_idempotent_commutative_associative(self, rng):
        a = sample_geometric(rng, 50)
        b = sample_geometric(rng, 50)
        c = sample_geometric(rng, 50)
        assert (merge_maxima(a, a) == a).all()
        assert (merge_maxima(a, b) == merge_maxima(b, a)).all()
        lhs = merge_maxima(merge_maxima(a, b), c)
        rhs = merge_maxima(a, merge_maxima(b, c))
        assert (lhs == rhs).all()

    def test_empty_is_identity(self, rng):
        a = sample_geometric(rng, 30)
        empty = np.full(30, EMPTY_MAX, dtype=np.int64)
        assert (merge_maxima(a, empty) == a).all()
